//! `tell` — facade crate for the tell-rs workspace.
//!
//! Re-exports the public API of every subsystem so applications (and the
//! runnable examples under `examples/`) can depend on a single crate. See
//! `README.md` for a quickstart and `DESIGN.md` for the architecture.

pub use tell_baselines as baselines;
pub use tell_commitmgr as commitmgr;
pub use tell_common as common;
pub use tell_core as core;
pub use tell_index as index;
pub use tell_netsim as netsim;
pub use tell_obs as obs;
pub use tell_rpc as rpc;
pub use tell_sql as sql;
pub use tell_store as store;
pub use tell_tpcc as tpcc;

//! Recovery from processing-node failures (§4.4.1).
//!
//! PNs are crash-stop: when one fails, every transaction it was running
//! must be rolled back — in particular committing transactions with
//! partially applied updates. The recovery process scans the transaction
//! log backwards from the highest tid down to the lowest active version
//! number (the lav acts as a rolling checkpoint), and reverts the write set
//! of every uncommitted entry belonging to the failed node.

use tell_common::{Error, PnId, Result, Rid, TableId, TxnId};
use tell_obs::Counter;
use tell_store::keys::Key;
use tell_store::{keys, Expect, StoreApi, StoreEndpoint, WriteOp};

use crate::database::Database;
use crate::record::VersionedRecord;
use crate::txlog;

/// What a recovery run did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Uncommitted transactions of the failed node that were rolled back.
    pub rolled_back: usize,
    /// Committed transactions of the failed node found in the log (left
    /// untouched — their effects are durable).
    pub already_committed: usize,
    /// Record versions reverted.
    pub versions_reverted: usize,
}

/// Remove the version written by `tid` from the record `rid`, retrying the
/// conditional write until it sticks. Used both by commit-failure rollback
/// and by the recovery process ("the version with number tid is removed
/// from the records").
pub fn revert_record_version<C: StoreApi>(
    client: &C,
    table: TableId,
    rid: Rid,
    tid: TxnId,
) -> Result<()> {
    let key = keys::record(table, rid);
    loop {
        let Some((token, raw)) = client.get(&key)? else {
            return Ok(()); // record gone entirely — nothing to revert
        };
        let mut rec = VersionedRecord::decode(&raw)?;
        if !rec.remove_version(tid) {
            return Ok(()); // already reverted
        }
        let outcome = if rec.version_count() == 0 {
            // The record existed only because of this transaction (an
            // insert): remove the whole key-value pair.
            client.delete_conditional(&key, token).map(|_| ())
        } else {
            client.store_conditional(&key, token, rec.encode()).map(|_| ())
        };
        match outcome {
            Ok(()) => return Ok(()),
            Err(Error::Conflict) => continue, // racing writer; reload
            Err(e) => return Err(e),
        }
    }
}

/// Remove the version written by `tid` from every record of a write set in
/// bulk: one batched load-link for all targets, one batched conditional
/// write for all records that carry the version (§5.1 batching applied to
/// rollback). Only keys that lose their LL/SC race to a concurrent writer
/// are retried; any other failure is returned. Returns how many records
/// actually had a `tid` version removed.
pub fn revert_write_set<C: StoreApi>(
    client: &C,
    tid: TxnId,
    targets: &[(TableId, Rid)],
) -> Result<usize> {
    let mut pending: Vec<Key> =
        targets.iter().map(|(table, rid)| keys::record(*table, *rid)).collect();
    let mut reverted = 0;
    while !pending.is_empty() {
        let cells = client.multi_get_async(&pending).wait()?;
        let mut ops = Vec::new();
        let mut op_keys = Vec::new();
        for (key, cell) in pending.iter().zip(cells) {
            let Some((token, raw)) = cell else { continue }; // record gone
            let mut rec = VersionedRecord::decode(&raw)?;
            if !rec.remove_version(tid) {
                continue; // already reverted
            }
            // An insert-only record disappears entirely; otherwise the
            // version set shrinks by one.
            let op = if rec.version_count() == 0 {
                WriteOp::delete(key.clone(), Expect::Token(token))
            } else {
                WriteOp::put(key.clone(), Expect::Token(token), rec.encode())
            };
            ops.push(op);
            op_keys.push(key.clone());
        }
        if ops.is_empty() {
            break;
        }
        let results = client.multi_write_async(ops).wait()?;
        let mut retry = Vec::with_capacity(op_keys.len());
        for (key, result) in op_keys.into_iter().zip(results) {
            match result {
                Ok(_) => reverted += 1,
                Err(Error::Conflict) => retry.push(key), // racing writer; reload
                Err(e) => return Err(e),
            }
        }
        pending = retry;
    }
    Ok(reverted)
}

/// Roll back every in-flight transaction of a failed processing node.
/// "The management node ensures that only one recovery process is running
/// at a time" — callers serialize invocations; the operation itself is
/// idempotent (re-reverting is a no-op).
pub fn recover_failed_pn<E: StoreEndpoint>(
    db: &Database<E>,
    failed: PnId,
) -> Result<RecoveryReport> {
    tell_obs::incr(Counter::RecoveryRuns);
    let client = db.admin_client();
    let lav = db.commit_service().current_lav()?;
    let mut report = RecoveryReport::default();
    let mut to_rollback = Vec::new();
    txlog::scan_backwards(&client, lav, |entry| {
        if entry.pn == failed {
            if entry.committed {
                report.already_committed += 1;
            } else {
                to_rollback.push(entry);
            }
        }
        true
    })?;
    for entry in to_rollback {
        let reverted = revert_write_set(&client, entry.tid, &entry.write_set)?;
        tell_obs::add(Counter::RecoveryRevertedWrites, reverted as u64);
        report.versions_reverted += entry.write_set.len();
        // Resolve the transaction on every commit manager so the global
        // base (and thus the lav) can advance past it.
        db.commit_service().force_resolve(entry.tid, false)?;
        report.rolled_back += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use tell_store::{StoreClient, StoreCluster, StoreConfig};

    #[test]
    fn revert_removes_version() {
        let client = StoreClient::unmetered(StoreCluster::new(StoreConfig::new(1)));
        let table = TableId(1);
        let rid = Rid(1);
        let mut rec = VersionedRecord::with_initial(TxnId(0), Bytes::from_static(b"base"));
        rec.add_version(TxnId(9), Some(Bytes::from_static(b"dirty")));
        client.insert(&keys::record(table, rid), rec.encode()).unwrap();
        revert_record_version(&client, table, rid, TxnId(9)).unwrap();
        let (_, raw) = client.get(&keys::record(table, rid)).unwrap().unwrap();
        let after = VersionedRecord::decode(&raw).unwrap();
        assert!(!after.has_version(9));
        assert!(after.has_version(0));
        // Idempotent.
        revert_record_version(&client, table, rid, TxnId(9)).unwrap();
    }

    #[test]
    fn revert_deletes_insert_only_record() {
        let client = StoreClient::unmetered(StoreCluster::new(StoreConfig::new(1)));
        let table = TableId(1);
        let rid = Rid(2);
        let rec = VersionedRecord::with_initial(TxnId(7), Bytes::from_static(b"fresh"));
        client.insert(&keys::record(table, rid), rec.encode()).unwrap();
        revert_record_version(&client, table, rid, TxnId(7)).unwrap();
        assert!(client.get(&keys::record(table, rid)).unwrap().is_none());
    }

    #[test]
    fn revert_write_set_batches_mixed_targets() {
        let client = StoreClient::unmetered(StoreCluster::new(StoreConfig::new(2)));
        let table = TableId(1);
        // Rid 1: update on top of a base version; Rid 2: insert-only;
        // Rid 3: never written (nothing to revert).
        let mut rec = VersionedRecord::with_initial(TxnId(0), Bytes::from_static(b"base"));
        rec.add_version(TxnId(9), Some(Bytes::from_static(b"dirty")));
        client.insert(&keys::record(table, Rid(1)), rec.encode()).unwrap();
        let fresh = VersionedRecord::with_initial(TxnId(9), Bytes::from_static(b"fresh"));
        client.insert(&keys::record(table, Rid(2)), fresh.encode()).unwrap();
        let targets = [(table, Rid(1)), (table, Rid(2)), (table, Rid(3))];
        assert_eq!(revert_write_set(&client, TxnId(9), &targets).unwrap(), 2);
        let (_, raw) = client.get(&keys::record(table, Rid(1))).unwrap().unwrap();
        assert!(!VersionedRecord::decode(&raw).unwrap().has_version(9));
        assert!(client.get(&keys::record(table, Rid(2))).unwrap().is_none());
        // Idempotent.
        assert_eq!(revert_write_set(&client, TxnId(9), &targets).unwrap(), 0);
    }

    #[test]
    fn revert_missing_record_is_ok() {
        let client = StoreClient::unmetered(StoreCluster::new(StoreConfig::new(1)));
        revert_record_version(&client, TableId(1), Rid(404), TxnId(1)).unwrap();
    }
}

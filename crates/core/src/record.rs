//! Multi-version records (§5.1).
//!
//! "Every relational record (or row) is stored as one key-value pair. ...
//! The value field contains a serialized set of all the versions of the
//! record." A single read therefore retrieves every version, and a single
//! atomic conditional write applies an update *and* detects conflicts.

use bytes::Bytes;
use tell_commitmgr::SnapshotDescriptor;
use tell_common::codec::{Reader, Writer};
use tell_common::{Error, Result, TxnId};
use tell_store::Predicate;

/// Byte offset of the row payload inside the encoding of a record carrying
/// exactly one live version: version count (4) + version number (8) +
/// payload flag (1) + payload length prefix (4).
const SINGLE_LIVE_PAYLOAD_OFFSET: usize = 17;

/// The `count == 1` header every single-version record encoding starts with.
const SINGLE_VERSION_PREFIX: [u8; 4] = 1u32.to_le_bytes();

/// One version of a record: the writing transaction's id (= version number)
/// and the payload; `None` payload is a deletion tombstone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Version {
    /// Version number = tid of the writer.
    pub version: u64,
    /// Row bytes, or `None` for a tombstone.
    pub payload: Option<Bytes>,
}

/// All stored versions of one record, newest last.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VersionedRecord {
    versions: Vec<Version>,
}

impl VersionedRecord {
    /// A record born with one version.
    pub fn with_initial(version: TxnId, payload: Bytes) -> Self {
        VersionedRecord {
            versions: vec![Version { version: version.raw(), payload: Some(payload) }],
        }
    }

    /// No versions at all (only transiently meaningful).
    pub fn empty() -> Self {
        VersionedRecord::default()
    }

    /// Number of stored versions.
    pub fn version_count(&self) -> usize {
        self.versions.len()
    }

    /// All version numbers, ascending.
    pub fn version_numbers(&self) -> impl Iterator<Item = u64> + '_ {
        self.versions.iter().map(|v| v.version)
    }

    /// The versions themselves (ascending by version number).
    pub fn versions(&self) -> &[Version] {
        &self.versions
    }

    /// Does a version with this number exist?
    pub fn has_version(&self, version: u64) -> bool {
        self.versions.iter().any(|v| v.version == version)
    }

    /// The newest version visible in `snapshot`, following the paper's
    /// `v := max(V ∩ V')` rule. Returns `None` if nothing is visible;
    /// returns `Some(Version{payload: None, ..})` when the visible version
    /// is a tombstone (record deleted as of this snapshot).
    pub fn visible(&self, snapshot: &SnapshotDescriptor) -> Option<&Version> {
        self.versions.iter().filter(|v| snapshot.contains(v.version)).max_by_key(|v| v.version)
    }

    /// Convenience: the visible payload (deleted/missing → `None`).
    pub fn visible_payload(&self, snapshot: &SnapshotDescriptor) -> Option<&Bytes> {
        self.visible(snapshot).and_then(|v| v.payload.as_ref())
    }

    /// Append a version written by `tid`. Versions are appended in commit
    /// order per record (the writer holds the LL/SC link), so `tid` is
    /// normally larger than every stored version; out-of-order tids are
    /// inserted sorted to keep invariants under commit-manager races.
    pub fn add_version(&mut self, tid: TxnId, payload: Option<Bytes>) {
        let v = Version { version: tid.raw(), payload };
        match self.versions.binary_search_by_key(&v.version, |x| x.version) {
            Ok(i) => self.versions[i] = v, // idempotent re-apply
            Err(i) => self.versions.insert(i, v),
        }
    }

    /// Remove the version written by `tid` (rollback / recovery). Returns
    /// whether it was present.
    pub fn remove_version(&mut self, tid: TxnId) -> bool {
        match self.versions.binary_search_by_key(&tid.raw(), |x| x.version) {
            Ok(i) => {
                self.versions.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Garbage-collect versions per §5.4: with `C := { x ∈ V | x <= lav }`
    /// and `G := { x ∈ C | x != max(C) }`, every version in `G` is removed
    /// (the newest globally-visible version always survives). Returns the
    /// number of versions dropped.
    pub fn gc(&mut self, lav: u64) -> usize {
        let max_c = self.versions.iter().map(|v| v.version).filter(|v| *v <= lav).max();
        let Some(max_c) = max_c else { return 0 };
        let before = self.versions.len();
        self.versions.retain(|v| v.version > lav || v.version == max_c);
        before - self.versions.len()
    }

    /// After GC, a record whose only remaining content is a tombstone that
    /// every transaction can see will never produce a visible row again; the
    /// whole key-value pair can be deleted from the store.
    pub fn is_fully_dead(&self, lav: u64) -> bool {
        match self.versions.last() {
            Some(last) => last.payload.is_none() && last.version <= lav && self.versions.len() == 1,
            None => true,
        }
    }

    /// Serialized size.
    pub fn encoded_len(&self) -> usize {
        4 + self
            .versions
            .iter()
            .map(|v| 9 + v.payload.as_ref().map(|p| 4 + p.len()).unwrap_or(0))
            .sum::<usize>()
    }

    /// Encode to store bytes.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.put_u32(self.versions.len() as u32);
        for v in &self.versions {
            out.put_u64(v.version);
            match &v.payload {
                Some(p) => {
                    out.put_u8(1);
                    out.put_bytes(p);
                }
                None => out.put_u8(0),
            }
        }
        Bytes::from(out)
    }

    /// Lift a predicate over **row** bytes to a sound predicate over
    /// encoded *record* bytes, for storage-side selection pushdown (§5.2).
    ///
    /// Storage nodes filter raw key-value pairs and know nothing about
    /// version visibility, so the lifted predicate must never exclude a
    /// record whose snapshot-visible row could match. It is *exact* for
    /// records with a single live version — the steady state after GC
    /// (§5.4) — because their row sits at a fixed offset, so every value
    /// window of `row_filter` simply shifts by that offset. Every other
    /// shape (multiple versions, whose visible payload the store cannot
    /// determine) is shipped conservatively; callers re-verify the rows
    /// they receive against the snapshot.
    pub fn lift_row_predicate(row_filter: &Predicate) -> Predicate {
        Predicate::Any(vec![
            Predicate::Not(Box::new(Predicate::ValuePrefix(Bytes::copy_from_slice(
                &SINGLE_VERSION_PREFIX,
            )))),
            shift_value_windows(row_filter, SINGLE_LIVE_PAYLOAD_OFFSET),
        ])
    }

    /// Decode store bytes.
    pub fn decode(buf: &[u8]) -> Result<VersionedRecord> {
        let mut r = Reader::new(buf);
        let n = r.u32()? as usize;
        let mut versions = Vec::with_capacity(n);
        let mut prev: Option<u64> = None;
        for _ in 0..n {
            let version = r.u64()?;
            if let Some(p) = prev {
                if version <= p {
                    return Err(Error::corrupt("record versions out of order"));
                }
            }
            prev = Some(version);
            let payload =
                if r.u8()? == 1 { Some(Bytes::copy_from_slice(r.bytes()?)) } else { None };
            versions.push(Version { version, payload });
        }
        if !r.is_exhausted() {
            return Err(Error::corrupt("trailing bytes in record"));
        }
        Ok(VersionedRecord { versions })
    }
}

/// Rewrite every value window of `filter` to start `by` bytes later, so a
/// predicate written against row bytes evaluates identically against a
/// record encoding whose payload begins at offset `by`. Key predicates are
/// untouched (the storage key is the same at both levels); a `ValuePrefix`
/// becomes an equality window at the new offset.
fn shift_value_windows(filter: &Predicate, by: usize) -> Predicate {
    match filter {
        Predicate::True => Predicate::True,
        Predicate::KeyPrefix(p) => Predicate::KeyPrefix(p.clone()),
        Predicate::ValuePrefix(p) => Predicate::value_compare(by, tell_store::CmpOp::Eq, p.clone()),
        Predicate::ValueCompare { offset, op, literal } => {
            Predicate::value_compare(offset + by, *op, literal.clone())
        }
        Predicate::All(children) => {
            Predicate::All(children.iter().map(|c| shift_value_windows(c, by)).collect())
        }
        Predicate::Any(children) => {
            Predicate::Any(children.iter().map(|c| shift_value_windows(c, by)).collect())
        }
        Predicate::Not(child) => Predicate::Not(Box::new(shift_value_windows(child, by))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tell_common::BitSet;

    fn snap(base: u64, newly: &[u64]) -> SnapshotDescriptor {
        let mut bits = BitSet::new();
        for &v in newly {
            bits.set((v - base - 1) as usize);
        }
        SnapshotDescriptor::new(base, bits)
    }

    fn payload(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn visibility_follows_snapshot() {
        let mut r = VersionedRecord::with_initial(TxnId(0), payload("v0"));
        r.add_version(TxnId(5), Some(payload("v5")));
        r.add_version(TxnId(9), Some(payload("v9")));
        assert_eq!(r.visible_payload(&snap(0, &[])).unwrap().as_ref(), b"v0");
        assert_eq!(r.visible_payload(&snap(5, &[])).unwrap().as_ref(), b"v5");
        assert_eq!(r.visible_payload(&snap(5, &[9])).unwrap().as_ref(), b"v9");
        assert_eq!(r.visible_payload(&snap(100, &[])).unwrap().as_ref(), b"v9");
    }

    #[test]
    fn tombstone_hides_payload() {
        let mut r = VersionedRecord::with_initial(TxnId(0), payload("live"));
        r.add_version(TxnId(3), None);
        let s = snap(10, &[]);
        assert!(r.visible(&s).is_some(), "tombstone itself is visible");
        assert!(r.visible_payload(&s).is_none(), "...but yields no row");
        // Older snapshot still sees the live row.
        assert_eq!(r.visible_payload(&snap(0, &[])).unwrap().as_ref(), b"live");
    }

    #[test]
    fn nothing_visible_to_too_old_snapshot() {
        let r = VersionedRecord::with_initial(TxnId(8), payload("new"));
        assert!(r.visible(&snap(3, &[])).is_none());
    }

    #[test]
    fn remove_version_is_rollback() {
        let mut r = VersionedRecord::with_initial(TxnId(0), payload("v0"));
        r.add_version(TxnId(7), Some(payload("v7")));
        assert!(r.remove_version(TxnId(7)));
        assert!(!r.remove_version(TxnId(7)));
        assert_eq!(r.visible_payload(&snap(100, &[])).unwrap().as_ref(), b"v0");
    }

    #[test]
    fn gc_keeps_newest_globally_visible_version() {
        let mut r = VersionedRecord::with_initial(TxnId(0), payload("v0"));
        for t in [3u64, 5, 8, 12] {
            r.add_version(TxnId(t), Some(payload(&format!("v{t}"))));
        }
        // lav = 8: versions 0, 3, 5 are dead; 8 survives as max(C); 12 is live.
        let dropped = r.gc(8);
        assert_eq!(dropped, 3);
        let versions: Vec<u64> = r.version_numbers().collect();
        assert_eq!(versions, vec![8, 12]);
        // GC is idempotent.
        assert_eq!(r.gc(8), 0);
    }

    #[test]
    fn gc_with_no_collectable_versions() {
        let mut r = VersionedRecord::with_initial(TxnId(10), payload("x"));
        assert_eq!(r.gc(5), 0, "no version at or below the lav");
        assert_eq!(r.version_count(), 1);
    }

    #[test]
    fn gc_never_leaves_record_empty() {
        let mut r = VersionedRecord::with_initial(TxnId(1), payload("only"));
        assert_eq!(r.gc(100), 0, "max(C) is preserved");
        assert_eq!(r.version_count(), 1);
    }

    #[test]
    fn fully_dead_detection() {
        let mut r = VersionedRecord::with_initial(TxnId(1), payload("x"));
        assert!(!r.is_fully_dead(100));
        r.add_version(TxnId(5), None);
        r.gc(100);
        assert!(r.is_fully_dead(100), "lone globally-visible tombstone");
        assert!(!r.is_fully_dead(4), "tombstone not yet visible to all");
        assert!(VersionedRecord::empty().is_fully_dead(0));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut r = VersionedRecord::with_initial(TxnId(0), payload("a"));
        r.add_version(TxnId(2), None);
        r.add_version(TxnId(9), Some(payload("b")));
        let bytes = r.encode();
        assert_eq!(bytes.len(), r.encoded_len());
        assert_eq!(VersionedRecord::decode(&bytes).unwrap(), r);
    }

    #[test]
    fn decode_rejects_unordered_versions() {
        let mut out = Vec::new();
        out.put_u32(2);
        out.put_u64(9);
        out.put_u8(0);
        out.put_u64(3); // out of order
        out.put_u8(0);
        assert!(VersionedRecord::decode(&out).is_err());
    }

    #[test]
    fn lifted_predicate_is_exact_on_single_version_records() {
        let filter = Predicate::All(vec![
            Predicate::ValuePrefix(Bytes::from_static(&[7])),
            Predicate::value_compare(1, tell_store::CmpOp::Ge, vec![0x20]),
        ]);
        let lifted = VersionedRecord::lift_row_predicate(&filter);
        for row in [vec![7u8, 0x20, 3], vec![7, 0x1f], vec![8, 0x20], vec![7u8], vec![]] {
            let rec = VersionedRecord::with_initial(TxnId(4), Bytes::from(row.clone()));
            assert_eq!(
                lifted.matches(b"k", &rec.encode()),
                filter.matches(b"k", &row),
                "row {row:?}"
            );
        }
    }

    #[test]
    fn lifted_predicate_ships_multi_version_records_conservatively() {
        let filter = Predicate::value_eq(0, vec![1]);
        let lifted = VersionedRecord::lift_row_predicate(&filter);
        // Neither version matches the filter, but the store cannot know
        // which one is visible — the record must cross the network.
        let mut rec = VersionedRecord::with_initial(TxnId(1), payload("aa"));
        rec.add_version(TxnId(2), Some(payload("bb")));
        assert!(lifted.matches(b"k", &rec.encode()));
        // A lone tombstone can never produce a visible row; dropping it is
        // sound (value windows past the 13-byte encoding match nothing).
        let mut dead = VersionedRecord::with_initial(TxnId(1), payload("x"));
        dead.remove_version(TxnId(1));
        dead.add_version(TxnId(1), None);
        assert!(!lifted.matches(b"k", &dead.encode()));
    }

    #[test]
    fn idempotent_reapply_of_same_tid() {
        let mut r = VersionedRecord::with_initial(TxnId(0), payload("v0"));
        r.add_version(TxnId(4), Some(payload("first")));
        r.add_version(TxnId(4), Some(payload("second")));
        assert_eq!(r.version_count(), 2);
        assert_eq!(r.visible_payload(&snap(10, &[])).unwrap().as_ref(), b"second");
    }
}

//! Database construction and administration.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;
use tell_commitmgr::manager::CmConfig;
use tell_commitmgr::{CmCluster, CmEndpoint, CommitService};
use tell_common::{Error, IndexId, PnId, Result, Rid, SimClock, TableId, TxnId};
use tell_index::{BTreeConfig, DistributedBTree};
use tell_netsim::{NetMeter, NetworkProfile, TrafficStats};
use tell_store::{keys, Expect, StoreApi, StoreCluster, StoreConfig, StoreEndpoint, WriteOp};

use crate::buffer::BufferConfig;
use crate::catalog::{Catalog, KeyExtractor, TableDef};
use crate::pn::{PnGroup, ProcessingNode};
use crate::record::VersionedRecord;

/// Everything needed to build a Tell deployment.
#[derive(Clone)]
pub struct TellConfig {
    /// Number of storage nodes.
    pub storage_nodes: usize,
    /// Replication factor (RF1/RF2/RF3 in the paper's experiments).
    pub replication_factor: usize,
    /// Number of commit managers (Table 3 varies this).
    pub commit_managers: usize,
    /// Logical store partitions; default derives from node count.
    pub partitions: Option<usize>,
    /// Optional per-SN memory capacity (Fig 7).
    pub node_capacity_bytes: Option<usize>,
    /// Network fabric (Fig 10 compares InfiniBand and 10 GbE).
    pub profile: NetworkProfile,
    /// Buffering strategy for processing nodes (Fig 11).
    pub buffer: BufferConfig,
    /// Commit-manager tuning.
    pub cm: CmConfig,
    /// Records ids allocated per counter round trip.
    pub rid_range: u64,
    /// B+tree node capacity / retry limits.
    pub btree: BTreeConfig,
    /// Combine storage operations into single exchanges (§5.1 "Tell
    /// aggressively batches operations"). Disabled only by the batching
    /// ablation benchmark.
    pub batching: bool,
    /// Optional storage-node persistence tier (see
    /// [`tell_store::durability`]). `None` keeps storage pure in-memory —
    /// the paper's base configuration, where durability is replication.
    pub store_durability: Option<Arc<dyn tell_store::DurabilityProvider>>,
    /// Default isolation level for transactions begun via
    /// [`crate::pn::ProcessingNode::begin`]; individual transactions can
    /// override it with `begin_at`. The paper's contract is SI.
    pub isolation: tell_common::IsolationLevel,
}

impl Default for TellConfig {
    fn default() -> Self {
        TellConfig {
            storage_nodes: 3,
            replication_factor: 1,
            commit_managers: 1,
            partitions: None,
            node_capacity_bytes: None,
            profile: NetworkProfile::infiniband(),
            buffer: BufferConfig::TransactionOnly,
            cm: CmConfig::default(),
            rid_range: 1024,
            btree: BTreeConfig::default(),
            batching: true,
            store_durability: None,
            isolation: tell_common::IsolationLevel::Si,
        }
    }
}

/// One index to create with a table: name, uniqueness, and the extractor
/// that derives the indexed key bytes from a row image.
pub struct IndexSpec {
    pub name: String,
    pub unique: bool,
    pub extractor: KeyExtractor,
}

impl IndexSpec {
    /// Convenience constructor.
    pub fn new(
        name: &str,
        unique: bool,
        extractor: impl Fn(&[u8]) -> Option<Bytes> + Send + Sync + 'static,
    ) -> Self {
        IndexSpec { name: name.to_string(), unique, extractor: Arc::new(extractor) }
    }
}

/// A running Tell database: the storage endpoint, the commit service, and
/// the shared catalog. Processing nodes are spawned from it.
///
/// Generic over the storage endpoint: the default `Arc<StoreCluster>` runs
/// everything in-process (the simulation harness); `tell-rpc`'s remote
/// endpoint runs the same code against storage nodes across TCP.
pub struct Database<E: StoreEndpoint = Arc<StoreCluster>> {
    endpoint: E,
    commit: Arc<dyn CommitService>,
    /// Local commit managers, when this process hosts them (built by
    /// [`Database::create`]). Remote deployments administer their commit
    /// managers in the server process and leave this empty.
    cms: Option<Arc<CmCluster<E>>>,
    catalog: Arc<Catalog>,
    extractors: RwLock<HashMap<IndexId, KeyExtractor>>,
    traffic: Arc<TrafficStats>,
    config: TellConfig,
    next_pn: AtomicU32,
}

impl Database {
    /// Build a fresh in-process deployment (storage cluster plus commit
    /// managers, all in this process).
    pub fn create(config: TellConfig) -> Arc<Database> {
        let mut store_cfg = StoreConfig::new(config.storage_nodes)
            .replication(config.replication_factor)
            .profile(config.profile.clone());
        if let Some(p) = config.partitions {
            store_cfg.partitions = p;
        }
        if let Some(c) = config.node_capacity_bytes {
            store_cfg = store_cfg.capacity(c);
        }
        if let Some(d) = &config.store_durability {
            store_cfg = store_cfg.durability(Arc::clone(d));
        }
        let store = StoreCluster::new(store_cfg);
        let cms = CmCluster::new(Arc::clone(&store), config.commit_managers, config.cm.clone());
        Arc::new(Database {
            endpoint: store,
            commit: Arc::clone(&cms) as Arc<dyn CommitService>,
            cms: Some(cms),
            catalog: Arc::new(Catalog::new()),
            extractors: RwLock::new(HashMap::new()),
            traffic: TrafficStats::new(),
            config,
            next_pn: AtomicU32::new(0),
        })
    }

    /// The storage cluster (in-process deployments only).
    pub fn store(&self) -> &Arc<StoreCluster> {
        &self.endpoint
    }
}

impl<E: StoreEndpoint> Database<E> {
    /// Open a database over an arbitrary storage endpoint and commit
    /// endpoint — the entry point for processing nodes that talk to remote
    /// storage nodes and commit managers (see `tell-rpc`). The two sides
    /// are symmetric: a local deployment passes (`Arc<StoreCluster>`,
    /// `Arc<CmCluster>`), a remote one (`RemoteEndpoint`,
    /// `RemoteCmEndpoint`). A bare `Arc<dyn CommitService>` still works —
    /// it is its own endpoint.
    pub fn open<C: CmEndpoint>(endpoint: E, commit: C, config: TellConfig) -> Arc<Self> {
        Arc::new(Database {
            endpoint,
            commit: commit.commit_service(),
            cms: None,
            catalog: Arc::new(Catalog::new()),
            extractors: RwLock::new(HashMap::new()),
            traffic: TrafficStats::new(),
            config,
            next_pn: AtomicU32::new(0),
        })
    }

    /// The storage endpoint processing nodes mint their clients from.
    pub fn endpoint(&self) -> &E {
        &self.endpoint
    }

    /// The commit service transactions start against.
    pub fn commit_service(&self) -> &Arc<dyn CommitService> {
        &self.commit
    }

    /// The local commit managers. Panics on a remote deployment — those
    /// administer commit managers in the server process; use
    /// [`Database::commit_service`] for the operations every deployment has.
    pub fn commit_managers(&self) -> &Arc<CmCluster<E>> {
        self.cms.as_ref().expect(
            "no local commit managers: this database was opened over a remote \
             commit service; use commit_service() instead",
        )
    }

    /// The shared catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// Deployment configuration.
    pub fn config(&self) -> &TellConfig {
        &self.config
    }

    /// Cluster-wide traffic counters (every PN meter feeds these).
    pub fn traffic(&self) -> &Arc<TrafficStats> {
        &self.traffic
    }

    /// An unmetered client for administrative work (DDL, loading, tests).
    pub fn admin_client(&self) -> E::Client {
        self.endpoint.unmetered_client()
    }

    /// Create a table together with its indexes and register the key
    /// extractors. The first index spec is the primary key.
    pub fn create_table(&self, name: &str, specs: Vec<IndexSpec>) -> Result<Arc<TableDef>> {
        let client = self.admin_client();
        let index_meta: Vec<(&str, bool)> =
            specs.iter().map(|s| (s.name.as_str(), s.unique)).collect();
        let def = self.catalog.create_table(&client, name, &index_meta)?;
        let mut extractors = self.extractors.write();
        for (idx, spec) in def.indexes.iter().zip(specs) {
            DistributedBTree::create(self.admin_client(), idx.id, self.config.btree.clone())?;
            extractors.insert(idx.id, spec.extractor);
        }
        Ok(def)
    }

    /// Add a secondary index to an existing table (`CREATE INDEX`):
    /// updates the catalog, creates the B+tree, registers the extractor
    /// and backfills entries for every stored version of every record.
    /// Concurrent writers should be quiesced, as in any online DDL.
    pub fn add_index(&self, table: &str, spec: IndexSpec) -> Result<Arc<TableDef>> {
        let client = self.admin_client();
        let (def, id) = self.catalog.add_index(&client, table, &spec.name, spec.unique)?;
        let tree = DistributedBTree::create(self.admin_client(), id, self.config.btree.clone())?;
        self.extractors.write().insert(id, Arc::clone(&spec.extractor));
        // Backfill from every stored version, so older snapshots can also
        // find their rows through the new index.
        let rows = client.scan_prefix(&keys::record_prefix(def.id), usize::MAX)?;
        for (key, _, raw) in rows {
            let Some((_, rid)) = keys::parse_record(&key) else { continue };
            let rec = VersionedRecord::decode(&raw)?;
            for v in rec.versions() {
                if let Some(p) = &v.payload {
                    if let Some(k) = (spec.extractor)(p) {
                        tree.insert(k, rid.raw())?;
                    }
                }
            }
        }
        Ok(def)
    }

    /// Extractor for an index (re-registered per process; see
    /// [`Database::register_extractor`] for attaching to pre-existing data).
    pub fn extractor(&self, id: IndexId) -> Option<KeyExtractor> {
        self.extractors.read().get(&id).cloned()
    }

    /// Attach an extractor for an index created elsewhere (another process
    /// opened the database; extractors are code, not data).
    pub fn register_extractor(&self, id: IndexId, f: KeyExtractor) {
        self.extractors.write().insert(id, f);
    }

    /// Spawn a processing node (one worker). Must be called on the thread
    /// that will use it — the node owns a thread-local virtual clock.
    pub fn processing_node(self: &Arc<Self>) -> ProcessingNode<E> {
        let group = Arc::new(PnGroup::new(self.config.buffer.clone()));
        self.processing_node_in_group(&group)
    }

    /// Spawn a worker that shares PN-level state (record buffer, V_max)
    /// with other workers of the same *logical* processing node. The paper's
    /// PNs run several worker threads; a [`PnGroup`] models one such PN.
    pub fn processing_node_in_group(self: &Arc<Self>, group: &Arc<PnGroup>) -> ProcessingNode<E> {
        let id = PnId(self.next_pn.fetch_add(1, Ordering::Relaxed));
        let clock = SimClock::new();
        let meter =
            NetMeter::new(self.config.profile.clone(), clock.clone(), Arc::clone(&self.traffic));
        ProcessingNode::new(id, Arc::clone(self), meter, Arc::clone(group))
    }

    /// Fresh PN group (a logical processing node's shared state).
    pub fn pn_group(&self) -> Arc<PnGroup> {
        Arc::new(PnGroup::new(self.config.buffer.clone()))
    }

    /// Bulk-load rows into a table outside any transaction (initial
    /// population, version 0). Returns the assigned rids. Maintains indexes.
    pub fn bulk_load(&self, table: &TableDef, rows: Vec<Bytes>) -> Result<Vec<Rid>> {
        let client = self.admin_client();
        let n = rows.len() as u64;
        if n == 0 {
            return Ok(Vec::new());
        }
        let hi = client.increment(&keys::counter(&format!("rid/{}", table.id.raw())), n)?;
        let base = hi - n + 1;
        let mut trees = Vec::new();
        for idx in &table.indexes {
            let tree =
                DistributedBTree::open(self.admin_client(), idx.id, self.config.btree.clone())?;
            let ex = self
                .extractor(idx.id)
                .ok_or_else(|| Error::invalid(format!("no extractor for index {}", idx.id)))?;
            trees.push((tree, ex));
        }
        // Record images go in through the async surface in chunks: one
        // batched frame per chunk on a remote endpoint instead of one
        // round trip per row (§5.1).
        const CHUNK: usize = 128;
        let mut rids = Vec::with_capacity(rows.len());
        let mut ops = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            let rid = Rid(base + i as u64);
            let record = VersionedRecord::with_initial(TxnId::BOOTSTRAP, row.clone());
            ops.push(WriteOp::put(keys::record(table.id, rid), Expect::Absent, record.encode()));
            rids.push(rid);
        }
        while !ops.is_empty() {
            let tail = ops.split_off(ops.len().min(CHUNK));
            let chunk = std::mem::replace(&mut ops, tail);
            for result in client.multi_write_async(chunk).wait()? {
                result?;
            }
        }
        for (rid, row) in rids.iter().zip(&rows) {
            for (tree, ex) in &trees {
                if let Some(key) = ex(row) {
                    tree.insert(key, rid.raw())?;
                }
            }
        }
        Ok(rids)
    }

    /// Allocate a rid range for a PN (`[lo, hi]` inclusive).
    pub(crate) fn alloc_rid_range(&self, client: &E::Client, table: TableId) -> Result<(u64, u64)> {
        let n = self.config.rid_range;
        let hi = client.increment(&keys::counter(&format!("rid/{}", table.raw())), n)?;
        Ok((hi - n + 1, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pk_extractor() -> impl Fn(&[u8]) -> Option<Bytes> + Send + Sync {
        |row: &[u8]| row.get(..4).map(Bytes::copy_from_slice)
    }

    #[test]
    fn create_table_creates_trees_and_extractors() {
        let db = Database::create(TellConfig::default());
        let t = db.create_table("items", vec![IndexSpec::new("pk", true, pk_extractor())]).unwrap();
        assert_eq!(t.name, "items");
        let idx = t.primary_index().id;
        assert!(db.extractor(idx).is_some());
        // The tree exists and is empty.
        let tree = DistributedBTree::open(db.admin_client(), idx, BTreeConfig::default()).unwrap();
        assert!(tree.is_empty().unwrap());
    }

    #[test]
    fn bulk_load_populates_records_and_indexes() {
        let db = Database::create(TellConfig::default());
        let t = db.create_table("items", vec![IndexSpec::new("pk", true, pk_extractor())]).unwrap();
        let rows: Vec<Bytes> = (0..20u32)
            .map(|i| {
                let mut r = i.to_be_bytes().to_vec();
                r.extend_from_slice(b"payload");
                Bytes::from(r)
            })
            .collect();
        let rids = db.bulk_load(&t, rows).unwrap();
        assert_eq!(rids.len(), 20);
        let tree =
            DistributedBTree::open(db.admin_client(), t.primary_index().id, BTreeConfig::default())
                .unwrap();
        assert_eq!(tree.len().unwrap(), 20);
        let hits = tree.lookup(&Bytes::copy_from_slice(&7u32.to_be_bytes())).unwrap();
        assert_eq!(hits, vec![rids[7].raw()]);
    }

    #[test]
    fn rid_ranges_do_not_overlap() {
        let db = Database::create(TellConfig { rid_range: 16, ..TellConfig::default() });
        let t = db.create_table("t", vec![IndexSpec::new("pk", true, pk_extractor())]).unwrap();
        let c = db.admin_client();
        let (a_lo, a_hi) = db.alloc_rid_range(&c, t.id).unwrap();
        let (b_lo, b_hi) = db.alloc_rid_range(&c, t.id).unwrap();
        assert_eq!(a_hi - a_lo + 1, 16);
        assert!(b_lo > a_hi);
        assert_eq!(b_hi - b_lo + 1, 16);
    }
}

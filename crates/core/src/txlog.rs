//! The transaction log (§4.4.1).
//!
//! "Before applying updates, a transaction must append a new entry to the
//! log. Every entry is identified by the tid and consists of the PN id, a
//! timestamp, the write set, and a flag to mark the transaction committed."
//! The log is an ordered map in the storage system; recovery iterates it
//! backwards from the highest tid down to the lowest active version number.

use bytes::Bytes;
use tell_commitmgr::manager::LOG_FLAG_COMMITTED;
use tell_common::codec::{Reader, Writer};
use tell_common::{PnId, Result, Rid, TableId, TxnId};
use tell_store::{keys, StoreApi};

/// One transaction-log entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogEntry {
    /// The transaction this entry belongs to.
    pub tid: TxnId,
    /// The processing node that ran it.
    pub pn: PnId,
    /// Virtual timestamp (µs) at which the entry was written.
    pub timestamp_us: u64,
    /// Ids of the records the transaction updates.
    pub write_set: Vec<(TableId, Rid)>,
    /// Set once all updates were applied and index maintenance is done.
    pub committed: bool,
}

impl LogEntry {
    /// Encode. The first byte is the flags byte shared with the commit
    /// manager's recovery scan ([`LOG_FLAG_COMMITTED`]).
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(1 + 4 + 8 + 4 + self.write_set.len() * 12);
        out.put_u8(if self.committed { LOG_FLAG_COMMITTED } else { 0 });
        out.put_u32(self.pn.raw());
        out.put_u64(self.timestamp_us);
        out.put_u32(self.write_set.len() as u32);
        for (table, rid) in &self.write_set {
            out.put_u32(table.raw());
            out.put_u64(rid.raw());
        }
        Bytes::from(out)
    }

    /// Decode an entry stored under the log key of `tid`.
    pub fn decode(tid: TxnId, buf: &[u8]) -> Result<LogEntry> {
        let mut r = Reader::new(buf);
        let flags = r.u8()?;
        let pn = PnId(r.u32()?);
        let timestamp_us = r.u64()?;
        let n = r.u32()? as usize;
        let mut write_set = Vec::with_capacity(n);
        for _ in 0..n {
            write_set.push((TableId(r.u32()?), Rid(r.u64()?)));
        }
        Ok(LogEntry {
            tid,
            pn,
            timestamp_us,
            write_set,
            committed: flags & LOG_FLAG_COMMITTED != 0,
        })
    }
}

/// Append a (not-yet-committed) entry. Must happen before any update is
/// applied to the store.
pub fn append<C: StoreApi>(client: &C, entry: &LogEntry) -> Result<()> {
    debug_assert!(!entry.committed, "entries are appended uncommitted");
    client.insert(&keys::txn_log(entry.tid), entry.encode())?;
    Ok(())
}

/// Flip the committed flag of `entry` (rewrites the full entry; the log
/// entry has a single writer, so an unconditional put is safe).
pub fn mark_committed<C: StoreApi>(client: &C, entry: &mut LogEntry) -> Result<()> {
    entry.committed = true;
    client.put(&keys::txn_log(entry.tid), entry.encode())?;
    Ok(())
}

/// Read one entry.
pub fn read<C: StoreApi>(client: &C, tid: TxnId) -> Result<Option<LogEntry>> {
    match client.get(&keys::txn_log(tid))? {
        Some((_, raw)) => Ok(Some(LogEntry::decode(tid, &raw)?)),
        None => Ok(None),
    }
}

/// Iterate the log backwards (highest tid first), stopping when `f` returns
/// `false` or tid falls at or below `floor`.
pub fn scan_backwards<C: StoreApi>(
    client: &C,
    floor: u64,
    mut f: impl FnMut(LogEntry) -> bool,
) -> Result<()> {
    let prefix = keys::txn_log_prefix();
    let end = keys::prefix_end(&prefix);
    let rows = client.scan_range_rev(&prefix, end.as_deref(), usize::MAX)?;
    for (key, _, value) in rows {
        let Some(tid) = keys::parse_txn_log(&key) else { continue };
        if tid.raw() <= floor {
            break;
        }
        if !f(LogEntry::decode(tid, &value)?) {
            break;
        }
    }
    Ok(())
}

/// Delete log entries with `tid <= floor` (the lav acts as a rolling
/// checkpoint; anything below it can never be needed by recovery again).
/// Returns the number of entries removed.
pub fn truncate<C: StoreApi>(client: &C, floor: u64) -> Result<usize> {
    let prefix = keys::txn_log_prefix();
    let rows = client.scan_prefix(&prefix, usize::MAX)?;
    let mut removed = 0;
    for (key, _, value) in rows {
        let Some(tid) = keys::parse_txn_log(&key) else { continue };
        if tid.raw() > floor {
            break;
        }
        // Only completed transactions may be dropped; an uncommitted entry
        // at or below the floor would indicate a recovery bug.
        let entry = LogEntry::decode(tid, &value)?;
        if entry.committed {
            client.delete(&key)?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tell_store::{StoreClient, StoreCluster, StoreConfig};

    fn client() -> StoreClient {
        StoreClient::unmetered(StoreCluster::new(StoreConfig::new(2)))
    }

    fn entry(tid: u64) -> LogEntry {
        LogEntry {
            tid: TxnId(tid),
            pn: PnId(3),
            timestamp_us: 42,
            write_set: vec![(TableId(1), Rid(10)), (TableId(2), Rid(20))],
            committed: false,
        }
    }

    #[test]
    fn roundtrip() {
        let e = entry(9);
        let decoded = LogEntry::decode(TxnId(9), &e.encode()).unwrap();
        assert_eq!(decoded, e);
        let mut committed = e.clone();
        committed.committed = true;
        let d2 = LogEntry::decode(TxnId(9), &committed.encode()).unwrap();
        assert!(d2.committed);
    }

    #[test]
    fn append_then_mark_committed() {
        let c = client();
        let mut e = entry(5);
        append(&c, &e).unwrap();
        assert!(!read(&c, TxnId(5)).unwrap().unwrap().committed);
        mark_committed(&c, &mut e).unwrap();
        assert!(read(&c, TxnId(5)).unwrap().unwrap().committed);
        assert!(read(&c, TxnId(6)).unwrap().is_none());
    }

    #[test]
    fn backwards_scan_stops_at_floor() {
        let c = client();
        for tid in 1..=10u64 {
            append(&c, &entry(tid)).unwrap();
        }
        let mut seen = Vec::new();
        scan_backwards(&c, 4, |e| {
            seen.push(e.tid.raw());
            true
        })
        .unwrap();
        assert_eq!(seen, vec![10, 9, 8, 7, 6, 5]);
    }

    #[test]
    fn backwards_scan_early_exit() {
        let c = client();
        for tid in 1..=10u64 {
            append(&c, &entry(tid)).unwrap();
        }
        let mut seen = 0;
        scan_backwards(&c, 0, |_| {
            seen += 1;
            seen < 3
        })
        .unwrap();
        assert_eq!(seen, 3);
    }

    #[test]
    fn truncate_drops_only_committed_below_floor() {
        let c = client();
        for tid in 1..=6u64 {
            let mut e = entry(tid);
            append(&c, &e).unwrap();
            if tid != 3 {
                mark_committed(&c, &mut e).unwrap();
            }
        }
        let removed = truncate(&c, 4).unwrap();
        assert_eq!(removed, 3); // tids 1, 2, 4 (3 is uncommitted, 5-6 above floor)
        assert!(read(&c, TxnId(3)).unwrap().is_some());
        assert!(read(&c, TxnId(5)).unwrap().is_some());
        assert!(read(&c, TxnId(1)).unwrap().is_none());
    }
}

//! `tell-core` — **Tell**, the paper's primary contribution.
//!
//! A distributed relational database built on the shared-data architecture
//! (§2): autonomous processing nodes over a shared record store, with
//! transaction management decoupled from storage. This crate implements:
//!
//! * **Distributed snapshot isolation** (§4.1): optimistic MVCC where
//!   conflict detection is a single LL/SC operation per updated record;
//! * the **transaction life-cycle** (§4.3): begin → running (updates
//!   buffered on the PN) → try-commit (log entry, then batched conditional
//!   application) → commit (index maintenance, commit flag, CM
//!   notification) or abort (roll back applied updates);
//! * **record-granularity multi-version storage** (§5.1): one key-value
//!   pair per record holding *all* its versions, so a read is one request
//!   and an update is one atomic conditional write;
//! * **version-unaware indexing** with read-time verification (§5.3.2);
//! * **garbage collection** of versions and index entries driven by the
//!   lowest active version number (§5.4), eager and lazy;
//! * the three **buffering strategies** of §5.5 (transaction buffer, shared
//!   record buffer, shared buffer with version-set synchronization);
//! * **recovery** from processing-node failures via the transaction log
//!   (§4.4.1), on top of the store's replica fail-over and the commit
//!   manager's recoverable state.

pub mod buffer;
pub mod catalog;
pub mod database;
pub mod gc;
pub mod metrics;
pub mod pn;
pub mod record;
pub mod recovery;
pub mod txlog;
pub mod txn;

pub use buffer::{BufferConfig, BufferStats};
pub use catalog::{Catalog, IndexDef, KeyExtractor, TableDef};
pub use database::{Database, TellConfig};
pub use metrics::PnMetrics;
pub use pn::ProcessingNode;
pub use record::VersionedRecord;
pub use txn::{Transaction, TxnOutcome};

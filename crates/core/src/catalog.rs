//! The catalog: table and index metadata, persisted in the shared store.
//!
//! The schema cell lives in the store like everything else (Fig 3 shows
//! "Schema" inside the distributed storage system), so every processing
//! node sees the same tables. Creation is synchronized with LL/SC on the
//! catalog cell — two PNs racing to create a table resolve like any other
//! write-write conflict.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;
use tell_common::codec::{Reader, Writer};
use tell_common::{Error, IndexId, Result, TableId};
use tell_store::{keys, StoreApi};

/// Extracts the indexed key bytes from an (opaque-to-core) row image.
/// Returns `None` when the row has no value for the indexed attribute.
/// Registered by the layer that defines the row format (SQL or a workload
/// like TPC-C).
pub type KeyExtractor = Arc<dyn Fn(&[u8]) -> Option<Bytes> + Send + Sync>;

/// An index on a table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexDef {
    /// Catalog-assigned id; also identifies the B+tree in the store.
    pub id: IndexId,
    /// Index name, unique per table.
    pub name: String,
    /// Unique index? (Primary-key indexes are unique.)
    pub unique: bool,
}

/// A table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableDef {
    /// Catalog-assigned id; part of every record key.
    pub id: TableId,
    /// Table name.
    pub name: String,
    /// Indexes; by convention the first one is the primary-key index.
    pub indexes: Vec<IndexDef>,
}

impl TableDef {
    /// The primary-key index.
    pub fn primary_index(&self) -> &IndexDef {
        &self.indexes[0]
    }

    /// Find an index by name.
    pub fn index(&self, name: &str) -> Option<&IndexDef> {
        self.indexes.iter().find(|i| i.name == name)
    }
}

const CATALOG_KEY: &str = "catalog";
const TABLE_ID_COUNTER: &str = "tbl/next";
const INDEX_ID_COUNTER: &str = "idx/next";

fn encode_catalog(tables: &[Arc<TableDef>]) -> Bytes {
    let mut out = Vec::new();
    out.put_u32(tables.len() as u32);
    for t in tables {
        out.put_u32(t.id.raw());
        out.put_string(&t.name);
        out.put_u32(t.indexes.len() as u32);
        for i in &t.indexes {
            out.put_u32(i.id.raw());
            out.put_string(&i.name);
            out.put_u8(if i.unique { 1 } else { 0 });
        }
    }
    Bytes::from(out)
}

fn decode_catalog(buf: &[u8]) -> Result<Vec<Arc<TableDef>>> {
    let mut r = Reader::new(buf);
    let n = r.u32()? as usize;
    let mut tables = Vec::with_capacity(n);
    for _ in 0..n {
        let id = TableId(r.u32()?);
        let name = r.string()?;
        let ni = r.u32()? as usize;
        let mut indexes = Vec::with_capacity(ni);
        for _ in 0..ni {
            indexes.push(IndexDef {
                id: IndexId(r.u32()?),
                name: r.string()?,
                unique: r.u8()? == 1,
            });
        }
        tables.push(Arc::new(TableDef { id, name, indexes }));
    }
    Ok(tables)
}

/// Shared, store-backed table metadata.
pub struct Catalog {
    by_name: RwLock<HashMap<String, Arc<TableDef>>>,
    by_id: RwLock<HashMap<TableId, Arc<TableDef>>>,
}

impl Catalog {
    /// Empty, not-yet-loaded catalog.
    pub fn new() -> Self {
        Catalog { by_name: RwLock::new(HashMap::new()), by_id: RwLock::new(HashMap::new()) }
    }

    /// (Re)load the catalog from the store.
    pub fn load<C: StoreApi>(&self, client: &C) -> Result<()> {
        let tables = match client.get(&keys::meta(CATALOG_KEY))? {
            Some((_, raw)) => decode_catalog(&raw)?,
            None => Vec::new(),
        };
        let mut by_name = self.by_name.write();
        let mut by_id = self.by_id.write();
        by_name.clear();
        by_id.clear();
        for t in tables {
            by_name.insert(t.name.clone(), Arc::clone(&t));
            by_id.insert(t.id, t);
        }
        Ok(())
    }

    /// Create a table with the given indexes (`(name, unique)`; the first
    /// entry is the primary-key index). Returns the new definition.
    pub fn create_table<C: StoreApi>(
        &self,
        client: &C,
        name: &str,
        indexes: &[(&str, bool)],
    ) -> Result<Arc<TableDef>> {
        if indexes.is_empty() {
            return Err(Error::invalid("a table needs at least a primary-key index"));
        }
        loop {
            let (token, mut tables) = match client.get(&keys::meta(CATALOG_KEY))? {
                Some((t, raw)) => (Some(t), decode_catalog(&raw)?),
                None => (None, Vec::new()),
            };
            if tables.iter().any(|t| t.name == name) {
                return Err(Error::invalid(format!("table '{name}' already exists")));
            }
            let table_id = TableId(client.increment(&keys::counter(TABLE_ID_COUNTER), 1)? as u32);
            let mut defs = Vec::with_capacity(indexes.len());
            for (iname, unique) in indexes {
                let id = IndexId(client.increment(&keys::counter(INDEX_ID_COUNTER), 1)? as u32);
                defs.push(IndexDef { id, name: (*iname).to_string(), unique: *unique });
            }
            let def = Arc::new(TableDef { id: table_id, name: name.to_string(), indexes: defs });
            tables.push(Arc::clone(&def));
            let encoded = encode_catalog(&tables);
            let key = keys::meta(CATALOG_KEY);
            let write = match token {
                Some(t) => client.store_conditional(&key, t, encoded),
                None => client.insert(&key, encoded),
            };
            match write {
                Ok(_) => {
                    self.by_name.write().insert(name.to_string(), Arc::clone(&def));
                    self.by_id.write().insert(table_id, Arc::clone(&def));
                    return Ok(def);
                }
                Err(Error::Conflict) => continue, // another PN changed the catalog
                Err(e) => return Err(e),
            }
        }
    }

    /// Add an index to an existing table (`CREATE INDEX`). The caller is
    /// responsible for creating the B+tree and backfilling it (see
    /// `Database::add_index`). Returns the updated definition.
    pub fn add_index<C: StoreApi>(
        &self,
        client: &C,
        table: &str,
        index_name: &str,
        unique: bool,
    ) -> Result<(Arc<TableDef>, IndexId)> {
        loop {
            let (token, mut tables) = match client.get(&keys::meta(CATALOG_KEY))? {
                Some((t, raw)) => (t, decode_catalog(&raw)?),
                None => return Err(Error::NotFound),
            };
            let pos = tables.iter().position(|t| t.name == table).ok_or(Error::NotFound)?;
            if tables[pos].index(index_name).is_some() {
                return Err(Error::invalid(format!(
                    "index '{index_name}' already exists on '{table}'"
                )));
            }
            let id = IndexId(client.increment(&keys::counter(INDEX_ID_COUNTER), 1)? as u32);
            let mut updated = (*tables[pos]).clone();
            updated.indexes.push(IndexDef { id, name: index_name.to_string(), unique });
            let updated = Arc::new(updated);
            tables[pos] = Arc::clone(&updated);
            match client.store_conditional(&keys::meta(CATALOG_KEY), token, encode_catalog(&tables))
            {
                Ok(_) => {
                    self.by_name.write().insert(updated.name.clone(), Arc::clone(&updated));
                    self.by_id.write().insert(updated.id, Arc::clone(&updated));
                    return Ok((updated, id));
                }
                Err(Error::Conflict) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Look up by name (after a miss, re-loads once — another PN may have
    /// created the table).
    pub fn table<C: StoreApi>(&self, client: &C, name: &str) -> Result<Arc<TableDef>> {
        if let Some(t) = self.by_name.read().get(name) {
            return Ok(Arc::clone(t));
        }
        self.load(client)?;
        self.by_name.read().get(name).cloned().ok_or(Error::NotFound)
    }

    /// Look up by id.
    pub fn table_by_id<C: StoreApi>(&self, client: &C, id: TableId) -> Result<Arc<TableDef>> {
        if let Some(t) = self.by_id.read().get(&id) {
            return Ok(Arc::clone(t));
        }
        self.load(client)?;
        self.by_id.read().get(&id).cloned().ok_or(Error::NotFound)
    }

    /// Every known table.
    pub fn tables(&self) -> Vec<Arc<TableDef>> {
        self.by_name.read().values().cloned().collect()
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tell_store::{StoreClient, StoreCluster, StoreConfig};

    fn client() -> StoreClient {
        StoreClient::unmetered(StoreCluster::new(StoreConfig::new(2)))
    }

    #[test]
    fn create_and_lookup() {
        let c = client();
        let cat = Catalog::new();
        let t = cat.create_table(&c, "customer", &[("pk", true), ("by_last_name", false)]).unwrap();
        assert_eq!(t.name, "customer");
        assert_eq!(t.indexes.len(), 2);
        assert!(t.primary_index().unique);
        assert!(!t.index("by_last_name").unwrap().unique);
        assert!(t.index("nope").is_none());
        let got = cat.table(&c, "customer").unwrap();
        assert_eq!(got.id, t.id);
        assert_eq!(cat.table_by_id(&c, t.id).unwrap().name, "customer");
    }

    #[test]
    fn duplicate_table_rejected() {
        let c = client();
        let cat = Catalog::new();
        cat.create_table(&c, "t", &[("pk", true)]).unwrap();
        assert!(matches!(
            cat.create_table(&c, "t", &[("pk", true)]),
            Err(Error::InvalidOperation(_))
        ));
    }

    #[test]
    fn table_needs_primary_index() {
        let c = client();
        let cat = Catalog::new();
        assert!(cat.create_table(&c, "bad", &[]).is_err());
    }

    #[test]
    fn second_catalog_instance_sees_tables() {
        let cluster = StoreCluster::new(StoreConfig::new(2));
        let c1 = StoreClient::unmetered(Arc::clone(&cluster));
        let cat1 = Catalog::new();
        let t = cat1.create_table(&c1, "orders", &[("pk", true)]).unwrap();
        // A different PN with its own catalog view.
        let c2 = StoreClient::unmetered(cluster);
        let cat2 = Catalog::new();
        let got = cat2.table(&c2, "orders").unwrap();
        assert_eq!(got.id, t.id);
        assert_eq!(cat2.table(&c2, "missing").unwrap_err(), Error::NotFound);
    }

    #[test]
    fn ids_are_distinct_across_tables_and_indexes() {
        let c = client();
        let cat = Catalog::new();
        let a = cat.create_table(&c, "a", &[("pk", true), ("i2", false)]).unwrap();
        let b = cat.create_table(&c, "b", &[("pk", true)]).unwrap();
        assert_ne!(a.id, b.id);
        let mut idx_ids: Vec<u32> =
            a.indexes.iter().chain(b.indexes.iter()).map(|i| i.id.raw()).collect();
        idx_ids.sort_unstable();
        idx_ids.dedup();
        assert_eq!(idx_ids.len(), 3);
    }
}

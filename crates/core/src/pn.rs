//! Processing nodes (§2.1, Fig 3).
//!
//! A [`ProcessingNode`] here is one *worker* with a synchronous processing
//! model ("a thread processes a transaction at a time", §6.1). The paper's
//! physical PNs run several such workers; workers of the same logical PN
//! share a [`PnGroup`] — the PN-wide record buffer and the `V_max` snapshot
//! the buffering strategies need.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use tell_commitmgr::SnapshotDescriptor;
use tell_common::{IndexId, IsolationLevel, PnId, Result, SimClock, TableId};
use tell_index::DistributedBTree;
use tell_netsim::NetMeter;
use tell_store::{StoreCluster, StoreEndpoint};

use tell_obs::{Counter, Phase, SpanKind, SpanStatus, SpanTimer};

use crate::buffer::{BufferConfig, RecordBuffer};
use crate::catalog::TableDef;
use crate::database::Database;
use crate::metrics::{PhaseSpan, PnMetrics};
use crate::txn::Transaction;

/// State shared by every worker of one logical processing node.
pub struct PnGroup {
    buffer: RecordBuffer,
    /// Snapshot of the most recently started transaction on this PN
    /// (`V_max` in §5.5.2).
    latest_snapshot: Mutex<SnapshotDescriptor>,
}

impl PnGroup {
    /// Fresh group with the given buffering strategy.
    pub fn new(buffer: BufferConfig) -> Self {
        PnGroup {
            buffer: RecordBuffer::new(buffer),
            latest_snapshot: Mutex::new(SnapshotDescriptor::bootstrap()),
        }
    }

    /// The PN-wide record buffer.
    pub fn buffer(&self) -> &RecordBuffer {
        &self.buffer
    }

    /// Current `V_max`.
    pub fn v_max(&self) -> SnapshotDescriptor {
        self.latest_snapshot.lock().clone()
    }

    pub(crate) fn note_started(&self, snapshot: &SnapshotDescriptor) {
        let mut latest = self.latest_snapshot.lock();
        if snapshot.base() >= latest.base() {
            *latest = snapshot.clone();
        }
    }
}

/// One worker of a processing node.
pub struct ProcessingNode<E: StoreEndpoint = Arc<StoreCluster>> {
    id: PnId,
    db: Arc<Database<E>>,
    client: E::Client,
    meter: NetMeter,
    group: Arc<PnGroup>,
    metrics: PnMetrics,
    trees: RefCell<HashMap<IndexId, Arc<DistributedBTree<E::Client>>>>,
    rid_ranges: RefCell<HashMap<TableId, (u64, u64)>>,
}

impl<E: StoreEndpoint> ProcessingNode<E> {
    pub(crate) fn new(
        id: PnId,
        db: Arc<Database<E>>,
        meter: NetMeter,
        group: Arc<PnGroup>,
    ) -> Self {
        let client = db.endpoint().client(meter.clone());
        ProcessingNode {
            id,
            db,
            client,
            meter,
            group,
            metrics: PnMetrics::new(),
            trees: RefCell::new(HashMap::new()),
            rid_ranges: RefCell::new(HashMap::new()),
        }
    }

    /// This worker's id.
    pub fn id(&self) -> PnId {
        self.id
    }

    /// The database this worker belongs to.
    pub fn database(&self) -> &Arc<Database<E>> {
        &self.db
    }

    /// The worker's metered storage client.
    pub fn client(&self) -> &E::Client {
        &self.client
    }

    /// The worker's network meter / virtual clock.
    pub fn meter(&self) -> &NetMeter {
        &self.meter
    }

    /// Virtual clock (microseconds of simulated time this worker has spent).
    pub fn clock(&self) -> &SimClock {
        self.meter.clock()
    }

    /// Shared PN state (buffer, V_max).
    pub fn group(&self) -> &Arc<PnGroup> {
        &self.group
    }

    /// Transaction metrics of this worker.
    pub fn metrics(&self) -> &PnMetrics {
        &self.metrics
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Result<Arc<TableDef>> {
        self.db.catalog().table(&self.client, name)
    }

    /// Begin a transaction (§4.3 step 1: contact the commit manager for a
    /// tid, a snapshot descriptor, and the lav). The worker stays pinned to
    /// one commit manager ("each node interacts with a dedicated
    /// authority", §4.1) so its own commits are always in its snapshots;
    /// fail-over to the next manager is automatic.
    pub fn begin(&self) -> Result<Transaction<'_, E>> {
        self.begin_at(self.db.config().isolation)
    }

    /// [`begin`](Self::begin) at an explicit isolation level, overriding
    /// the database-wide default for this one transaction. The level
    /// selects the snapshot the commit manager serves (stale-cached for
    /// NMSI) and the transaction's read rule and commit-time validation
    /// (per-read refresh at RC, read-set promotion at Serializable).
    pub fn begin_at(&self, level: IsolationLevel) -> Result<Transaction<'_, E>> {
        tell_obs::incr(Counter::TxnBegun);
        // Pin a fresh trace id to this thread: every RPC the transaction
        // issues stamps it into the frame, and slow-op lines carry it.
        tell_obs::set_current_trace(Some(tell_obs::next_trace_id()));
        // Phase timing is sampled: 1 transaction in PHASE_SAMPLE_EVERY (per
        // thread) runs the timers; the rest skip them entirely.
        let timed = tell_obs::sample_phases();
        // Span recording rides its own (sparser) sample, except when the
        // slow-op budget is armed — then every transaction records so an
        // over-budget trace keeps full phase detail.
        let spans = tell_obs::span::should_record();
        // Root span covering the whole transaction; the phase spans (and,
        // over the remote transport, RPC client spans) nest under it.
        let root =
            if spans { SpanTimer::start(SpanKind::Txn, self.clock().now_us()) } else { None };
        // Root profiler frame; the phase frames nest under it. Held by the
        // Transaction until completion so the sampler attributes the whole
        // lifetime, parked gaps included, to `txn`.
        let root_frame = tell_obs::FrameGuard::enter(tell_obs::FrameKind::Txn);
        let begin = PhaseSpan::start(self.clock(), timed, spans, SpanKind::TxnBegin);
        let started =
            self.db.commit_service().start_pinned(self.id.raw() as usize, level, &self.meter);
        let (start, cm) = match started {
            Ok(v) => v,
            Err(e) => {
                // The transaction never existed: discard the open spans
                // (dropping a timer records nothing), clear whatever its
                // RPC attempts left pending, and unpin the trace.
                drop(begin);
                drop(root);
                tell_obs::span::trace_finished(false);
                tell_obs::set_current_trace(None);
                return Err(e);
            }
        };
        let begin_us = begin.finish(self.clock(), Phase::Begin, "txn.begin", 0, SpanStatus::Ok);
        self.group.note_started(&start.snapshot);
        Ok(Transaction::new(self, start, cm, level, timed, spans, root, root_frame, begin_us))
    }

    /// Run `body` inside a transaction, retrying on optimistic-concurrency
    /// conflicts up to `max_attempts` times. This is the idiom OLTP drivers
    /// use: SI aborts are expected and retried.
    pub fn run<T>(
        &self,
        max_attempts: usize,
        mut body: impl FnMut(&mut Transaction<'_, E>) -> Result<T>,
    ) -> Result<T> {
        let mut last = tell_common::Error::Conflict;
        for _ in 0..max_attempts {
            let mut txn = self.begin()?;
            match body(&mut txn) {
                Ok(value) => match txn.commit() {
                    Ok(()) => return Ok(value),
                    Err(e) if e.is_retryable() => {
                        last = e;
                        tell_obs::incr(Counter::TxnRetries);
                        // Let competitors finish their commits before we
                        // re-read; reduces optimistic-CC starvation when
                        // many workers share few cores.
                        std::thread::yield_now();
                        continue;
                    }
                    Err(e) => return Err(e),
                },
                Err(e) => {
                    if txn.is_running() {
                        txn.abort()?;
                    }
                    if e.is_retryable() {
                        last = e;
                        tell_obs::incr(Counter::TxnRetries);
                        std::thread::yield_now();
                        continue;
                    }
                    return Err(e);
                }
            }
        }
        Err(last)
    }

    /// The worker's handle to a B+tree (opened lazily, inner-node cache
    /// local to this worker per §5.3.1).
    pub fn tree(&self, index: IndexId) -> Result<Arc<DistributedBTree<E::Client>>> {
        if let Some(t) = self.trees.borrow().get(&index) {
            return Ok(Arc::clone(t));
        }
        let tree = Arc::new(DistributedBTree::open(
            self.client.clone(),
            index,
            self.db.config().btree.clone(),
        )?);
        self.trees.borrow_mut().insert(index, Arc::clone(&tree));
        Ok(tree)
    }

    /// Allocate a fresh record id for `table` from the worker's range
    /// (ranges come from the store's atomic counter).
    pub fn alloc_rid(&self, table: TableId) -> Result<u64> {
        let mut ranges = self.rid_ranges.borrow_mut();
        let range = ranges.entry(table).or_insert((1, 0));
        if range.0 > range.1 {
            *range = self.db.alloc_rid_range(&self.client, table)?;
        }
        let rid = range.0;
        range.0 += 1;
        Ok(rid)
    }
}

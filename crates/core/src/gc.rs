//! Lazy background garbage collection (§5.4).
//!
//! The eager strategy runs inline: record GC as part of every update (see
//! [`crate::txn`]) and index-entry GC during index reads. This module is
//! the lazy complement, "a background task that runs in regular intervals",
//! useful for rarely accessed records: it sweeps every record of every
//! table, drops versions below the lowest active version number, removes
//! records that are nothing but a globally visible tombstone, purges the
//! index entries that die with them, and truncates the transaction log.

use std::collections::HashSet;

use bytes::Bytes;
use tell_common::{Error, Result};
use tell_index::DistributedBTree;
use tell_obs::{slowlog, Counter, Phase, SpanKind, SpanStatus, SpanTimer, TraceGuard};
use tell_store::{keys, StoreApi, StoreEndpoint};

use crate::database::Database;
use crate::record::VersionedRecord;
use crate::txlog;

/// What a sweep accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Records examined.
    pub records_scanned: usize,
    /// Versions dropped.
    pub versions_removed: usize,
    /// Whole records (lone tombstones) deleted.
    pub records_deleted: usize,
    /// Index entries removed.
    pub index_entries_removed: usize,
    /// Transaction-log entries truncated.
    pub log_entries_removed: usize,
}

/// Run one full GC sweep. Safe to run concurrently with transactions:
/// every mutation is a conditional write, and losing a race simply defers
/// the cleanup to the next sweep.
pub fn run_gc<E: StoreEndpoint>(db: &Database<E>) -> Result<GcReport> {
    let sweep_start = std::time::Instant::now();
    // A sweep is its own trace: the conditional writes it issues carry the
    // id, and the pass itself is one span (count = versions reclaimed).
    let _trace = TraceGuard::enter(tell_obs::next_trace_id());
    let span = SpanTimer::start(SpanKind::GcPass, 0.0);
    let _frame = tell_obs::FrameGuard::enter(tell_obs::FrameKind::GcPass);
    let client = db.admin_client();
    let lav = db.commit_service().current_lav()?;
    let mut report = GcReport::default();

    for table in db.catalog().tables() {
        // Open this sweep's tree handles + extractors once per table.
        let mut trees = Vec::new();
        for idx in &table.indexes {
            let Some(ex) = db.extractor(idx.id) else { continue };
            let tree =
                DistributedBTree::open(db.admin_client(), idx.id, db.config().btree.clone())?;
            trees.push((tree, ex));
        }
        let rows = client.scan_prefix(&keys::record_prefix(table.id), usize::MAX)?;
        for (key, token, raw) in rows {
            let Some((_, rid)) = keys::parse_record(&key) else { continue };
            report.records_scanned += 1;
            let mut rec = VersionedRecord::decode(&raw)?;
            let keys_before = index_keys(&rec, &trees);
            let dropped = rec.gc(lav);
            if rec.is_fully_dead(lav) {
                match client.delete_conditional(&key, token) {
                    Ok(()) => {
                        report.records_deleted += 1;
                        report.versions_removed += dropped + rec.version_count();
                        // Every index entry of this record is now dead.
                        for (tree_idx, k) in &keys_before {
                            if trees[*tree_idx].0.remove(k, rid.raw())? {
                                report.index_entries_removed += 1;
                            }
                        }
                    }
                    Err(Error::Conflict) => {} // resurrected concurrently
                    Err(e) => return Err(e),
                }
                continue;
            }
            if dropped == 0 {
                continue;
            }
            match client.store_conditional(&key, token, rec.encode()) {
                Ok(_) => {
                    report.versions_removed += dropped;
                    // Index entries whose key no longer appears in any
                    // surviving version are dead (V_a \ G = ∅, §5.4).
                    let keys_after = index_keys(&rec, &trees);
                    for entry @ (tree_idx, k) in &keys_before {
                        if !keys_after.contains(entry) && trees[*tree_idx].0.remove(k, rid.raw())? {
                            report.index_entries_removed += 1;
                        }
                    }
                }
                Err(Error::Conflict) => {} // writer raced us; next sweep
                Err(e) => return Err(e),
            }
        }
    }

    report.log_entries_removed = txlog::truncate(&client, lav)?;

    tell_obs::incr(Counter::GcCycles);
    tell_obs::add(Counter::GcVersionsReclaimed, report.versions_removed as u64);
    tell_obs::add(Counter::GcRecordsDeleted, report.records_deleted as u64);
    tell_obs::add(Counter::GcIndexEntriesRemoved, report.index_entries_removed as u64);
    tell_obs::add(Counter::GcLogEntriesTruncated, report.log_entries_removed as u64);
    let elapsed_us = sweep_start.elapsed().as_secs_f64() * 1e6;
    tell_obs::observe(Phase::GcCycle, elapsed_us);
    slowlog::check("gc.cycle", elapsed_us);
    if let Some(span) = span {
        span.finish(0.0, report.versions_removed as u32, SpanStatus::Ok);
    }
    // Sweeps are rare: always promote their spans to the ring rather than
    // tail-sampling them.
    tell_obs::span::flush_pending_to_ring();
    Ok(report)
}

type TreeSlot<C> = (DistributedBTree<C>, crate::catalog::KeyExtractor);

fn index_keys<C: StoreApi>(
    rec: &VersionedRecord,
    trees: &[TreeSlot<C>],
) -> HashSet<(usize, Bytes)> {
    let mut out = HashSet::new();
    for (i, (_, ex)) in trees.iter().enumerate() {
        for v in rec.versions() {
            if let Some(p) = &v.payload {
                if let Some(k) = ex(p) {
                    out.insert((i, k));
                }
            }
        }
    }
    out
}

//! Transactions: distributed snapshot isolation (§4) and data access (§5).
//!
//! The life-cycle follows §4.3 exactly:
//!
//! 1. **Begin** — the commit manager supplies tid, snapshot and lav.
//! 2. **Running** — reads fetch the record (all versions in one request,
//!    §5.1), extract the snapshot-visible version and cache it in the
//!    transaction buffer; updates are buffered on the PN.
//! 3. **Try-Commit** — a log entry with the write-set is appended to the
//!    transaction log, then every buffered update is applied with one
//!    conditional write per record (batched into a single exchange). A
//!    failed store-conditional *is* the write-write conflict check.
//! 4. **Commit** — indexes are altered to reflect the updates, the commit
//!    flag is set in the log, the commit manager is notified. **Abort** —
//!    applied updates are rolled back, then the commit manager is notified.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use bytes::Bytes;
use tell_commitmgr::{CommitParticipant, SnapshotDescriptor};
use tell_common::{Error, IsolationLevel, Result, Rid, TableId, TxnId};
use tell_obs::{slowlog, Phase, SpanKind, SpanStatus, SpanTimer};
use tell_store::cell::Token;
use tell_store::{keys, Expect, Predicate, StoreApi, StoreCluster, StoreEndpoint, WriteOp};

use crate::buffer::BufferConfig;
use crate::catalog::TableDef;
use crate::metrics::PhaseSpan;
use crate::pn::ProcessingNode;
use crate::record::VersionedRecord;
use crate::txlog::{self, LogEntry};

/// PN-side CPU cost charged per data operation, in virtual µs. Together
/// with the network profile this fixes the CPU-vs-network balance that the
/// InfiniBand/Ethernet experiment (Fig 10) depends on.
const CPU_OP_US: f64 = 3.0;

/// How a transaction ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnOutcome {
    /// All updates applied and visible.
    Committed,
    /// No effect on the database.
    Aborted,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum IntentKind {
    Insert,
    Update,
    Delete,
}

struct Intent {
    kind: IntentKind,
    /// Row image after the transaction (`None` = delete tombstone).
    new_row: Option<Bytes>,
    /// Snapshot-visible row image before the transaction (`None` for
    /// inserts). Drives index maintenance: only key *changes* touch trees.
    old_row: Option<Bytes>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    Running,
    Committed,
    Aborted,
}

/// An open transaction on one processing node.
pub struct Transaction<'p, E: StoreEndpoint = Arc<StoreCluster>> {
    pn: &'p ProcessingNode<E>,
    tid: TxnId,
    snapshot: SnapshotDescriptor,
    lav: u64,
    cm: Arc<dyn CommitParticipant>,
    /// The isolation level this transaction runs at. Selects the read
    /// rule (RC refreshes the snapshot before each data access) and the
    /// commit-time validation (Serializable promotes the read set into
    /// the conditional-write batch).
    level: IsolationLevel,
    state: State,
    start_us: f64,
    /// Whether this transaction runs phase timers (1 in
    /// [`tell_obs::PHASE_SAMPLE_EVERY`] per thread; see
    /// [`tell_obs::sample_phases`]).
    timed: bool,
    /// Whether this transaction records its span tree (1 in
    /// [`tell_obs::span::SPAN_SAMPLE_EVERY`] per thread, or every
    /// transaction while the slow-op budget is armed; see
    /// [`tell_obs::span::should_record`]).
    spans: bool,
    /// Root span covering the whole transaction; phase spans nest under
    /// it. `None` when spans are off for this transaction or the registry
    /// is disabled.
    root_span: Option<SpanTimer>,
    /// Root profiler frame (`txn`), pushed at begin and popped at
    /// completion. Unlike the sampled span, every transaction carries it.
    root_frame: Option<tell_obs::FrameGuard>,
    /// Trace id minted at begin. Captured here (not read back from the
    /// thread-local at close) so a conflict abort attributes its
    /// synthesized root span correctly even when transactions interleave
    /// on one thread.
    trace: Option<u64>,
    /// Per-phase duration accumulator for the closing slow-op line.
    phase_us: Vec<(&'static str, f64)>,
    /// Transaction buffer (§5.5.1): every record read once is reused for
    /// the transaction's lifetime. `None` records known missing.
    reads: HashMap<(TableId, Rid), Option<(Token, VersionedRecord)>>,
    /// Buffered updates, applied at commit (§4.1: "Updates are buffered and
    /// applied to the shared store during commit").
    writes: BTreeMap<(TableId, Rid), Intent>,
    /// Table definitions touched by writes (for index maintenance).
    tables: HashMap<TableId, Arc<TableDef>>,
}

impl<'p, E: StoreEndpoint> Transaction<'p, E> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        pn: &'p ProcessingNode<E>,
        start: tell_commitmgr::TxnStart,
        cm: Arc<dyn CommitParticipant>,
        level: IsolationLevel,
        timed: bool,
        spans: bool,
        root_span: Option<SpanTimer>,
        root_frame: tell_obs::FrameGuard,
        begin_us: Option<f64>,
    ) -> Self {
        let mut phase_us = Vec::new();
        if let Some(us) = begin_us {
            phase_us.push(("txn.begin", us));
        }
        Transaction {
            pn,
            tid: start.tid,
            snapshot: start.snapshot,
            timed,
            spans,
            root_span,
            root_frame: Some(root_frame),
            trace: tell_obs::current_trace(),
            phase_us,
            lav: start.lav,
            cm,
            level,
            state: State::Running,
            start_us: pn.clock().now_us(),
            reads: HashMap::new(),
            writes: BTreeMap::new(),
            tables: HashMap::new(),
        }
    }

    /// This transaction's id (= the version number it writes).
    pub fn tid(&self) -> TxnId {
        self.tid
    }

    /// The worker running this transaction (table lookups, metrics).
    pub fn processing_node(&self) -> &ProcessingNode<E> {
        self.pn
    }

    /// The snapshot the transaction reads with.
    pub fn snapshot(&self) -> &SnapshotDescriptor {
        &self.snapshot
    }

    /// The isolation level this transaction runs at.
    pub fn isolation(&self) -> IsolationLevel {
        self.level
    }

    /// Lowest active version number received at begin (GC horizon).
    pub fn lav(&self) -> u64 {
        self.lav
    }

    /// Is the transaction still running?
    pub fn is_running(&self) -> bool {
        self.state == State::Running
    }

    fn ensure_running(&self) -> Result<()> {
        match self.state {
            State::Running => Ok(()),
            State::Committed => Err(Error::invalid("transaction already committed")),
            State::Aborted => Err(Error::invalid("transaction already aborted")),
        }
    }

    fn note_table(&mut self, table: &Arc<TableDef>) {
        self.tables.entry(table.id).or_insert_with(|| Arc::clone(table));
    }

    /// Open a phase span (span-sampled transactions) plus a phase timer
    /// (histogram-sampled transactions).
    fn phase_start(&self, kind: SpanKind) -> PhaseSpan {
        PhaseSpan::start(self.pn.clock(), self.timed, self.spans, kind)
    }

    /// Close a phase span/timer and fold its duration into the per-phase
    /// breakdown the closing slow-op line reports.
    fn phase_finish(
        &mut self,
        phase_span: PhaseSpan,
        phase: Phase,
        op: &'static str,
        count: u32,
        status: SpanStatus,
    ) {
        if let Some(us) = phase_span.finish(self.pn.clock(), phase, op, count, status) {
            if let Some(slot) = self.phase_us.iter_mut().find(|(name, _)| *name == op) {
                slot.1 += us;
            } else {
                self.phase_us.push((op, us));
            }
        }
    }

    // -----------------------------------------------------------------
    // Reads
    // -----------------------------------------------------------------

    /// Read-committed read rule: adopt the freshest snapshot the commit
    /// manager serves before each data access, so every read observes the
    /// latest committed state (non-repeatable reads are admitted by
    /// design). The snapshot only ever moves forward — a refresh that is
    /// not a superset of the current one (possible across manager
    /// fail-over) is ignored, so a version once visible never disappears.
    fn refresh_rc_snapshot(&mut self) -> Result<()> {
        if self.level != IsolationLevel::ReadCommitted {
            return Ok(());
        }
        if let Some(fresh) = self.cm.refresh_snapshot(self.pn.meter())? {
            if self.snapshot.is_subset_of(&fresh) {
                self.snapshot = fresh;
            }
        }
        Ok(())
    }

    /// Read the snapshot-visible row of `rid`, observing the transaction's
    /// own buffered writes first.
    pub fn get(&mut self, table: &Arc<TableDef>, rid: Rid) -> Result<Option<Bytes>> {
        self.ensure_running()?;
        self.pn.meter().charge_cpu(CPU_OP_US);
        if let Some(intent) = self.writes.get(&(table.id, rid)) {
            return Ok(intent.new_row.clone());
        }
        self.refresh_rc_snapshot()?;
        let rec = self.read_record(table.id, rid)?;
        Ok(rec.and_then(|(_, r)| r.visible_payload(&self.snapshot).cloned()))
    }

    /// Load the full versioned record through the transaction buffer and
    /// the PN's buffering strategy.
    fn read_record(
        &mut self,
        table: TableId,
        rid: Rid,
    ) -> Result<Option<(Token, VersionedRecord)>> {
        if let Some(cached) = self.reads.get(&(table, rid)) {
            return Ok(cached.clone());
        }
        let span = self.phase_start(SpanKind::TxnRead);
        let got = self.pn.group().buffer().read_record(
            self.pn.client(),
            table,
            rid,
            &self.snapshot,
            &self.pn.group().v_max(),
        )?;
        self.phase_finish(span, Phase::ReadSetFetch, "txn.read", 1, SpanStatus::Ok);
        self.reads.insert((table, rid), got.clone());
        Ok(got)
    }

    /// Batched record load (§5.1 batching: one exchange for many records).
    /// Only the transaction-buffer strategy batches; the shared buffers
    /// resolve records one by one against their validity metadata.
    fn multi_read_records(
        &mut self,
        table: TableId,
        rids: &[u64],
    ) -> Result<Vec<Option<(Token, VersionedRecord)>>> {
        if matches!(self.pn.group().buffer().config(), BufferConfig::TransactionOnly)
            && self.pn.database().config().batching
        {
            let missing: Vec<u64> = rids
                .iter()
                .copied()
                .filter(|r| !self.reads.contains_key(&(table, Rid(*r))))
                .collect();
            if !missing.is_empty() {
                let span = self.phase_start(SpanKind::TxnRead);
                let keys: Vec<_> = missing.iter().map(|r| keys::record(table, Rid(*r))).collect();
                let fetched = self.pn.client().multi_get_async(&keys).wait()?;
                self.phase_finish(
                    span,
                    Phase::ReadSetFetch,
                    "txn.read",
                    missing.len() as u32,
                    SpanStatus::Ok,
                );
                for (rid, cell) in missing.into_iter().zip(fetched) {
                    let decoded = match cell {
                        Some((token, raw)) => Some((token, VersionedRecord::decode(&raw)?)),
                        None => None,
                    };
                    self.reads.insert((table, Rid(rid)), decoded);
                }
            }
            Ok(rids.iter().map(|r| self.reads.get(&(table, Rid(*r))).cloned().flatten()).collect())
        } else {
            rids.iter().map(|r| self.read_record(table, Rid(*r))).collect()
        }
    }

    /// Look up records by an indexed key. Because indexes are
    /// version-unaware (§5.3.2), hits are verified against the visible
    /// version; stale entries found along the way are garbage-collected
    /// (§5.4: "Index GC is performed during read operations").
    pub fn index_lookup(
        &mut self,
        table: &Arc<TableDef>,
        index: tell_common::IndexId,
        key: &Bytes,
    ) -> Result<Vec<(Rid, Bytes)>> {
        self.ensure_running()?;
        self.pn.meter().charge_cpu(CPU_OP_US);
        self.refresh_rc_snapshot()?;
        let tree = self.pn.tree(index)?;
        let ex =
            self.pn.database().extractor(index).ok_or_else(|| {
                Error::invalid(format!("no extractor registered for index {index}"))
            })?;
        let rids = tree.lookup(key)?;
        let records = self.multi_read_records(table.id, &rids)?;
        let mut out: Vec<(Rid, Bytes)> = Vec::new();
        for (rid, rec) in rids.iter().zip(records) {
            if self.writes.contains_key(&(table.id, Rid(*rid))) {
                continue; // own write supersedes; merged below
            }
            match rec {
                Some((_, record)) => match record.visible_payload(&self.snapshot) {
                    Some(row) if ex(row).as_ref() == Some(key) => {
                        out.push((Rid(*rid), row.clone()));
                    }
                    _ => {
                        // False positive. If *no* stored version still
                        // carries this key, the entry is dead: remove it.
                        let alive = record.versions().iter().any(|v| {
                            v.payload.as_deref().and_then(|p| ex(p)).as_ref() == Some(key)
                        });
                        if !alive {
                            let _ = tree.remove(key, *rid);
                        }
                    }
                },
                None => {
                    // Record fully gone: dead entry.
                    let _ = tree.remove(key, *rid);
                }
            }
        }
        // Merge the transaction's own writes.
        for ((t, rid), intent) in &self.writes {
            if *t != table.id {
                continue;
            }
            if let Some(row) = &intent.new_row {
                if ex(row).as_ref() == Some(key) {
                    out.push((*rid, row.clone()));
                }
            }
        }
        out.sort_by_key(|(rid, _)| *rid);
        out.dedup_by_key(|(rid, _)| *rid);
        Ok(out)
    }

    /// Range scan over an index: entries with `start <= key < end`,
    /// verified and merged with own writes, ordered by `(key, rid)`.
    pub fn index_range(
        &mut self,
        table: &Arc<TableDef>,
        index: tell_common::IndexId,
        start: &Bytes,
        end: Option<&Bytes>,
        limit: usize,
    ) -> Result<Vec<(Bytes, Rid, Bytes)>> {
        self.ensure_running()?;
        self.pn.meter().charge_cpu(CPU_OP_US);
        self.refresh_rc_snapshot()?;
        let tree = self.pn.tree(index)?;
        let ex =
            self.pn.database().extractor(index).ok_or_else(|| {
                Error::invalid(format!("no extractor registered for index {index}"))
            })?;
        let entries = tree.range(start, end, limit.saturating_mul(2).max(limit))?;
        let rids: Vec<u64> = entries.iter().map(|(_, r)| *r).collect();
        let records = self.multi_read_records(table.id, &rids)?;
        let mut out: Vec<(Bytes, Rid, Bytes)> = Vec::new();
        for ((ekey, rid), rec) in entries.iter().zip(records) {
            if self.writes.contains_key(&(table.id, Rid(*rid))) {
                continue;
            }
            if let Some((_, record)) = rec {
                if let Some(row) = record.visible_payload(&self.snapshot) {
                    if ex(row).as_ref() == Some(ekey) {
                        out.push((ekey.clone(), Rid(*rid), row.clone()));
                    }
                }
            }
        }
        for ((t, rid), intent) in &self.writes {
            if *t != table.id {
                continue;
            }
            if let Some(row) = &intent.new_row {
                if let Some(k) = ex(row) {
                    let in_range = k.as_ref() >= start.as_ref()
                        && end.map(|e| k.as_ref() < e.as_ref()).unwrap_or(true);
                    if in_range {
                        out.push((k, *rid, row.clone()));
                    }
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        out.truncate(limit);
        Ok(out)
    }

    /// Full-table scan of visible rows ("data is shipped to the query",
    /// §2.1). Expensive by design; OLAP-style access.
    pub fn scan_table(&mut self, table: &Arc<TableDef>, limit: usize) -> Result<Vec<(Rid, Bytes)>> {
        self.ensure_running()?;
        self.refresh_rc_snapshot()?;
        let prefix = keys::record_prefix(table.id);
        let rows = self.pn.client().scan_prefix(&prefix, usize::MAX)?;
        self.pn.meter().charge_cpu(rows.len() as f64 * 0.2);
        self.collect_scan(table, rows, limit, |_, _| true)
    }

    /// Table scan filtered by an arbitrary Rust closure. A closure cannot
    /// be serialized into a frame, so every record is shipped to the PN
    /// (like [`Transaction::scan_table`]) and filtered there; when the
    /// filter is expressible as a [`Predicate`], prefer
    /// [`Transaction::scan_table_pushdown_filtered`], which evaluates it in
    /// the storage layer.
    pub fn scan_table_pushdown(
        &mut self,
        table: &Arc<TableDef>,
        limit: usize,
        pred: impl Fn(&[u8]) -> bool,
    ) -> Result<Vec<(Rid, Bytes)>> {
        self.ensure_running()?;
        self.refresh_rc_snapshot()?;
        let prefix = keys::record_prefix(table.id);
        let rows = self.pn.client().scan_prefix(&prefix, usize::MAX)?;
        self.pn.meter().charge_cpu(rows.len() as f64 * 0.2);
        self.collect_scan(table, rows, limit, |_, row| pred(row))
    }

    /// Table scan with the row filter pushed down into the storage layer
    /// (§5.2): `filter` is written against row bytes, lifted to a sound
    /// predicate over encoded records
    /// ([`VersionedRecord::lift_row_predicate`]), and evaluated in the
    /// storage node — only candidate records cross the network. Rows are
    /// re-verified against the transaction's snapshot on the PN, so the
    /// result is exactly the visible rows matching `filter`.
    pub fn scan_table_pushdown_filtered(
        &mut self,
        table: &Arc<TableDef>,
        limit: usize,
        filter: &Predicate,
    ) -> Result<Vec<(Rid, Bytes)>> {
        self.ensure_running()?;
        self.refresh_rc_snapshot()?;
        let prefix = keys::record_prefix(table.id);
        let lifted = VersionedRecord::lift_row_predicate(filter);
        let rows = self.pn.client().scan_prefix_pushdown(&prefix, usize::MAX, &lifted)?;
        self.pn.meter().charge_cpu(rows.len() as f64 * 0.2);
        self.collect_scan(table, rows, limit, |key, row| filter.matches(key, row))
    }

    fn collect_scan(
        &mut self,
        table: &Arc<TableDef>,
        rows: Vec<(Bytes, Token, Bytes)>,
        limit: usize,
        pred: impl Fn(&[u8], &[u8]) -> bool,
    ) -> Result<Vec<(Rid, Bytes)>> {
        let mut out = Vec::new();
        for (key, _, raw) in rows {
            let Some((_, rid)) = keys::parse_record(&key) else { continue };
            if self.writes.contains_key(&(table.id, rid)) {
                continue;
            }
            let rec = VersionedRecord::decode(&raw)?;
            if let Some(row) = rec.visible_payload(&self.snapshot) {
                if pred(key.as_ref(), row) {
                    out.push((rid, row.clone()));
                }
            }
        }
        for ((t, rid), intent) in &self.writes {
            if *t != table.id {
                continue;
            }
            if let Some(row) = &intent.new_row {
                if pred(keys::record(*t, *rid).as_ref(), row) {
                    out.push((*rid, row.clone()));
                }
            }
        }
        out.sort_by_key(|(rid, _)| *rid);
        out.truncate(limit);
        Ok(out)
    }

    // -----------------------------------------------------------------
    // Writes (buffered until commit)
    // -----------------------------------------------------------------

    /// Insert a new row; allocates and returns its record id. Unique
    /// indexes are checked against the snapshot (SI gives no phantom
    /// protection, so two concurrent inserts of the same key can both
    /// pass — exactly the write-skew-family anomaly §4.1 acknowledges).
    pub fn insert(&mut self, table: &Arc<TableDef>, row: Bytes) -> Result<Rid> {
        self.ensure_running()?;
        self.pn.meter().charge_cpu(CPU_OP_US);
        for idx in &table.indexes {
            if !idx.unique {
                continue;
            }
            if let Some(ex) = self.pn.database().extractor(idx.id) {
                if let Some(key) = ex(&row) {
                    if !self.index_lookup(table, idx.id, &key)?.is_empty() {
                        return Err(Error::invalid(format!(
                            "duplicate key on unique index '{}'",
                            idx.name
                        )));
                    }
                }
            }
        }
        let rid = Rid(self.pn.alloc_rid(table.id)?);
        self.note_table(table);
        self.writes.insert(
            (table.id, rid),
            Intent { kind: IntentKind::Insert, new_row: Some(row), old_row: None },
        );
        Ok(rid)
    }

    /// Replace the row of `rid`. The record is read first (§5.1); repeated
    /// updates modify the buffered version in place.
    pub fn update(&mut self, table: &Arc<TableDef>, rid: Rid, new_row: Bytes) -> Result<()> {
        self.ensure_running()?;
        self.pn.meter().charge_cpu(CPU_OP_US);
        if let Some(intent) = self.writes.get_mut(&(table.id, rid)) {
            if intent.kind == IntentKind::Delete {
                return Err(Error::invalid("cannot update a row deleted in this transaction"));
            }
            intent.new_row = Some(new_row);
            return Ok(());
        }
        let rec = self.read_record(table.id, rid)?;
        self.check_no_foreign_versions(&rec)?;
        let old = rec
            .as_ref()
            .and_then(|(_, r)| r.visible_payload(&self.snapshot).cloned())
            .ok_or(Error::NotFound)?;
        self.note_table(table);
        self.writes.insert(
            (table.id, rid),
            Intent { kind: IntentKind::Update, new_row: Some(new_row), old_row: Some(old) },
        );
        Ok(())
    }

    /// First conflict scenario of §4.1: "T2 writes the changed item to the
    /// shared store before it is read by T1. In that case, T1 will notice
    /// the conflict (as the item has a newer version)." A record we intend
    /// to write must not carry
    ///
    /// * any version outside our snapshot — written by a transaction that
    ///   committed (or is committing) after we started; first-committer-
    ///   wins says we lose — nor
    /// * any version **numbered above our own tid**. Tids are handed out in
    ///   ranges (§4.2), so a transaction can begin *after* a higher-
    ///   numbered one committed; writing below an existing version would
    ///   corrupt the `v := max(V ∩ V')` read rule (version order must equal
    ///   commit order per record). This is precisely the "higher abort
    ///   rate" cost of continuous tid ranges the paper concedes.
    fn check_no_foreign_versions(&self, rec: &Option<(Token, VersionedRecord)>) -> Result<()> {
        if let Some((_, record)) = rec {
            if record.version_numbers().any(|v| v >= self.tid.raw() || !self.snapshot.contains(v)) {
                return Err(Error::Conflict);
            }
        }
        Ok(())
    }

    /// Delete the row of `rid` (writes a tombstone version at commit).
    pub fn delete(&mut self, table: &Arc<TableDef>, rid: Rid) -> Result<()> {
        self.ensure_running()?;
        self.pn.meter().charge_cpu(CPU_OP_US);
        if let Some(intent) = self.writes.get(&(table.id, rid)) {
            if intent.kind == IntentKind::Insert {
                // Deleting an own insert: the row never existed.
                self.writes.remove(&(table.id, rid));
                return Ok(());
            }
            if intent.kind == IntentKind::Delete {
                return Err(Error::NotFound);
            }
        }
        let rec = self.read_record(table.id, rid)?;
        self.check_no_foreign_versions(&rec)?;
        let old = rec
            .as_ref()
            .and_then(|(_, r)| r.visible_payload(&self.snapshot).cloned())
            .ok_or(Error::NotFound)?;
        self.note_table(table);
        self.writes.insert(
            (table.id, rid),
            Intent { kind: IntentKind::Delete, new_row: None, old_row: Some(old) },
        );
        Ok(())
    }

    // -----------------------------------------------------------------
    // Completion
    // -----------------------------------------------------------------

    /// Try-commit then commit (§4.3). On a write-write conflict every
    /// applied update is rolled back and `Err(Conflict)` is returned.
    pub fn commit(&mut self) -> Result<()> {
        self.ensure_running()?;
        // Serializable promotes the read set into the conditional-write
        // batch (write-snapshot validation): every record read but not
        // written is re-written *unchanged* under its observed token, so
        // this transaction and any concurrent writer of a read record
        // race first-committer-wins — the rw-antidependency that would
        // admit write skew under SI becomes a ww conflict. Read-only
        // transactions promote too: under multi-manager gossip skew a
        // read-only snapshot can observe a fracture (seeing a later
        // commit but not an earlier one) that closes a serialization
        // cycle through this transaction.
        let promoted: Vec<((TableId, Rid), Token, VersionedRecord)> =
            if self.level == IsolationLevel::Serializable {
                let mut promo: Vec<_> = self
                    .reads
                    .iter()
                    .filter(|(key, _)| !self.writes.contains_key(key))
                    .filter_map(|(key, v)| v.as_ref().map(|(t, r)| (*key, *t, r.clone())))
                    .collect();
                promo.sort_unstable_by_key(|(key, _, _)| *key);
                promo
            } else {
                Vec::new()
            };
        if self.writes.is_empty() && promoted.is_empty() {
            self.state = State::Committed;
            let span = self.phase_start(SpanKind::TxnCmComplete);
            self.cm.set_committed(self.tid, self.pn.meter())?;
            self.phase_finish(span, Phase::CmComplete, "txn.cm_complete", 0, SpanStatus::Ok);
            self.pn.metrics().record_commit(self.pn.clock().now_us() - self.start_us);
            self.note_finished(SpanStatus::Ok, false);
            return Ok(());
        }
        self.pn.meter().charge_cpu((self.writes.len() + promoted.len()) as f64 * CPU_OP_US);

        // Try-Commit: log entry first (required for recovery, §4.4.1).
        let validate_span = self.phase_start(SpanKind::TxnValidate);
        // Write-snapshot check over the promoted reads: a version we did
        // not observe means a writer committed there after our snapshot
        // was taken — first-committer-wins says we lose. Detected here
        // (before the log append) the abort costs no store round-trip.
        // Unlike the write-path check this accepts versions numbered
        // above our tid that are *in* our snapshot: promotion adds no
        // version, so record version order is not at stake.
        if promoted
            .iter()
            .any(|(_, _, rec)| rec.version_numbers().any(|v| !self.snapshot.contains(v)))
        {
            self.phase_finish(
                validate_span,
                Phase::Validate,
                "txn.validate",
                0,
                SpanStatus::Conflict,
            );
            self.state = State::Aborted;
            let span = self.phase_start(SpanKind::TxnCmComplete);
            self.cm.set_aborted(self.tid, self.pn.meter())?;
            self.phase_finish(span, Phase::CmComplete, "txn.cm_complete", 0, SpanStatus::Ok);
            self.pn.metrics().record_abort(self.pn.clock().now_us() - self.start_us, true);
            self.note_finished(SpanStatus::Conflict, true);
            return Err(Error::Conflict);
        }
        let mut entry = LogEntry {
            tid: self.tid,
            pn: self.pn.id(),
            timestamp_us: self.pn.clock().now_us() as u64,
            write_set: self.writes.keys().copied().collect(),
            committed: false,
        };
        txlog::append(self.pn.client(), &entry)?;

        // Apply every buffered update with one conditional write per
        // record, batched into a single exchange.
        let mut ops = Vec::with_capacity(self.writes.len());
        let mut applied_records: Vec<((TableId, Rid), VersionedRecord)> =
            Vec::with_capacity(self.writes.len());
        for ((table, rid), intent) in &self.writes {
            let key = keys::record(*table, *rid);
            match intent.kind {
                IntentKind::Insert => {
                    let rec = VersionedRecord::with_initial(
                        self.tid,
                        intent.new_row.clone().expect("insert carries a row"),
                    );
                    ops.push(WriteOp::put(key, Expect::Absent, rec.encode()));
                    applied_records.push(((*table, *rid), rec));
                }
                IntentKind::Update | IntentKind::Delete => {
                    let (token, record) = self
                        .reads
                        .get(&(*table, *rid))
                        .cloned()
                        .flatten()
                        .ok_or_else(|| Error::invalid("write intent without prior read"))?;
                    let mut rec = record;
                    rec.add_version(self.tid, intent.new_row.clone());
                    rec.gc(self.lav); // eager GC is part of the update (§5.4)
                    ops.push(WriteOp::put(key, Expect::Token(token), rec.encode()));
                    applied_records.push(((*table, *rid), rec));
                }
            }
        }
        // Promoted reads ride the same batch, *after* the write ops so the
        // result/applied_records zips below stay aligned on the write-op
        // prefix. Each is an identity re-write: same encoded record under
        // the observed token. A success bumps the token (serializing this
        // transaction against later writers); a failure is the write-
        // snapshot conflict.
        for ((table, rid), token, rec) in &promoted {
            ops.push(WriteOp::put(keys::record(*table, *rid), Expect::Token(*token), rec.encode()));
        }
        let write_count = ops.len() as u32;
        self.phase_finish(
            validate_span,
            Phase::Validate,
            "txn.validate",
            write_count,
            SpanStatus::Ok,
        );
        let install_span = self.phase_start(SpanKind::TxnInstall);
        let results = if self.pn.database().config().batching {
            // Submit-then-wait: over the remote transport the whole write
            // set rides one frame of the client's submission window.
            self.pn.client().multi_write_async(ops).wait()?
        } else {
            // Ablation mode: one exchange per update.
            ops.into_iter()
                .map(|op| {
                    let client = self.pn.client();
                    match op.value {
                        Some(v) => match op.expect {
                            tell_store::Expect::Absent => client.insert(&op.key, v).map(Some),
                            tell_store::Expect::Token(t) => {
                                client.store_conditional(&op.key, t, v).map(Some)
                            }
                            tell_store::Expect::Any => client.put(&op.key, v).map(Some),
                        },
                        None => client.delete(&op.key).map(|_| None),
                    }
                })
                .collect()
        };
        let conflicted = results.iter().any(|r| r.is_err());
        let install_status = if conflicted { SpanStatus::Conflict } else { SpanStatus::Ok };
        self.phase_finish(
            install_span,
            Phase::LlscInstall,
            "txn.install",
            write_count,
            install_status,
        );
        if conflicted {
            // Abort: revert the updates that did apply, batched the same
            // way recovery rolls back a failed PN's write sets.
            let applied: Vec<(TableId, Rid)> = results
                .iter()
                .zip(&applied_records)
                .filter(|(result, _)| result.is_ok())
                .map(|(_, (target, _))| *target)
                .collect();
            crate::recovery::revert_write_set(self.pn.client(), self.tid, &applied)?;
            self.state = State::Aborted;
            let span = self.phase_start(SpanKind::TxnCmComplete);
            self.cm.set_aborted(self.tid, self.pn.meter())?;
            self.phase_finish(span, Phase::CmComplete, "txn.cm_complete", 0, SpanStatus::Ok);
            self.pn.metrics().record_abort(self.pn.clock().now_us() - self.start_us, true);
            self.note_finished(SpanStatus::Conflict, true);
            // A genuine SI conflict is retryable; an infrastructure failure
            // (storage node down, capacity exceeded) is not — report the
            // latter when present so callers do not retry in vain.
            let err = results
                .iter()
                .filter_map(|r| r.as_ref().err())
                .find(|e| !matches!(e, Error::Conflict))
                .cloned()
                .unwrap_or(Error::Conflict);
            return Err(err);
        }

        // Commit: index maintenance. Only key changes touch trees; stale
        // entries are removed lazily by index GC (§5.3.2).
        for ((table_id, rid), intent) in &self.writes {
            let table = self.tables.get(table_id).expect("table noted at write time");
            for idx in &table.indexes {
                let Some(ex) = self.pn.database().extractor(idx.id) else { continue };
                let old_key = intent.old_row.as_deref().and_then(|r| ex(r));
                let new_key = intent.new_row.as_deref().and_then(|r| ex(r));
                if let Some(nk) = new_key {
                    if old_key.as_ref() != Some(&nk) {
                        self.pn.tree(idx.id)?.insert(nk, rid.raw())?;
                    }
                }
            }
        }

        if let Err(e) = txlog::mark_committed(self.pn.client(), &mut entry) {
            // The commit flag never reached the log, so the transaction is
            // not committed. Roll the installed versions back (best effort:
            // if the revert also fails they stay invisible — no snapshot
            // ever contains this tid) and resolve the tid as aborted so the
            // base does not stall on it.
            let applied: Vec<(TableId, Rid)> =
                applied_records.iter().map(|(target, _)| *target).collect();
            let _ = crate::recovery::revert_write_set(self.pn.client(), self.tid, &applied);
            self.state = State::Aborted;
            self.cm.set_aborted(self.tid, self.pn.meter())?;
            self.pn.metrics().record_abort(self.pn.clock().now_us() - self.start_us, true);
            self.note_finished(SpanStatus::Error, true);
            return Err(e);
        }
        let cm_span = self.phase_start(SpanKind::TxnCmComplete);
        self.cm.set_committed(self.tid, self.pn.meter())?;
        self.phase_finish(cm_span, Phase::CmComplete, "txn.cm_complete", 0, SpanStatus::Ok);

        // Write-through to the PN buffer with the fresh tokens.
        let v_max = self.pn.group().v_max();
        for (((table, rid), rec), result) in applied_records.iter().zip(results.iter()) {
            if let Ok(Some(token)) = result {
                if rec.version_count() > 0 {
                    self.pn.group().buffer().write_through(
                        self.pn.client(),
                        *table,
                        *rid,
                        *token,
                        rec,
                        self.tid,
                        &v_max,
                    )?;
                }
            }
        }

        self.state = State::Committed;
        self.pn.metrics().record_commit(self.pn.clock().now_us() - self.start_us);
        self.note_finished(SpanStatus::Ok, false);
        Ok(())
    }

    /// Manual abort: nothing was applied yet (§4.3 4b: "In this case, no
    /// updates have been applied as we skipped the Try-Commit state").
    pub fn abort(&mut self) -> Result<()> {
        self.ensure_running()?;
        self.state = State::Aborted;
        self.cm.set_aborted(self.tid, self.pn.meter())?;
        self.pn.metrics().record_abort(self.pn.clock().now_us() - self.start_us, false);
        self.note_finished(SpanStatus::Error, false);
        Ok(())
    }

    /// End-of-life bookkeeping: record the whole-transaction latency,
    /// check it against the slow-op budget, close the root span, decide
    /// the trace's fate (tail-based retention), and drop the trace id that
    /// [`ProcessingNode::begin`] pinned to this thread.
    fn note_finished(&mut self, status: SpanStatus, conflict: bool) {
        let total_us = self.pn.clock().now_us() - self.start_us;
        if self.timed {
            tell_obs::observe(Phase::TxnTotal, total_us);
        }
        // Pop the root profiler frame before the slow-op check so the
        // closing line's frame window reads a settled stack.
        self.root_frame.take();
        let root = self.root_span.take();
        // The slow-op check is never sampled away: it is one relaxed load
        // while no budget is set, and a slow transaction must always log.
        // The closing line carries the root span id and the per-phase
        // durations accumulated along the way.
        let slow = slowlog::check_closing(
            "txn.total",
            total_us,
            root.as_ref().map(|s| s.id()),
            &self.phase_us,
        );
        if let Some(root) = root {
            root.finish(self.pn.clock().now_us(), self.writes.len() as u32, status);
        } else if conflict {
            // Unsampled transactions record nothing while they run, but a
            // conflict abort must stay visible to a scrape: synthesize the
            // root span. The wall start is back-computed from the virtual
            // elapsed time (keeping an exact stamp would put a clock read
            // on every unsampled transaction just for this rare case).
            if let Some(trace) = self.trace {
                let end_wall_us = tell_obs::span::wall_now_us();
                tell_obs::span::record_to_ring(tell_obs::Span {
                    trace,
                    id: tell_obs::span::next_span_id(),
                    parent: 0,
                    kind: SpanKind::Txn,
                    start_virt_us: self.start_us,
                    end_virt_us: self.pn.clock().now_us(),
                    start_wall_us: end_wall_us.saturating_sub(total_us as u64),
                    end_wall_us,
                    attrs: tell_obs::SpanAttrs { count: self.writes.len() as u32, status },
                });
            }
        }
        // Tail-based retention: keep every slow trace and every LL/SC
        // conflict abort; span-recording transactions double as the 1-in-N
        // sample of fast traces (`spans` is true for exactly those plus,
        // when the budget is armed, everything).
        tell_obs::span::trace_finished(slow || conflict || self.spans);
        tell_obs::set_current_trace(None);
    }
}

impl<E: StoreEndpoint> Drop for Transaction<'_, E> {
    fn drop(&mut self) {
        if self.state == State::Running {
            // Crash-stop semantics for forgotten transactions: report the
            // abort so the commit manager's base can advance. No updates
            // were applied (that only happens inside commit()).
            self.state = State::Aborted;
            let _ = self.cm.set_aborted(self.tid, self.pn.meter());
            self.pn.metrics().record_abort(self.pn.clock().now_us() - self.start_us, false);
            self.note_finished(SpanStatus::Error, false);
        }
    }
}

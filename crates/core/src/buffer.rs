//! Buffering strategies (§5.5).
//!
//! Three ways to serve a record read on a processing node:
//!
//! 1. **Transaction buffer (TB)** — records are cached only within a
//!    transaction (that cache lives in the transaction itself, see
//!    [`crate::txn`]); every first access fetches from the store.
//! 2. **Shared record buffer (SB)** — a PN-wide LRU keyed by record id.
//!    Each entry carries the version-number set `B` for which it is valid;
//!    a transaction with snapshot `V_tx` may use the entry iff
//!    `V_tx ⊆ B` (§5.5.2). On a miss the record is fetched and `B` is set
//!    to `V_max`, the snapshot of the most recently started transaction on
//!    this PN. Updates are written through with `B := {tid} ∪ V_max`.
//! 3. **Shared buffer with version-set synchronization (SBVS)** — like SB,
//!    but validity is decided by comparing a per-cache-unit *version-set
//!    stamp* kept in the storage system (§5.5.3). Reads cost one small
//!    request instead of a record-sized one; every update costs one extra
//!    request to bump the stamp. `cache_unit` groups records so fewer
//!    stamps are maintained at the price of spurious invalidations.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use tell_commitmgr::SnapshotDescriptor;
use tell_common::{Result, Rid, TableId, TxnId};
use tell_store::cell::Token;
use tell_store::{keys, StoreApi};

use crate::record::VersionedRecord;

/// Which buffering strategy a processing node runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BufferConfig {
    /// §5.5.1 — per-transaction caching only.
    TransactionOnly,
    /// §5.5.2 — PN-wide shared record buffer with `capacity` entries.
    Shared { capacity: usize },
    /// §5.5.3 — shared buffer validated through store-side version-set
    /// stamps, `cache_unit` records per stamp.
    SharedVersionSync { capacity: usize, cache_unit: u64 },
}

impl BufferConfig {
    /// Short label used in benchmark output (TB / SB / SBVS10 / ...).
    pub fn label(&self) -> String {
        match self {
            BufferConfig::TransactionOnly => "TB".into(),
            BufferConfig::Shared { .. } => "SB".into(),
            BufferConfig::SharedVersionSync { cache_unit, .. } => format!("SBVS{cache_unit}"),
        }
    }
}

/// Hit/miss counters for Fig 11's cache-hit-ratio discussion.
#[derive(Debug, Default)]
pub struct BufferStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
}

impl BufferStats {
    fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        tell_obs::incr(tell_obs::Counter::BufferHits);
    }

    fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        tell_obs::incr(tell_obs::Counter::BufferMisses);
    }

    /// Hit ratio in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        let h = self.hits.load(Ordering::Relaxed) as f64;
        let m = self.misses.load(Ordering::Relaxed) as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

enum Validity {
    /// SB: version-number set for which the entry is valid.
    Set(SnapshotDescriptor),
    /// SBVS: stamp observed from the store.
    Stamp(u64),
}

struct Entry {
    token: Token,
    record: VersionedRecord,
    validity: Validity,
    lru_seq: u64,
}

/// The PN-wide record buffer (a no-op shell in `TransactionOnly` mode).
pub struct RecordBuffer {
    config: BufferConfig,
    entries: Mutex<Lru>,
    stats: BufferStats,
}

#[derive(Default)]
struct Lru {
    map: HashMap<(TableId, Rid), Entry>,
    order: BTreeMap<u64, (TableId, Rid)>,
    seq: u64,
}

impl Lru {
    fn touch(&mut self, key: (TableId, Rid)) {
        if let Some(e) = self.map.get_mut(&key) {
            self.order.remove(&e.lru_seq);
            self.seq += 1;
            e.lru_seq = self.seq;
            self.order.insert(self.seq, key);
        }
    }

    fn insert(
        &mut self,
        key: (TableId, Rid),
        token: Token,
        record: VersionedRecord,
        validity: Validity,
        capacity: usize,
    ) {
        if let Some(old) = self.map.remove(&key) {
            self.order.remove(&old.lru_seq);
        }
        while self.map.len() >= capacity {
            let Some((&seq, &victim)) = self.order.iter().next() else { break };
            self.order.remove(&seq);
            self.map.remove(&victim);
        }
        self.seq += 1;
        self.order.insert(self.seq, key);
        self.map.insert(key, Entry { token, record, validity, lru_seq: self.seq });
    }

    fn remove(&mut self, key: &(TableId, Rid)) {
        if let Some(e) = self.map.remove(key) {
            self.order.remove(&e.lru_seq);
        }
    }
}

impl RecordBuffer {
    /// Buffer for the given strategy.
    pub fn new(config: BufferConfig) -> Self {
        RecordBuffer { config, entries: Mutex::new(Lru::default()), stats: BufferStats::default() }
    }

    /// The configured strategy.
    pub fn config(&self) -> &BufferConfig {
        &self.config
    }

    /// Counters.
    pub fn stats(&self) -> &BufferStats {
        &self.stats
    }

    /// Read a record through the buffer. `v_tx` is the reading
    /// transaction's snapshot; `v_max` the snapshot of the most recently
    /// started transaction on this PN (condition 2 of §5.5.2 sets `B` to it).
    /// Returns the load-linked `(token, record)` or `None` if the record
    /// does not exist.
    pub fn read_record<C: StoreApi>(
        &self,
        client: &C,
        table: TableId,
        rid: Rid,
        v_tx: &SnapshotDescriptor,
        v_max: &SnapshotDescriptor,
    ) -> Result<Option<(Token, VersionedRecord)>> {
        match &self.config {
            BufferConfig::TransactionOnly => self.fetch(client, table, rid),
            BufferConfig::Shared { capacity } => {
                {
                    let mut lru = self.entries.lock();
                    if let Some(e) = lru.map.get(&(table, rid)) {
                        if let Validity::Set(b) = &e.validity {
                            if v_tx.is_subset_of(b) {
                                // Condition 1: the buffer is recent enough.
                                let out = (e.token, e.record.clone());
                                self.stats.note_hit();
                                lru.touch((table, rid));
                                return Ok(Some(out));
                            }
                        }
                    }
                }
                // Condition 2: fetch and replace, B := V_max.
                self.stats.note_miss();
                let fetched = self.fetch(client, table, rid)?;
                let mut lru = self.entries.lock();
                match &fetched {
                    Some((token, record)) => lru.insert(
                        (table, rid),
                        *token,
                        record.clone(),
                        Validity::Set(v_max.clone()),
                        *capacity,
                    ),
                    None => lru.remove(&(table, rid)),
                }
                Ok(fetched)
            }
            BufferConfig::SharedVersionSync { capacity, cache_unit } => {
                let unit = rid.raw() / cache_unit;
                // One small request: the unit's current stamp.
                let current_stamp = match client.get(&keys::version_set(table, unit))? {
                    Some((_, raw)) if raw.len() == 8 => {
                        u64::from_le_bytes(raw.as_ref().try_into().unwrap())
                    }
                    _ => 0,
                };
                {
                    let mut lru = self.entries.lock();
                    if let Some(e) = lru.map.get(&(table, rid)) {
                        if matches!(e.validity, Validity::Stamp(s) if s == current_stamp) {
                            let out = (e.token, e.record.clone());
                            self.stats.note_hit();
                            lru.touch((table, rid));
                            return Ok(Some(out));
                        }
                    }
                }
                self.stats.note_miss();
                let fetched = self.fetch(client, table, rid)?;
                let mut lru = self.entries.lock();
                match &fetched {
                    Some((token, record)) => lru.insert(
                        (table, rid),
                        *token,
                        record.clone(),
                        Validity::Stamp(current_stamp),
                        *capacity,
                    ),
                    None => lru.remove(&(table, rid)),
                }
                Ok(fetched)
            }
        }
    }

    fn fetch<C: StoreApi>(
        &self,
        client: &C,
        table: TableId,
        rid: Rid,
    ) -> Result<Option<(Token, VersionedRecord)>> {
        // The store round-trip is the expensive half of a buffer miss.
        // Check it against the slow-op budget (free while none is set) so a
        // stalled record read is attributable to the fetch itself rather
        // than to the surrounding phase.
        let fetch_start = tell_obs::slowlog::budget_us().is_some().then(std::time::Instant::now);
        let got = client.get(&keys::record(table, rid))?;
        if let Some(t0) = fetch_start {
            tell_obs::slowlog::check("buffer.fetch", t0.elapsed().as_secs_f64() * 1e6);
        }
        match got {
            Some((token, raw)) => Ok(Some((token, VersionedRecord::decode(&raw)?))),
            None => Ok(None),
        }
    }

    /// Write-through after a transaction successfully applied an update
    /// (§5.5.2: "Each time a transaction applies an update, the changes are
    /// written to the storage system and if successful, to the buffer as
    /// well").
    #[allow(clippy::too_many_arguments)]
    pub fn write_through<C: StoreApi>(
        &self,
        client: &C,
        table: TableId,
        rid: Rid,
        token: Token,
        record: &VersionedRecord,
        tid: TxnId,
        v_max: &SnapshotDescriptor,
    ) -> Result<()> {
        match &self.config {
            BufferConfig::TransactionOnly => Ok(()),
            BufferConfig::Shared { capacity } => {
                // B := {tid} ∪ V_max (valid because had any txn in V_max
                // changed the record, our LL/SC would have failed).
                let b = v_max.with_added(tid);
                self.entries.lock().insert(
                    (table, rid),
                    token,
                    record.clone(),
                    Validity::Set(b),
                    *capacity,
                );
                Ok(())
            }
            BufferConfig::SharedVersionSync { capacity, cache_unit } => {
                // Extra storage request per update: bump the unit stamp.
                let unit = rid.raw() / cache_unit;
                let stamp = client.increment(&keys::version_set(table, unit), 1)?;
                self.entries.lock().insert(
                    (table, rid),
                    token,
                    record.clone(),
                    Validity::Stamp(stamp),
                    *capacity,
                );
                Ok(())
            }
        }
    }

    /// Drop a record from the buffer (record deleted / fully GC'd).
    pub fn evict(&self, table: TableId, rid: Rid) {
        self.entries.lock().remove(&(table, rid));
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.entries.lock().map.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::sync::Arc;
    use tell_common::BitSet;
    use tell_store::{StoreClient, StoreCluster, StoreConfig};

    fn snap(base: u64) -> SnapshotDescriptor {
        SnapshotDescriptor::new(base, BitSet::new())
    }

    fn setup() -> (StoreClient, TableId, Rid) {
        let cluster = StoreCluster::new(StoreConfig::new(2));
        let client = StoreClient::unmetered(cluster);
        let table = TableId(1);
        let rid = Rid(7);
        let rec = VersionedRecord::with_initial(TxnId(0), Bytes::from_static(b"row"));
        client.insert(&keys::record(table, rid), rec.encode()).unwrap();
        (client, table, rid)
    }

    #[test]
    fn transaction_only_never_caches() {
        let (client, table, rid) = setup();
        let buf = RecordBuffer::new(BufferConfig::TransactionOnly);
        buf.read_record(&client, table, rid, &snap(0), &snap(0)).unwrap().unwrap();
        buf.read_record(&client, table, rid, &snap(0), &snap(0)).unwrap().unwrap();
        assert!(buf.is_empty());
        assert_eq!(buf.stats().hits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn shared_buffer_serves_older_transactions() {
        let (client, table, rid) = setup();
        let buf = RecordBuffer::new(BufferConfig::Shared { capacity: 100 });
        // First read by a txn with base 5 (V_max = base 5): miss.
        buf.read_record(&client, table, rid, &snap(5), &snap(5)).unwrap().unwrap();
        // An *older* transaction (base 3 ⊆ base 5): hit.
        buf.read_record(&client, table, rid, &snap(3), &snap(5)).unwrap().unwrap();
        assert_eq!(buf.stats().hits.load(Ordering::Relaxed), 1);
        // A *newer* transaction (base 9 ⊄ base 5): miss, refetch, B := new V_max.
        buf.read_record(&client, table, rid, &snap(9), &snap(9)).unwrap().unwrap();
        assert_eq!(buf.stats().misses.load(Ordering::Relaxed), 2);
        // Now base 9 hits.
        buf.read_record(&client, table, rid, &snap(9), &snap(9)).unwrap().unwrap();
        assert_eq!(buf.stats().hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn write_through_extends_validity_with_tid() {
        let (client, table, rid) = setup();
        let buf = RecordBuffer::new(BufferConfig::Shared { capacity: 100 });
        let (token, mut rec) =
            buf.read_record(&client, table, rid, &snap(5), &snap(5)).unwrap().unwrap();
        // Apply an update as tid 8.
        rec.add_version(TxnId(8), Some(Bytes::from_static(b"new")));
        let new_token =
            client.store_conditional(&keys::record(table, rid), token, rec.encode()).unwrap();
        buf.write_through(&client, table, rid, new_token, &rec, TxnId(8), &snap(5)).unwrap();
        // A txn whose snapshot includes tid 8 can use the buffer.
        let mut bits = BitSet::new();
        bits.set(8 - 5 - 1);
        let v_tx = SnapshotDescriptor::new(5, bits);
        let hit = buf.read_record(&client, table, rid, &v_tx, &v_tx).unwrap().unwrap();
        assert_eq!(hit.0, new_token);
        assert_eq!(buf.stats().hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn sbvs_detects_remote_updates_via_stamp() {
        let (client, table, rid) = setup();
        let buf =
            RecordBuffer::new(BufferConfig::SharedVersionSync { capacity: 100, cache_unit: 10 });
        buf.read_record(&client, table, rid, &snap(5), &snap(5)).unwrap().unwrap();
        // Hit while nothing changed.
        buf.read_record(&client, table, rid, &snap(9), &snap(9)).unwrap().unwrap();
        assert_eq!(buf.stats().hits.load(Ordering::Relaxed), 1);
        // A "remote PN" updates the record and bumps the unit stamp.
        let remote =
            RecordBuffer::new(BufferConfig::SharedVersionSync { capacity: 100, cache_unit: 10 });
        let (token, mut rec) =
            remote.read_record(&client, table, rid, &snap(5), &snap(5)).unwrap().unwrap();
        rec.add_version(TxnId(9), Some(Bytes::from_static(b"remote")));
        let t2 = client.store_conditional(&keys::record(table, rid), token, rec.encode()).unwrap();
        remote.write_through(&client, table, rid, t2, &rec, TxnId(9), &snap(5)).unwrap();
        // Our stale entry must be refreshed (stamp mismatch → miss).
        let (_, fresh) =
            buf.read_record(&client, table, rid, &snap(20), &snap(20)).unwrap().unwrap();
        assert!(fresh.has_version(9));
        assert_eq!(buf.stats().misses.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn sbvs_cache_unit_invalidates_neighbours() {
        let cluster = StoreCluster::new(StoreConfig::new(2));
        let client = StoreClient::unmetered(cluster);
        let table = TableId(2);
        for r in 0..5u64 {
            let rec = VersionedRecord::with_initial(TxnId(0), Bytes::from_static(b"x"));
            client.insert(&keys::record(table, Rid(r)), rec.encode()).unwrap();
        }
        let buf =
            RecordBuffer::new(BufferConfig::SharedVersionSync { capacity: 100, cache_unit: 10 });
        buf.read_record(&client, table, Rid(1), &snap(1), &snap(1)).unwrap().unwrap();
        buf.read_record(&client, table, Rid(2), &snap(1), &snap(1)).unwrap().unwrap();
        // Update rid 1 → same unit as rid 2 → rid 2's entry is also stale.
        let (token, mut rec) =
            buf.read_record(&client, table, Rid(1), &snap(1), &snap(1)).unwrap().unwrap();
        rec.add_version(TxnId(3), Some(Bytes::from_static(b"y")));
        let t2 =
            client.store_conditional(&keys::record(table, Rid(1)), token, rec.encode()).unwrap();
        buf.write_through(&client, table, Rid(1), t2, &rec, TxnId(3), &snap(1)).unwrap();
        let before = buf.stats().misses.load(Ordering::Relaxed);
        buf.read_record(&client, table, Rid(2), &snap(1), &snap(1)).unwrap().unwrap();
        assert_eq!(
            buf.stats().misses.load(Ordering::Relaxed),
            before + 1,
            "neighbour in the same cache unit is spuriously invalidated"
        );
    }

    #[test]
    fn lru_evicts_oldest() {
        let cluster = StoreCluster::new(StoreConfig::new(2));
        let client = StoreClient::unmetered(Arc::clone(&cluster));
        let table = TableId(3);
        for r in 0..4u64 {
            let rec = VersionedRecord::with_initial(TxnId(0), Bytes::from_static(b"x"));
            client.insert(&keys::record(table, Rid(r)), rec.encode()).unwrap();
        }
        let buf = RecordBuffer::new(BufferConfig::Shared { capacity: 2 });
        let s = snap(1);
        buf.read_record(&client, table, Rid(0), &s, &s).unwrap();
        buf.read_record(&client, table, Rid(1), &s, &s).unwrap();
        buf.read_record(&client, table, Rid(0), &s, &s).unwrap(); // touch 0
        buf.read_record(&client, table, Rid(2), &s, &s).unwrap(); // evicts 1
        assert_eq!(buf.len(), 2);
        let hits_before = buf.stats().hits.load(Ordering::Relaxed);
        buf.read_record(&client, table, Rid(0), &s, &s).unwrap();
        assert_eq!(buf.stats().hits.load(Ordering::Relaxed), hits_before + 1, "0 survived");
        buf.read_record(&client, table, Rid(1), &s, &s).unwrap();
        assert_eq!(buf.stats().hits.load(Ordering::Relaxed), hits_before + 1, "1 was evicted");
    }

    #[test]
    fn missing_record_is_none_and_uncached() {
        let (client, table, _) = setup();
        let buf = RecordBuffer::new(BufferConfig::Shared { capacity: 10 });
        let res = buf.read_record(&client, table, Rid(999), &snap(1), &snap(1)).unwrap();
        assert!(res.is_none());
        assert!(buf.is_empty());
    }
}

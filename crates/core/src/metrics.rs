//! Per-processing-node transaction metrics.

use parking_lot::Mutex;
use tell_common::Histogram;

/// Counters and latency distribution for one processing node (worker).
/// Benchmark drivers merge these across workers.
#[derive(Default)]
pub struct PnMetrics {
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    committed: u64,
    aborted: u64,
    conflicts: u64,
    latency: Histogram,
}

impl PnMetrics {
    /// Fresh metrics.
    pub fn new() -> Self {
        PnMetrics::default()
    }

    /// Record a commit with its virtual latency.
    pub fn record_commit(&self, latency_us: f64) {
        let mut m = self.inner.lock();
        m.committed += 1;
        m.latency.record(latency_us);
    }

    /// Record an abort. `conflict` distinguishes optimistic-CC losers from
    /// manual aborts.
    pub fn record_abort(&self, latency_us: f64, conflict: bool) {
        let mut m = self.inner.lock();
        m.aborted += 1;
        if conflict {
            m.conflicts += 1;
        }
        m.latency.record(latency_us);
    }

    /// Committed transaction count.
    pub fn committed(&self) -> u64 {
        self.inner.lock().committed
    }

    /// Aborted transaction count.
    pub fn aborted(&self) -> u64 {
        self.inner.lock().aborted
    }

    /// Write-write conflict aborts.
    pub fn conflicts(&self) -> u64 {
        self.inner.lock().conflicts
    }

    /// Abort rate over all finished transactions.
    pub fn abort_rate(&self) -> f64 {
        let m = self.inner.lock();
        let total = m.committed + m.aborted;
        if total == 0 {
            0.0
        } else {
            m.aborted as f64 / total as f64
        }
    }

    /// Snapshot of the latency histogram.
    pub fn latency(&self) -> Histogram {
        self.inner.lock().latency.clone()
    }

    /// Merge another node's metrics into this one.
    pub fn merge(&self, other: &PnMetrics) {
        let other = other.inner.lock();
        let mut m = self.inner.lock();
        m.committed += other.committed;
        m.aborted += other.aborted;
        m.conflicts += other.conflicts;
        m.latency.merge(&other.latency);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_rates() {
        let m = PnMetrics::new();
        m.record_commit(100.0);
        m.record_commit(200.0);
        m.record_abort(50.0, true);
        m.record_abort(60.0, false);
        assert_eq!(m.committed(), 2);
        assert_eq!(m.aborted(), 2);
        assert_eq!(m.conflicts(), 1);
        assert!((m.abort_rate() - 0.5).abs() < 1e-9);
        assert_eq!(m.latency().count(), 4);
    }

    #[test]
    fn merge_accumulates() {
        let a = PnMetrics::new();
        let b = PnMetrics::new();
        a.record_commit(10.0);
        b.record_commit(20.0);
        b.record_abort(5.0, true);
        a.merge(&b);
        assert_eq!(a.committed(), 2);
        assert_eq!(a.aborted(), 1);
        assert_eq!(a.latency().count(), 3);
    }

    #[test]
    fn empty_rate_is_zero() {
        assert_eq!(PnMetrics::new().abort_rate(), 0.0);
    }
}

//! Per-processing-node transaction metrics.
//!
//! Built on `tell-obs` primitives instead of one mutex around everything:
//! counts are relaxed atomics and the latency distribution is a
//! [`ShardedHistogram`], so two workers recording into a shared `PnMetrics`
//! (or a worker recording while a driver thread reads) never serialize on
//! the record path. Recording also feeds the process-global registry, so a
//! `Request::Metrics` scrape sees the same commits and aborts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use tell_common::{Histogram, SimClock};
use tell_obs::{slowlog, Counter, Phase, ShardedHistogram, SpanKind, SpanStatus, SpanTimer};

/// Times one instrumented transaction phase against *both* clocks: the
/// virtual clock, which a simulated network charge advances (an injected
/// netsim latency spike shows up here), and the wall clock, which a real
/// TCP round-trip advances (the virtual clock stands still there). The
/// phase cost is whichever moved more. `start` returns `None` when the
/// registry is disabled, so the hot path pays one relaxed load and nothing
/// else.
pub(crate) struct PhaseTimer {
    virt_us: f64,
    wall: Instant,
}

impl PhaseTimer {
    pub(crate) fn start(clock: &SimClock) -> Option<Self> {
        if !tell_obs::enabled() {
            return None;
        }
        Some(PhaseTimer { virt_us: clock.now_us(), wall: Instant::now() })
    }

    /// Record the elapsed phase time and run the slow-op check. Returns
    /// the elapsed time when a timer actually ran.
    pub(crate) fn finish(
        timer: Option<Self>,
        clock: &SimClock,
        phase: Phase,
        op: &'static str,
    ) -> Option<f64> {
        let t = timer?;
        let virt = clock.now_us() - t.virt_us;
        let wall = t.wall.elapsed().as_secs_f64() * 1e6;
        let elapsed = virt.max(wall);
        tell_obs::observe(phase, elapsed);
        slowlog::check(op, elapsed);
        Some(elapsed)
    }
}

/// A [`PhaseTimer`] paired with a [`SpanTimer`]. The histogram/slow-op
/// half runs only on sampled (`timed`) transactions; the span half runs on
/// every traced transaction while the registry is enabled, feeding the
/// tail-sampled trace ring. `finish` reports the elapsed phase time when
/// either half measured it, for the closing slow-op line's per-phase
/// breakdown.
pub(crate) struct PhaseSpan {
    timer: Option<PhaseTimer>,
    span: Option<SpanTimer>,
    /// Profiler frame for the phase. Unlike the sampled halves above this
    /// runs on *every* transaction — the frame push/pop is one relaxed
    /// store each way, and the profiler's whole value is seeing the
    /// unsampled majority.
    _frame: tell_obs::FrameGuard,
}

impl PhaseSpan {
    pub(crate) fn start(clock: &SimClock, timed: bool, spans: bool, kind: SpanKind) -> Self {
        let span = if spans { SpanTimer::start(kind, clock.now_us()) } else { None };
        let timer = if timed { PhaseTimer::start(clock) } else { None };
        PhaseSpan { timer, span, _frame: tell_obs::FrameGuard::enter(kind.into()) }
    }

    pub(crate) fn finish(
        self,
        clock: &SimClock,
        phase: Phase,
        op: &'static str,
        count: u32,
        status: SpanStatus,
    ) -> Option<f64> {
        let span_us = self.span.map(|s| s.finish(clock.now_us(), count, status));
        PhaseTimer::finish(self.timer, clock, phase, op).or(span_us)
    }
}

/// Counters and latency distribution for one processing node (worker).
/// Benchmark drivers merge these across workers.
#[derive(Default)]
pub struct PnMetrics {
    committed: AtomicU64,
    aborted: AtomicU64,
    conflicts: AtomicU64,
    latency: ShardedHistogram,
}

impl PnMetrics {
    /// Fresh metrics.
    pub fn new() -> Self {
        PnMetrics::default()
    }

    /// Record a commit with its virtual latency.
    pub fn record_commit(&self, latency_us: f64) {
        self.committed.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency_us);
        tell_obs::incr(Counter::TxnCommitted);
    }

    /// Record an abort. `conflict` distinguishes optimistic-CC losers from
    /// manual aborts.
    pub fn record_abort(&self, latency_us: f64, conflict: bool) {
        self.aborted.fetch_add(1, Ordering::Relaxed);
        tell_obs::incr(Counter::TxnAborted);
        if conflict {
            self.conflicts.fetch_add(1, Ordering::Relaxed);
            tell_obs::incr(Counter::TxnConflicts);
        }
        self.latency.record(latency_us);
    }

    /// Committed transaction count.
    pub fn committed(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }

    /// Aborted transaction count.
    pub fn aborted(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }

    /// Write-write conflict aborts.
    pub fn conflicts(&self) -> u64 {
        self.conflicts.load(Ordering::Relaxed)
    }

    /// Abort rate over all finished transactions.
    pub fn abort_rate(&self) -> f64 {
        let committed = self.committed();
        let aborted = self.aborted();
        let total = committed + aborted;
        if total == 0 {
            0.0
        } else {
            aborted as f64 / total as f64
        }
    }

    /// Snapshot of the latency histogram, merged across shards.
    pub fn latency(&self) -> Histogram {
        self.latency.merged()
    }

    /// Merge another node's metrics into this one.
    pub fn merge(&self, other: &PnMetrics) {
        self.committed.fetch_add(other.committed(), Ordering::Relaxed);
        self.aborted.fetch_add(other.aborted(), Ordering::Relaxed);
        self.conflicts.fetch_add(other.conflicts(), Ordering::Relaxed);
        self.latency.absorb(&other.latency());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_rates() {
        let m = PnMetrics::new();
        m.record_commit(100.0);
        m.record_commit(200.0);
        m.record_abort(50.0, true);
        m.record_abort(60.0, false);
        assert_eq!(m.committed(), 2);
        assert_eq!(m.aborted(), 2);
        assert_eq!(m.conflicts(), 1);
        assert!((m.abort_rate() - 0.5).abs() < 1e-9);
        assert_eq!(m.latency().count(), 4);
    }

    #[test]
    fn merge_accumulates() {
        let a = PnMetrics::new();
        let b = PnMetrics::new();
        a.record_commit(10.0);
        b.record_commit(20.0);
        b.record_abort(5.0, true);
        a.merge(&b);
        assert_eq!(a.committed(), 2);
        assert_eq!(a.aborted(), 1);
        assert_eq!(a.latency().count(), 3);
    }

    #[test]
    fn empty_rate_is_zero() {
        assert_eq!(PnMetrics::new().abort_rate(), 0.0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let m = PnMetrics::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = &m;
                s.spawn(|| {
                    for i in 0..500 {
                        if i % 5 == 0 {
                            m.record_abort(i as f64, i % 10 == 0);
                        } else {
                            m.record_commit(i as f64);
                        }
                    }
                });
            }
        });
        assert_eq!(m.committed() + m.aborted(), 2000);
        assert_eq!(m.latency().count(), 2000);
        assert_eq!(m.aborted(), 4 * 100);
        assert_eq!(m.conflicts(), 4 * 50);
    }
}

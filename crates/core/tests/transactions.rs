//! End-to-end tests of Tell's transaction layer: snapshot isolation,
//! LL/SC conflict detection, index maintenance, recovery and GC.

use std::sync::Arc;

use bytes::Bytes;
use tell_common::{Error, Rid};
use tell_core::database::IndexSpec;
use tell_core::gc::run_gc;
use tell_core::recovery::recover_failed_pn;
use tell_core::{BufferConfig, Database, TellConfig};

/// Test rows: `[pk: u64 BE][group: u8][payload...]`.
fn row(pk: u64, group: u8, payload: &str) -> Bytes {
    let mut r = pk.to_be_bytes().to_vec();
    r.push(group);
    r.extend_from_slice(payload.as_bytes());
    Bytes::from(r)
}

fn row_pk(row: &[u8]) -> u64 {
    u64::from_be_bytes(row[..8].try_into().unwrap())
}

fn row_payload(row: &[u8]) -> &[u8] {
    &row[9..]
}

fn pk_bytes(pk: u64) -> Bytes {
    Bytes::copy_from_slice(&pk.to_be_bytes())
}

fn group_bytes(g: u8) -> Bytes {
    Bytes::copy_from_slice(&[g])
}

fn make_db(config: TellConfig) -> (Arc<Database>, Arc<tell_core::catalog::TableDef>) {
    let db = Database::create(config);
    let table = db
        .create_table(
            "items",
            vec![
                IndexSpec::new("pk", true, |r: &[u8]| r.get(..8).map(Bytes::copy_from_slice)),
                IndexSpec::new("by_group", false, |r: &[u8]| {
                    r.get(8..9).map(Bytes::copy_from_slice)
                }),
            ],
        )
        .unwrap();
    (db, table)
}

fn default_db() -> (Arc<Database>, Arc<tell_core::catalog::TableDef>) {
    make_db(TellConfig::default())
}

#[test]
fn insert_commit_then_visible_to_new_transactions() {
    let (db, table) = default_db();
    let pn = db.processing_node();
    let mut t1 = pn.begin().unwrap();
    let rid = t1.insert(&table, row(1, 0, "hello")).unwrap();
    // Read-your-writes before commit.
    assert_eq!(row_payload(&t1.get(&table, rid).unwrap().unwrap()), b"hello");
    t1.commit().unwrap();

    let mut t2 = pn.begin().unwrap();
    let got = t2.get(&table, rid).unwrap().unwrap();
    assert_eq!(row_pk(&got), 1);
    assert_eq!(row_payload(&got), b"hello");
    t2.commit().unwrap();
}

#[test]
fn snapshot_isolation_hides_concurrent_commits() {
    let (db, table) = default_db();
    let pn = db.processing_node();
    let rid = db.bulk_load(&table, vec![row(1, 0, "v1")]).unwrap()[0];

    let mut old_txn = pn.begin().unwrap();
    // A concurrent writer commits an update.
    let mut writer = pn.begin().unwrap();
    writer.update(&table, rid, row(1, 0, "v2")).unwrap();
    writer.commit().unwrap();
    // The old snapshot still reads v1 (repeatable, consistent snapshot).
    assert_eq!(row_payload(&old_txn.get(&table, rid).unwrap().unwrap()), b"v1");
    assert_eq!(row_payload(&old_txn.get(&table, rid).unwrap().unwrap()), b"v1");
    old_txn.commit().unwrap();
    // A fresh transaction sees v2.
    let mut fresh = pn.begin().unwrap();
    assert_eq!(row_payload(&fresh.get(&table, rid).unwrap().unwrap()), b"v2");
    fresh.commit().unwrap();
}

#[test]
fn write_write_conflict_aborts_second_committer() {
    let (db, table) = default_db();
    let pn = db.processing_node();
    let rid = db.bulk_load(&table, vec![row(7, 0, "base")]).unwrap()[0];

    let mut t1 = pn.begin().unwrap();
    let mut t2 = pn.begin().unwrap();
    t1.update(&table, rid, row(7, 0, "from-t1")).unwrap();
    t2.update(&table, rid, row(7, 0, "from-t2")).unwrap();
    t1.commit().unwrap();
    // t2 read the record before t1 applied: its LL/SC must fail (§4.1
    // scenario two).
    assert_eq!(t2.commit().unwrap_err(), Error::Conflict);

    let mut check = pn.begin().unwrap();
    assert_eq!(row_payload(&check.get(&table, rid).unwrap().unwrap()), b"from-t1");
    check.commit().unwrap();
    assert_eq!(pn.metrics().conflicts(), 1);
}

#[test]
fn conflict_rollback_leaves_no_dirty_versions() {
    let (db, table) = default_db();
    let pn = db.processing_node();
    let rids = db.bulk_load(&table, vec![row(1, 0, "a"), row(2, 0, "b")]).unwrap();

    // t2 updates BOTH records; t1 races it on only one, so t2's first
    // apply may succeed while the other conflicts — rollback must revert
    // the applied one.
    let mut t2 = pn.begin().unwrap();
    t2.update(&table, rids[0], row(1, 0, "t2-a")).unwrap();
    t2.update(&table, rids[1], row(2, 0, "t2-b")).unwrap();
    let mut t1 = pn.begin().unwrap();
    t1.update(&table, rids[1], row(2, 0, "t1-b")).unwrap();
    t1.commit().unwrap();
    assert_eq!(t2.commit().unwrap_err(), Error::Conflict);

    let mut check = pn.begin().unwrap();
    assert_eq!(row_payload(&check.get(&table, rids[0]).unwrap().unwrap()), b"a");
    assert_eq!(row_payload(&check.get(&table, rids[1]).unwrap().unwrap()), b"t1-b");
    check.commit().unwrap();
}

#[test]
fn delete_writes_tombstone() {
    let (db, table) = default_db();
    let pn = db.processing_node();
    let rid = db.bulk_load(&table, vec![row(5, 0, "doomed")]).unwrap()[0];

    let mut reader_before = pn.begin().unwrap();
    let mut t = pn.begin().unwrap();
    t.delete(&table, rid).unwrap();
    assert_eq!(t.get(&table, rid).unwrap(), None, "own delete visible");
    t.commit().unwrap();

    // Snapshot from before the delete still sees the row.
    assert!(reader_before.get(&table, rid).unwrap().is_some());
    reader_before.commit().unwrap();
    // New snapshots do not.
    let mut after = pn.begin().unwrap();
    assert_eq!(after.get(&table, rid).unwrap(), None);
    after.commit().unwrap();
}

#[test]
fn update_missing_row_is_not_found() {
    let (db, table) = default_db();
    let pn = db.processing_node();
    let mut t = pn.begin().unwrap();
    assert_eq!(t.update(&table, Rid(9999), row(1, 0, "x")).unwrap_err(), Error::NotFound);
    t.abort().unwrap();
}

#[test]
fn operations_on_finished_transaction_fail() {
    let (db, table) = default_db();
    let pn = db.processing_node();
    let mut t = pn.begin().unwrap();
    t.insert(&table, row(1, 0, "x")).unwrap();
    t.commit().unwrap();
    assert!(matches!(t.get(&table, Rid(1)), Err(Error::InvalidOperation(_))));
    assert!(matches!(t.commit(), Err(Error::InvalidOperation(_))));
}

#[test]
fn unique_index_rejects_duplicates() {
    let (db, table) = default_db();
    let pn = db.processing_node();
    let mut t1 = pn.begin().unwrap();
    t1.insert(&table, row(42, 0, "first")).unwrap();
    // Duplicate inside the same transaction.
    assert!(matches!(t1.insert(&table, row(42, 1, "dup")), Err(Error::InvalidOperation(_))));
    t1.commit().unwrap();
    // Duplicate from a later transaction.
    let mut t2 = pn.begin().unwrap();
    assert!(matches!(t2.insert(&table, row(42, 2, "dup")), Err(Error::InvalidOperation(_))));
    t2.abort().unwrap();
}

#[test]
fn index_lookup_finds_by_pk_and_group() {
    let (db, table) = default_db();
    let pn = db.processing_node();
    db.bulk_load(&table, vec![row(1, 10, "a"), row(2, 10, "b"), row(3, 20, "c")]).unwrap();
    let pk_idx = table.primary_index().id;
    let grp_idx = table.index("by_group").unwrap().id;

    let mut t = pn.begin().unwrap();
    let hit = t.index_lookup(&table, pk_idx, &pk_bytes(2)).unwrap();
    assert_eq!(hit.len(), 1);
    assert_eq!(row_payload(&hit[0].1), b"b");

    let grp = t.index_lookup(&table, grp_idx, &group_bytes(10)).unwrap();
    assert_eq!(grp.len(), 2);
    let grp20 = t.index_lookup(&table, grp_idx, &group_bytes(20)).unwrap();
    assert_eq!(grp20.len(), 1);
    assert!(t.index_lookup(&table, grp_idx, &group_bytes(99)).unwrap().is_empty());
    t.commit().unwrap();
}

#[test]
fn index_sees_own_uncommitted_writes() {
    let (db, table) = default_db();
    let pn = db.processing_node();
    let grp_idx = table.index("by_group").unwrap().id;
    let mut t = pn.begin().unwrap();
    let rid = t.insert(&table, row(8, 55, "mine")).unwrap();
    let hits = t.index_lookup(&table, grp_idx, &group_bytes(55)).unwrap();
    assert_eq!(hits, vec![(rid, row(8, 55, "mine"))]);
    t.commit().unwrap();
}

#[test]
fn key_changing_update_respects_snapshots() {
    let (db, table) = default_db();
    let pn = db.processing_node();
    let rid = db.bulk_load(&table, vec![row(1, 10, "move-me")]).unwrap()[0];
    let grp_idx = table.index("by_group").unwrap().id;

    let mut old_snapshot = pn.begin().unwrap();
    let mut mover = pn.begin().unwrap();
    mover.update(&table, rid, row(1, 20, "move-me")).unwrap();
    mover.commit().unwrap();

    // Old snapshot: row is still in group 10 (version-unaware index entry
    // verified against the *visible* version).
    let hits = old_snapshot.index_lookup(&table, grp_idx, &group_bytes(10)).unwrap();
    assert_eq!(hits.len(), 1, "old snapshot finds the old key");
    assert!(old_snapshot.index_lookup(&table, grp_idx, &group_bytes(20)).unwrap().is_empty());
    old_snapshot.commit().unwrap();

    // New snapshot: group 20 only. The stale group-10 entry is a false
    // positive that verification filters out.
    let mut fresh = pn.begin().unwrap();
    assert!(fresh.index_lookup(&table, grp_idx, &group_bytes(10)).unwrap().is_empty());
    assert_eq!(fresh.index_lookup(&table, grp_idx, &group_bytes(20)).unwrap().len(), 1);
    fresh.commit().unwrap();
}

#[test]
fn index_range_scan() {
    let (db, table) = default_db();
    let pn = db.processing_node();
    db.bulk_load(&table, (1..=20).map(|i| row(i, 0, "x")).collect()).unwrap();
    let pk_idx = table.primary_index().id;
    let mut t = pn.begin().unwrap();
    let rows = t.index_range(&table, pk_idx, &pk_bytes(5), Some(&pk_bytes(10)), 100).unwrap();
    assert_eq!(rows.len(), 5);
    assert_eq!(row_pk(&rows.first().unwrap().2), 5);
    assert_eq!(row_pk(&rows.last().unwrap().2), 9);
    // Limit.
    let limited = t.index_range(&table, pk_idx, &pk_bytes(0), None, 3).unwrap();
    assert_eq!(limited.len(), 3);
    t.commit().unwrap();
}

#[test]
fn table_scan_and_pushdown_agree() {
    let (db, table) = default_db();
    let pn = db.processing_node();
    db.bulk_load(&table, (1..=30).map(|i| row(i, (i % 3) as u8, "p")).collect()).unwrap();
    let mut t = pn.begin().unwrap();
    let all = t.scan_table(&table, usize::MAX).unwrap();
    assert_eq!(all.len(), 30);
    let filtered = t.scan_table_pushdown(&table, usize::MAX, |r| r[8] == 1).unwrap();
    assert_eq!(filtered.len(), 10);
    assert!(filtered.iter().all(|(_, r)| r[8] == 1));
    t.commit().unwrap();
}

#[test]
fn predicate_pushdown_scan_agrees_with_closure_scan() {
    let (db, table) = default_db();
    let pn = db.processing_node();
    db.bulk_load(&table, (1..=30).map(|i| row(i, (i % 3) as u8, "p")).collect()).unwrap();
    // Move one row into group 1 so its record carries two versions and
    // takes the conservative (ship + re-verify on the PN) pushdown path.
    let pk_idx = table.primary_index().id;
    let mut t = pn.begin().unwrap();
    let hit = t.index_lookup(&table, pk_idx, &pk_bytes(3)).unwrap();
    t.update(&table, hit[0].0, row(3, 1, "p")).unwrap();
    t.commit().unwrap();

    let group_is_1 = tell_store::Predicate::value_eq(8, vec![1u8]);
    let mut t = pn.begin().unwrap();
    let via_closure = t.scan_table_pushdown(&table, usize::MAX, |r| r[8] == 1).unwrap();
    let via_predicate = t.scan_table_pushdown_filtered(&table, usize::MAX, &group_is_1).unwrap();
    assert_eq!(via_closure, via_predicate);
    assert_eq!(via_predicate.len(), 11);
    // The transaction's own uncommitted writes merge into the result too.
    let rid = t.insert(&table, row(99, 1, "own")).unwrap();
    let with_own = t.scan_table_pushdown_filtered(&table, usize::MAX, &group_is_1).unwrap();
    assert_eq!(with_own.len(), 12);
    assert!(with_own.iter().any(|(r, _)| *r == rid));
    t.commit().unwrap();
}

#[test]
fn empty_transaction_commits_cheaply() {
    let (db, _) = default_db();
    let pn = db.processing_node();
    let mut t = pn.begin().unwrap();
    t.commit().unwrap();
    assert_eq!(pn.metrics().committed(), 1);
}

#[test]
fn dropped_transaction_counts_as_abort() {
    let (db, table) = default_db();
    let pn = db.processing_node();
    {
        let mut t = pn.begin().unwrap();
        t.insert(&table, row(1, 0, "never")).unwrap();
        // dropped without commit/abort
    }
    assert_eq!(pn.metrics().aborted(), 1);
    let mut check = pn.begin().unwrap();
    let pk_idx = table.primary_index().id;
    assert!(check.index_lookup(&table, pk_idx, &pk_bytes(1)).unwrap().is_empty());
    check.commit().unwrap();
}

#[test]
fn run_retries_conflicts_to_success() {
    let (db, table) = default_db();
    let rid = db.bulk_load(&table, vec![row(1, 0, "0")]).unwrap()[0];
    let threads = 4;
    let per = 25;
    let mut handles = Vec::new();
    for _ in 0..threads {
        let db = Arc::clone(&db);
        let table = Arc::clone(&table);
        handles.push(std::thread::spawn(move || {
            let pn = db.processing_node();
            for _ in 0..per {
                pn.run(1000, |t| {
                    let cur = t.get(&table, rid)?.unwrap();
                    let n: u64 = std::str::from_utf8(row_payload(&cur)).unwrap().parse().unwrap();
                    t.update(&table, rid, row(1, 0, &(n + 1).to_string()))
                })
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let pn = db.processing_node();
    let mut t = pn.begin().unwrap();
    let final_row = t.get(&table, rid).unwrap().unwrap();
    let n: u64 = std::str::from_utf8(row_payload(&final_row)).unwrap().parse().unwrap();
    assert_eq!(n, (threads * per) as u64, "no lost updates under SI");
    t.commit().unwrap();
}

#[test]
fn recovery_rolls_back_partial_commits() {
    let (db, table) = default_db();
    let rid = db.bulk_load(&table, vec![row(1, 0, "stable")]).unwrap()[0];

    // Simulate a PN that crashed mid-commit: log entry written, update
    // applied, but no commit flag and no CM notification.
    let failed_pn_id;
    let dirty_tid;
    {
        let pn = db.processing_node();
        failed_pn_id = pn.id();
        let t = pn.begin().unwrap();
        dirty_tid = t.tid();
        let client = db.admin_client();
        // Write the uncommitted log entry.
        tell_core::txlog::append(
            &client,
            &tell_core::txlog::LogEntry {
                tid: dirty_tid,
                pn: failed_pn_id,
                timestamp_us: 0,
                write_set: vec![(table.id, rid)],
                committed: false,
            },
        )
        .unwrap();
        // Apply the update directly (what commit() would have done).
        let key = tell_store::keys::record(table.id, rid);
        let (token, raw) = client.get(&key).unwrap().unwrap();
        let mut rec = tell_core::VersionedRecord::decode(&raw).unwrap();
        rec.add_version(dirty_tid, Some(row(1, 0, "dirty")));
        client.store_conditional(&key, token, rec.encode()).unwrap();
        std::mem::forget(t); // the PN is gone; nobody aborts this txn
    }

    // Before recovery the dirty version exists but is invisible (not in
    // any snapshot: the tid never committed).
    let pn2 = db.processing_node();
    let mut reader = pn2.begin().unwrap();
    assert_eq!(row_payload(&reader.get(&table, rid).unwrap().unwrap()), b"stable");
    reader.commit().unwrap();

    let report = recover_failed_pn(&db, failed_pn_id).unwrap();
    assert_eq!(report.rolled_back, 1);
    assert_eq!(report.versions_reverted, 1);

    // The dirty version is physically gone.
    let client = db.admin_client();
    let (_, raw) = client.get(&tell_store::keys::record(table.id, rid)).unwrap().unwrap();
    let rec = tell_core::VersionedRecord::decode(&raw).unwrap();
    assert!(!rec.has_version(dirty_tid.raw()));
    // Recovery is idempotent: the resolved transaction is now below the
    // lav (rolling checkpoint), so a second pass has nothing to do.
    let again = recover_failed_pn(&db, failed_pn_id).unwrap();
    assert_eq!(again.rolled_back, 0);
    assert_eq!(again.versions_reverted, 0);
}

#[test]
fn gc_prunes_old_versions_and_dead_records() {
    let (db, table) = default_db();
    let pn = db.processing_node();
    let rids = db.bulk_load(&table, vec![row(1, 1, "a"), row(2, 1, "b")]).unwrap();

    // Ten updates to record 0; then delete record 1.
    for i in 0..10 {
        pn.run(10, |t| t.update(&table, rids[0], row(1, 1, &format!("v{i}")))).unwrap();
    }
    pn.run(10, |t| t.delete(&table, rids[1])).unwrap();

    // All transactions finished → lav is high; sweep.
    let report = run_gc(&db).unwrap();
    assert!(report.versions_removed > 0, "old versions pruned: {report:?}");
    assert_eq!(report.records_deleted, 1, "tombstoned record removed");
    assert!(report.log_entries_removed > 0);

    let client = db.admin_client();
    let (_, raw) = client.get(&tell_store::keys::record(table.id, rids[0])).unwrap().unwrap();
    let rec = tell_core::VersionedRecord::decode(&raw).unwrap();
    assert_eq!(rec.version_count(), 1, "only the newest visible version remains");
    assert!(client.get(&tell_store::keys::record(table.id, rids[1])).unwrap().is_none());

    // Data still correct afterwards.
    let mut t = pn.begin().unwrap();
    assert_eq!(row_payload(&t.get(&table, rids[0]).unwrap().unwrap()), b"v9");
    assert_eq!(t.get(&table, rids[1]).unwrap(), None);
    t.commit().unwrap();
}

#[test]
fn gc_removes_dead_index_entries() {
    let (db, table) = default_db();
    let pn = db.processing_node();
    let rid = db.bulk_load(&table, vec![row(1, 10, "x")]).unwrap()[0];
    // Move the row out of group 10.
    pn.run(10, |t| t.update(&table, rid, row(1, 20, "x"))).unwrap();
    let report = run_gc(&db).unwrap();
    assert!(report.index_entries_removed >= 1, "{report:?}");
    // Tree no longer contains the group-10 entry at all.
    let grp_idx = table.index("by_group").unwrap().id;
    let tree =
        tell_index::DistributedBTree::open(db.admin_client(), grp_idx, db.config().btree.clone())
            .unwrap();
    assert!(tree.lookup(&group_bytes(10)).unwrap().is_empty());
    assert_eq!(tree.lookup(&group_bytes(20)).unwrap(), vec![rid.raw()]);
}

#[test]
fn all_buffer_strategies_preserve_correctness() {
    for buffer in [
        BufferConfig::TransactionOnly,
        BufferConfig::Shared { capacity: 64 },
        BufferConfig::SharedVersionSync { capacity: 64, cache_unit: 4 },
    ] {
        let (db, table) = make_db(TellConfig { buffer: buffer.clone(), ..TellConfig::default() });
        let rids = db.bulk_load(&table, (1..=8).map(|i| row(i, 0, "0")).collect()).unwrap();
        let group = db.pn_group();
        let threads = 3;
        let per = 20;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let db = Arc::clone(&db);
            let table = Arc::clone(&table);
            let group = Arc::clone(&group);
            let rids = rids.clone();
            handles.push(std::thread::spawn(move || {
                let pn = db.processing_node_in_group(&group);
                for i in 0..per {
                    let rid = rids[i % rids.len()];
                    pn.run(1000, |t| {
                        let cur = t.get(&table, rid)?.unwrap();
                        let n: u64 =
                            std::str::from_utf8(row_payload(&cur)).unwrap().parse().unwrap();
                        let pk = row_pk(&cur);
                        t.update(&table, rid, row(pk, 0, &(n + 1).to_string()))
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Total increments must equal threads * per across all rows.
        let pn = db.processing_node_in_group(&group);
        let mut t = pn.begin().unwrap();
        let mut total = 0u64;
        for rid in &rids {
            let r = t.get(&table, *rid).unwrap().unwrap();
            total += std::str::from_utf8(row_payload(&r)).unwrap().parse::<u64>().unwrap();
        }
        t.commit().unwrap();
        assert_eq!(total, (threads * per) as u64, "strategy {}", buffer.label());
    }
}

#[test]
fn replication_survives_storage_node_failure_mid_workload() {
    let (db, table) =
        make_db(TellConfig { storage_nodes: 3, replication_factor: 3, ..TellConfig::default() });
    let rids = db.bulk_load(&table, (1..=10).map(|i| row(i, 0, "x")).collect()).unwrap();
    let pn = db.processing_node();
    pn.run(10, |t| t.update(&table, rids[0], row(1, 0, "before"))).unwrap();
    db.store().kill_node(tell_common::SnId(0));
    // Everything still readable and writable.
    pn.run(10, |t| t.update(&table, rids[1], row(2, 0, "after"))).unwrap();
    let mut t = pn.begin().unwrap();
    assert_eq!(row_payload(&t.get(&table, rids[0]).unwrap().unwrap()), b"before");
    assert_eq!(row_payload(&t.get(&table, rids[1]).unwrap().unwrap()), b"after");
    for rid in &rids[2..] {
        assert!(t.get(&table, *rid).unwrap().is_some());
    }
    t.commit().unwrap();
}

#[test]
fn unsampled_conflict_abort_synthesizes_root_span() {
    let (db, table) = default_db();
    tell_obs::set_enabled(true);
    let rid = db.bulk_load(&table, vec![row(99, 0, "base")]).unwrap()[0];

    // A fresh thread, so span sampling is deterministic: the first
    // transaction is always sampled; everything after it (for the next
    // SPAN_SAMPLE_EVERY - 1 begins) is not.
    let worker = {
        let db = Arc::clone(&db);
        let table = Arc::clone(&table);
        std::thread::spawn(move || {
            let pn = db.processing_node();
            // Burn the always-sampled first transaction.
            let mut burn = pn.begin().unwrap();
            burn.update(&table, rid, row(99, 0, "warm")).unwrap();
            burn.commit().unwrap();
            // This one is unsampled: it records no spans while running.
            let mut loser = pn.begin().unwrap();
            let loser_trace = tell_obs::current_trace().unwrap();
            loser.update(&table, rid, row(99, 0, "loser")).unwrap();
            let mut winner = pn.begin().unwrap();
            winner.update(&table, rid, row(99, 0, "winner")).unwrap();
            winner.commit().unwrap();
            assert_eq!(loser.commit().unwrap_err(), Error::Conflict);
            loser_trace
        })
    };
    let loser_trace = worker.join().unwrap();

    // The conflict abort must still be visible: exactly one synthesized
    // root span, nothing else from that trace.
    let spans: Vec<_> = tell_obs::span::global_ring()
        .drain()
        .into_iter()
        .filter(|s| s.trace == loser_trace)
        .collect();
    assert_eq!(spans.len(), 1, "expected only the synthesized root, got {spans:?}");
    let root = &spans[0];
    assert_eq!(root.kind, tell_obs::SpanKind::Txn);
    assert_eq!(root.parent, 0);
    assert_eq!(root.attrs.status, tell_obs::SpanStatus::Conflict);
    assert!(root.end_virt_us >= root.start_virt_us);
    assert!(root.end_wall_us >= root.start_wall_us);
}

//! Property tests for the transaction layer's data structures and for
//! serializability-adjacent invariants of snapshot isolation itself.

use bytes::Bytes;
use proptest::prelude::*;
use std::sync::Arc;
use tell_commitmgr::SnapshotDescriptor;
use tell_common::{BitSet, TxnId};
use tell_core::database::IndexSpec;
use tell_core::{Database, TellConfig, VersionedRecord};

fn snapshot_strategy() -> impl Strategy<Value = SnapshotDescriptor> {
    (0u64..100, prop::collection::btree_set(1u64..64, 0..16)).prop_map(|(base, newly)| {
        let mut bits = BitSet::new();
        for n in newly {
            bits.set(n as usize - 1);
        }
        SnapshotDescriptor::new(base, bits)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A versioned record roundtrips through its store encoding for any
    /// set of versions/tombstones, and `visible` always returns the highest
    /// version inside the snapshot.
    #[test]
    fn record_roundtrip_and_visibility(
        versions in prop::collection::btree_map(0u64..200, prop::option::of(prop::collection::vec(any::<u8>(), 0..16)), 1..12),
        snapshot in snapshot_strategy(),
    ) {
        let mut rec = VersionedRecord::empty();
        for (v, payload) in &versions {
            rec.add_version(TxnId(*v), payload.clone().map(Bytes::from));
        }
        let decoded = VersionedRecord::decode(&rec.encode()).unwrap();
        prop_assert_eq!(&decoded, &rec);

        let expected = versions
            .iter()
            .filter(|(v, _)| snapshot.contains(**v))
            .max_by_key(|(v, _)| **v);
        match (rec.visible(&snapshot), expected) {
            (Some(got), Some((v, payload))) => {
                prop_assert_eq!(got.version, *v);
                prop_assert_eq!(
                    got.payload.as_ref().map(|b| b.to_vec()),
                    payload.clone()
                );
            }
            (None, None) => {}
            (got, expected) => prop_assert!(false, "got {:?} expected {:?}", got, expected),
        }
    }

    /// GC never removes a version visible to any snapshot at or above the
    /// lav, and is idempotent.
    #[test]
    fn gc_preserves_visibility_at_or_above_lav(
        versions in prop::collection::btree_set(0u64..100, 1..12),
        lav in 0u64..120,
    ) {
        let mut rec = VersionedRecord::empty();
        for v in &versions {
            rec.add_version(TxnId(*v), Some(Bytes::from(v.to_be_bytes().to_vec())));
        }
        let mut gced = rec.clone();
        gced.gc(lav);
        // For every base >= lav, the visible version is unchanged.
        for base in lav..130 {
            let snap = SnapshotDescriptor::new(base, BitSet::new());
            prop_assert_eq!(
                rec.visible(&snap).map(|v| v.version),
                gced.visible(&snap).map(|v| v.version),
                "base {}", base
            );
        }
        let once = gced.clone();
        gced.gc(lav);
        prop_assert_eq!(gced, once, "gc is idempotent");
    }

    /// Snapshot subset relation is a partial order consistent with
    /// membership: a ⊆ b implies every version visible in a is visible in b.
    #[test]
    fn snapshot_subset_soundness(a in snapshot_strategy(), b in snapshot_strategy()) {
        if a.is_subset_of(&b) {
            for v in 0..200u64 {
                if a.contains(v) {
                    prop_assert!(b.contains(v), "v={} in a but not b", v);
                }
            }
        }
        // Reflexivity.
        prop_assert!(a.is_subset_of(&a));
        // with_added only grows the set.
        let grown = a.with_added(TxnId(150));
        prop_assert!(a.is_subset_of(&grown));
        prop_assert!(grown.contains(150));
    }
}

// Randomized concurrent increment workloads preserve the sum invariant
// under snapshot isolation regardless of the thread/key schedule.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn concurrent_increments_never_lose_updates(
        schedule in prop::collection::vec((0u8..3, 0u8..4), 8..40),
        seed in any::<u64>(),
    ) {
        let _ = seed;
        let db = Database::create(TellConfig::default());
        let table = db
            .create_table(
                "counters",
                vec![IndexSpec::new("pk", true, |r: &[u8]| r.get(8..16).map(Bytes::copy_from_slice))],
            )
            .unwrap();
        let encode = |v: u64, id: u64| -> Bytes {
            let mut b = v.to_be_bytes().to_vec();
            b.extend_from_slice(&id.to_be_bytes());
            Bytes::from(b)
        };
        let rids = db
            .bulk_load(&table, (0..4u64).map(|i| encode(0, i)).collect())
            .unwrap();

        // Partition the schedule among 3 threads, each incrementing its
        // assigned keys.
        let mut per_thread: Vec<Vec<u8>> = vec![Vec::new(); 3];
        for (t, k) in &schedule {
            per_thread[*t as usize].push(*k);
        }
        let handles: Vec<_> = per_thread
            .into_iter()
            .map(|keys| {
                let db = Arc::clone(&db);
                let table = Arc::clone(&table);
                let rids = rids.clone();
                std::thread::spawn(move || {
                    let pn = db.processing_node();
                    for k in keys {
                        let rid = rids[k as usize];
                        pn.run(10_000, |txn| {
                            let row = txn.get(&table, rid)?.unwrap();
                            let v = u64::from_be_bytes(row[..8].try_into().unwrap());
                            let id = u64::from_be_bytes(row[8..16].try_into().unwrap());
                            let mut b = (v + 1).to_be_bytes().to_vec();
                            b.extend_from_slice(&id.to_be_bytes());
                            txn.update(&table, rid, Bytes::from(b))
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let pn = db.processing_node();
        let mut txn = pn.begin().unwrap();
        let mut total = 0u64;
        for rid in &rids {
            let row = txn.get(&table, *rid).unwrap().unwrap();
            total += u64::from_be_bytes(row[..8].try_into().unwrap());
        }
        txn.commit().unwrap();
        prop_assert_eq!(total as usize, schedule.len());
    }
}

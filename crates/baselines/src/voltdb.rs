//! The VoltDB/H-Store-style baseline (§6.4).
//!
//! "VoltDB is an in-memory relational database that partitions data and
//! serially executes transactions on each partition." Single-partition
//! transactions run without any concurrency control on their partition's
//! single-threaded executor; multi-partition transactions require
//! cluster-wide coordination that blocks *every* partition — which is why
//! "throughput decreases the more nodes are added" under the standard mix
//! (≈11.25 % cross-partition transactions), and why it wins on the
//! perfectly shardable mix (Fig 9).

use tell_netsim::ResourcePool;
use tell_tpcc::gen::ScaleParams;
use tell_tpcc::mix::TxnRequest;

use crate::exec;
use crate::partstore::PartitionedDb;
use crate::sim::{ExecResult, SimEngine};

/// Cost model of the VoltDB-like engine.
#[derive(Clone, Debug)]
pub struct VoltDbConfig {
    /// Cluster nodes (8 cores each in the paper).
    pub nodes: usize,
    /// Partitions per node ("6 partitions per node as advised in the
    /// official documentation").
    pub partitions_per_node: usize,
    /// K-safety: number of *extra* synchronous copies (RF3 ⇔ k = 2). Every
    /// copy replays the partition's work, so k-safety divides the number of
    /// unique partitions the same hardware can host.
    pub k_factor: usize,
    /// Executor CPU per row operation (pre-compiled stored procedures).
    pub op_cpu_us: f64,
    /// Fixed per-transaction cost (routing, initiation, command log).
    pub txn_fixed_us: f64,
    /// Client↔cluster round trip ("TCP/IP over InfiniBand").
    pub client_rtt_us: f64,
    /// Base coordination cost of a multi-partition transaction
    /// (cluster-wide fence + two-phase completion).
    pub multi_partition_us: f64,
    /// Additional multi-partition coordination cost per cluster node — the
    /// fence gets more expensive as the cluster grows, which is why
    /// VoltDB's standard-mix throughput *decreases* with size (Fig 8).
    pub multi_partition_per_node_us: f64,
}

impl VoltDbConfig {
    /// Defaults tuned to reproduce the paper's *shape* (see EXPERIMENTS.md).
    pub fn new(nodes: usize, k_factor: usize) -> Self {
        VoltDbConfig {
            nodes,
            partitions_per_node: 6,
            k_factor,
            // Interpreted row work inside Java stored procedures: the
            // paper's measured VoltDB peak (~800 tps per partition on
            // TPC-C) implies ~1-2 ms of executor time per transaction.
            op_cpu_us: 20.0,
            txn_fixed_us: 100.0,
            client_rtt_us: 60.0,
            multi_partition_us: 3000.0,
            multi_partition_per_node_us: 900.0,
        }
    }

    /// Unique (non-replica) partitions the cluster can host.
    pub fn unique_partitions(&self) -> usize {
        ((self.nodes * self.partitions_per_node) / (self.k_factor + 1)).max(1)
    }
}

/// The engine.
pub struct VoltDb {
    config: VoltDbConfig,
    db: PartitionedDb,
    executors: ResourcePool,
}

impl VoltDb {
    /// Build and load.
    pub fn load(config: VoltDbConfig, warehouses: i64, scale: ScaleParams, seed: u64) -> Self {
        let partitions = config.unique_partitions();
        VoltDb {
            db: PartitionedDb::load(partitions, warehouses, scale, seed),
            executors: ResourcePool::new(partitions),
            config,
        }
    }

    /// Partition executor utilisation diagnostics.
    pub fn busiest_partition_time(&self) -> f64 {
        (0..self.executors.len()).map(|i| self.executors.busy_time(i)).fold(0.0, f64::max)
    }
}

impl SimEngine for VoltDb {
    fn name(&self) -> &'static str {
        "VoltDB-like"
    }

    fn execute(&mut self, req: &TxnRequest, arrival_us: f64) -> ExecResult {
        let stats = exec::run(&mut self.db, req, arrival_us as i64);
        let service = self.config.txn_fixed_us + stats.ops() as f64 * self.config.op_cpu_us;
        let enter = arrival_us + self.config.client_rtt_us / 2.0;
        let done = if stats.single_partition() {
            let pid = stats.partitions.first().copied().unwrap_or(0);
            self.executors.occupy(pid, enter, service)
        } else {
            // A multi-partition transaction stalls the whole cluster.
            let all: Vec<usize> = (0..self.executors.len()).collect();
            let coordination = self.config.multi_partition_us
                + self.config.multi_partition_per_node_us * self.config.nodes as f64;
            self.executors.occupy_all(&all, enter, service + coordination)
        };
        ExecResult {
            completion_us: done + self.config.client_rtt_us / 2.0,
            committed: stats.committed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{run_sim, SimConfig};
    use tell_tpcc::mix::Mix;

    fn cfg(mix: Mix, terminals: usize) -> SimConfig {
        SimConfig {
            warehouses: 24,
            scale: ScaleParams::tiny(),
            mix,
            terminals,
            total_txns: 4000,
            seed: 3,
        }
    }

    #[test]
    fn k_factor_divides_partitions() {
        assert_eq!(VoltDbConfig::new(3, 0).unique_partitions(), 18);
        assert_eq!(VoltDbConfig::new(3, 2).unique_partitions(), 6);
    }

    #[test]
    fn shardable_mix_scales_with_nodes() {
        let small = run_sim(
            &mut VoltDb::load(VoltDbConfig::new(1, 0), 24, ScaleParams::tiny(), 1),
            &cfg(Mix::shardable(), 24),
        );
        let large = run_sim(
            &mut VoltDb::load(VoltDbConfig::new(4, 0), 24, ScaleParams::tiny(), 1),
            &cfg(Mix::shardable(), 96),
        );
        assert!(
            large.tpmc > small.tpmc * 2.0,
            "shardable VoltDB must scale: {} -> {}",
            small.tpmc,
            large.tpmc
        );
    }

    #[test]
    fn standard_mix_does_not_scale() {
        let small = run_sim(
            &mut VoltDb::load(VoltDbConfig::new(1, 0), 24, ScaleParams::tiny(), 1),
            &cfg(Mix::standard(), 24),
        );
        let large = run_sim(
            &mut VoltDb::load(VoltDbConfig::new(4, 0), 24, ScaleParams::tiny(), 1),
            &cfg(Mix::standard(), 96),
        );
        assert!(
            large.tpmc < small.tpmc * 1.5,
            "cross-partition txns must prevent scaling: {} -> {}",
            small.tpmc,
            large.tpmc
        );
    }

    #[test]
    fn multi_partition_latency_is_much_higher_than_single() {
        // Table 4's story: the shardable workload slashes VoltDB latency.
        let standard = run_sim(
            &mut VoltDb::load(VoltDbConfig::new(3, 0), 24, ScaleParams::tiny(), 1),
            &cfg(Mix::standard(), 72),
        );
        let shardable = run_sim(
            &mut VoltDb::load(VoltDbConfig::new(3, 0), 24, ScaleParams::tiny(), 1),
            &cfg(Mix::shardable(), 72),
        );
        assert!(
            standard.latency.mean() > shardable.latency.mean() * 3.0,
            "standard {} vs shardable {}",
            standard.latency.mean(),
            shardable.latency.mean()
        );
    }

    #[test]
    fn data_stays_consistent() {
        let mut engine = VoltDb::load(VoltDbConfig::new(2, 0), 24, ScaleParams::tiny(), 1);
        run_sim(&mut engine, &cfg(Mix::standard(), 16));
        // District counters only ever grow; orders exist for every counter
        // value (spot check one district).
        use crate::partstore::pk_of;
        use tell_sql::Value;
        use tell_tpcc::gen::TpccTable;
        let key = pk_of(TpccTable::District, &[Value::Int(1), Value::Int(1)]);
        let pid = engine.db.partition_of(1);
        let d = engine.db.get(pid, TpccTable::District, &key).unwrap();
        let next = d[tell_tpcc::schema::col::dist::NEXT_O_ID].as_i64().unwrap();
        assert!(next > ScaleParams::tiny().initial_orders_per_district);
    }
}

//! Closed-loop terminal simulation in virtual time.
//!
//! Terminals "continuously send requests" (§6.2, wait times removed): each
//! terminal issues its next transaction the moment the previous one
//! completes. The engines advance partition/service resource clocks; the
//! simulator advances terminals in completion order, so queueing delays
//! emerge naturally (this is what produces VoltDB's enormous
//! multi-partition latencies in Table 4).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tell_common::Histogram;
use tell_tpcc::gen::ScaleParams;
use tell_tpcc::mix::{Mix, ParamGen, TxnRequest, TxnType};

/// Outcome of one transaction execution.
#[derive(Clone, Copy, Debug)]
pub struct ExecResult {
    /// Virtual time at which the client sees the response.
    pub completion_us: f64,
    /// False for intentional rollbacks.
    pub committed: bool,
}

/// A baseline engine: executes one transaction arriving at a given virtual
/// time and reports when it completes.
pub trait SimEngine {
    /// Engine name for reports.
    fn name(&self) -> &'static str;
    /// Execute `req`, which the client submitted at `arrival_us`.
    fn execute(&mut self, req: &TxnRequest, arrival_us: f64) -> ExecResult;
}

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    pub warehouses: i64,
    pub scale: ScaleParams,
    pub mix: Mix,
    /// Closed-loop client count ("the number of terminal threads is
    /// selected so that the peak throughput of the SUT is reached").
    pub terminals: usize,
    /// Total transactions to issue.
    pub total_txns: usize,
    pub seed: u64,
}

/// Aggregate results.
#[derive(Clone, Debug)]
pub struct SimReport {
    pub engine: &'static str,
    pub committed: u64,
    pub new_order_commits: u64,
    pub user_rollbacks: u64,
    /// Latency of committed transactions (virtual µs).
    pub latency: Histogram,
    /// Virtual time at which the last transaction completed.
    pub horizon_us: f64,
    /// New-order commits per virtual minute.
    pub tpmc: f64,
    /// Committed transactions per virtual second.
    pub tps: f64,
}

#[derive(PartialEq)]
struct Event(f64, usize);
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// Run the closed loop until `total_txns` transactions have been issued.
pub fn run_sim(engine: &mut dyn SimEngine, cfg: &SimConfig) -> SimReport {
    let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut gens: Vec<(StdRng, ParamGen, i64)> = (0..cfg.terminals)
        .map(|t| {
            let rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(t as u64 * 104_729));
            let gen = ParamGen::new(cfg.warehouses, cfg.scale, cfg.mix.clone(), t as u64);
            let home_w = (t as i64 % cfg.warehouses) + 1;
            heap.push(Reverse(Event(0.0, t)));
            (rng, gen, home_w)
        })
        .collect();

    let mut report = SimReport {
        engine: engine.name(),
        committed: 0,
        new_order_commits: 0,
        user_rollbacks: 0,
        latency: Histogram::new(),
        horizon_us: 0.0,
        tpmc: 0.0,
        tps: 0.0,
    };

    let mut issued = 0usize;
    while issued < cfg.total_txns {
        let Reverse(Event(arrival, term)) = heap.pop().expect("terminals never exhaust");
        let (rng, gen, home_w) = &mut gens[term];
        let req = gen.generate(rng, *home_w);
        let ty = req.txn_type();
        let result = engine.execute(&req, arrival);
        debug_assert!(result.completion_us >= arrival);
        issued += 1;
        if result.committed {
            report.committed += 1;
            if ty == TxnType::NewOrder {
                report.new_order_commits += 1;
            }
            report.latency.record(result.completion_us - arrival);
        } else {
            report.user_rollbacks += 1;
        }
        report.horizon_us = report.horizon_us.max(result.completion_us);
        heap.push(Reverse(Event(result.completion_us, term)));
    }

    if report.horizon_us > 0.0 {
        report.tpmc = report.new_order_commits as f64 / (report.horizon_us / 60e6);
        report.tps = report.committed as f64 / (report.horizon_us / 1e6);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial engine with constant 1 ms latency.
    struct Constant;
    impl SimEngine for Constant {
        fn name(&self) -> &'static str {
            "constant"
        }
        fn execute(&mut self, _req: &TxnRequest, arrival_us: f64) -> ExecResult {
            ExecResult { completion_us: arrival_us + 1000.0, committed: true }
        }
    }

    #[test]
    fn closed_loop_throughput_matches_littles_law() {
        let cfg = SimConfig {
            warehouses: 2,
            scale: ScaleParams::tiny(),
            mix: Mix::standard(),
            terminals: 10,
            total_txns: 1000,
            seed: 1,
        };
        let report = run_sim(&mut Constant, &cfg);
        // 10 terminals, 1ms each => 10k tps.
        assert!((report.tps - 10_000.0).abs() / 10_000.0 < 0.05, "tps = {}", report.tps);
        assert!((report.latency.mean() - 1000.0).abs() < 1.0);
        assert_eq!(report.committed, 1000);
        // ~45% of the standard mix are new-orders.
        let no_frac = report.new_order_commits as f64 / report.committed as f64;
        assert!((no_frac - 0.45).abs() < 0.06, "new-order fraction {no_frac}");
    }
}

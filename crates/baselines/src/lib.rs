//! `tell-baselines` — the comparison systems of §6.4 and §6.5.
//!
//! Three from-scratch partitioned/shared-data engines that execute the
//! *real* TPC-C data operations on real in-memory tables, with timing
//! modelled on serial resources in virtual time (see `DESIGN.md` §1):
//!
//! * [`voltdb::VoltDb`] — an H-Store-style engine: tables partitioned by
//!   warehouse, one single-threaded executor per partition, **no
//!   concurrency control** for single-partition transactions, cluster-wide
//!   blocking coordination for multi-partition ones, optional K-factor
//!   synchronous replication.
//! * [`ndb::MySqlCluster`] — a MySQL-Cluster-like engine: SQL nodes
//!   federate per-operation requests to data nodes over TCP, synchronous
//!   replication, two-phase commit for distributed writes; single-partition
//!   transactions are *not* blocked by distributed ones.
//! * [`fdb::FoundationDb`] — a shared-data engine with **centralized**
//!   commit validation: a sequencer hands out read versions, a resolver
//!   validates write sets, the SQL layer issues per-row requests over TCP.
//!   It scales with nodes but pays for every design decision Tell avoids —
//!   the paper's "if not done right, shared-data systems show very poor
//!   performance".
//!
//! All three share [`partstore::PartitionedDb`] (partitioned row storage
//! loaded from the same `tell-tpcc` population generator), the TPC-C
//! executor [`exec`], and the closed-loop terminal simulator [`sim`].

pub mod exec;
pub mod fdb;
pub mod ndb;
pub mod partstore;
pub mod sim;
pub mod voltdb;

pub use fdb::{FdbConfig, FoundationDb};
pub use ndb::{MySqlCluster, NdbConfig};
pub use partstore::PartitionedDb;
pub use sim::{run_sim, ExecResult, SimConfig, SimEngine, SimReport};
pub use voltdb::{VoltDb, VoltDbConfig};

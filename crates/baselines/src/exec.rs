//! TPC-C transaction logic over [`PartitionedDb`], shared by all baseline
//! engines. Executes the *real* data operations (so consistency conditions
//! hold for baselines too) and reports operation counts plus the set of
//! partitions touched — the inputs to each engine's cost model.

use std::collections::BTreeSet;

use bytes::Bytes;
use tell_sql::row::{encode_key, key_prefix_successor};
use tell_sql::Value;
use tell_tpcc::gen::TpccTable;
use tell_tpcc::mix::TxnRequest;
use tell_tpcc::schema::col;
use tell_tpcc::txns::CustomerSelector;

use crate::partstore::PartitionedDb;

/// What a transaction did, for the engines' cost models.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExecStats {
    /// Row reads (point or per scanned row).
    pub reads: u32,
    /// Row writes (updates, inserts, deletes).
    pub writes: u32,
    /// Partitions the transaction touched.
    pub partitions: Vec<usize>,
    /// False for the spec's 1 % intentional new-order rollback.
    pub committed: bool,
}

impl ExecStats {
    fn touch(&mut self, pid: usize) {
        if !self.partitions.contains(&pid) {
            self.partitions.push(pid);
        }
    }

    /// Total row operations.
    pub fn ops(&self) -> u32 {
        self.reads + self.writes
    }

    /// Single-partition transaction?
    pub fn single_partition(&self) -> bool {
        self.partitions.len() <= 1
    }
}

fn ik(parts: &[i64]) -> Bytes {
    encode_key(&parts.iter().map(|v| Value::Int(*v)).collect::<Vec<_>>())
}

/// Execute one request. Mutates the store like a committed transaction
/// would (rolled-back new-orders mutate nothing).
pub fn run(db: &mut PartitionedDb, req: &TxnRequest, now: i64) -> ExecStats {
    match req {
        TxnRequest::NewOrder(p) => new_order(db, p, now),
        TxnRequest::Payment(p) => payment(db, p, now),
        TxnRequest::Delivery(p) => delivery(db, p, now),
        TxnRequest::OrderStatus(p) => order_status(db, p),
        TxnRequest::StockLevel(p) => stock_level(db, p),
    }
}

fn new_order(db: &mut PartitionedDb, p: &tell_tpcc::txns::NewOrderParams, now: i64) -> ExecStats {
    let mut s = ExecStats { committed: true, ..Default::default() };
    let home = db.partition_of(p.w_id);
    s.touch(home);
    for line in &p.items {
        s.touch(db.partition_of(line.supply_w_id));
    }

    // Reads happen regardless of the outcome (the user error is discovered
    // on the last item).
    let w_row = db.get(home, TpccTable::Warehouse, &ik(&[p.w_id])).expect("warehouse");
    let w_tax = w_row[col::wh::TAX].as_f64().unwrap();
    s.reads += 1;
    let d_key = ik(&[p.w_id, p.d_id]);
    let d_row = db.get(home, TpccTable::District, &d_key).expect("district");
    let d_tax = d_row[col::dist::TAX].as_f64().unwrap();
    let o_id = d_row[col::dist::NEXT_O_ID].as_i64().unwrap();
    s.reads += 2; // district + customer
    let _ = db.get(home, TpccTable::Customer, &ik(&[p.w_id, p.d_id, p.c_id])).expect("customer");
    let _ = (w_tax, d_tax);

    if p.rollback {
        // Item reads up to the unused id, then rollback: no writes.
        s.reads += p.items.len() as u32;
        s.committed = false;
        return s;
    }

    // District next-o-id increment.
    db.get_mut(home, TpccTable::District, &d_key).unwrap()[col::dist::NEXT_O_ID] =
        Value::Int(o_id + 1);
    s.writes += 1;

    let all_local = p.items.iter().all(|i| i.supply_w_id == p.w_id);
    db.put(
        home,
        TpccTable::Orders,
        ik(&[p.w_id, p.d_id, o_id]),
        vec![
            Value::Int(p.w_id),
            Value::Int(p.d_id),
            Value::Int(o_id),
            Value::Int(p.c_id),
            Value::Int(now),
            Value::Null,
            Value::Int(p.items.len() as i64),
            Value::Int(all_local as i64),
        ],
    );
    db.put(
        home,
        TpccTable::NewOrder,
        ik(&[p.w_id, p.d_id, o_id]),
        vec![Value::Int(p.w_id), Value::Int(p.d_id), Value::Int(o_id)],
    );
    s.writes += 2;

    for (n, line) in p.items.iter().enumerate() {
        let i_row = db.get(home, TpccTable::Item, &ik(&[line.i_id])).expect("item");
        let price = i_row[col::item::PRICE].as_f64().unwrap();
        s.reads += 1;
        let spid = db.partition_of(line.supply_w_id);
        let s_key = ik(&[line.supply_w_id, line.i_id]);
        {
            let s_row = db.get_mut(spid, TpccTable::Stock, &s_key).expect("stock");
            let q = s_row[col::stock::QUANTITY].as_i64().unwrap();
            s_row[col::stock::QUANTITY] = Value::Int(if q >= line.quantity + 10 {
                q - line.quantity
            } else {
                q - line.quantity + 91
            });
            s_row[col::stock::YTD] =
                Value::Int(s_row[col::stock::YTD].as_i64().unwrap() + line.quantity);
            s_row[col::stock::ORDER_CNT] =
                Value::Int(s_row[col::stock::ORDER_CNT].as_i64().unwrap() + 1);
            if line.supply_w_id != p.w_id {
                s_row[col::stock::REMOTE_CNT] =
                    Value::Int(s_row[col::stock::REMOTE_CNT].as_i64().unwrap() + 1);
            }
        }
        s.reads += 1;
        s.writes += 1;
        db.put(
            home,
            TpccTable::OrderLine,
            ik(&[p.w_id, p.d_id, o_id, n as i64 + 1]),
            vec![
                Value::Int(p.w_id),
                Value::Int(p.d_id),
                Value::Int(o_id),
                Value::Int(n as i64 + 1),
                Value::Int(line.i_id),
                Value::Int(line.supply_w_id),
                Value::Null,
                Value::Int(line.quantity),
                Value::Double(line.quantity as f64 * price),
                Value::Text(String::new()),
            ],
        );
        s.writes += 1;
    }
    s
}

fn find_customer(
    db: &PartitionedDb,
    pid: usize,
    w: i64,
    d: i64,
    sel: &CustomerSelector,
    s: &mut ExecStats,
) -> Bytes {
    match sel {
        CustomerSelector::ById(c) => {
            s.reads += 1;
            ik(&[w, d, *c])
        }
        CustomerSelector::ByLastName(last) => {
            let lo = ik(&[w, d]);
            let hi = key_prefix_successor(&[Value::Int(w), Value::Int(d)]);
            let mut matches: Vec<(Bytes, Vec<Value>)> = db
                .range(pid, TpccTable::Customer, &lo, Some(&hi), usize::MAX)
                .into_iter()
                .filter(|(_, r)| r[col::cust::LAST].as_str() == Some(last))
                .collect();
            // An index would touch only the matches (plus one probe).
            s.reads += matches.len() as u32 + 1;
            matches.sort_by(|a, b| a.1[col::cust::FIRST].total_cmp(&b.1[col::cust::FIRST]));
            let pos = matches.len().div_ceil(2) - 1;
            matches.swap_remove(pos).0
        }
    }
}

fn payment(db: &mut PartitionedDb, p: &tell_tpcc::txns::PaymentParams, now: i64) -> ExecStats {
    let mut s = ExecStats { committed: true, ..Default::default() };
    let home = db.partition_of(p.w_id);
    let cust_pid = db.partition_of(p.c_w_id);
    s.touch(home);
    s.touch(cust_pid);

    {
        let w = db.get_mut(home, TpccTable::Warehouse, &ik(&[p.w_id])).expect("warehouse");
        w[col::wh::YTD] = Value::Double(w[col::wh::YTD].as_f64().unwrap() + p.amount);
    }
    {
        let d = db.get_mut(home, TpccTable::District, &ik(&[p.w_id, p.d_id])).expect("district");
        d[col::dist::YTD] = Value::Double(d[col::dist::YTD].as_f64().unwrap() + p.amount);
    }
    s.reads += 2;
    s.writes += 2;

    let c_key = find_customer(db, cust_pid, p.c_w_id, p.c_d_id, &p.customer, &mut s);
    let c_id = {
        let c = db.get_mut(cust_pid, TpccTable::Customer, &c_key).expect("customer");
        c[col::cust::BALANCE] = Value::Double(c[col::cust::BALANCE].as_f64().unwrap() - p.amount);
        c[col::cust::YTD_PAYMENT] =
            Value::Double(c[col::cust::YTD_PAYMENT].as_f64().unwrap() + p.amount);
        c[col::cust::PAYMENT_CNT] = Value::Int(c[col::cust::PAYMENT_CNT].as_i64().unwrap() + 1);
        c[col::cust::ID].as_i64().unwrap()
    };
    s.writes += 1;

    db.put(
        home,
        TpccTable::History,
        ik(&[p.h_uid]),
        vec![
            Value::Int(p.h_uid),
            Value::Int(c_id),
            Value::Int(p.c_d_id),
            Value::Int(p.c_w_id),
            Value::Int(p.d_id),
            Value::Int(p.w_id),
            Value::Int(now),
            Value::Double(p.amount),
            Value::Text("payment".into()),
        ],
    );
    s.writes += 1;
    s
}

fn delivery(db: &mut PartitionedDb, p: &tell_tpcc::txns::DeliveryParams, now: i64) -> ExecStats {
    let mut s = ExecStats { committed: true, ..Default::default() };
    let home = db.partition_of(p.w_id);
    s.touch(home);
    for d in 1..=p.districts {
        let lo = ik(&[p.w_id, d]);
        let hi = key_prefix_successor(&[Value::Int(p.w_id), Value::Int(d)]);
        let oldest = db.range(home, TpccTable::NewOrder, &lo, Some(&hi), 1);
        s.reads += 1;
        let Some((no_key, no_row)) = oldest.into_iter().next() else { continue };
        let o_id = no_row[col::no::O_ID].as_i64().unwrap();
        db.remove(home, TpccTable::NewOrder, &no_key);
        s.writes += 1;

        let o_key = ik(&[p.w_id, d, o_id]);
        let c_id = {
            let o = db.get_mut(home, TpccTable::Orders, &o_key).expect("order");
            o[col::ord::CARRIER_ID] = Value::Int(p.carrier_id);
            o[col::ord::C_ID].as_i64().unwrap()
        };
        s.reads += 1;
        s.writes += 1;

        let ol_lo = ik(&[p.w_id, d, o_id]);
        let ol_hi = key_prefix_successor(&[Value::Int(p.w_id), Value::Int(d), Value::Int(o_id)]);
        let line_keys: Vec<Bytes> = db
            .range(home, TpccTable::OrderLine, &ol_lo, Some(&ol_hi), usize::MAX)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        let mut amount = 0.0;
        for k in line_keys {
            let ol = db.get_mut(home, TpccTable::OrderLine, &k).unwrap();
            amount += ol[col::ol::AMOUNT].as_f64().unwrap();
            ol[col::ol::DELIVERY_D] = Value::Int(now);
            s.reads += 1;
            s.writes += 1;
        }
        {
            let c =
                db.get_mut(home, TpccTable::Customer, &ik(&[p.w_id, d, c_id])).expect("customer");
            c[col::cust::BALANCE] = Value::Double(c[col::cust::BALANCE].as_f64().unwrap() + amount);
            c[col::cust::DELIVERY_CNT] =
                Value::Int(c[col::cust::DELIVERY_CNT].as_i64().unwrap() + 1);
        }
        s.reads += 1;
        s.writes += 1;
    }
    s
}

fn order_status(db: &mut PartitionedDb, p: &tell_tpcc::txns::OrderStatusParams) -> ExecStats {
    let mut s = ExecStats { committed: true, ..Default::default() };
    let home = db.partition_of(p.w_id);
    s.touch(home);
    let c_key = find_customer(db, home, p.w_id, p.d_id, &p.customer, &mut s);
    let c_id = db.get(home, TpccTable::Customer, &c_key).expect("customer")[col::cust::ID]
        .as_i64()
        .unwrap();
    s.reads += 1;
    // Latest order of the customer (an index scan in a real engine).
    let lo = ik(&[p.w_id, p.d_id]);
    let hi = key_prefix_successor(&[Value::Int(p.w_id), Value::Int(p.d_id)]);
    let last_o = db
        .range(home, TpccTable::Orders, &lo, Some(&hi), usize::MAX)
        .into_iter()
        .filter(|(_, r)| r[col::ord::C_ID].as_i64() == Some(c_id))
        .map(|(_, r)| r[col::ord::ID].as_i64().unwrap())
        .max();
    s.reads += 2;
    if let Some(o_id) = last_o {
        let ol_lo = ik(&[p.w_id, p.d_id, o_id]);
        let ol_hi =
            key_prefix_successor(&[Value::Int(p.w_id), Value::Int(p.d_id), Value::Int(o_id)]);
        let lines = db.range(home, TpccTable::OrderLine, &ol_lo, Some(&ol_hi), usize::MAX);
        s.reads += lines.len() as u32;
    }
    s
}

fn stock_level(db: &mut PartitionedDb, p: &tell_tpcc::txns::StockLevelParams) -> ExecStats {
    let mut s = ExecStats { committed: true, ..Default::default() };
    let home = db.partition_of(p.w_id);
    s.touch(home);
    let d = db.get(home, TpccTable::District, &ik(&[p.w_id, p.d_id])).expect("district");
    let next_o = d[col::dist::NEXT_O_ID].as_i64().unwrap();
    s.reads += 1;
    let lo = ik(&[p.w_id, p.d_id, (next_o - 20).max(1)]);
    let hi = ik(&[p.w_id, p.d_id, next_o]);
    let lines = db.range(home, TpccTable::OrderLine, &lo, Some(&hi), usize::MAX);
    s.reads += lines.len() as u32;
    let items: BTreeSet<i64> =
        lines.iter().map(|(_, r)| r[col::ol::I_ID].as_i64().unwrap()).collect();
    for i in items {
        if let Some(st) = db.get(home, TpccTable::Stock, &ik(&[p.w_id, i])) {
            let _ = st[col::stock::QUANTITY].as_i64().unwrap() < p.threshold;
        }
        s.reads += 1;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use tell_tpcc::gen::ScaleParams;
    use tell_tpcc::txns::{NewOrderParams, OrderItem, PaymentParams};

    fn db() -> PartitionedDb {
        PartitionedDb::load(2, 2, ScaleParams::tiny(), 42)
    }

    #[test]
    fn new_order_touches_supply_partitions() {
        let mut d = db();
        let local = new_order(
            &mut d,
            &NewOrderParams {
                w_id: 1,
                d_id: 1,
                c_id: 1,
                items: vec![OrderItem { i_id: 1, supply_w_id: 1, quantity: 1 }],
                rollback: false,
            },
            0,
        );
        assert!(local.single_partition());
        assert!(local.committed);
        assert!(local.writes >= 5);
        let remote = new_order(
            &mut d,
            &NewOrderParams {
                w_id: 1,
                d_id: 1,
                c_id: 1,
                items: vec![OrderItem { i_id: 1, supply_w_id: 2, quantity: 1 }],
                rollback: false,
            },
            0,
        );
        assert_eq!(remote.partitions.len(), 2);
    }

    #[test]
    fn rollback_mutates_nothing() {
        let mut d = db();
        let before = d.count(TpccTable::Orders);
        let s = new_order(
            &mut d,
            &NewOrderParams {
                w_id: 1,
                d_id: 1,
                c_id: 1,
                items: vec![OrderItem {
                    i_id: tell_tpcc::txns::unused_item_id(),
                    supply_w_id: 1,
                    quantity: 1,
                }],
                rollback: true,
            },
            0,
        );
        assert!(!s.committed);
        assert_eq!(s.writes, 0);
        assert_eq!(d.count(TpccTable::Orders), before);
    }

    #[test]
    fn payment_remote_is_multi_partition() {
        let mut d = db();
        let local = payment(
            &mut d,
            &PaymentParams {
                w_id: 1,
                d_id: 1,
                c_w_id: 1,
                c_d_id: 1,
                customer: CustomerSelector::ById(1),
                amount: 10.0,
                h_uid: 1,
            },
            0,
        );
        assert!(local.single_partition());
        let remote = payment(
            &mut d,
            &PaymentParams {
                w_id: 1,
                d_id: 1,
                c_w_id: 2,
                c_d_id: 1,
                customer: CustomerSelector::ById(1),
                amount: 10.0,
                h_uid: 2,
            },
            0,
        );
        assert_eq!(remote.partitions.len(), 2);
    }

    #[test]
    fn new_order_advances_district_counter() {
        let mut d = db();
        let key = ik(&[1, 1]);
        let before =
            d.get(0, TpccTable::District, &key).unwrap()[col::dist::NEXT_O_ID].as_i64().unwrap();
        new_order(
            &mut d,
            &NewOrderParams {
                w_id: 1,
                d_id: 1,
                c_id: 2,
                items: vec![OrderItem { i_id: 3, supply_w_id: 1, quantity: 2 }],
                rollback: false,
            },
            0,
        );
        let after =
            d.get(0, TpccTable::District, &key).unwrap()[col::dist::NEXT_O_ID].as_i64().unwrap();
        assert_eq!(after, before + 1);
        // Order + line exist.
        assert!(d.get(0, TpccTable::Orders, &ik(&[1, 1, before])).is_some());
        assert!(d.get(0, TpccTable::OrderLine, &ik(&[1, 1, before, 1])).is_some());
    }

    #[test]
    fn delivery_consumes_neworders() {
        let mut d = db();
        let pending = d.count(TpccTable::NewOrder);
        let s = delivery(
            &mut d,
            &tell_tpcc::txns::DeliveryParams { w_id: 1, carrier_id: 3, districts: 2 },
            9,
        );
        assert!(s.committed);
        assert_eq!(d.count(TpccTable::NewOrder), pending - 2);
    }

    #[test]
    fn read_only_transactions_write_nothing() {
        let mut d = db();
        let os = order_status(
            &mut d,
            &tell_tpcc::txns::OrderStatusParams {
                w_id: 1,
                d_id: 1,
                customer: CustomerSelector::ById(1),
            },
        );
        assert_eq!(os.writes, 0);
        assert!(os.reads > 0);
        let sl = stock_level(
            &mut d,
            &tell_tpcc::txns::StockLevelParams { w_id: 1, d_id: 1, threshold: 15 },
        );
        assert_eq!(sl.writes, 0);
        assert!(sl.reads > 1);
    }
}

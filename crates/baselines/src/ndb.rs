//! The MySQL-Cluster-like baseline (§6.4).
//!
//! "A cluster configuration consists of ... Data nodes (DN) that store data
//! in-memory and process queries, and SQL nodes that provide an interface
//! to applications and act as federators towards the DNs." Every row
//! operation is a network round trip from the SQL node to a data node;
//! writes are synchronously replicated; distributed writes run two-phase
//! commit through a transaction coordinator whose epoch-based group commit
//! globally serializes write completion — single-partition transactions
//! are *not* blocked by distributed ones (the paper's reason MySQL Cluster
//! beats VoltDB on the standard mix), but overall throughput stays flat as
//! nodes are added.

use tell_netsim::ResourcePool;
use tell_tpcc::gen::ScaleParams;
use tell_tpcc::mix::TxnRequest;

use crate::exec;
use crate::partstore::PartitionedDb;
use crate::sim::{ExecResult, SimEngine};

/// Cost model of the MySQL-Cluster-like engine.
#[derive(Clone, Debug)]
pub struct NdbConfig {
    /// Data nodes.
    pub data_nodes: usize,
    /// Synchronous replicas per fragment (MySQL Cluster default: 2).
    pub replicas: usize,
    /// SQL-node ↔ data-node round trip per row operation.
    pub op_rtt_us: f64,
    /// Data-node CPU per row operation.
    pub dn_op_us: f64,
    /// SQL-node parse/plan cost per transaction.
    pub sql_node_us: f64,
    /// Per-write-transaction occupancy of the global commit epoch.
    pub epoch_us: f64,
    /// Additional epoch occupancy per *extra* data node in a 2PC.
    pub epoch_per_node_us: f64,
}

impl NdbConfig {
    /// Defaults tuned for shape reproduction (see EXPERIMENTS.md).
    pub fn new(data_nodes: usize, replicas: usize) -> Self {
        NdbConfig {
            data_nodes,
            replicas: replicas.max(1),
            op_rtt_us: 55.0,
            dn_op_us: 2.0,
            sql_node_us: 60.0,
            // The global group-commit epoch is the cluster-wide write
            // ceiling: adding data nodes does not widen it, which is what
            // keeps MySQL Cluster flat across cluster sizes in Fig 8.
            epoch_us: 430.0,
            epoch_per_node_us: 150.0,
        }
    }

    /// Unique fragments (replication divides capacity).
    pub fn unique_fragments(&self) -> usize {
        (self.data_nodes / self.replicas).max(1)
    }
}

/// The engine.
pub struct MySqlCluster {
    config: NdbConfig,
    db: PartitionedDb,
    /// One serial resource per data node (row-operation service).
    data_nodes: ResourcePool,
    /// The global commit epoch (group commit / GCP).
    epoch: ResourcePool,
}

impl MySqlCluster {
    /// Build and load.
    pub fn load(config: NdbConfig, warehouses: i64, scale: ScaleParams, seed: u64) -> Self {
        let fragments = config.unique_fragments();
        MySqlCluster {
            db: PartitionedDb::load(fragments, warehouses, scale, seed),
            data_nodes: ResourcePool::new(fragments),
            epoch: ResourcePool::new(1),
            config,
        }
    }
}

impl SimEngine for MySqlCluster {
    fn name(&self) -> &'static str {
        "MySQL-Cluster-like"
    }

    fn execute(&mut self, req: &TxnRequest, arrival_us: f64) -> ExecResult {
        let stats = exec::run(&mut self.db, req, arrival_us as i64);
        let mut t = arrival_us + self.config.sql_node_us;
        // Interleaved per-operation round trips: the SQL node federates one
        // row op at a time; each op queues at its data node. Ops spread
        // round-robin over the touched fragments.
        let parts = if stats.partitions.is_empty() { vec![0] } else { stats.partitions.clone() };
        let ops = stats.ops() as usize;
        t += ops as f64 * (self.config.op_rtt_us + self.config.dn_op_us);
        for i in 0..ops {
            let dn = parts[i % parts.len()];
            self.data_nodes.occupy(dn, t, self.config.dn_op_us);
        }
        if stats.writes > 0 {
            // Synchronous replication: the replica applies the write set in
            // parallel, costing one extra round trip.
            if self.config.replicas > 1 {
                t += self.config.op_rtt_us;
            }
            // 2PC across the involved data nodes, then the global epoch.
            if parts.len() > 1 {
                t += 2.0 * self.config.op_rtt_us;
            }
            let epoch_service =
                self.config.epoch_us + self.config.epoch_per_node_us * (parts.len() as f64 - 1.0);
            t = self.epoch.occupy(0, t, epoch_service);
        }
        ExecResult { completion_us: t, committed: stats.committed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{run_sim, SimConfig};
    use tell_tpcc::mix::Mix;

    fn cfg(mix: Mix, terminals: usize) -> SimConfig {
        SimConfig {
            warehouses: 12,
            scale: ScaleParams::tiny(),
            mix,
            terminals,
            total_txns: 4000,
            seed: 4,
        }
    }

    #[test]
    fn replication_divides_fragments() {
        assert_eq!(NdbConfig::new(6, 2).unique_fragments(), 3);
        assert_eq!(NdbConfig::new(3, 3).unique_fragments(), 1);
    }

    #[test]
    fn throughput_stays_flat_with_more_nodes() {
        let small = run_sim(
            &mut MySqlCluster::load(NdbConfig::new(3, 1), 12, ScaleParams::tiny(), 1),
            &cfg(Mix::standard(), 48),
        );
        let large = run_sim(
            &mut MySqlCluster::load(NdbConfig::new(9, 1), 12, ScaleParams::tiny(), 1),
            &cfg(Mix::standard(), 144),
        );
        let ratio = large.tpmc / small.tpmc;
        assert!(
            ratio < 1.6,
            "MySQL-Cluster-like must not scale (epoch bound): {} -> {} ({ratio:.2}x)",
            small.tpmc,
            large.tpmc
        );
    }

    #[test]
    fn shardable_is_only_slightly_faster() {
        // §6.4: "MySQL Cluster is only 1-2% faster than with the standard
        // workload" — the per-op round trips dominate, not the 2PC.
        let std = run_sim(
            &mut MySqlCluster::load(NdbConfig::new(6, 1), 12, ScaleParams::tiny(), 1),
            &cfg(Mix::standard(), 96),
        );
        let shard = run_sim(
            &mut MySqlCluster::load(NdbConfig::new(6, 1), 12, ScaleParams::tiny(), 1),
            &cfg(Mix::shardable(), 96),
        );
        let gain = shard.tpmc / std.tpmc;
        assert!((0.95..1.35).contains(&gain), "shardable gain = {gain:.3}");
    }

    #[test]
    fn single_partition_txns_not_blocked_by_distributed() {
        // Latency of the standard mix stays around the per-op budget
        // (unlike VoltDB, where one MP transaction fences every partition).
        let report = run_sim(
            &mut MySqlCluster::load(NdbConfig::new(6, 1), 12, ScaleParams::tiny(), 1),
            &cfg(Mix::standard(), 24),
        );
        // ~40 ops × ~57µs ≈ 2.3 ms; queueing should not blow this up by 10×.
        assert!(
            report.latency.percentile(0.5) < 20_000.0,
            "median latency {}",
            report.latency.percentile(0.5)
        );
    }
}

//! Partitioned row storage for the baseline engines.
//!
//! Data is horizontally partitioned by warehouse — "most tables reference
//! the warehouse id that is the obvious partitioning key" (§6.4) — and the
//! read-only ITEM table is fully replicated to every partition, exactly the
//! sharding the paper applies to VoltDB and MySQL Cluster.

use std::collections::{BTreeMap, HashMap};

use bytes::Bytes;
use tell_sql::row::encode_key;
use tell_sql::Value;
use tell_tpcc::gen::{generate_population, ScaleParams, TpccTable};

/// One partition's tables.
#[derive(Default)]
struct Partition {
    tables: HashMap<TpccTable, BTreeMap<Bytes, Vec<Value>>>,
}

/// Partitioned in-memory TPC-C storage.
pub struct PartitionedDb {
    partitions: Vec<Partition>,
    warehouses: i64,
}

/// Primary-key bytes of a row of `table`.
pub fn pk_of(table: TpccTable, row: &[Value]) -> Bytes {
    let cols = table.pk_columns();
    let vals: Vec<Value> = cols.iter().map(|c| row[*c].clone()).collect();
    encode_key(&vals)
}

impl PartitionedDb {
    /// Empty store with `partitions` partitions over `warehouses`
    /// warehouses (warehouse `w` lives in partition `(w-1) % partitions`).
    pub fn new(partitions: usize, warehouses: i64) -> Self {
        assert!(partitions > 0);
        PartitionedDb {
            partitions: (0..partitions).map(|_| Partition::default()).collect(),
            warehouses,
        }
    }

    /// Load the standard population (same generator and seed behaviour as
    /// the Tell loader, so all engines run over identical data).
    pub fn load(partitions: usize, warehouses: i64, scale: ScaleParams, seed: u64) -> Self {
        let mut db = PartitionedDb::new(partitions, warehouses);
        generate_population(warehouses, scale, seed, |table, row| {
            let key = pk_of(table, &row);
            if table == TpccTable::Item {
                // Replicated read-only table.
                for p in &mut db.partitions {
                    p.tables.entry(table).or_default().insert(key.clone(), row.clone());
                }
            } else {
                let w = row[0].as_i64().expect("warehouse id leads every sharded pk");
                let pid = db.partition_of(w);
                db.partitions[pid].tables.entry(table).or_default().insert(key, row);
            }
        });
        db
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Warehouses in the dataset.
    pub fn warehouses(&self) -> i64 {
        self.warehouses
    }

    /// The partition hosting warehouse `w`.
    #[inline]
    pub fn partition_of(&self, w: i64) -> usize {
        ((w - 1).max(0) as usize) % self.partitions.len()
    }

    /// Read a row.
    pub fn get(&self, pid: usize, table: TpccTable, key: &Bytes) -> Option<&Vec<Value>> {
        self.partitions[pid].tables.get(&table)?.get(key)
    }

    /// Read a row mutably.
    pub fn get_mut(
        &mut self,
        pid: usize,
        table: TpccTable,
        key: &Bytes,
    ) -> Option<&mut Vec<Value>> {
        self.partitions[pid].tables.get_mut(&table)?.get_mut(key)
    }

    /// Insert (or replace) a row.
    pub fn put(&mut self, pid: usize, table: TpccTable, key: Bytes, row: Vec<Value>) {
        self.partitions[pid].tables.entry(table).or_default().insert(key, row);
    }

    /// Remove a row.
    pub fn remove(&mut self, pid: usize, table: TpccTable, key: &Bytes) -> bool {
        self.partitions[pid]
            .tables
            .get_mut(&table)
            .map(|t| t.remove(key).is_some())
            .unwrap_or(false)
    }

    /// Ordered range scan `lo <= key < hi` within one partition.
    pub fn range(
        &self,
        pid: usize,
        table: TpccTable,
        lo: &Bytes,
        hi: Option<&Bytes>,
        limit: usize,
    ) -> Vec<(Bytes, Vec<Value>)> {
        let Some(t) = self.partitions[pid].tables.get(&table) else { return Vec::new() };
        let iter: Box<dyn Iterator<Item = (&Bytes, &Vec<Value>)>> = match hi {
            Some(h) => Box::new(t.range(lo.clone()..h.clone())),
            None => Box::new(t.range(lo.clone()..)),
        };
        iter.take(limit).map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// Row count of a table across all partitions (tests; item counts once
    /// per replica).
    pub fn count(&self, table: TpccTable) -> usize {
        self.partitions.iter().map(|p| p.tables.get(&table).map(|t| t.len()).unwrap_or(0)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_partitions_by_warehouse() {
        let scale = ScaleParams::tiny();
        let db = PartitionedDb::load(2, 4, scale, 42);
        // Warehouses 1,3 → partition 0; 2,4 → partition 1.
        assert_eq!(db.partition_of(1), 0);
        assert_eq!(db.partition_of(2), 1);
        assert_eq!(db.partition_of(3), 0);
        // Every partition has the replicated item table.
        assert_eq!(db.count(TpccTable::Item), 2 * scale.items as usize);
        // Warehouse rows land in their partitions.
        let w1 = pk_of(TpccTable::Warehouse, &[Value::Int(1)]);
        assert!(db.get(0, TpccTable::Warehouse, &w1).is_some());
        assert!(db.get(1, TpccTable::Warehouse, &w1).is_none());
        assert_eq!(db.count(TpccTable::Warehouse), 4);
        assert_eq!(db.count(TpccTable::Stock), (4 * scale.items) as usize);
    }

    #[test]
    fn mutation_roundtrip() {
        let mut db = PartitionedDb::new(2, 2);
        let key = Bytes::from_static(b"k");
        db.put(0, TpccTable::Warehouse, key.clone(), vec![Value::Int(1)]);
        assert_eq!(db.get(0, TpccTable::Warehouse, &key).unwrap()[0], Value::Int(1));
        db.get_mut(0, TpccTable::Warehouse, &key).unwrap()[0] = Value::Int(2);
        assert_eq!(db.get(0, TpccTable::Warehouse, &key).unwrap()[0], Value::Int(2));
        assert!(db.remove(0, TpccTable::Warehouse, &key));
        assert!(!db.remove(0, TpccTable::Warehouse, &key));
    }

    #[test]
    fn range_scans_are_ordered_and_bounded() {
        let mut db = PartitionedDb::new(1, 1);
        for i in 0..20i64 {
            let key = encode_key(&[Value::Int(1), Value::Int(i)]);
            db.put(0, TpccTable::NewOrder, key, vec![Value::Int(1), Value::Int(i)]);
        }
        let lo = encode_key(&[Value::Int(1), Value::Int(5)]);
        let hi = encode_key(&[Value::Int(1), Value::Int(10)]);
        let rows = db.range(0, TpccTable::NewOrder, &lo, Some(&hi), 100);
        assert_eq!(rows.len(), 5);
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
        let limited = db.range(0, TpccTable::NewOrder, &lo, None, 3);
        assert_eq!(limited.len(), 3);
    }
}

//! The FoundationDB-like baseline (§6.5).
//!
//! A *shared-data* design like Tell — any processing node can run any
//! transaction — but with the implementation choices the paper contrasts
//! against: a **centralized sequencer** hands out read versions, a
//! **centralized resolver** validates commit write-sets, the SQL layer
//! interprets queries row-by-row, and every row access is an individual
//! TCP round trip (no RDMA, no batching). The engine *scales* with added
//! nodes but sits far below Tell in absolute terms — the paper measured a
//! factor of 30 (Fig 8) and concluded "if not done right, shared-data
//! systems show very poor performance".

use tell_netsim::ResourcePool;
use tell_tpcc::gen::ScaleParams;
use tell_tpcc::mix::TxnRequest;

use crate::exec;
use crate::partstore::PartitionedDb;
use crate::sim::{ExecResult, SimEngine};

/// Cost model of the FoundationDB-like engine.
#[derive(Clone, Debug)]
pub struct FdbConfig {
    /// SQL-layer processing nodes (each runs transactions one at a time —
    /// the 2015-era SQL Layer was effectively single-threaded per process).
    pub sql_nodes: usize,
    /// Storage nodes.
    pub storage_nodes: usize,
    /// TCP round trip per row access.
    pub op_rtt_us: f64,
    /// SQL-layer interpretation cost per row operation.
    pub sql_op_us: f64,
    /// Storage-server CPU per operation.
    pub storage_op_us: f64,
    /// Sequencer service per read-version request.
    pub sequencer_us: f64,
    /// Resolver service per written key at commit validation.
    pub resolver_per_write_us: f64,
    /// Commit pipeline round trips (proxy → resolver → storage).
    pub commit_rtts: f64,
}

impl FdbConfig {
    /// Defaults tuned for shape reproduction (see EXPERIMENTS.md).
    pub fn new(sql_nodes: usize, storage_nodes: usize) -> Self {
        FdbConfig {
            sql_nodes,
            storage_nodes,
            op_rtt_us: 120.0,
            sql_op_us: 180.0,
            storage_op_us: 3.0,
            sequencer_us: 2.0,
            resolver_per_write_us: 1.5,
            commit_rtts: 2.0,
        }
    }
}

/// The engine.
pub struct FoundationDb {
    config: FdbConfig,
    db: PartitionedDb,
    /// SQL-layer nodes: each executes one transaction at a time, holding
    /// the connection while it blocks on row round trips.
    sql_nodes: ResourcePool,
    /// Storage servers.
    storage: ResourcePool,
    /// Sequencer + resolver: the centralized components.
    sequencer: ResourcePool,
    resolver: ResourcePool,
    next_sql_node: usize,
}

impl FoundationDb {
    /// Build and load. The data is "partitioned" only for storage locality;
    /// every SQL node reaches all of it (shared data).
    pub fn load(config: FdbConfig, warehouses: i64, scale: ScaleParams, seed: u64) -> Self {
        let storage_nodes = config.storage_nodes.max(1);
        FoundationDb {
            db: PartitionedDb::load(storage_nodes, warehouses, scale, seed),
            sql_nodes: ResourcePool::new(config.sql_nodes.max(1)),
            storage: ResourcePool::new(storage_nodes),
            sequencer: ResourcePool::new(1),
            resolver: ResourcePool::new(1),
            next_sql_node: 0,
            config,
        }
    }
}

impl SimEngine for FoundationDb {
    fn name(&self) -> &'static str {
        "FoundationDB-like"
    }

    fn execute(&mut self, req: &TxnRequest, arrival_us: f64) -> ExecResult {
        let stats = exec::run(&mut self.db, req, arrival_us as i64);
        // Route to the least-loaded SQL-layer node (the cluster's load
        // balancer); the transaction occupies it for its whole (blocking)
        // execution.
        let node = (0..self.sql_nodes.len())
            .min_by(|a, b| self.sql_nodes.free_at(*a).total_cmp(&self.sql_nodes.free_at(*b)))
            .unwrap_or(0);
        self.next_sql_node += 1;

        // Read-version request through the sequencer.
        let mut service = self.config.op_rtt_us;
        let ops = stats.ops() as f64;
        // Row-at-a-time interpreted execution: every op blocks the SQL node
        // for a round trip plus interpretation.
        service += ops * (self.config.op_rtt_us + self.config.sql_op_us);
        // Commit pipeline.
        if stats.writes > 0 {
            service += self.config.commit_rtts * self.config.op_rtt_us;
        }

        let start = self.sql_nodes.free_at(node).max(arrival_us);
        let mut t = start + self.config.op_rtt_us; // client → SQL layer
        t = self.sequencer.occupy(0, t, self.config.sequencer_us);
        // Storage servers serve the row ops (spread over touched parts).
        let parts = if stats.partitions.is_empty() { vec![0] } else { stats.partitions.clone() };
        for i in 0..stats.ops() as usize {
            let sid = parts[i % parts.len()] % self.storage.len();
            self.storage.occupy(sid, t, self.config.storage_op_us);
        }
        t += service;
        if stats.writes > 0 {
            t = self.resolver.occupy(0, t, self.config.resolver_per_write_us * stats.writes as f64);
        }
        // Block the SQL node for the whole span.
        let done = self.sql_nodes.occupy(node, start, t - start);
        ExecResult { completion_us: done, committed: stats.committed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{run_sim, SimConfig};
    use tell_tpcc::mix::Mix;

    fn cfg(terminals: usize) -> SimConfig {
        SimConfig {
            warehouses: 12,
            scale: ScaleParams::tiny(),
            mix: Mix::standard(),
            terminals,
            total_txns: 2000,
            seed: 5,
        }
    }

    #[test]
    fn scales_with_sql_nodes() {
        // §6.5: "Although FoundationDB scales with the number of cores, the
        // throughput is more than a factor 30 lower than Tell."
        let small = run_sim(
            &mut FoundationDb::load(FdbConfig::new(3, 3), 12, ScaleParams::tiny(), 1),
            &cfg(12),
        );
        let large = run_sim(
            &mut FoundationDb::load(FdbConfig::new(9, 9), 12, ScaleParams::tiny(), 1),
            &cfg(36),
        );
        assert!(
            large.tpmc > small.tpmc * 2.0,
            "FDB-like must scale: {} -> {}",
            small.tpmc,
            large.tpmc
        );
    }

    #[test]
    fn latency_is_high() {
        // Table 4: FDB small-config mean ≈ 149 ms (vs Tell's 14 ms). Our
        // absolute numbers differ, but the latency must be dominated by
        // per-row round trips: ≈ ops × (rtt + sql_op) ≫ 5 ms.
        let report = run_sim(
            &mut FoundationDb::load(FdbConfig::new(3, 3), 12, ScaleParams::tiny(), 1),
            &cfg(6),
        );
        assert!(report.latency.mean() > 5_000.0, "mean = {}", report.latency.mean());
    }

    #[test]
    fn centralized_components_serialize() {
        let mut engine = FoundationDb::load(FdbConfig::new(2, 2), 12, ScaleParams::tiny(), 1);
        run_sim(&mut engine, &cfg(8));
        assert!(engine.sequencer.busy_time(0) > 0.0);
        assert!(engine.resolver.busy_time(0) > 0.0);
    }
}

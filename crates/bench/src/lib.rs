//! Benchmark harness: shared setup and reporting for the per-figure and
//! per-table bench targets (see DESIGN.md §3 for the experiment index).
//!
//! Every target is a `harness = false` bench binary, so `cargo bench`
//! regenerates the whole evaluation section. Environment knobs:
//!
//! * `TELL_BENCH_WH` — warehouses (default 8)
//! * `TELL_BENCH_TXNS` — transactions per worker (default 200)
//! * `TELL_BENCH_WORKERS` — worker threads per logical PN (default 2)
//! * `TELL_BENCH_SCALE` — `tiny` | `small` (default between the two)
//!
//! Absolute numbers are *simulated-time* throughputs (DESIGN.md §1); the
//! deliverable is the shape: who wins, by what factor, where curves bend.

use std::sync::Arc;

use tell_common::Result;
use tell_core::{BufferConfig, Database, TellConfig};
use tell_sql::SqlEngine;
use tell_tpcc::driver::{run_tpcc, DriverReport, TpccConfig};
use tell_tpcc::gen::{load, ScaleParams};
use tell_tpcc::mix::Mix;
use tell_tpcc::schema::create_tpcc_tables;

/// Environment-tunable run sizes.
#[derive(Clone, Copy, Debug)]
pub struct BenchEnv {
    pub warehouses: i64,
    pub txns_per_worker: usize,
    pub workers_per_pn: usize,
    pub scale: ScaleParams,
    pub seed: u64,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

impl BenchEnv {
    /// Read the `TELL_BENCH_*` variables.
    pub fn from_env() -> BenchEnv {
        let scale = match std::env::var("TELL_BENCH_SCALE").as_deref() {
            Ok("tiny") => ScaleParams::tiny(),
            Ok("small") => ScaleParams::small(),
            _ => ScaleParams {
                items: 400,
                districts_per_warehouse: 6,
                customers_per_district: 30,
                initial_orders_per_district: 30,
            },
        };
        BenchEnv {
            warehouses: env_usize("TELL_BENCH_WH", 8) as i64,
            txns_per_worker: env_usize("TELL_BENCH_TXNS", 200),
            workers_per_pn: env_usize("TELL_BENCH_WORKERS", 2),
            scale,
            seed: 0xC0FFEE,
        }
    }
}

/// Build a Tell deployment, create the TPC-C tables and load them.
pub fn setup_tell(config: TellConfig, env: &BenchEnv) -> Result<Arc<SqlEngine>> {
    let db = Database::create(config);
    let engine = SqlEngine::new(db);
    create_tpcc_tables(&engine)?;
    load(&engine, env.warehouses, env.scale, env.seed)?;
    Ok(engine)
}

/// Run the TPC-C driver against a prepared Tell engine.
pub fn run_tell(
    engine: &Arc<SqlEngine>,
    env: &BenchEnv,
    mix: Mix,
    pn_count: usize,
) -> Result<DriverReport> {
    run_tpcc(
        engine,
        &TpccConfig {
            warehouses: env.warehouses,
            scale: env.scale,
            mix,
            pn_count,
            workers_per_pn: env.workers_per_pn,
            txns_per_worker: env.txns_per_worker,
            max_retries: 1000,
            seed: env.seed,
        },
    )
}

/// Default Tell configuration used by the scale-out experiments: 7 storage
/// nodes, 1 commit manager, InfiniBand (§6.3.1's setup).
pub fn tell_config(rf: usize, buffer: BufferConfig) -> TellConfig {
    TellConfig {
        storage_nodes: 7,
        replication_factor: rf,
        commit_managers: 1,
        buffer,
        ..TellConfig::default()
    }
}

/// Nominal core count of a Tell configuration, using the paper's
/// accounting (§6.4: 4-core PNs and SNs, 2-core CMs, 2-core MN).
pub fn tell_cores(pns: usize, sns: usize, cms: usize) -> usize {
    pns * 4 + sns * 4 + cms * 2 + 2
}

// ---------------------------------------------------------------------
// System-comparison harness shared by Figs 8/9 and Table 4.
// ---------------------------------------------------------------------

use tell_baselines::{
    run_sim, FdbConfig, FoundationDb, MySqlCluster, NdbConfig, SimConfig, SimReport, VoltDb,
    VoltDbConfig,
};

/// One cluster size in the comparison experiments, with per-system node
/// counts sized to comparable core budgets (paper: x-axis = total cores).
#[derive(Clone, Copy, Debug)]
pub struct ClusterSize {
    pub label: &'static str,
    pub cores: usize,
    pub tell_pns: usize,
    pub tell_sns: usize,
    pub volt_nodes: usize,
    pub ndb_data_nodes: usize,
    pub fdb_nodes: usize,
}

/// The small/medium/large sizes used across Figs 8/9 and Table 4
/// (paper: 22-24 cores up to 70-78).
pub fn cluster_sizes() -> [ClusterSize; 3] {
    [
        ClusterSize {
            label: "S",
            cores: 22,
            tell_pns: 1,
            tell_sns: 3,
            volt_nodes: 3,
            ndb_data_nodes: 3,
            fdb_nodes: 3,
        },
        ClusterSize {
            label: "M",
            cores: 44,
            tell_pns: 4,
            tell_sns: 5,
            volt_nodes: 5,
            ndb_data_nodes: 6,
            fdb_nodes: 6,
        },
        ClusterSize {
            label: "L",
            cores: 70,
            tell_pns: 8,
            tell_sns: 7,
            volt_nodes: 9,
            ndb_data_nodes: 9,
            fdb_nodes: 9,
        },
    ]
}

/// Environment for the comparison benches: more warehouses so every
/// VoltDB partition hosts data, smaller per-warehouse population.
pub fn comparison_env() -> BenchEnv {
    let mut env = BenchEnv::from_env();
    env.warehouses = env_usize("TELL_BENCH_CMP_WH", 48) as i64;
    // The paper's PNs run many worker threads per 4-core node.
    env.workers_per_pn = env_usize("TELL_BENCH_WORKERS", 4);
    env.scale = ScaleParams {
        items: 200,
        districts_per_warehouse: 4,
        customers_per_district: 20,
        initial_orders_per_district: 20,
    };
    env
}

/// Run Tell at one comparison size.
pub fn tell_at_size(env: &BenchEnv, size: &ClusterSize, mix: Mix, rf: usize) -> DriverReport {
    let config = TellConfig {
        storage_nodes: size.tell_sns,
        replication_factor: rf,
        commit_managers: 2,
        buffer: BufferConfig::TransactionOnly,
        ..TellConfig::default()
    };
    let engine = setup_tell(config, env).expect("tell setup");
    run_tell(&engine, env, mix, size.tell_pns).expect("tell run")
}

fn sim_cfg(env: &BenchEnv, mix: Mix, terminals: usize) -> SimConfig {
    SimConfig {
        warehouses: env.warehouses,
        scale: env.scale,
        mix,
        terminals,
        total_txns: env_usize("TELL_BENCH_SIM_TXNS", 6000),
        seed: env.seed,
    }
}

/// VoltDB-like at one size (`rf` 1 → k-factor 0, 3 → k-factor 2).
pub fn voltdb_at_size(env: &BenchEnv, size: &ClusterSize, mix: Mix, rf: usize) -> SimReport {
    let cfg = VoltDbConfig::new(size.volt_nodes, rf.saturating_sub(1));
    let terminals = cfg.unique_partitions() * 2;
    let mut engine = VoltDb::load(cfg, env.warehouses, env.scale, env.seed);
    run_sim(&mut engine, &sim_cfg(env, mix, terminals))
}

/// MySQL-Cluster-like at one size.
pub fn ndb_at_size(env: &BenchEnv, size: &ClusterSize, mix: Mix, rf: usize) -> SimReport {
    let cfg = NdbConfig::new(size.ndb_data_nodes, rf.min(2));
    let terminals = size.ndb_data_nodes * 12;
    let mut engine = MySqlCluster::load(cfg, env.warehouses, env.scale, env.seed);
    run_sim(&mut engine, &sim_cfg(env, mix, terminals))
}

/// FoundationDB-like at one size.
pub fn fdb_at_size(env: &BenchEnv, size: &ClusterSize, mix: Mix) -> SimReport {
    let cfg = FdbConfig::new(size.fdb_nodes, size.fdb_nodes);
    let terminals = size.fdb_nodes * 3;
    let mut engine = FoundationDb::load(cfg, env.warehouses, env.scale, env.seed);
    run_sim(&mut engine, &sim_cfg(env, mix, terminals))
}

// ---------------------------------------------------------------------
// Output helpers: every bench prints a self-describing markdown table.
// ---------------------------------------------------------------------

/// Print the experiment banner.
pub fn section(id: &str, paper_result: &str) {
    println!();
    println!("## {id}");
    println!("paper: {paper_result}");
    println!();
}

/// Print a markdown table header.
pub fn table_header(cols: &[&str]) {
    println!("| {} |", cols.join(" | "));
    println!("|{}|", cols.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

/// Print one row.
pub fn table_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Format a throughput value.
pub fn fmt_k(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Format a percentage.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

/// Format µs as ms.
pub fn fmt_ms(us: f64) -> String {
    format!("{:.2}ms", us / 1000.0)
}

/// One-line summary of a Tell driver report.
pub fn report_cells(r: &DriverReport) -> Vec<String> {
    vec![fmt_k(r.tpmc), fmt_k(r.tps), fmt_pct(r.abort_rate()), fmt_ms(r.latency.mean())]
}

// ---------------------------------------------------------------------
// JSON snapshots: machine-readable bench output for regression tracking.
// ---------------------------------------------------------------------

/// Write a `BENCH_<name>.json` snapshot of a driver report — plus the
/// process-global metrics registry — into the directory named by the
/// `TELL_BENCH_JSON` environment variable. A no-op when the variable is
/// unset, so interactive `cargo bench` runs stay file-free;
/// `scripts/bench_report.sh` sets it.
pub fn write_json_report(name: &str, r: &DriverReport) {
    let Ok(dir) = std::env::var("TELL_BENCH_JSON") else { return };
    let name: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect::<String>()
        .split('_')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("_");
    let summary = r.latency.summary();
    let json = format!(
        concat!(
            "{{\"name\":\"{}\",\"tpmc\":{:?},\"tps\":{:?},\"abort_rate\":{:?},",
            "\"committed\":{},\"conflict_aborts\":{},\"given_up\":{},",
            "\"latency_us\":{{\"mean\":{:?},\"p50\":{:?},\"p99\":{:?},\"p999\":{:?}}},",
            "\"buffer_hit_ratio\":{:?},\"metrics\":{}}}\n"
        ),
        name,
        r.tpmc,
        r.tps,
        r.abort_rate(),
        r.committed,
        r.conflict_aborts,
        r.given_up,
        summary.mean,
        summary.p50,
        summary.p99,
        summary.p999,
        r.buffer_hit_ratio,
        tell_obs::snapshot().to_json(),
    );
    let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("  (failed to write {}: {e})", path.display());
    } else {
        eprintln!("  wrote {}", path.display());
    }
}

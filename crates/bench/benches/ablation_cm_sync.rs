//! Ablation (§6.3.3 / §4.2): commit-manager snapshot-synchronization
//! interval. Multiple commit managers exchange committed-transaction sets
//! through the store; stale snapshots raise the conflict probability.
//! Paper: "a synchronization interval of 1 ms did not noticeably affect
//! the overall abort rate".

use std::time::Duration;

use tell_bench::*;
use tell_commitmgr::manager::CmConfig;
use tell_core::{BufferConfig, TellConfig};
use tell_tpcc::mix::Mix;

fn main() {
    section(
        "Ablation — commit-manager sync interval (2 CMs, RF1)",
        "1 ms staleness is harmless; very long intervals raise the abort rate",
    );
    let env = BenchEnv::from_env();
    table_header(&["sync interval", "TpmC", "abort rate", "mean latency"]);
    let mut rates = Vec::new();
    for (label, interval) in [
        ("0.1 ms", Duration::from_micros(100)),
        ("1 ms", Duration::from_millis(1)),
        ("10 ms", Duration::from_millis(10)),
        ("1 s", Duration::from_secs(1)),
    ] {
        let config = TellConfig {
            storage_nodes: 7,
            replication_factor: 1,
            commit_managers: 2,
            cm: CmConfig { sync_interval: interval, ..CmConfig::default() },
            buffer: BufferConfig::TransactionOnly,
            ..TellConfig::default()
        };
        let engine = setup_tell(config, &env).expect("setup");
        let report = run_tell(&engine, &env, Mix::standard(), 4).expect("run");
        table_row(&[
            label.into(),
            fmt_k(report.tpmc),
            fmt_pct(report.abort_rate()),
            fmt_ms(report.latency.mean()),
        ]);
        rates.push(report.abort_rate());
    }
    // 0.1ms vs 1ms should be comparable (paper's claim); 1s staleness is
    // where conflicts grow.
    println!(
        "\nabort rates: {:?} — sub-ms synchronization is harmless, as §6.3.3 reports",
        rates.iter().map(|r| format!("{:.2}%", r * 100.0)).collect::<Vec<_>>()
    );
}

//! Ablation (§5.1, over real TCP): cross-operation request batching in the
//! asynchronous store API. A remote client that blocks on every `get` pays
//! one wire frame per operation; submitting the same operations through
//! `get_async` coalesces each window into a single batch frame. Frames are
//! counted twice — on the client's meter and on the server — and the two
//! must agree.

use tell_bench::*;
use tell_netsim::NetMeter;
use tell_rpc::{RemoteEndpoint, RpcServer};
use tell_store::{keys, StoreApi, StoreCluster, StoreConfig, StoreEndpoint};

/// Operations per round = the submission-window size being amortized.
const WINDOW: usize = 16;
/// Rounds per mode; enough to dwarf any setup frames.
const ROUNDS: usize = 50;

fn main() {
    section(
        "Ablation — async submission + batching over TCP (1 SN, window of 16)",
        "N outstanding ops cross the wire as one frame instead of N",
    );

    let store = StoreCluster::new(StoreConfig::new(1));
    let server = RpcServer::serve_store("127.0.0.1:0", store).expect("serve");
    let endpoint = RemoteEndpoint::connect(server.local_addr().to_string(), 1);

    let admin = endpoint.unmetered_client();
    let record_keys: Vec<_> =
        (0..WINDOW as u64).map(|i| keys::counter(&format!("k/{i}"))).collect();
    for (i, key) in record_keys.iter().enumerate() {
        admin.put(key, bytes::Bytes::from(vec![i as u8; 64])).expect("load");
    }

    table_header(&["mode", "frames", "frames/op", "server frames"]);
    let mut frames = Vec::new();
    let mut results: Vec<Vec<u8>> = Vec::new();
    for async_mode in [false, true] {
        let meter = NetMeter::free();
        let client = endpoint.client(meter.clone());
        let server_before = server.frames_served();
        let mut values = Vec::new();
        for _ in 0..ROUNDS {
            if async_mode {
                // Submit the whole window, then wait: one frame round trip.
                let handles: Vec<_> = record_keys.iter().map(|k| client.get_async(k)).collect();
                for handle in handles {
                    let (_, raw) = handle.wait().expect("get").expect("present");
                    values.push(raw[0]);
                }
            } else {
                // Blocking calls: nothing else is outstanding, so each op
                // is its own frame round trip.
                for key in &record_keys {
                    let (_, raw) = client.get(key).expect("get").expect("present");
                    values.push(raw[0]);
                }
            }
        }
        let client_frames = meter.stats().request_count();
        let server_frames = server.frames_served() - server_before;
        assert_eq!(client_frames, server_frames, "client and server count the same frames");
        table_row(&[
            if async_mode { "async (batched)".into() } else { "blocking".to_string() },
            format!("{client_frames}"),
            format!("{:.2}", client_frames as f64 / (ROUNDS * WINDOW) as f64),
            format!("{server_frames}"),
        ]);
        frames.push(client_frames);
        results.push(values);
    }

    assert_eq!(results[0], results[1], "both modes read identical values");
    assert_eq!(frames[0], (ROUNDS * WINDOW) as u64, "blocking: one frame per op");
    assert_eq!(frames[1], ROUNDS as u64, "async: one frame per window");
    assert!(frames[1] < frames[0], "batching must shrink wire traffic");
    println!("\nshape ok: {}x fewer frames with async submission", frames[0] / frames[1].max(1));
}

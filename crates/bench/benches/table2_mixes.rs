//! Table 2: the write- and read-intensive TPC-C workload mixes, with the
//! *measured* write ratio of storage operations (paper: 35.84 % and
//! 4.89 %).

use tell_bench::*;
use tell_core::BufferConfig;
use tell_tpcc::mix::{Mix, TxnType};

fn main() {
    section(
        "Table 2 — workload mixes",
        "standard mix write ratio 35.84% (TpmC metric); read-intensive 4.89% (Tps metric)",
    );
    let env = BenchEnv { txns_per_worker: 300, ..BenchEnv::from_env() };
    table_header(&[
        "Mix",
        "write ratio (measured)",
        "metric",
        "new-order",
        "payment",
        "delivery",
        "order-status",
        "stock-level",
    ]);
    for (mix, metric) in [(Mix::standard(), "TpmC"), (Mix::read_intensive(), "Tps")] {
        let engine =
            setup_tell(tell_config(1, BufferConfig::TransactionOnly), &env).expect("setup");
        let report = run_tell(&engine, &env, mix.clone(), 2).expect("run");
        let traffic = engine.database().traffic();
        let mut cells =
            vec![mix.name.to_string(), fmt_pct(traffic.write_ratio()), metric.to_string()];
        for (i, _) in TxnType::ALL.iter().enumerate() {
            cells.push(format!("{}%", mix.weights[i]));
        }
        table_row(&cells);
        write_json_report(&format!("table2_{}", mix.name), &report);
        let measured = report.per_type;
        let total: u64 = measured.iter().sum();
        eprintln!(
            "  measured mix: {:?} of {} committed",
            measured
                .iter()
                .map(|c| format!("{:.0}%", *c as f64 / total as f64 * 100.0))
                .collect::<Vec<_>>(),
            total
        );
    }
}

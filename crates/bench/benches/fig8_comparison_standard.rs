//! Figure 8: throughput vs total CPU cores, TPC-C standard mix, RF3.
//!
//! Paper: Tell scales to 374,894 TpmC at 78 cores; MySQL Cluster stays
//! flat around 83,524; VoltDB *decreases* with size to 23,183 (multi-
//! partition transactions fence the cluster); FoundationDB scales but is
//! more than a factor 30 below Tell.

use tell_bench::*;
use tell_tpcc::mix::Mix;

fn main() {
    section(
        "Figure 8 — throughput (TPC-C standard, RF3)",
        "Tell ≫ MySQL Cluster > VoltDB; FDB lowest but scaling; Tell/MySQL ≈ 4.5×, Tell/VoltDB ≈ 16×, Tell/FDB ≈ 30× at the largest size",
    );
    let env = comparison_env();
    table_header(&["size (≈cores)", "system", "TpmC", "mean latency"]);
    let mut tell_curve = Vec::new();
    let mut volt_curve = Vec::new();
    let mut ndb_curve = Vec::new();
    let mut fdb_curve = Vec::new();
    for size in cluster_sizes() {
        let label = format!("{} ({})", size.label, size.cores);
        let tell = tell_at_size(&env, &size, Mix::standard(), 3);
        table_row(&[label.clone(), "Tell".into(), fmt_k(tell.tpmc), fmt_ms(tell.latency.mean())]);
        tell_curve.push(tell.tpmc);
        let ndb = ndb_at_size(&env, &size, Mix::standard(), 2);
        table_row(&[label.clone(), ndb.engine.into(), fmt_k(ndb.tpmc), fmt_ms(ndb.latency.mean())]);
        ndb_curve.push(ndb.tpmc);
        let volt = voltdb_at_size(&env, &size, Mix::standard(), 3);
        table_row(&[
            label.clone(),
            volt.engine.into(),
            fmt_k(volt.tpmc),
            fmt_ms(volt.latency.mean()),
        ]);
        volt_curve.push(volt.tpmc);
        let fdb = fdb_at_size(&env, &size, Mix::standard());
        table_row(&[label, fdb.engine.into(), fmt_k(fdb.tpmc), fmt_ms(fdb.latency.mean())]);
        fdb_curve.push(fdb.tpmc);
    }

    // Shape assertions.
    let last = tell_curve.len() - 1;
    assert!(tell_curve[last] > tell_curve[0] * 3.0, "Tell must scale: {tell_curve:?}");
    assert!(
        tell_curve[last] > ndb_curve[last] * 2.0,
        "Tell must beat MySQL Cluster clearly: {} vs {}",
        tell_curve[last],
        ndb_curve[last]
    );
    assert!(ndb_curve[last] < ndb_curve[0] * 1.6, "MySQL Cluster must stay flat: {ndb_curve:?}");
    assert!(
        volt_curve[last] < volt_curve[0] * 1.2,
        "VoltDB must not scale on the standard mix: {volt_curve:?}"
    );
    assert!(ndb_curve[last] > volt_curve[last], "MySQL Cluster beats VoltDB on the standard mix");
    assert!(fdb_curve[last] > fdb_curve[0] * 1.5, "FDB-like scales with nodes: {fdb_curve:?}");
    assert!(
        tell_curve[last] / fdb_curve[last] > 8.0,
        "Tell must dwarf the FDB-like engine: {}x",
        tell_curve[last] / fdb_curve[last]
    );
    println!(
        "\nshape ok: at L, Tell/MySQL = {:.1}x, Tell/VoltDB = {:.1}x, Tell/FDB = {:.1}x",
        tell_curve[last] / ndb_curve[last],
        tell_curve[last] / volt_curve[last],
        tell_curve[last] / fdb_curve[last]
    );
}

//! Figure 10: InfiniBand vs 10 Gb Ethernet (write-intensive mix, RF1).
//!
//! Paper: "The TpmC results on InfiniBand are more than six times higher
//! than the results achieved with Ethernet independent of the number of
//! PNs" — latency budgets dominate shared-data transaction processing.

use tell_bench::*;
use tell_core::{BufferConfig, TellConfig};
use tell_netsim::NetworkProfile;
use tell_tpcc::mix::Mix;

fn main() {
    section(
        "Figure 10 — network technology (write-intensive, RF1)",
        "InfiniBand > 6× the TpmC of 10GbE at every PN count",
    );
    let env = BenchEnv::from_env();
    table_header(&["network", "PNs", "TpmC", "Tps", "abort rate", "mean latency"]);
    let mut ib = Vec::new();
    let mut eth = Vec::new();
    for (profile, series) in
        [(NetworkProfile::infiniband(), &mut ib), (NetworkProfile::ethernet_10g(), &mut eth)]
    {
        for pns in [1usize, 2, 4, 8] {
            let config = TellConfig {
                storage_nodes: 7,
                replication_factor: 1,
                profile: profile.clone(),
                buffer: BufferConfig::TransactionOnly,
                ..TellConfig::default()
            };
            let engine = setup_tell(config, &env).expect("setup");
            let report = run_tell(&engine, &env, Mix::standard(), pns).expect("run");
            let mut cells = vec![profile.name.to_string(), pns.to_string()];
            cells.extend(report_cells(&report));
            table_row(&cells);
            series.push(report.tpmc);
        }
    }
    for (i, (a, b)) in ib.iter().zip(eth.iter()).enumerate() {
        let ratio = a / b;
        assert!(
            ratio > 4.0,
            "InfiniBand must dominate at every point (paper >6x): point {i} ratio {ratio:.2}"
        );
    }
    println!(
        "\nshape ok: InfiniBand/Ethernet TpmC ratios: {:?}",
        ib.iter().zip(eth.iter()).map(|(a, b)| format!("{:.1}x", a / b)).collect::<Vec<_>>()
    );
}

//! Figure 9: TPC-C *shardable* — remote new-order and payment replaced
//! with single-warehouse equivalents.
//!
//! Paper: on its home turf VoltDB wins — 1.453M TpmC (RF1) vs Tell's
//! 1.284M (−11.7 %); MySQL Cluster is only 1-2 % better than on the
//! standard mix. "Even with a perfectly shardable workload, [Tell] is in
//! the same ballpark as state-of-the-art partitioned databases."

use tell_bench::*;
use tell_tpcc::mix::Mix;

fn main() {
    section(
        "Figure 9 — throughput (TPC-C shardable)",
        "VoltDB RF1 1.453M TpmC > Tell RF1 1.284M (−11.7%); MySQL barely moves",
    );
    let env = comparison_env();
    table_header(&["size (≈cores)", "system", "RF", "TpmC", "mean latency"]);
    let mut tell_l = [0.0f64; 2];
    let mut volt_l = [0.0f64; 2];
    let mut ndb_l = 0.0f64;
    let sizes = cluster_sizes();
    for size in &sizes {
        for (i, rf) in [1usize, 3].iter().enumerate() {
            let label = format!("{} ({})", size.label, size.cores);
            let tell = tell_at_size(&env, size, Mix::shardable(), *rf);
            table_row(&[
                label.clone(),
                "Tell".into(),
                format!("RF{rf}"),
                fmt_k(tell.tpmc),
                fmt_ms(tell.latency.mean()),
            ]);
            let volt = voltdb_at_size(&env, size, Mix::shardable(), *rf);
            table_row(&[
                label.clone(),
                volt.engine.into(),
                format!("RF{rf}"),
                fmt_k(volt.tpmc),
                fmt_ms(volt.latency.mean()),
            ]);
            if size.label == "L" {
                tell_l[i] = tell.tpmc;
                volt_l[i] = volt.tpmc;
            }
        }
        let ndb = ndb_at_size(&env, size, Mix::shardable(), 2);
        table_row(&[
            format!("{} ({})", size.label, size.cores),
            ndb.engine.into(),
            "RF2".into(),
            fmt_k(ndb.tpmc),
            fmt_ms(ndb.latency.mean()),
        ]);
        if size.label == "L" {
            ndb_l = ndb.tpmc;
        }
    }

    // Shape: VoltDB wins but Tell is in the same ballpark.
    assert!(
        volt_l[0] > tell_l[0],
        "VoltDB must win its home game: volt {} vs tell {}",
        volt_l[0],
        tell_l[0]
    );
    assert!(
        tell_l[0] > volt_l[0] * 0.5,
        "Tell must stay in the same ballpark: tell {} vs volt {}",
        tell_l[0],
        volt_l[0]
    );
    assert!(volt_l[0] > ndb_l, "VoltDB must beat MySQL Cluster when shardable");
    println!(
        "\nshape ok: at L/RF1, Tell reaches {:.0}% of VoltDB (paper: 88.3%)",
        tell_l[0] / volt_l[0] * 100.0
    );
}

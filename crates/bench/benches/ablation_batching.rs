//! Ablation (§5.1): request batching. "Tell aggressively batches
//! operations (i.e., several operations are combined into a single
//! request)." Disabling batching forces one network exchange per record
//! read and per applied update.

use tell_bench::*;
use tell_core::{BufferConfig, TellConfig};
use tell_tpcc::mix::Mix;

fn main() {
    section(
        "Ablation — operation batching (RF1, 4 PNs)",
        "batching amortizes round trips across multi-record reads and commit applies",
    );
    let env = BenchEnv::from_env();
    table_header(&["batching", "TpmC", "Tps", "mean latency", "requests/txn"]);
    let mut tpmcs = Vec::new();
    for batching in [true, false] {
        let config = TellConfig {
            storage_nodes: 7,
            replication_factor: 1,
            batching,
            buffer: BufferConfig::TransactionOnly,
            ..TellConfig::default()
        };
        let engine = setup_tell(config, &env).expect("setup");
        let before = engine.database().traffic().request_count();
        let report = run_tell(&engine, &env, Mix::standard(), 4).expect("run");
        let requests = engine.database().traffic().request_count() - before;
        table_row(&[
            if batching { "on".into() } else { "off".to_string() },
            fmt_k(report.tpmc),
            fmt_k(report.tps),
            fmt_ms(report.latency.mean()),
            format!("{:.1}", requests as f64 / report.committed.max(1) as f64),
        ]);
        tpmcs.push(report.tpmc);
    }
    assert!(
        tpmcs[0] > tpmcs[1] * 1.15,
        "batching must pay off: on {} vs off {}",
        tpmcs[0],
        tpmcs[1]
    );
    println!("\nshape ok: batching gains {:.0}% throughput", (tpmcs[0] / tpmcs[1] - 1.0) * 100.0);
}

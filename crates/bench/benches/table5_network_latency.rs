//! Table 5: network latency detail at the largest PN count
//! (write-intensive, RF1): TpmC, mean ± σ, TP99, TP999, plus the per-SN
//! bandwidth observation of §6.6 ("total bandwidth usage of one SN is
//! 169.99 MB/s — the network is not saturated").

use tell_bench::*;
use tell_core::{BufferConfig, TellConfig};
use tell_netsim::NetworkProfile;
use tell_tpcc::mix::Mix;

fn main() {
    section(
        "Table 5 — network latency detail (8 PNs, RF1)",
        "InfiniBand 958k TpmC, 0.693±0.387ms, TP99 2.347, TP999 4.7; Ethernet 151k, 4.387±2.642ms",
    );
    let env = BenchEnv::from_env();
    table_header(&[
        "network",
        "TpmC",
        "mean ± σ (ms)",
        "TP99 (ms)",
        "TP999 (ms)",
        "per-SN bandwidth (MB/s, virtual)",
    ]);
    let mut means = Vec::new();
    for profile in [NetworkProfile::infiniband(), NetworkProfile::ethernet_10g()] {
        let sns = 7usize;
        let config = TellConfig {
            storage_nodes: sns,
            replication_factor: 1,
            profile: profile.clone(),
            buffer: BufferConfig::TransactionOnly,
            ..TellConfig::default()
        };
        let engine = setup_tell(config, &env).expect("setup");
        let report = run_tell(&engine, &env, Mix::standard(), 8).expect("run");
        let traffic = engine.database().traffic();
        let bytes = traffic.total_bytes() as f64;
        let mb_per_s_per_sn = bytes / 1e6 / report.virtual_seconds.max(1e-9) / sns as f64;
        table_row(&[
            profile.name.to_string(),
            fmt_k(report.tpmc),
            format!("{:.3} ± {:.3}", report.latency.mean() / 1e3, report.latency.stddev() / 1e3),
            format!("{:.3}", report.latency.percentile(0.99) / 1e3),
            format!("{:.3}", report.latency.percentile(0.999) / 1e3),
            format!("{mb_per_s_per_sn:.1}"),
        ]);
        means.push(report.latency.mean());
    }
    assert!(
        means[1] > means[0] * 3.0,
        "Ethernet mean latency must be several times InfiniBand's: {:?}",
        means
    );
    println!("\nshape ok: low tail-to-mean ratios on both fabrics (no congestion), Ethernet ≫ InfiniBand");
}

//! Telemetry rollup overhead: full update transactions with a background
//! roller snapshotting the registry into the time-series ring at an
//! aggressive cadence, against the same transactions with the roller
//! idle. The tentpole claim is that the per-node telemetry history is
//! free on the hot path — the ring is only ever touched by the roller —
//! so even a cadence 50× the deployed default must stay under the 5 %
//! observability budget.
//!
//! Methodology matches `micro.rs`'s `obs/txn_update_overhead`: process
//! speed drifts over a run (frequency scaling, co-tenant VMs), so the two
//! arms are interleaved in A-B-B-A blocks and the reported figure is the
//! median of per-block deltas — drift slower than a block cancels inside
//! the pair, and the median discards preemption bursts.
//!
//! `TELL_BENCH_JSON=<dir>` writes `BENCH_telemetry_overhead.json`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use tell_core::database::IndexSpec;
use tell_core::{Database, TellConfig};

/// Roller cadence under test: 5 ms, 50× the deployed default of 250 ms
/// (`tell_obs::timeseries::DEFAULT_WALL_INTERVAL_MS`).
const TICK_MS: u64 = 5;
const TXNS_PER_BATCH: u32 = 2_000;
const BLOCKS: usize = 40;
const BOUND_PCT: f64 = 5.0;

fn main() {
    let scale = std::env::var("TELL_BENCH_SCALE").unwrap_or_default();
    let (txns, blocks) = if scale == "tiny" { (200, 10) } else { (TXNS_PER_BATCH, BLOCKS) };

    let db = Database::create(TellConfig::default());
    let pk = IndexSpec::new("pk", true, |r: &[u8]| r.get(..8).map(Bytes::copy_from_slice));
    let table = db.create_table("bench", vec![pk]).unwrap();
    let pn = db.processing_node();
    let rid = {
        let mut txn = pn.begin().unwrap();
        let rid = txn.insert(&table, Bytes::from(vec![1u8; 64])).unwrap();
        txn.commit().unwrap();
        rid
    };
    tell_obs::set_enabled(true);

    // The roller thread lives for the whole run; the `active` flag is the
    // only thing toggled between arms, so thread startup never lands
    // inside a timed batch. When active it does exactly what the deployed
    // wall driver does — registry snapshot, delta, digest, ring push —
    // just 50× more often.
    let active = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let roller = {
        let active = Arc::clone(&active);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if active.load(Ordering::Relaxed) {
                    tell_obs::timeseries::roll_global_now();
                }
                std::thread::sleep(Duration::from_millis(TICK_MS));
            }
        })
    };

    let run_txn = |payload: u8| {
        let mut txn = pn.begin().unwrap();
        txn.update(&table, rid, Bytes::from(vec![payload; 64])).unwrap();
        txn.commit().unwrap();
    };
    // Warm both arms.
    for on in [false, true] {
        active.store(on, Ordering::Relaxed);
        for _ in 0..txns {
            run_txn(9);
        }
    }
    let time_batch = |on: bool| {
        active.store(on, Ordering::Relaxed);
        let t = Instant::now();
        for _ in 0..txns {
            run_txn(if on { 3 } else { 2 });
        }
        t.elapsed().as_nanos() as f64 / txns as f64
    };

    let mut deltas = Vec::with_capacity(blocks);
    let mut idle_ns = Vec::with_capacity(blocks);
    for _ in 0..blocks {
        // A-B-B-A: linear drift within the block cancels exactly.
        let d1 = time_batch(false);
        let e1 = time_batch(true);
        let e2 = time_batch(true);
        let d2 = time_batch(false);
        deltas.push((e1 + e2 - d1 - d2) / 2.0);
        idle_ns.push((d1 + d2) / 2.0);
    }
    stop.store(true, Ordering::Relaxed);
    roller.join().unwrap();

    deltas.sort_by(|a, b| a.partial_cmp(b).unwrap());
    idle_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let delta = deltas[blocks / 2];
    let idle = idle_ns[blocks / 2];
    let rolling = idle + delta;
    let overhead_pct = delta / idle * 100.0;
    let points = tell_obs::timeseries::global_ring().latest_seq();

    println!("telemetry_overhead: update txn with the ring roller at {TICK_MS}ms cadence");
    println!("{:<44} {:>12.1} ns/txn", "telemetry/txn_update_roller_idle", idle);
    println!("{:<44} {:>12.1} ns/txn", "telemetry/txn_update_roller_active", rolling);
    println!(
        "{:<44} {:>11.2} %  (bound: < {BOUND_PCT} %, {points} points rolled)",
        "telemetry/rollup_overhead", overhead_pct
    );

    if let Ok(dir) = std::env::var("TELL_BENCH_JSON") {
        let json = format!(
            "{{\n  \"bench\": \"telemetry_overhead\",\n  \"tick_ms\": {TICK_MS},\n  \
             \"txns_per_batch\": {txns},\n  \"blocks\": {blocks},\n  \
             \"roller_idle_ns_per_txn\": {idle:.1},\n  \
             \"roller_active_ns_per_txn\": {rolling:.1},\n  \
             \"overhead_pct\": {overhead_pct:.3},\n  \"bound_pct\": {BOUND_PCT}\n}}\n"
        );
        let path = std::path::Path::new(&dir).join("BENCH_telemetry_overhead.json");
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("  wrote {}", path.display()),
            Err(e) => eprintln!("  (failed to write {}: {e})", path.display()),
        }
    }
}

//! Table 3: commit-manager scale-out (write-intensive, RF1).
//!
//! Paper: 1 → 2 → 4 commit managers leave both throughput (~950k TpmC) and
//! the abort rate (~14.6 %) unchanged — "the commit manager component is
//! not a bottleneck" because it performs no commit validation.

use tell_bench::*;
use tell_core::{BufferConfig, TellConfig};
use tell_tpcc::mix::Mix;

fn main() {
    section(
        "Table 3 — commit managers",
        "1/2/4 CMs: 946k/955k/951k TpmC, abort rate 14.59/14.65/14.58% — flat",
    );
    let env = BenchEnv::from_env();
    table_header(&["Commit managers", "TpmC", "Tps", "abort rate", "mean latency"]);
    let mut tpmcs = Vec::new();
    for cms in [1usize, 2, 4] {
        let config = TellConfig {
            storage_nodes: 7,
            replication_factor: 1,
            commit_managers: cms,
            buffer: BufferConfig::TransactionOnly,
            ..TellConfig::default()
        };
        let engine = setup_tell(config, &env).expect("setup");
        let report = run_tell(&engine, &env, Mix::standard(), 4).expect("run");
        let mut cells = vec![cms.to_string()];
        cells.extend(report_cells(&report));
        table_row(&cells);
        tpmcs.push(report.tpmc);
    }
    let min = tpmcs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = tpmcs.iter().copied().fold(0.0, f64::max);
    assert!(max / min < 1.25, "commit managers must not be a bottleneck: {tpmcs:?}");
    println!(
        "\nshape ok: throughput flat across 1/2/4 commit managers (spread {:.1}%)",
        (max / min - 1.0) * 100.0
    );
}

//! Figure 11: buffering strategies (write-intensive mix, RF1, 7 SNs).
//!
//! Paper: the plain transaction buffer (TB) wins; the shared record buffer
//! (SB) loses slightly (hit ratio a meagre 1.42 %); version-set
//! synchronization (SBVS, cache units 10/1000) achieves much better hit
//! ratios (37.37 % for SBVS1000) but the per-update stamp maintenance
//! costs more than the hits save: "with fast RDMA the overhead of
//! buffering data does not pay off".

use tell_bench::*;
use tell_core::{BufferConfig, TellConfig};
use tell_tpcc::mix::Mix;

fn main() {
    section(
        "Figure 11 — buffering strategies (write-intensive, RF1)",
        "TB > SB > SBVS10/SBVS1000; SB hit ratio ≈1.4%, SBVS1000 ≈37%",
    );
    let env = BenchEnv::from_env();
    let strategies = [
        BufferConfig::TransactionOnly,
        BufferConfig::Shared { capacity: 4096 },
        BufferConfig::SharedVersionSync { capacity: 4096, cache_unit: 10 },
        BufferConfig::SharedVersionSync { capacity: 4096, cache_unit: 1000 },
    ];
    table_header(&["strategy", "PNs", "TpmC", "Tps", "buffer hit ratio", "mean latency"]);
    let mut at_4pn = Vec::new();
    let mut hit_ratios = Vec::new();
    for strategy in &strategies {
        for pns in [1usize, 2, 4] {
            let config = TellConfig {
                storage_nodes: 7,
                replication_factor: 1,
                buffer: strategy.clone(),
                ..TellConfig::default()
            };
            let engine = setup_tell(config, &env).expect("setup");
            let report = run_tell(&engine, &env, Mix::standard(), pns).expect("run");
            table_row(&[
                strategy.label(),
                pns.to_string(),
                fmt_k(report.tpmc),
                fmt_k(report.tps),
                fmt_pct(report.buffer_hit_ratio),
                fmt_ms(report.latency.mean()),
            ]);
            if pns == 4 {
                at_4pn.push(report.tpmc);
                hit_ratios.push(report.buffer_hit_ratio);
            }
        }
    }
    // Shapes: TB on top; SBVS's better hit ratio does not save it.
    assert!(at_4pn[0] >= at_4pn[1] * 0.98, "TB must not lose to SB: {at_4pn:?}");
    assert!(
        at_4pn[0] > at_4pn[2] && at_4pn[0] > at_4pn[3],
        "TB must beat both SBVS variants: {at_4pn:?}"
    );
    assert!(hit_ratios[3] > hit_ratios[1], "SBVS1000 must hit more often than SB: {hit_ratios:?}");
    println!(
        "\nshape ok: TB {} ≥ SB {} > SBVS10 {} / SBVS1000 {}; hit ratios SB {} vs SBVS1000 {}",
        fmt_k(at_4pn[0]),
        fmt_k(at_4pn[1]),
        fmt_k(at_4pn[2]),
        fmt_k(at_4pn[3]),
        fmt_pct(hit_ratios[1]),
        fmt_pct(hit_ratios[3])
    );
}

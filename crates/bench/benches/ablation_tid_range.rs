//! Ablation (§4.2): tid allocation scheme. The paper ships **continuous
//! tid ranges** ("simple to implement. However, the approach has
//! limitations (e.g., higher abort rate)") and names **interleaved tids**
//! [58] as the fix. This repository implements both; interleaved is the
//! default. Continuous ranges abort whenever a transaction holding a tid
//! from an older range touches a record that already carries a higher
//! version — the bigger the range and the more commit managers, the worse.

use tell_bench::*;
use tell_commitmgr::manager::CmConfig;
use tell_core::{BufferConfig, TellConfig};
use tell_tpcc::mix::Mix;

fn main() {
    section(
        "Ablation — tid allocation (2 CMs, RF1, 4 PNs)",
        "continuous ranges trade counter round trips against version-order aborts; interleaved tids avoid both",
    );
    let env = BenchEnv::from_env();
    table_header(&["allocation", "TpmC", "abort rate", "mean latency"]);
    let mut results: Vec<(String, f64, f64)> = Vec::new();
    let mut run_one = |label: String, cm: CmConfig| {
        let config = TellConfig {
            storage_nodes: 7,
            replication_factor: 1,
            commit_managers: 2,
            cm,
            buffer: BufferConfig::TransactionOnly,
            ..TellConfig::default()
        };
        let engine = setup_tell(config, &env).expect("setup");
        let report = run_tell(&engine, &env, Mix::standard(), 4).expect("run");
        table_row(&[
            label.clone(),
            fmt_k(report.tpmc),
            fmt_pct(report.abort_rate()),
            fmt_ms(report.latency.mean()),
        ]);
        results.push((label, report.tpmc, report.abort_rate()));
    };

    run_one("interleaved (default)".into(), CmConfig::default());
    for range in [1u64, 16, 64, 256] {
        run_one(
            format!("continuous range {range}"),
            CmConfig { interleaved: false, tid_range: range, ..CmConfig::default() },
        );
    }

    let interleaved_aborts = results[0].2;
    let big_range_aborts = results.last().unwrap().2;
    assert!(
        big_range_aborts > interleaved_aborts,
        "large continuous ranges must abort more than interleaved tids: {results:?}"
    );
    println!(
        "\nshape ok: continuous-range abort rate grows to {:.1}% (range 256) vs {:.2}% interleaved — \
         the paper's acknowledged limitation, quantified",
        big_range_aborts * 100.0,
        interleaved_aborts * 100.0
    );
}

//! Figure 6: processing scale-out, read-intensive mix.
//!
//! Paper: reads only touch the master copy, so replication barely hurts —
//! RF3 is just 25.7 % below RF1 at 8 PNs (vs 63.2 % under the write mix).

use tell_bench::*;
use tell_core::BufferConfig;
use tell_tpcc::mix::Mix;

fn main() {
    section(
        "Figure 6 — scale-out processing (read-intensive)",
        "RF3 only −25.7% vs RF1 at 8 PNs (replication costs writes, not reads)",
    );
    let env = BenchEnv::from_env();
    table_header(&["RF", "PNs", "TpmC", "Tps", "abort rate", "mean latency"]);
    let mut rf1_8 = 0.0;
    let mut rf3_8 = 0.0;
    let mut rf1_1 = 0.0;
    for rf in [1usize, 2, 3] {
        for pns in [1usize, 2, 4, 8] {
            let engine =
                setup_tell(tell_config(rf, BufferConfig::TransactionOnly), &env).expect("setup");
            let report = run_tell(&engine, &env, Mix::read_intensive(), pns).expect("run");
            let mut cells = vec![format!("RF{rf}"), pns.to_string()];
            cells.extend(report_cells(&report));
            table_row(&cells);
            match (rf, pns) {
                (1, 1) => rf1_1 = report.tps,
                (1, 8) => rf1_8 = report.tps,
                (3, 8) => rf3_8 = report.tps,
                _ => {}
            }
        }
    }
    let penalty = 1.0 - rf3_8 / rf1_8;
    assert!(rf1_8 > rf1_1 * 3.0, "read mix must scale with PNs");
    assert!(
        penalty < 0.45,
        "read-intensive replication penalty must be mild: {:.1}%",
        penalty * 100.0
    );
    println!(
        "\nshape ok: RF3 is {:.1}% below RF1 at 8 PNs (paper: 25.7%, write mix: >60%)",
        penalty * 100.0
    );
}

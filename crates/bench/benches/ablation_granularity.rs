//! Ablation (§5.1): storage granularity. The paper argues row-level
//! storage — one KV pair per record holding *all* versions — beats both a
//! coarser page-grouped scheme (pages must be re-fetched wholesale and
//! conflict at page granularity) and a finer version-per-KV scheme (extra
//! requests to discover versions, extra writes to install them).
//!
//! This bench runs a synthetic read/update workload directly on the store
//! under the three schemes and compares virtual time and conflict rates.

use std::sync::Arc;

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tell_bench::{fmt_pct, section, table_header, table_row};
use tell_common::{Error, SimClock};
use tell_netsim::{NetMeter, NetworkProfile, TrafficStats};
use tell_store::{StoreClient, StoreCluster, StoreConfig};

const RECORDS: u64 = 2_000;
const OPS: usize = 20_000;
const ROW_BYTES: usize = 120;
const PAGE_SIZE: u64 = 16;
const READ_PCT: u32 = 64; // the standard mix's read share of operations

fn key(prefix: &str, id: u64) -> Bytes {
    let mut k = prefix.as_bytes().to_vec();
    k.extend_from_slice(&id.to_be_bytes());
    Bytes::from(k)
}

fn row(seed: u64) -> Bytes {
    Bytes::from(vec![(seed % 251) as u8; ROW_BYTES])
}

struct Outcome {
    virtual_us: f64,
    conflicts: u64,
    bytes: u64,
    requests: u64,
}

fn run_scheme(
    name: &str,
    read: impl Fn(&StoreClient, u64) -> Result<(), Error>,
    update: impl Fn(&StoreClient, u64) -> Result<bool, Error>,
    cluster: Arc<StoreCluster>,
) -> Outcome {
    let clock = SimClock::new();
    let stats = TrafficStats::new();
    let meter = NetMeter::new(NetworkProfile::infiniband(), clock.clone(), Arc::clone(&stats));
    let client = StoreClient::new(cluster, meter);
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let mut conflicts = 0;
    for _ in 0..OPS {
        let id = rng.random_range(0..RECORDS);
        if rng.random_range(0..100) < READ_PCT {
            read(&client, id).expect(name);
        } else if !update(&client, id).expect(name) {
            conflicts += 1;
        }
    }
    Outcome {
        virtual_us: clock.now_us(),
        conflicts,
        bytes: stats.total_bytes(),
        requests: stats.request_count(),
    }
}

fn main() {
    section(
        "Ablation — storage granularity (§5.1)",
        "row-level storage minimizes requests; pages waste bandwidth and conflict; per-version KVs need extra requests",
    );

    // --- Scheme 1: record granularity (Tell's choice). One cell per
    // record; update = LL + SC of that cell.
    let c1 = StoreCluster::new(StoreConfig::new(4));
    {
        let loader = StoreClient::unmetered(Arc::clone(&c1));
        for id in 0..RECORDS {
            loader.insert(&key("rec/", id), row(id)).unwrap();
        }
    }
    let record = run_scheme(
        "record",
        |c, id| c.get(&key("rec/", id)).map(|_| ()),
        |c, id| {
            let (token, _) = c.get(&key("rec/", id))?.expect("loaded");
            match c.store_conditional(&key("rec/", id), token, row(id + 1)) {
                Ok(_) => Ok(true),
                Err(Error::Conflict) => Ok(false),
                Err(e) => Err(e),
            }
        },
        c1,
    );

    // --- Scheme 2: page-grouped (disk-style). PAGE_SIZE records per cell;
    // every access moves the whole page; updates conflict at page level.
    let c2 = StoreCluster::new(StoreConfig::new(4));
    {
        let loader = StoreClient::unmetered(Arc::clone(&c2));
        let page_bytes = ROW_BYTES * PAGE_SIZE as usize;
        for page in 0..RECORDS / PAGE_SIZE {
            loader.insert(&key("page/", page), Bytes::from(vec![7u8; page_bytes])).unwrap();
        }
    }
    let paged = run_scheme(
        "page",
        |c, id| c.get(&key("page/", id / PAGE_SIZE)).map(|_| ()),
        |c, id| {
            let pk = key("page/", id / PAGE_SIZE);
            let (token, mut page) = c.get(&pk)?.map(|(t, v)| (t, v.to_vec())).expect("loaded");
            let off = (id % PAGE_SIZE) as usize * ROW_BYTES;
            page[off] = page[off].wrapping_add(1);
            match c.store_conditional(&pk, token, Bytes::from(page)) {
                Ok(_) => Ok(true),
                Err(Error::Conflict) => Ok(false),
                Err(e) => Err(e),
            }
        },
        c2,
    );

    // --- Scheme 3: one KV pair per version: a version-list cell plus one
    // cell per version. Read = list + newest version (2 requests); update =
    // list LL + new version insert + list SC (3 requests).
    let c3 = StoreCluster::new(StoreConfig::new(4));
    {
        let loader = StoreClient::unmetered(Arc::clone(&c3));
        for id in 0..RECORDS {
            loader.insert(&key("vl/", id), Bytes::copy_from_slice(&0u64.to_le_bytes())).unwrap();
            loader.insert(&key(&format!("v{}/", 0), id), row(id)).unwrap();
        }
    }
    let versioned = run_scheme(
        "per-version",
        |c, id| {
            let (_, list) = c.get(&key("vl/", id))?.expect("list");
            let newest = u64::from_le_bytes(list.as_ref()[..8].try_into().unwrap());
            c.get(&key(&format!("v{newest}/"), id)).map(|_| ())
        },
        |c, id| {
            let (token, list) = c.get(&key("vl/", id))?.expect("list");
            let newest = u64::from_le_bytes(list.as_ref()[..8].try_into().unwrap());
            let next = newest + 1;
            c.put(&key(&format!("v{next}/"), id), row(id + next))?;
            match c.store_conditional(
                &key("vl/", id),
                token,
                Bytes::copy_from_slice(&next.to_le_bytes()),
            ) {
                Ok(_) => Ok(true),
                Err(Error::Conflict) => Ok(false),
                Err(e) => Err(e),
            }
        },
        c3,
    );

    table_header(&["scheme", "virtual time (ms)", "requests/op", "bytes/op", "conflict rate"]);
    for (name, o) in [
        ("record (Tell, §5.1)", &record),
        (&format!("page ({PAGE_SIZE} records)"), &paged),
        ("one KV per version", &versioned),
    ] {
        table_row(&[
            name.to_string(),
            format!("{:.1}", o.virtual_us / 1e3),
            format!("{:.2}", o.requests as f64 / OPS as f64),
            format!("{:.0}", o.bytes as f64 / OPS as f64),
            fmt_pct(o.conflicts as f64 / OPS as f64),
        ]);
    }
    assert!(
        record.virtual_us < paged.virtual_us && record.virtual_us < versioned.virtual_us,
        "record granularity must win on total time"
    );
    assert!(record.bytes < paged.bytes, "pages must waste bandwidth");
    assert!(record.requests < versioned.requests, "per-version KVs must need more requests");
    println!("\nshape ok: record granularity minimizes requests without the page scheme's bandwidth and conflict costs");
}

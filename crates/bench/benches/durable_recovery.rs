//! Durable-tier characterization: restart recovery time as a function of
//! log size (with and without checkpoints), and object-cache hit rate
//! under a skewed read mix. Not a paper figure — the paper's storage tier
//! is RAMCloud — but the numbers gate the tell-durable design: recovery
//! must be log-linear and checkpoints must flatten it, and the LRU must
//! hold a skewed working set far smaller than the full log.

use std::path::PathBuf;
use std::time::Instant;

use bytes::Bytes;
use tell_bench::{fmt_k, section, table_header, table_row};
use tell_durable::{DurableNode, DurableNodeConfig, FsyncPolicy};
use tell_store::{Cell, NodeDurability};

const PIDS: u32 = 8;

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tell-bench-durable-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(checkpoint_every: u64) -> DurableNodeConfig {
    DurableNodeConfig {
        segment_bytes: 1 << 20,
        // Recovery cost is what's measured; per-append fsync would just
        // stretch the (untimed) load phase.
        fsync: FsyncPolicy::Never,
        checkpoint_every,
        cache_bytes: 64 << 20,
        background_eviction: false,
    }
}

fn key(i: u64, keys: u64) -> Bytes {
    Bytes::from(format!("bench/{:08}", i % keys))
}

/// Append `records` puts (overwriting a rolling key set), drop the engine,
/// and time a cold `DurableNode::open`.
fn recovery_run(records: u64, checkpoint_every: u64) -> (f64, u64, u64) {
    let dir = bench_dir("recovery");
    let value = Bytes::from(vec![0xA5u8; 64]);
    {
        let (node, _) = DurableNode::open(dir.clone(), config(checkpoint_every)).unwrap();
        for i in 0..records {
            let cell = Cell { token: i + 1, value: value.clone() };
            node.record(i as u32 % PIDS, i / PIDS as u64 + 1, &key(i, records / 2), Some(&cell))
                .unwrap();
        }
    }
    let log_bytes: u64 =
        std::fs::read_dir(&dir).unwrap().map(|e| e.unwrap().metadata().unwrap().len()).sum();
    let started = Instant::now();
    let (_node, parts) = DurableNode::open(dir.clone(), config(checkpoint_every)).unwrap();
    let ms = started.elapsed().as_secs_f64() * 1e3;
    let live: u64 = parts.iter().map(|p| p.entries.len() as u64).sum();
    std::fs::remove_dir_all(&dir).unwrap();
    (ms, log_bytes, live)
}

/// Write `keys` values, then read with an 80/20 skew (80% of lookups hit
/// the first 20% of the key space) through a cache sized to ~25% of the
/// value bytes. Returns the measured hit rate.
fn cache_run(keys: u64, lookups: u64) -> f64 {
    let dir = bench_dir("cache");
    let value_bytes = 256usize;
    let mut cfg = config(0);
    cfg.cache_bytes = keys as usize * value_bytes / 4;
    let (node, _) = DurableNode::open(dir.clone(), cfg).unwrap();
    let value = Bytes::from(vec![0x5Au8; value_bytes]);
    for i in 0..keys {
        let cell = Cell { token: i + 1, value: value.clone() };
        node.record(i as u32 % PIDS, i / PIDS as u64 + 1, &key(i, keys), Some(&cell)).unwrap();
    }

    // Deterministic xorshift stream picks the key; the same stream's next
    // draw picks hot vs cold.
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut rand = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let (mut hits, mut misses) = (0u64, 0u64);
    for _ in 0..lookups {
        let hot = rand() % 100 < 80;
        let i = if hot { rand() % (keys / 5).max(1) } else { keys / 5 + rand() % (keys * 4 / 5) };
        let k = key(i, keys);
        let in_cache = node.cache().get(i as u32 % PIDS, &k).is_some();
        if in_cache {
            hits += 1;
        } else {
            misses += 1;
        }
        let _ = node.get(i as u32 % PIDS, &k).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
    hits as f64 / (hits + misses) as f64
}

fn main() {
    let tiny = std::env::var("TELL_BENCH_SCALE").as_deref() == Ok("tiny");
    let sizes: &[u64] = if tiny { &[500, 2_000] } else { &[5_000, 20_000, 80_000] };

    section(
        "durable_recovery — restart cost vs log size",
        "not in paper; gates the tell-durable log/checkpoint design",
    );
    table_header(&["records", "checkpoints", "log bytes", "recover ms", "records/s", "live keys"]);
    let mut rows = Vec::new();
    for &records in sizes {
        for checkpoint_every in [0u64, 4_096] {
            let (ms, log_bytes, live) = recovery_run(records, checkpoint_every);
            table_row(&[
                records.to_string(),
                if checkpoint_every == 0 {
                    "off".into()
                } else {
                    format!("every {checkpoint_every}")
                },
                log_bytes.to_string(),
                format!("{ms:.2}"),
                fmt_k(records as f64 / (ms / 1e3).max(1e-9)),
                live.to_string(),
            ]);
            rows.push(format!(
                "{{\"records\":{records},\"checkpoint_every\":{checkpoint_every},\
                 \"log_bytes\":{log_bytes},\"recover_ms\":{ms:.3},\"live_keys\":{live}}}"
            ));
        }
    }

    let (keys, lookups) = if tiny { (800, 4_000) } else { (8_000, 80_000) };
    let hit_rate = cache_run(keys, lookups);
    println!();
    println!(
        "cache: {keys} keys, {lookups} lookups, 80/20 skew, cache = 25% of values \
         -> hit rate {:.1}%",
        hit_rate * 100.0
    );

    if let Ok(dir) = std::env::var("TELL_BENCH_JSON") {
        let json = format!(
            "{{\n  \"bench\": \"durable_recovery\",\n  \"recovery\": [\n    {}\n  ],\n  \
             \"cache\": {{\"keys\": {keys}, \"lookups\": {lookups}, \"skew\": \"80/20\", \
             \"hit_rate\": {hit_rate:.4}}}\n}}\n",
            rows.join(",\n    ")
        );
        let path = std::path::Path::new(&dir).join("BENCH_durable_recovery.json");
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("  wrote {}", path.display()),
            Err(e) => eprintln!("  (failed to write {}: {e})", path.display()),
        }
    }
}

//! Figure 7: storage scale-out, TPC-C standard mix, RF3.
//!
//! Paper: with 3, 5 or 7 SNs "the storage layer is not a bottleneck, and
//! therefore, the throughput difference is minimal. The configuration with
//! 3 SNs can not run with more than 5 PNs [because] the benchmark generates
//! too much data to fit into the combined memory capacity" — storage
//! resources should be sized by memory, not CPU.

use tell_bench::*;
use tell_common::Error;
use tell_core::{BufferConfig, TellConfig};
use tell_tpcc::mix::Mix;

fn main() {
    section(
        "Figure 7 — scale-out storage (write-intensive, RF3)",
        "3/5/7 SNs perform alike until 3 SNs run out of memory at high PN counts",
    );
    let env = BenchEnv::from_env();

    // Measure the loaded dataset size on an uncapped deployment, then give
    // every SN the same RAM: 3 SNs = less total memory, as in the paper's
    // fixed-size servers.
    let probe = setup_tell(
        TellConfig { storage_nodes: 3, replication_factor: 3, ..TellConfig::default() },
        &env,
    )
    .expect("probe setup");
    let loaded_bytes = probe.database().store().total_used_bytes();
    drop(probe);
    let per_node = (loaded_bytes as f64 * 1.18 / 3.0) as usize;

    table_header(&["SNs", "PNs", "TpmC", "Tps", "abort rate", "mean latency"]);
    let mut sn7_points = 0;
    let mut sn3_oom = false;
    for sns in [3usize, 5, 7] {
        for pns in [1usize, 2, 4, 6] {
            let config = TellConfig {
                storage_nodes: sns,
                replication_factor: 3,
                node_capacity_bytes: Some(per_node),
                buffer: BufferConfig::TransactionOnly,
                ..TellConfig::default()
            };
            let outcome = setup_tell(config, &env)
                .and_then(|engine| run_tell(&engine, &env, Mix::standard(), pns));
            match outcome {
                Ok(report) => {
                    let mut cells = vec![sns.to_string(), pns.to_string()];
                    cells.extend(report_cells(&report));
                    table_row(&cells);
                    if sns == 7 {
                        sn7_points += 1;
                    }
                }
                Err(Error::CapacityExceeded { .. }) => {
                    table_row(&[
                        sns.to_string(),
                        pns.to_string(),
                        "OOM".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                    if sns == 3 {
                        sn3_oom = true;
                    }
                }
                Err(e) => panic!("sns={sns} pns={pns}: {e}"),
            }
        }
    }
    assert!(sn3_oom, "the 3-SN configuration must exhaust its memory at high PN counts");
    assert_eq!(sn7_points, 4, "7 SNs must complete every PN count");
    println!(
        "\nshape ok: 3 SNs hit the memory wall; 5/7 SNs equivalent (storage is not the bottleneck)"
    );
}

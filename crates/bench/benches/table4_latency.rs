//! Table 4: TPC-C transaction response times (mean ± σ) on the small and
//! large configurations, standard and shardable workloads.
//!
//! Paper (ms): standard small/large — Tell 14±27 / 23±41, MySQL 34±42 /
//! 88±40, VoltDB 706±1877 / 4625±1875, FDB 149±186 / 163±138; shardable —
//! VoltDB collapses to 62±77 / 243±59. The *ordering* and the VoltDB
//! standard-vs-shardable collapse are the shapes to reproduce.

use tell_bench::*;
use tell_tpcc::mix::Mix;

fn main() {
    section(
        "Table 4 — transaction response times (mean ± σ)",
        "Tell fastest; VoltDB's standard-mix latency is catastrophic but collapses on the shardable mix",
    );
    let env = comparison_env();
    let sizes = cluster_sizes();
    let small = &sizes[0];
    let large = &sizes[2];

    table_header(&["workload", "system", "small (ms)", "large (ms)"]);
    let fmt = |mean_us: f64, std_us: f64| format!("{:.2} ± {:.2}", mean_us / 1e3, std_us / 1e3);

    let mut volt_standard_small = 0.0;
    let mut volt_shardable_small = 0.0;
    let mut tell_standard_small = 0.0;
    let mut fdb_standard_small = 0.0;

    for (wl, mix) in [("standard", Mix::standard()), ("shardable", Mix::shardable())] {
        let tell_s = tell_at_size(&env, small, mix.clone(), 3);
        let tell_l = tell_at_size(&env, large, mix.clone(), 3);
        table_row(&[
            wl.into(),
            "Tell".into(),
            fmt(tell_s.latency.mean(), tell_s.latency.stddev()),
            fmt(tell_l.latency.mean(), tell_l.latency.stddev()),
        ]);
        if wl == "standard" {
            tell_standard_small = tell_s.latency.mean();
        }

        let ndb_s = ndb_at_size(&env, small, mix.clone(), 2);
        let ndb_l = ndb_at_size(&env, large, mix.clone(), 2);
        table_row(&[
            wl.into(),
            "MySQL-Cluster-like".into(),
            fmt(ndb_s.latency.mean(), ndb_s.latency.stddev()),
            fmt(ndb_l.latency.mean(), ndb_l.latency.stddev()),
        ]);

        let volt_s = voltdb_at_size(&env, small, mix.clone(), 3);
        let volt_l = voltdb_at_size(&env, large, mix.clone(), 3);
        table_row(&[
            wl.into(),
            "VoltDB-like".into(),
            fmt(volt_s.latency.mean(), volt_s.latency.stddev()),
            fmt(volt_l.latency.mean(), volt_l.latency.stddev()),
        ]);
        if wl == "standard" {
            volt_standard_small = volt_s.latency.mean();
        } else {
            volt_shardable_small = volt_s.latency.mean();
        }

        if wl == "standard" {
            let fdb_s = fdb_at_size(&env, small, mix.clone());
            let fdb_l = fdb_at_size(&env, large, mix.clone());
            table_row(&[
                wl.into(),
                "FoundationDB-like".into(),
                fmt(fdb_s.latency.mean(), fdb_s.latency.stddev()),
                fmt(fdb_l.latency.mean(), fdb_l.latency.stddev()),
            ]);
            fdb_standard_small = fdb_s.latency.mean();
        }
    }

    assert!(
        tell_standard_small < fdb_standard_small && tell_standard_small < volt_standard_small,
        "Tell must have the lowest latency"
    );
    assert!(
        volt_standard_small > volt_shardable_small * 3.0,
        "VoltDB latency must collapse on the shardable mix: {volt_standard_small} vs {volt_shardable_small}"
    );
    println!(
        "\nshape ok: Tell {:.1}ms < others; VoltDB standard/shardable latency ratio {:.1}x (paper ≈ 11x)",
        tell_standard_small / 1e3,
        volt_standard_small / volt_shardable_small
    );
}

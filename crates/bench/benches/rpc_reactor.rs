//! Real-wire server comparison: the epoll reactor (`RpcServer`) against
//! the thread-per-connection baseline (`BlockingServer`), measured in
//! committed transactions per wall second. Not a paper figure — it gates
//! the reactor rewrite: the paper's scale-out argument (§7) needs
//! processing nodes to stay network-bound, so the server must not ceiling
//! on per-connection threads and blocking syscall round trips before the
//! wire does.
//!
//! Topology per run: a storage server and a commit server on loopback
//! (both using the server model under test, the commit managers keeping
//! their recoverable state in the storage server across the wire, as
//! deployed), and N workers each holding one TCP connection to each
//! server. A worker's transaction is the paper's minimal commit cycle —
//! `CmStart` for a tid + snapshot, one storage write, `CmComplete` — and
//! each worker keeps `DEPTH` such cycles in flight over its connections
//! via `Connection::call_async` (the paper's processing nodes likewise
//! multiplex many fibers over shared links, §4.1). Almost no client-side
//! compute: the server's I/O model is what's on the clock.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use tell_bench::{fmt_k, section, table_header, table_row};
use tell_commitmgr::manager::CmConfig;
use tell_commitmgr::{CmCluster, CommitService};
use tell_rpc::{
    BlockingServer, Connection, PendingReply, ReactorConfig, RemoteEndpoint, Request, Response,
    RpcServer, Services,
};
use tell_store::{StoreCluster, StoreConfig};

/// In-flight commit cycles per worker connection pair.
const DEPTH: usize = 8;

/// Commit managers behind the commit server. Several, as deployed (§4.4):
/// a completion publishes state to storage under its manager's lock, so a
/// single manager would serialize every client behind one nested round
/// trip and the benchmark would measure that lock, not the server.
const MANAGERS: usize = 8;

#[derive(Clone, Copy, PartialEq)]
enum Model {
    Reactor,
    Blocking,
}

impl Model {
    fn name(self) -> &'static str {
        match self {
            Model::Reactor => "reactor",
            Model::Blocking => "thread-per-conn",
        }
    }
}

enum Server {
    Reactor(RpcServer),
    Blocking(BlockingServer),
}

impl Server {
    fn serve(model: Model, services: Services) -> Server {
        match model {
            // Commit handlers block on nested wire calls to storage (state
            // publication), so the dispatch pool needs depth beyond the
            // core count — the knob exists for exactly this deployment.
            Model::Reactor => {
                let config = ReactorConfig { workers: 8, ..ReactorConfig::default() };
                Server::Reactor(RpcServer::serve_with("127.0.0.1:0", services, config).unwrap())
            }
            Model::Blocking => {
                Server::Blocking(BlockingServer::serve("127.0.0.1:0", services).unwrap())
            }
        }
    }

    fn addr(&self) -> String {
        match self {
            Server::Reactor(s) => s.local_addr().to_string(),
            Server::Blocking(s) => s.local_addr().to_string(),
        }
    }
}

/// One full commit over the wire: tid + snapshot from the commit manager,
/// a storage write under that tid, the outcome reported back.
fn commit_once(
    sn: &Connection,
    cm: &Connection,
    key: &Bytes,
    hint: u64,
) -> Result<(), tell_common::Error> {
    let (started, _, _) = cm.call(&Request::CmStart { hint })?;
    let tid = match started {
        Response::TxnStarted { tid, .. } => tid,
        other => panic!("CmStart answered {other:?}"),
    };
    sn.call(&Request::Increment { key: key.clone(), delta: 1 })?;
    cm.call(&Request::CmComplete { tid, committed: true })?;
    Ok(())
}

/// One commit cycle's position in the three-round-trip protocol, holding
/// the reply it is parked on.
enum Cycle {
    Starting(PendingReply),
    Writing(PendingReply, tell_common::TxnId),
    Completing(PendingReply),
}

impl Cycle {
    fn start(cm: &Connection, hint: u64) -> Result<Cycle, tell_common::Error> {
        Ok(Cycle::Starting(cm.call_async(&Request::CmStart { hint })?))
    }

    /// Wait out this cycle's pending reply and issue the next request.
    /// Returns whether the step completed a commit.
    fn step(
        self,
        sn: &Connection,
        cm: &Connection,
        key: &Bytes,
        hint: u64,
    ) -> Result<(Cycle, bool), tell_common::Error> {
        match self {
            Cycle::Starting(reply) => {
                let tid = match reply.wait()?.0 {
                    Response::TxnStarted { tid, .. } => tid,
                    other => panic!("CmStart answered {other:?}"),
                };
                let next = sn.call_async(&Request::Increment { key: key.clone(), delta: 1 })?;
                Ok((Cycle::Writing(next, tid), false))
            }
            Cycle::Writing(reply, tid) => {
                reply.wait()?;
                let next = cm.call_async(&Request::CmComplete { tid, committed: true })?;
                Ok((Cycle::Completing(next), false))
            }
            Cycle::Completing(reply) => {
                reply.wait()?;
                Ok((Cycle::start(cm, hint)?, true))
            }
        }
    }
}

/// Run one configuration and return committed transactions per wall second.
fn run(model: Model, conns: usize, measure: Duration) -> f64 {
    let store = StoreCluster::new(StoreConfig::new(4));
    let sn = Server::serve(model, Services { store: Some(store), commit: None });
    let sn_addr = sn.addr();

    let cm_cluster =
        CmCluster::new(RemoteEndpoint::connect(sn_addr.clone(), 2), MANAGERS, CmConfig::default());
    let cm = Server::serve(
        model,
        Services { store: None, commit: Some(cm_cluster as Arc<dyn CommitService>) },
    );
    let cm_addr = cm.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let started = Arc::new(std::sync::Barrier::new(conns + 1));
    let handles: Vec<_> = (0..conns)
        .map(|w| {
            let sn_addr = sn_addr.clone();
            let cm_addr = cm_addr.clone();
            let stop = Arc::clone(&stop);
            let started = Arc::clone(&started);
            std::thread::spawn(move || {
                let sn = Connection::connect(&sn_addr).unwrap();
                let cm = Connection::connect(&cm_addr).unwrap();
                let key = Bytes::from(format!("bench/{w:04}"));
                // Pin this worker's transactions to one manager (§4.4
                // hint routing), spreading workers across all of them.
                let hint = w as u64;
                // Warm both connections before the clock runs.
                commit_once(&sn, &cm, &key, hint).unwrap();
                started.wait();
                // DEPTH interleaved commit cycles: stepping slot i blocks
                // on its reply while the other slots' requests are already
                // on the wire, so the servers always see a full pipeline.
                let mut cycles: Vec<Option<Cycle>> =
                    (0..DEPTH).map(|_| Some(Cycle::start(&cm, hint).unwrap())).collect();
                let mut commits = 0u64;
                'outer: loop {
                    for cycle in cycles.iter_mut() {
                        if stop.load(Ordering::Relaxed) {
                            break 'outer;
                        }
                        let slot = cycle.take().expect("cycle in flight");
                        let (next, committed) = slot.step(&sn, &cm, &key, hint).unwrap();
                        *cycle = Some(next);
                        if committed {
                            commits += 1;
                        }
                    }
                }
                commits
            })
        })
        .collect();

    started.wait();
    let clock = Instant::now();
    std::thread::sleep(measure);
    stop.store(true, Ordering::Relaxed);
    let commits: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let wall = clock.elapsed().as_secs_f64();
    commits as f64 / wall
}

fn main() {
    let tiny = std::env::var("TELL_BENCH_SCALE").as_deref() == Ok("tiny");
    let measure = if tiny { Duration::from_millis(200) } else { Duration::from_millis(1500) };
    let conn_counts: &[usize] = &[4, 64];

    section(
        "rpc_reactor — real-wire commits/s, epoll reactor vs thread-per-connection",
        "not in paper; gates the crates/rpc reactor rewrite (ROADMAP: raw speed)",
    );
    table_header(&["connections", "server", "commits/s", "vs blocking"]);
    let mut rows = Vec::new();
    for &conns in conn_counts {
        let blocking = run(Model::Blocking, conns, measure);
        let reactor = run(Model::Reactor, conns, measure);
        for (model, rate) in [(Model::Blocking, blocking), (Model::Reactor, reactor)] {
            table_row(&[
                conns.to_string(),
                model.name().into(),
                fmt_k(rate),
                if model == Model::Reactor {
                    format!("{:.2}x", rate / blocking.max(1e-9))
                } else {
                    "1.00x".into()
                },
            ]);
            rows.push(format!(
                "{{\"server\":\"{}\",\"connections\":{conns},\
                 \"commits_per_wall_sec\":{rate:.1}}}",
                model.name()
            ));
        }
    }

    if let Ok(dir) = std::env::var("TELL_BENCH_JSON") {
        let json = format!(
            "{{\n  \"bench\": \"rpc_reactor\",\n  \"measure_ms\": {},\n  \"rows\": [\n    {}\n  ]\n}}\n",
            measure.as_millis(),
            rows.join(",\n    ")
        );
        let path = std::path::Path::new(&dir).join("BENCH_rpc_reactor.json");
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("  wrote {}", path.display()),
            Err(e) => eprintln!("  (failed to write {}: {e})", path.display()),
        }
    }
}

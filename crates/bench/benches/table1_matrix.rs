//! Table 1: "Comparison of selected databases and storage systems" —
//! which systems satisfy which of the paper's five design principles.
//! Static by nature; regenerated here so every table of the paper has a
//! bench target, and cross-checked against this repository's actual
//! capabilities where a row corresponds to an implemented engine.

use tell_bench::{section, table_header, table_row};

struct SystemRow {
    name: &'static str,
    shared_data: &'static str,
    decoupling: &'static str,
    in_memory: &'static str,
    acid: &'static str,
    complex_queries: &'static str,
}

fn main() {
    section(
        "Table 1 — design-principle matrix",
        "Tell satisfies all five principles; each comparison system misses at least one",
    );
    let rows = [
        SystemRow {
            name: "Tell (this repo: tell-core)",
            shared_data: "yes",
            decoupling: "yes",
            in_memory: "yes",
            acid: "yes",
            complex_queries: "yes",
        },
        SystemRow {
            name: "Oracle RAC",
            shared_data: "yes",
            decoupling: "-",
            in_memory: "-",
            acid: "yes",
            complex_queries: "yes",
        },
        SystemRow {
            name: "FoundationDB (this repo: baselines::fdb)",
            shared_data: "yes",
            decoupling: "yes",
            in_memory: "yes",
            acid: "yes",
            complex_queries: "yes",
        },
        SystemRow {
            name: "Google F1",
            shared_data: "yes",
            decoupling: "yes",
            in_memory: "-",
            acid: "yes",
            complex_queries: "yes",
        },
        SystemRow {
            name: "OMID",
            shared_data: "yes",
            decoupling: "yes",
            in_memory: "-",
            acid: "yes",
            complex_queries: "-",
        },
        SystemRow {
            name: "Hyder",
            shared_data: "yes",
            decoupling: "yes",
            in_memory: "(yes)",
            acid: "yes",
            complex_queries: "-",
        },
        SystemRow {
            name: "VoltDB (this repo: baselines::voltdb)",
            shared_data: "-",
            decoupling: "-",
            in_memory: "yes",
            acid: "yes",
            complex_queries: "yes",
        },
        SystemRow {
            name: "Azure SQL Database",
            shared_data: "-",
            decoupling: "-",
            in_memory: "-",
            acid: "yes",
            complex_queries: "yes",
        },
        SystemRow {
            name: "Google BigTable",
            shared_data: "-",
            decoupling: "yes",
            in_memory: "-",
            acid: "-",
            complex_queries: "-",
        },
    ];
    table_header(&[
        "System",
        "Shared Data",
        "Decoupling",
        "In-Memory",
        "ACID Txns",
        "Complex Queries",
    ]);
    for r in rows {
        table_row(&[
            r.name.into(),
            r.shared_data.into(),
            r.decoupling.into(),
            r.in_memory.into(),
            r.acid.into(),
            r.complex_queries.into(),
        ]);
    }

    // Cross-check the Tell row against the codebase: these properties are
    // enforced by the test suite; assert the obvious runtime witnesses.
    let env = tell_bench::BenchEnv { txns_per_worker: 10, ..tell_bench::BenchEnv::from_env() };
    let engine = tell_bench::setup_tell(
        tell_bench::tell_config(1, tell_core::BufferConfig::TransactionOnly),
        &env,
    )
    .expect("setup");
    let report =
        tell_bench::run_tell(&engine, &env, tell_tpcc::mix::Mix::standard(), 1).expect("run");
    assert!(report.committed > 0, "ACID transactions work");
    let session = engine.session();
    let r = session
        .execute("SELECT COUNT(*), MAX(i_price) FROM item WHERE i_price > 1.0")
        .expect("complex queries work");
    assert_eq!(r.rows.len(), 1);
    println!("\nverified: Tell row backed by a live deployment (txns + SQL).");
}

//! Criterion micro-benchmarks for the core data structures and primitives:
//! LL/SC operations, snapshot descriptors, record codec + GC, the
//! distributed B+tree, the row codec, and buffer lookups.

use std::sync::Arc;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tell_commitmgr::SnapshotDescriptor;
use tell_common::{BitSet, IndexId, TxnId};
use tell_core::VersionedRecord;
use tell_index::{BTreeConfig, DistributedBTree};
use tell_sql::row::{decode_row, encode_key, encode_row};
use tell_sql::{Column, DataType, TableSchema, Value};
use tell_store::{StoreClient, StoreCluster, StoreConfig};

fn bench_llsc(c: &mut Criterion) {
    let cluster = StoreCluster::new(StoreConfig::new(2));
    let client = StoreClient::unmetered(cluster);
    let key = Bytes::from_static(b"hot");
    client.insert(&key, Bytes::from_static(b"payload")).unwrap();
    c.bench_function("store/llsc_read_modify_write", |b| {
        b.iter(|| {
            let (token, _) = client.get(&key).unwrap().unwrap();
            client.store_conditional(&key, token, Bytes::from_static(b"payload")).unwrap()
        })
    });
    c.bench_function("store/get", |b| b.iter(|| client.get(black_box(&key)).unwrap()));
    let counter = tell_store::keys::counter("bench");
    c.bench_function("store/increment", |b| b.iter(|| client.increment(&counter, 64).unwrap()));
}

fn bench_snapshot(c: &mut Criterion) {
    let mut bits = BitSet::new();
    for i in (0..10_000).step_by(3) {
        bits.set(i);
    }
    let snap = SnapshotDescriptor::new(1_000_000, bits);
    c.bench_function("snapshot/contains", |b| {
        b.iter(|| {
            black_box(snap.contains(black_box(1_004_999)))
                ^ black_box(snap.contains(black_box(999)))
        })
    });
    let versions: Vec<u64> = (999_990..1_000_010).collect();
    c.bench_function("snapshot/max_visible", |b| {
        b.iter(|| snap.max_visible(black_box(versions.iter().copied())))
    });
    c.bench_function("snapshot/encode", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(snap.encoded_len());
            snap.encode_into(&mut out);
            out
        })
    });
}

fn bench_record(c: &mut Criterion) {
    let mut rec = VersionedRecord::with_initial(TxnId(0), Bytes::from(vec![1u8; 128]));
    for t in 1..16u64 {
        rec.add_version(TxnId(t * 5), Some(Bytes::from(vec![t as u8; 128])));
    }
    let encoded = rec.encode();
    c.bench_function("record/encode_16_versions", |b| b.iter(|| black_box(&rec).encode()));
    c.bench_function("record/decode_16_versions", |b| {
        b.iter(|| VersionedRecord::decode(black_box(&encoded)).unwrap())
    });
    c.bench_function("record/gc", |b| {
        b.iter(|| {
            let mut r = rec.clone();
            r.gc(black_box(40));
            r
        })
    });
}

fn bench_btree(c: &mut Criterion) {
    let cluster = StoreCluster::new(StoreConfig::new(2));
    let tree = DistributedBTree::create(
        StoreClient::unmetered(Arc::clone(&cluster)),
        IndexId(1),
        BTreeConfig::default(),
    )
    .unwrap();
    for i in 0..10_000u64 {
        tree.insert(Bytes::copy_from_slice(&i.to_be_bytes()), i).unwrap();
    }
    let probe = Bytes::copy_from_slice(&4242u64.to_be_bytes());
    c.bench_function("btree/lookup_10k", |b| b.iter(|| tree.lookup(black_box(&probe)).unwrap()));
    let mut next = 10_000u64;
    c.bench_function("btree/insert", |b| {
        b.iter(|| {
            next += 1;
            tree.insert(Bytes::copy_from_slice(&next.to_be_bytes()), next).unwrap()
        })
    });
    c.bench_function("btree/range_100", |b| {
        b.iter(|| {
            tree.range(black_box(&Bytes::copy_from_slice(&1000u64.to_be_bytes())), None, 100)
                .unwrap()
        })
    });
}

fn bench_row_codec(c: &mut Criterion) {
    let schema = TableSchema {
        name: "bench".into(),
        columns: vec![
            Column { name: "a".into(), dtype: DataType::Int, nullable: false },
            Column { name: "b".into(), dtype: DataType::Double, nullable: false },
            Column { name: "c".into(), dtype: DataType::Text, nullable: true },
            Column { name: "d".into(), dtype: DataType::Int, nullable: false },
        ],
        primary_key: vec![0],
        secondary: vec![],
    };
    let row = vec![
        Value::Int(42),
        Value::Double(3.25),
        Value::Text("some moderately sized text value".into()),
        Value::Int(7),
    ];
    let encoded = encode_row(&schema, &row).unwrap();
    c.bench_function("row/encode", |b| b.iter(|| encode_row(&schema, black_box(&row)).unwrap()));
    c.bench_function("row/decode", |b| {
        b.iter(|| decode_row(&schema, black_box(&encoded)).unwrap())
    });
    c.bench_function("row/encode_key", |b| {
        b.iter(|| encode_key(black_box(&[Value::Int(1), Value::Int(2), Value::Text("k".into())])))
    });
}

/// Observability overhead: the same store operation with the registry
/// recording vs disabled (a disabled registry reduces every metric call to
/// one relaxed load). The enabled/disabled pair is the "< 5 % overhead"
/// check — compare `obs/store_get_enabled` against `obs/store_get_disabled`.
fn bench_obs(c: &mut Criterion) {
    let cluster = StoreCluster::new(StoreConfig::new(2));
    let client = StoreClient::unmetered(cluster);
    let key = Bytes::from_static(b"obs");
    client.insert(&key, Bytes::from(vec![7u8; 128])).unwrap();

    tell_obs::set_enabled(false);
    c.bench_function("obs/store_get_disabled", |b| b.iter(|| client.get(black_box(&key)).unwrap()));
    tell_obs::set_enabled(true);
    c.bench_function("obs/store_get_enabled", |b| b.iter(|| client.get(black_box(&key)).unwrap()));

    c.bench_function("obs/counter_incr", |b| {
        b.iter(|| tell_obs::incr(black_box(tell_obs::Counter::TxnCommitted)))
    });
    c.bench_function("obs/histogram_observe", |b| {
        b.iter(|| tell_obs::observe(black_box(tell_obs::Phase::TxnTotal), black_box(42.0)))
    });
    c.bench_function("obs/snapshot", |b| b.iter(tell_obs::snapshot));

    // The denominator that matters: a whole update transaction (begin,
    // read, update, LL/SC commit, CM completion). The handful of counter
    // bumps and (sampled) phase observations it triggers must stay under
    // 5 % of it. Measured by hand rather than as two criterion entries:
    // process speed drifts over a run (frequency scaling, co-tenant VMs),
    // so two independently-timed arms would mostly measure that drift.
    // Instead the arms run in tightly interleaved A-B-B-A blocks and the
    // reported figure is the median of per-block deltas: each block spans
    // a few tens of milliseconds, so drift slower than that cancels within
    // the pair, and the median discards blocks hit by preemption bursts.
    let (db, table) = {
        use tell_core::database::IndexSpec;
        use tell_core::{Database, TellConfig};
        let db = Database::create(TellConfig::default());
        let pk = IndexSpec::new("pk", true, |r: &[u8]| r.get(..8).map(Bytes::copy_from_slice));
        let table = db.create_table("bench", vec![pk]).unwrap();
        (db, table)
    };
    let pn = db.processing_node();
    let rid = {
        let mut txn = pn.begin().unwrap();
        let rid = txn.insert(&table, Bytes::from(vec![1u8; 64])).unwrap();
        txn.commit().unwrap();
        rid
    };
    let run_txn = |payload: u8| {
        let mut txn = pn.begin().unwrap();
        txn.update(&table, rid, Bytes::from(vec![payload; 64])).unwrap();
        txn.commit().unwrap();
    };
    const TXNS_PER_BATCH: u32 = 5_000;
    const BLOCKS: usize = 60;
    for on in [false, true] {
        tell_obs::set_enabled(on);
        for _ in 0..TXNS_PER_BATCH {
            run_txn(9);
        }
    }
    let time_batch = |on: bool| {
        tell_obs::set_enabled(on);
        let t = std::time::Instant::now();
        for _ in 0..TXNS_PER_BATCH {
            run_txn(if on { 3 } else { 2 });
        }
        t.elapsed().as_nanos() as f64 / TXNS_PER_BATCH as f64
    };
    let mut deltas = Vec::with_capacity(BLOCKS);
    let mut disabled_ns = Vec::with_capacity(BLOCKS);
    for _ in 0..BLOCKS {
        // A-B-B-A: linear drift within the block cancels exactly.
        let d1 = time_batch(false);
        let e1 = time_batch(true);
        let e2 = time_batch(true);
        let d2 = time_batch(false);
        deltas.push((e1 + e2 - d1 - d2) / 2.0);
        disabled_ns.push((d1 + d2) / 2.0);
    }
    deltas.sort_by(|a, b| a.partial_cmp(b).unwrap());
    disabled_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let delta = deltas[BLOCKS / 2];
    let disabled = disabled_ns[BLOCKS / 2];
    let enabled = disabled + delta;
    println!(
        "{:<40} {:>12} iters  {:>12.1} ns/iter",
        "obs/txn_update_disabled",
        TXNS_PER_BATCH as usize * BLOCKS * 2,
        disabled
    );
    println!(
        "{:<40} {:>12} iters  {:>12.1} ns/iter",
        "obs/txn_update_enabled",
        TXNS_PER_BATCH as usize * BLOCKS * 2,
        enabled
    );
    println!(
        "{:<40} {:>33.2} %  (bound: < 5 %)",
        "obs/txn_update_overhead",
        delta / disabled * 100.0
    );
}

criterion_group!(
    benches,
    bench_llsc,
    bench_snapshot,
    bench_record,
    bench_btree,
    bench_row_codec,
    bench_obs
);
criterion_main!(benches);

//! Profiler overhead: full update transactions with the logical-stack
//! sampler running at 10× the deployed default rate, against the same
//! transactions with the sampler stopped. The tentpole claim is that the
//! always-on profiler is cheap enough to leave armed in production — the
//! hot path only pays a TLS read plus a handful of relaxed stores per
//! frame, and the sampler walks the frame arrays from its own thread —
//! so even a 990 Hz scrape rate must stay under a 3 % transaction-
//! throughput budget.
//!
//! Methodology matches `telemetry_overhead.rs`: process speed drifts over
//! a run, so the two arms are interleaved in A-B-B-A blocks and the
//! reported figure is the median of per-block deltas. The timed arms run
//! single-threaded — lock-convoy noise would otherwise swamp a 3 %
//! signal — and a separate multi-threaded contention probe (profiler
//! armed, before the measurement) gives the contended-lock table
//! something real to say about the commit path.
//!
//! `TELL_BENCH_JSON=<dir>` writes `BENCH_prof_overhead.json`, including
//! the top-5 contended locks — `cm.state` (the commit path) must appear.

use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use tell_core::database::IndexSpec;
use tell_core::{Database, TellConfig};

/// Sampling rate under test: 10× the deployed default of 99 Hz
/// (`tell_obs::prof::DEFAULT_HZ`).
const PROF_HZ: f64 = 10.0 * tell_obs::prof::DEFAULT_HZ;
const TXNS_PER_BATCH: u32 = 2_000;
// More blocks than the telemetry bench: the signal under test is smaller
// (3 % vs 5 %), so the median needs a larger population to settle.
const BLOCKS: usize = 80;
const BOUND_PCT: f64 = 3.0;
const TOP_LOCKS: usize = 5;

fn main() {
    let scale = std::env::var("TELL_BENCH_SCALE").unwrap_or_default();
    let (txns, blocks) = if scale == "tiny" { (200, 10) } else { (TXNS_PER_BATCH, BLOCKS) };

    let db = Database::create(TellConfig::default());
    let pk = IndexSpec::new("pk", true, |r: &[u8]| r.get(..8).map(Bytes::copy_from_slice));
    let table = db.create_table("bench", vec![pk]).unwrap();
    let pn = db.processing_node();
    let mut rids = Vec::new();
    {
        let mut txn = pn.begin().unwrap();
        for i in 0..4u8 {
            rids.push(txn.insert(&table, Bytes::from(vec![i + 1; 64])).unwrap());
        }
        txn.commit().unwrap();
    }
    tell_obs::set_enabled(true);

    // Contention probe: three workers updating their own rows concurrently
    // with the profiler armed, so `cm.state` (and the partition map) see
    // real multi-thread contention and the lock table names the commit
    // path. Runs to completion before the timed arms — the measurement
    // itself is single-threaded on purpose, since lock-convoy jitter is
    // orders of magnitude larger than the 3 % signal under test.
    tell_obs::prof::start(Some(PROF_HZ));
    let probe_txns = txns;
    let workers: Vec<_> = (0..3)
        .map(|w| {
            let db = Arc::clone(&db);
            let table = Arc::clone(&table);
            let rid = rids[w + 1];
            std::thread::spawn(move || {
                let pn = db.processing_node();
                for _ in 0..probe_txns {
                    let _ = pn.run(100, |txn| txn.update(&table, rid, Bytes::from(vec![7u8; 64])));
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    tell_obs::prof::stop();

    let rid = rids[0];
    let run_txn = |payload: u8| {
        let mut txn = pn.begin().unwrap();
        txn.update(&table, rid, Bytes::from(vec![payload; 64])).unwrap();
        txn.commit().unwrap();
    };
    // Warm both arms.
    for on in [false, true] {
        if on {
            tell_obs::prof::start(Some(PROF_HZ));
        }
        for _ in 0..txns {
            run_txn(9);
        }
        if on {
            tell_obs::prof::stop();
        }
    }
    let time_batch = |on: bool| {
        // Arm toggles happen outside the timed window: sampler thread
        // startup/teardown never lands inside a batch.
        if on {
            tell_obs::prof::start(Some(PROF_HZ));
        }
        let t = Instant::now();
        for _ in 0..txns {
            run_txn(if on { 3 } else { 2 });
        }
        let ns = t.elapsed().as_nanos() as f64 / txns as f64;
        if on {
            tell_obs::prof::stop();
        }
        ns
    };

    let mut deltas = Vec::with_capacity(blocks);
    let mut off_ns = Vec::with_capacity(blocks);
    for _ in 0..blocks {
        // A-B-B-A: linear drift within the block cancels exactly.
        let d1 = time_batch(false);
        let e1 = time_batch(true);
        let e2 = time_batch(true);
        let d2 = time_batch(false);
        deltas.push((e1 + e2 - d1 - d2) / 2.0);
        off_ns.push((d1 + d2) / 2.0);
    }

    deltas.sort_by(|a, b| a.partial_cmp(b).unwrap());
    off_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let delta = deltas[blocks / 2];
    let off = off_ns[blocks / 2];
    let on = off + delta;
    let overhead_pct = delta / off * 100.0;

    let mut locks = tell_obs::prof::lock_snapshot();
    locks.truncate(TOP_LOCKS);
    let commit_lock_named = locks.iter().any(|l| l.name == "cm.state" && l.contended > 0);

    println!("prof_overhead: update txn with the stack sampler at {PROF_HZ:.0} Hz (10x default)");
    println!("{:<44} {:>12.1} ns/txn", "prof/txn_update_sampler_off", off);
    println!("{:<44} {:>12.1} ns/txn", "prof/txn_update_sampler_on", on);
    println!("{:<44} {:>11.2} %  (bound: < {BOUND_PCT} %)", "prof/sampler_overhead", overhead_pct);
    println!("top contended locks (contention probe + both arms):");
    for l in &locks {
        println!("  {:<28} {:>8} contended {:>10} us waited", l.name, l.contended, l.wait_us);
    }
    if !commit_lock_named {
        println!("  warning: cm.state saw no contention this run");
    }

    if let Ok(dir) = std::env::var("TELL_BENCH_JSON") {
        let lock_rows: Vec<String> = locks
            .iter()
            .map(|l| {
                format!(
                    "    {{ \"name\": {:?}, \"contended\": {}, \"wait_us\": {} }}",
                    l.name, l.contended, l.wait_us
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"prof_overhead\",\n  \"hz\": {PROF_HZ},\n  \
             \"txns_per_batch\": {txns},\n  \"blocks\": {blocks},\n  \
             \"sampler_off_ns_per_txn\": {off:.1},\n  \
             \"sampler_on_ns_per_txn\": {on:.1},\n  \
             \"overhead_pct\": {overhead_pct:.3},\n  \"bound_pct\": {BOUND_PCT},\n  \
             \"commit_path_lock_named\": {commit_lock_named},\n  \
             \"top_contended_locks\": [\n{}\n  ]\n}}\n",
            lock_rows.join(",\n")
        );
        let path = std::path::Path::new(&dir).join("BENCH_prof_overhead.json");
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("  wrote {}", path.display()),
            Err(e) => eprintln!("  (failed to write {}: {e})", path.display()),
        }
    }
}

//! Figure 5: processing scale-out, write-intensive (standard) mix.
//!
//! Paper: with RF1 throughput grows from 143k TpmC (1 PN) to 958k (8 PNs),
//! sub-linearly because the abort rate rises (2.91 % → 14.72 %); RF3 peaks
//! 63.2 % below RF1 because synchronous replication slows every write.

use tell_bench::*;
use tell_core::BufferConfig;
use tell_tpcc::mix::Mix;

fn main() {
    section(
        "Figure 5 — scale-out processing (write-intensive)",
        "RF1: 143k→958k TpmC over 1→8 PNs; abort rate 2.9%→14.7%; RF3 peak ≈ −63% vs RF1",
    );
    let env = BenchEnv::from_env();
    table_header(&["RF", "PNs", "TpmC", "Tps", "abort rate", "mean latency"]);
    let mut series: Vec<(usize, Vec<f64>)> = Vec::new();
    for rf in [1usize, 2, 3] {
        let mut points = Vec::new();
        for pns in [1usize, 2, 4, 8] {
            let engine =
                setup_tell(tell_config(rf, BufferConfig::TransactionOnly), &env).expect("setup");
            let report = run_tell(&engine, &env, Mix::standard(), pns).expect("run");
            let mut cells = vec![format!("RF{rf}"), pns.to_string()];
            cells.extend(report_cells(&report));
            table_row(&cells);
            points.push(report.tpmc);
        }
        series.push((rf, points));
    }

    // Shape checks (who wins, roughly by what factor).
    let rf1 = &series[0].1;
    let rf3 = &series[2].1;
    assert!(rf1[3] > rf1[0] * 3.0, "RF1 must scale with PNs: {rf1:?}");
    assert!(
        rf3[3] < rf1[3] * 0.75,
        "synchronous replication must cost throughput: RF3 {} vs RF1 {}",
        rf3[3],
        rf1[3]
    );
    println!(
        "\nshape ok: RF1 scales {:.1}x over 1→8 PNs; RF3 peak at {:.0}% of RF1",
        rf1[3] / rf1[0],
        rf3[3] / rf1[3] * 100.0
    );
}

//! End-to-end TPC-C tests: population cardinalities, transaction
//! correctness, TPC-C consistency conditions, and a full driver run.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tell_core::{Database, TellConfig};
use tell_sql::{SqlEngine, Value};
use tell_tpcc::driver::{run_tpcc, TpccConfig};
use tell_tpcc::gen::{load, ScaleParams};
use tell_tpcc::mix::Mix;
use tell_tpcc::schema::{create_tpcc_tables, TpccTables};
use tell_tpcc::txns::{
    self, CustomerSelector, DeliveryParams, NewOrderParams, OrderItem, OrderStatusParams,
    PaymentParams, StockLevelParams,
};

fn setup(warehouses: i64, scale: ScaleParams) -> Arc<SqlEngine> {
    let db = Database::create(TellConfig::default());
    let engine = SqlEngine::new(db);
    create_tpcc_tables(&engine).unwrap();
    load(&engine, warehouses, scale, 1234).unwrap();
    engine
}

fn scalar_i64(engine: &Arc<SqlEngine>, sql: &str) -> i64 {
    let s = engine.session();
    let r = s.execute(sql).unwrap();
    r.scalar().unwrap().as_i64().unwrap()
}

fn scalar_f64(engine: &Arc<SqlEngine>, sql: &str) -> f64 {
    let s = engine.session();
    let r = s.execute(sql).unwrap();
    r.scalar().unwrap().as_f64().unwrap()
}

#[test]
fn population_has_spec_cardinalities() {
    let scale = ScaleParams::tiny();
    let engine = setup(2, scale);
    assert_eq!(scalar_i64(&engine, "SELECT COUNT(*) FROM warehouse"), 2);
    assert_eq!(scalar_i64(&engine, "SELECT COUNT(*) FROM item"), scale.items);
    assert_eq!(
        scalar_i64(&engine, "SELECT COUNT(*) FROM district"),
        2 * scale.districts_per_warehouse
    );
    assert_eq!(
        scalar_i64(&engine, "SELECT COUNT(*) FROM customer"),
        2 * scale.districts_per_warehouse * scale.customers_per_district
    );
    assert_eq!(scalar_i64(&engine, "SELECT COUNT(*) FROM stock"), 2 * scale.items);
    assert_eq!(
        scalar_i64(&engine, "SELECT COUNT(*) FROM orders"),
        2 * scale.districts_per_warehouse * scale.initial_orders_per_district
    );
    // A third of initial orders are undelivered.
    let expected_no = 2 * scale.districts_per_warehouse * (scale.initial_orders_per_district / 3);
    assert_eq!(scalar_i64(&engine, "SELECT COUNT(*) FROM neworder"), expected_no);
    // Consistency condition 1-like: d_next_o_id is max(o_id) + 1.
    let max_o = scalar_i64(&engine, "SELECT MAX(o_id) FROM orders WHERE o_w_id = 1 AND o_d_id = 1");
    let next_o =
        scalar_i64(&engine, "SELECT d_next_o_id FROM district WHERE d_w_id = 1 AND d_id = 1");
    assert_eq!(next_o, max_o + 1);
}

#[test]
fn new_order_inserts_and_updates() {
    let engine = setup(1, ScaleParams::tiny());
    let db = Arc::clone(engine.database());
    let pn = db.processing_node();
    let tables = TpccTables::resolve(&engine, &pn).unwrap();
    let orders_before = scalar_i64(&engine, "SELECT COUNT(*) FROM orders");

    let out = pn
        .run(20, |txn| {
            txns::new_order(
                txn,
                &tables,
                &NewOrderParams {
                    w_id: 1,
                    d_id: 1,
                    c_id: 3,
                    items: vec![
                        OrderItem { i_id: 5, supply_w_id: 1, quantity: 3 },
                        OrderItem { i_id: 9, supply_w_id: 1, quantity: 1 },
                    ],
                    rollback: false,
                },
                0,
            )
        })
        .unwrap();
    assert!(out.total_amount > 0.0);
    assert_eq!(scalar_i64(&engine, "SELECT COUNT(*) FROM orders"), orders_before + 1);
    let ol = scalar_i64(
        &engine,
        &format!(
            "SELECT COUNT(*) FROM orderline WHERE ol_w_id = 1 AND ol_d_id = 1 AND ol_o_id = {}",
            out.o_id
        ),
    );
    assert_eq!(ol, 2);
    // Stock updated.
    let s_cnt =
        scalar_i64(&engine, "SELECT s_order_cnt FROM stock WHERE s_w_id = 1 AND s_i_id = 5");
    assert_eq!(s_cnt, 1);
    // The new order is pending in NEW-ORDER.
    let pending =
        scalar_i64(&engine, &format!("SELECT COUNT(*) FROM neworder WHERE no_o_id = {}", out.o_id));
    assert_eq!(pending, 1);
}

#[test]
fn new_order_rollback_leaves_no_trace() {
    let engine = setup(1, ScaleParams::tiny());
    let db = Arc::clone(engine.database());
    let pn = db.processing_node();
    let tables = TpccTables::resolve(&engine, &pn).unwrap();
    let orders_before = scalar_i64(&engine, "SELECT COUNT(*) FROM orders");
    let next_before =
        scalar_i64(&engine, "SELECT d_next_o_id FROM district WHERE d_w_id=1 AND d_id=1");

    let mut txn = pn.begin().unwrap();
    let err = txns::new_order(
        &mut txn,
        &tables,
        &NewOrderParams {
            w_id: 1,
            d_id: 1,
            c_id: 1,
            items: vec![
                OrderItem { i_id: 2, supply_w_id: 1, quantity: 1 },
                OrderItem { i_id: txns::unused_item_id(), supply_w_id: 1, quantity: 1 },
            ],
            rollback: true,
        },
        0,
    )
    .unwrap_err();
    assert!(matches!(err, tell_common::Error::Aborted(_)));
    txn.abort().unwrap();

    assert_eq!(scalar_i64(&engine, "SELECT COUNT(*) FROM orders"), orders_before);
    assert_eq!(
        scalar_i64(&engine, "SELECT d_next_o_id FROM district WHERE d_w_id=1 AND d_id=1"),
        next_before,
        "buffered d_next_o_id increment rolled back"
    );
}

#[test]
fn payment_updates_ytd_chain_and_history() {
    let engine = setup(1, ScaleParams::tiny());
    let db = Arc::clone(engine.database());
    let pn = db.processing_node();
    let tables = TpccTables::resolve(&engine, &pn).unwrap();
    let w_ytd = scalar_f64(&engine, "SELECT w_ytd FROM warehouse WHERE w_id = 1");
    pn.run(20, |txn| {
        txns::payment(
            txn,
            &tables,
            &PaymentParams {
                w_id: 1,
                d_id: 2,
                c_w_id: 1,
                c_d_id: 2,
                customer: CustomerSelector::ById(4),
                amount: 123.45,
                h_uid: 991,
            },
            0,
        )
    })
    .unwrap();
    assert!(
        (scalar_f64(&engine, "SELECT w_ytd FROM warehouse WHERE w_id = 1") - w_ytd - 123.45).abs()
            < 1e-6
    );
    assert_eq!(scalar_i64(&engine, "SELECT COUNT(*) FROM history WHERE h_uid = 991"), 1);
    let bal = scalar_f64(
        &engine,
        "SELECT c_balance FROM customer WHERE c_w_id = 1 AND c_d_id = 2 AND c_id = 4",
    );
    assert!((bal - (-10.0 - 123.45)).abs() < 1e-6);
}

#[test]
fn payment_by_last_name_picks_middle_by_first_name() {
    let engine = setup(1, ScaleParams::tiny());
    let db = Arc::clone(engine.database());
    let pn = db.processing_node();
    let tables = TpccTables::resolve(&engine, &pn).unwrap();
    // Customers 1..=10 have last names BARBAR{syllable}; customer 1 has
    // last_name(0) = BARBARBAR.
    let mut txn = pn.begin().unwrap();
    let (_, row) = txns::select_customer(
        &mut txn,
        &tables,
        1,
        1,
        &CustomerSelector::ByLastName("BARBARBAR".into()),
    )
    .unwrap();
    assert_eq!(row[2], Value::Int(1));
    txn.commit().unwrap();
}

#[test]
fn delivery_clears_neworder_and_pays_customer() {
    let scale = ScaleParams::tiny();
    let engine = setup(1, scale);
    let db = Arc::clone(engine.database());
    let pn = db.processing_node();
    let tables = TpccTables::resolve(&engine, &pn).unwrap();
    let pending_before = scalar_i64(&engine, "SELECT COUNT(*) FROM neworder");
    assert!(pending_before > 0);
    let delivered = pn
        .run(50, |txn| {
            txns::delivery(
                txn,
                &tables,
                // Carrier 77 is outside the loader's 1..=10 range, so the
                // count below isolates this delivery's orders.
                &DeliveryParams {
                    w_id: 1,
                    carrier_id: 77,
                    districts: scale.districts_per_warehouse,
                },
                7,
            )
        })
        .unwrap();
    assert_eq!(delivered as i64, scale.districts_per_warehouse);
    assert_eq!(
        scalar_i64(&engine, "SELECT COUNT(*) FROM neworder"),
        pending_before - scale.districts_per_warehouse
    );
    // Delivered orders got a carrier.
    let with_carrier = scalar_i64(&engine, "SELECT COUNT(*) FROM orders WHERE o_carrier_id = 77");
    assert_eq!(with_carrier, scale.districts_per_warehouse);
}

#[test]
fn order_status_reports_last_order() {
    let engine = setup(1, ScaleParams::tiny());
    let db = Arc::clone(engine.database());
    let pn = db.processing_node();
    let tables = TpccTables::resolve(&engine, &pn).unwrap();
    // Place a new order for customer 2 so it is definitely the latest.
    let out = pn
        .run(20, |txn| {
            txns::new_order(
                txn,
                &tables,
                &NewOrderParams {
                    w_id: 1,
                    d_id: 1,
                    c_id: 2,
                    items: vec![OrderItem { i_id: 1, supply_w_id: 1, quantity: 2 }],
                    rollback: false,
                },
                0,
            )
        })
        .unwrap();
    let status = pn
        .run(20, |txn| {
            txns::order_status(
                txn,
                &tables,
                &OrderStatusParams { w_id: 1, d_id: 1, customer: CustomerSelector::ById(2) },
            )
        })
        .unwrap();
    assert_eq!(status.c_id, 2);
    assert_eq!(status.o_id, Some(out.o_id));
    assert_eq!(status.line_count, 1);
}

#[test]
fn stock_level_counts_low_stock() {
    let engine = setup(1, ScaleParams::tiny());
    let db = Arc::clone(engine.database());
    let pn = db.processing_node();
    let tables = TpccTables::resolve(&engine, &pn).unwrap();
    let low_all = pn
        .run(20, |txn| {
            txns::stock_level(txn, &tables, &StockLevelParams { w_id: 1, d_id: 1, threshold: 101 })
        })
        .unwrap();
    let low_none = pn
        .run(20, |txn| {
            txns::stock_level(txn, &tables, &StockLevelParams { w_id: 1, d_id: 1, threshold: 0 })
        })
        .unwrap();
    assert!(low_all > 0, "every stocked item is below 101");
    assert_eq!(low_none, 0);
}

#[test]
fn driver_run_satisfies_consistency_conditions() {
    let scale = ScaleParams::tiny();
    let engine = setup(2, scale);
    let config = TpccConfig {
        warehouses: 2,
        scale,
        mix: Mix::standard(),
        pn_count: 2,
        workers_per_pn: 2,
        txns_per_worker: 40,
        max_retries: 100,
        seed: 99,
    };
    let report = run_tpcc(&engine, &config).unwrap();
    assert!(report.committed > 0);
    assert!(report.new_order_commits > 0);
    // Optimistic CC under heavy single-machine contention can starve an
    // occasional transaction; it must stay rare.
    assert!(
        report.given_up <= 1 + report.committed / 20,
        "too many starved transactions: {} of {}",
        report.given_up,
        report.committed
    );
    assert!(report.tpmc > 0.0);
    assert!(report.latency.count() > 0);

    // TPC-C consistency condition 2: for every district,
    // d_next_o_id - 1 = max(o_id).
    let s = engine.session();
    for w in 1..=2 {
        for d in 1..=scale.districts_per_warehouse {
            let next = scalar_i64(
                &engine,
                &format!("SELECT d_next_o_id FROM district WHERE d_w_id={w} AND d_id={d}"),
            );
            let max_o = scalar_i64(
                &engine,
                &format!("SELECT MAX(o_id) FROM orders WHERE o_w_id={w} AND o_d_id={d}"),
            );
            assert_eq!(next, max_o + 1, "w={w} d={d}");
        }
    }
    // Consistency condition 1: w_ytd = sum(d_ytd).
    for w in 1..=2 {
        let w_ytd = scalar_f64(&engine, &format!("SELECT w_ytd FROM warehouse WHERE w_id={w}"));
        let d_sum =
            scalar_f64(&engine, &format!("SELECT SUM(d_ytd) FROM district WHERE d_w_id={w}"));
        assert!((w_ytd - d_sum).abs() < 1e-3, "w={w}: {w_ytd} vs {d_sum}");
    }
    // Every order has its order lines: o_ol_cnt = count(orderline).
    let r = s
        .execute(
            "SELECT o_ol_cnt, COUNT(*) FROM orders o JOIN orderline l \
             ON o.o_w_id = l.ol_w_id AND o.o_d_id = l.ol_d_id AND o.o_id = l.ol_o_id \
             WHERE o.o_w_id = 1 AND o.o_d_id = 1 GROUP BY o.o_id, o.o_ol_cnt",
        )
        .unwrap();
    for row in &r.rows {
        assert_eq!(row[0], row[1], "ol_cnt matches actual lines");
    }
}

#[test]
fn read_intensive_mix_runs() {
    let scale = ScaleParams::tiny();
    let engine = setup(1, scale);
    let config = TpccConfig {
        warehouses: 1,
        scale,
        mix: Mix::read_intensive(),
        pn_count: 1,
        workers_per_pn: 2,
        txns_per_worker: 30,
        max_retries: 100,
        seed: 5,
    };
    let report = run_tpcc(&engine, &config).unwrap();
    assert!(report.committed > 0);
    // Mostly order-status commits.
    assert!(report.per_type[3] > report.per_type[0]);
    assert_eq!(report.per_type[1], 0, "no payments in the read mix");
}

#[test]
fn shardable_mix_touches_only_home_warehouse_stock() {
    let scale = ScaleParams::tiny();
    let engine = setup(2, scale);
    let before_remote = scalar_i64(&engine, "SELECT SUM(s_remote_cnt) FROM stock");
    let config = TpccConfig {
        warehouses: 2,
        scale,
        mix: Mix::shardable(),
        pn_count: 1,
        workers_per_pn: 2,
        txns_per_worker: 40,
        max_retries: 100,
        seed: 17,
    };
    run_tpcc(&engine, &config).unwrap();
    let after_remote = scalar_i64(&engine, "SELECT SUM(s_remote_cnt) FROM stock");
    assert_eq!(before_remote, after_remote, "shardable mix makes no remote stock updates");
}

#[test]
fn concurrent_new_orders_never_reuse_order_ids() {
    let scale = ScaleParams::tiny();
    let engine = setup(1, scale);
    let mut handles = Vec::new();
    for t in 0..3 {
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            let db = Arc::clone(engine.database());
            let pn = db.processing_node();
            let tables = TpccTables::resolve(&engine, &pn).unwrap();
            let mut rng = StdRng::seed_from_u64(t);
            let _ = &mut rng;
            let mut ids = Vec::new();
            for i in 0..15 {
                let out = pn
                    .run(5000, |txn| {
                        txns::new_order(
                            txn,
                            &tables,
                            &NewOrderParams {
                                w_id: 1,
                                d_id: (t as i64 % 2) + 1,
                                c_id: (i % 10) + 1,
                                items: vec![OrderItem {
                                    i_id: 1 + (i % 50),
                                    supply_w_id: 1,
                                    quantity: 1,
                                }],
                                rollback: false,
                            },
                            i,
                        )
                    })
                    .unwrap();
                ids.push(((t as i64 % 2) + 1, out.o_id));
            }
            ids
        }));
    }
    let mut all = Vec::new();
    for h in handles {
        all.extend(h.join().unwrap());
    }
    let n = all.len();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), n, "d_next_o_id under SI yields unique order ids");
}

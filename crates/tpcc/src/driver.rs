//! The terminal driver (§6.2: "we have removed wait times so that
//! terminals continuously send requests to the PNs").
//!
//! Workers model the paper's processing-node threads: each logical PN is a
//! [`tell_core::pn::PnGroup`] (shared record buffer, shared `V_max`) with
//! `workers_per_pn` worker threads. Throughput and latency are measured in
//! virtual time (see DESIGN.md): `TpmC = Σ_w (new-order commits of worker w
//! / virtual minutes of worker w)`.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tell_common::{Error, Histogram, Result};
use tell_core::Transaction;
use tell_sql::SqlEngine;

use crate::gen::ScaleParams;
use crate::mix::{Mix, ParamGen, TxnRequest, TxnType};
use crate::schema::TpccTables;
use crate::txns::{self, USER_ROLLBACK};

/// Benchmark run parameters.
#[derive(Clone, Debug)]
pub struct TpccConfig {
    pub warehouses: i64,
    pub scale: ScaleParams,
    pub mix: Mix,
    /// Logical processing nodes (the x-axis of Figs 5/6/10/11).
    pub pn_count: usize,
    /// Worker threads per logical PN ("a thread processes a transaction at
    /// a time", §6.1).
    pub workers_per_pn: usize,
    /// Transactions issued per worker (measurement length).
    pub txns_per_worker: usize,
    /// Retry budget per transaction before giving up.
    pub max_retries: usize,
    pub seed: u64,
}

impl TpccConfig {
    /// A small smoke-test configuration.
    pub fn smoke(warehouses: i64) -> TpccConfig {
        TpccConfig {
            warehouses,
            scale: ScaleParams::tiny(),
            mix: Mix::standard(),
            pn_count: 1,
            workers_per_pn: 2,
            txns_per_worker: 50,
            max_retries: 50,
            seed: 42,
        }
    }
}

/// Aggregated results of a run.
#[derive(Clone, Debug)]
pub struct DriverReport {
    /// Committed transactions (all types, excluding user rollbacks).
    pub committed: u64,
    /// Committed new-order transactions.
    pub new_order_commits: u64,
    /// Write-write conflict aborts (attempts that lost optimistic CC).
    pub conflict_aborts: u64,
    /// Intentional rollbacks (clause 2.4.1.4), not counted as failures.
    pub user_rollbacks: u64,
    /// Transactions that exhausted their retry budget.
    pub given_up: u64,
    /// Per-type commit counts, in [`TxnType::ALL`] order.
    pub per_type: [u64; 5],
    /// Latency of successful transactions, virtual µs.
    pub latency: Histogram,
    /// Mean virtual duration per worker, seconds.
    pub virtual_seconds: f64,
    /// New-order transactions per virtual minute (the TPC-C metric).
    pub tpmc: f64,
    /// All committed transactions per virtual second.
    pub tps: f64,
    /// PN record-buffer hit ratio (Fig 11's cache effectiveness).
    pub buffer_hit_ratio: f64,
}

impl DriverReport {
    /// Abort rate: conflicted attempts over all attempts, as the paper
    /// reports ("the overall transaction abort rate").
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.committed + self.conflict_aborts + self.user_rollbacks;
        if attempts == 0 {
            0.0
        } else {
            self.conflict_aborts as f64 / attempts as f64
        }
    }
}

struct WorkerResult {
    committed: u64,
    new_order_commits: u64,
    conflict_aborts: u64,
    user_rollbacks: u64,
    given_up: u64,
    per_type: [u64; 5],
    latency: Histogram,
    virtual_us: f64,
}

fn run_request(
    txn: &mut Transaction<'_>,
    tables: &TpccTables,
    req: &TxnRequest,
    now: i64,
) -> Result<()> {
    match req {
        TxnRequest::NewOrder(p) => txns::new_order(txn, tables, p, now).map(|_| ()),
        TxnRequest::Payment(p) => txns::payment(txn, tables, p, now),
        TxnRequest::Delivery(p) => txns::delivery(txn, tables, p, now).map(|_| ()),
        TxnRequest::OrderStatus(p) => txns::order_status(txn, tables, p).map(|_| ()),
        TxnRequest::StockLevel(p) => txns::stock_level(txn, tables, p).map(|_| ()),
    }
}

fn worker_loop(
    engine: Arc<SqlEngine>,
    group: Arc<tell_core::pn::PnGroup>,
    config: TpccConfig,
    worker_index: u64,
) -> Result<WorkerResult> {
    let db = Arc::clone(engine.database());
    let pn = db.processing_node_in_group(&group);
    let tables = TpccTables::resolve(&engine, &pn)?;
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(worker_index * 7919));
    // History-row ids must be unique per worker *and* per run (several
    // runs may share one database, e.g. the elasticity example).
    let namespace = (worker_index << 40) ^ config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut gen =
        ParamGen::with_namespace(config.warehouses, config.scale, config.mix.clone(), namespace);
    let home_w = (worker_index as i64 % config.warehouses) + 1;

    let mut res = WorkerResult {
        committed: 0,
        new_order_commits: 0,
        conflict_aborts: 0,
        user_rollbacks: 0,
        given_up: 0,
        per_type: [0; 5],
        latency: Histogram::new(),
        virtual_us: 0.0,
    };

    for i in 0..config.txns_per_worker {
        let req = gen.generate(&mut rng, home_w);
        let ty = req.txn_type();
        let now = i as i64;
        let start_us = pn.clock().now_us();
        let mut attempts = 0;
        loop {
            attempts += 1;
            let mut txn = pn.begin()?;
            let outcome = run_request(&mut txn, &tables, &req, now);
            let done = match outcome {
                Ok(()) => match txn.commit() {
                    Ok(()) => {
                        res.committed += 1;
                        if ty == TxnType::NewOrder {
                            res.new_order_commits += 1;
                        }
                        let idx = TxnType::ALL.iter().position(|t| *t == ty).unwrap();
                        res.per_type[idx] += 1;
                        res.latency.record(pn.clock().now_us() - start_us);
                        true
                    }
                    Err(Error::Conflict) => {
                        res.conflict_aborts += 1;
                        false
                    }
                    Err(e) => return Err(e),
                },
                Err(Error::Aborted(msg)) if msg == USER_ROLLBACK => {
                    txn.abort()?;
                    res.user_rollbacks += 1;
                    true
                }
                Err(e) if e.is_retryable() => {
                    if txn.is_running() {
                        txn.abort()?;
                    }
                    res.conflict_aborts += 1;
                    false
                }
                Err(e) => return Err(e),
            };
            if done {
                break;
            }
            if attempts > config.max_retries {
                res.given_up += 1;
                break;
            }
            // Give competing commits a chance to finish (see
            // `ProcessingNode::run`): reduces OCC starvation when workers
            // outnumber cores.
            std::thread::yield_now();
        }
    }
    res.virtual_us = pn.clock().now_us();
    Ok(res)
}

/// Run the benchmark. Tables must be created and loaded beforehand
/// ([`crate::schema::create_tpcc_tables`], [`crate::gen::load`]).
pub fn run_tpcc(engine: &Arc<SqlEngine>, config: &TpccConfig) -> Result<DriverReport> {
    let mut handles = Vec::new();
    let mut groups = Vec::new();
    let mut worker_index = 0u64;
    for _ in 0..config.pn_count {
        let group = engine.database().pn_group();
        groups.push(Arc::clone(&group));
        for _ in 0..config.workers_per_pn {
            let engine = Arc::clone(engine);
            let group = Arc::clone(&group);
            let config = config.clone();
            let idx = worker_index;
            worker_index += 1;
            handles.push(std::thread::spawn(move || worker_loop(engine, group, config, idx)));
        }
    }
    let mut report = DriverReport {
        committed: 0,
        new_order_commits: 0,
        conflict_aborts: 0,
        user_rollbacks: 0,
        given_up: 0,
        per_type: [0; 5],
        latency: Histogram::new(),
        virtual_seconds: 0.0,
        tpmc: 0.0,
        tps: 0.0,
        buffer_hit_ratio: 0.0,
    };
    let mut total_virtual_us = 0.0;
    let workers = handles.len();
    for h in handles {
        let r = h.join().map_err(|_| Error::invalid("worker thread panicked"))??;
        report.committed += r.committed;
        report.new_order_commits += r.new_order_commits;
        report.conflict_aborts += r.conflict_aborts;
        report.user_rollbacks += r.user_rollbacks;
        report.given_up += r.given_up;
        for i in 0..5 {
            report.per_type[i] += r.per_type[i];
        }
        report.latency.merge(&r.latency);
        total_virtual_us += r.virtual_us;
        if r.virtual_us > 0.0 {
            report.tpmc += r.new_order_commits as f64 / (r.virtual_us / 60e6);
            report.tps += r.committed as f64 / (r.virtual_us / 1e6);
        }
    }
    report.virtual_seconds = total_virtual_us / workers.max(1) as f64 / 1e6;
    let (hits, misses) = groups.iter().fold((0u64, 0u64), |(h, m), g| {
        let s = g.buffer().stats();
        (
            h + s.hits.load(std::sync::atomic::Ordering::Relaxed),
            m + s.misses.load(std::sync::atomic::Ordering::Relaxed),
        )
    });
    if hits + misses > 0 {
        report.buffer_hit_ratio = hits as f64 / (hits + misses) as f64;
    }
    Ok(report)
}

//! Workload mixes (Table 2 of the paper) and transaction input generation.

use rand::rngs::StdRng;
use rand::Rng;

use crate::gen::{rand_c_id, rand_i_id, rand_last_name, ScaleParams};
use crate::txns::{
    CustomerSelector, DeliveryParams, NewOrderParams, OrderItem, OrderStatusParams, PaymentParams,
    StockLevelParams,
};

/// The five TPC-C transaction types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TxnType {
    NewOrder,
    Payment,
    Delivery,
    OrderStatus,
    StockLevel,
}

impl TxnType {
    /// All types, in Table 2 order.
    pub const ALL: [TxnType; 5] = [
        TxnType::NewOrder,
        TxnType::Payment,
        TxnType::Delivery,
        TxnType::OrderStatus,
        TxnType::StockLevel,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            TxnType::NewOrder => "new-order",
            TxnType::Payment => "payment",
            TxnType::Delivery => "delivery",
            TxnType::OrderStatus => "order-status",
            TxnType::StockLevel => "stock-level",
        }
    }
}

/// A workload mix: per-type percentages plus the remote-access knobs that
/// distinguish the standard and the *shardable* workloads (§6.4).
#[derive(Clone, Debug)]
pub struct Mix {
    pub name: &'static str,
    /// Percentages for [new-order, payment, delivery, order-status,
    /// stock-level]; must sum to 100.
    pub weights: [u32; 5],
    /// Percent of order lines supplied by a remote warehouse
    /// (clause 2.4.1.5.2: 1 %).
    pub remote_item_pct: u32,
    /// Percent of payments for a customer of a remote warehouse
    /// (clause 2.5.1.2: 15 %).
    pub remote_payment_pct: u32,
    /// Percent of new-orders that roll back on an unused item
    /// (clause 2.4.1.4: 1 %).
    pub rollback_pct: u32,
}

impl Mix {
    /// The standard, write-intensive TPC-C mix (write ratio 35.84 %).
    pub fn standard() -> Mix {
        Mix {
            name: "standard (write-intensive)",
            weights: [45, 43, 4, 4, 4],
            remote_item_pct: 1,
            remote_payment_pct: 15,
            rollback_pct: 1,
        }
    }

    /// The paper's read-intensive mix (Table 2): 9 % new-order, 84 %
    /// order-status, 7 % stock-level; write ratio 4.89 %.
    pub fn read_intensive() -> Mix {
        Mix {
            name: "read-intensive",
            weights: [9, 0, 0, 84, 7],
            remote_item_pct: 1,
            remote_payment_pct: 15,
            rollback_pct: 1,
        }
    }

    /// "TPC-C shardable" (§6.4): the standard mix with every cross-
    /// warehouse access replaced by a local one.
    pub fn shardable() -> Mix {
        Mix {
            name: "shardable",
            weights: [45, 43, 4, 4, 4],
            remote_item_pct: 0,
            remote_payment_pct: 0,
            rollback_pct: 1,
        }
    }

    /// Sample a transaction type.
    pub fn sample(&self, rng: &mut StdRng) -> TxnType {
        debug_assert_eq!(self.weights.iter().sum::<u32>(), 100);
        let mut x = rng.random_range(0..100u32);
        for (ty, w) in TxnType::ALL.iter().zip(self.weights.iter()) {
            if x < *w {
                return *ty;
            }
            x -= w;
        }
        TxnType::StockLevel
    }

    /// Expected fraction of cross-warehouse *transactions* in this mix
    /// (the paper quotes ≈11.25 % for the standard mix: remote payments
    /// plus new-orders with ≥1 remote line).
    pub fn cross_partition_fraction(&self) -> f64 {
        let p_remote_payment =
            self.weights[1] as f64 / 100.0 * self.remote_payment_pct as f64 / 100.0;
        // ~10 lines per order, each remote with p = remote_item_pct %.
        let p_line = self.remote_item_pct as f64 / 100.0;
        let p_no_remote_order = (1.0 - p_line).powi(10);
        let p_remote_no = self.weights[0] as f64 / 100.0 * (1.0 - p_no_remote_order);
        p_remote_payment + p_remote_no
    }
}

/// One generated transaction request.
#[derive(Clone, Debug)]
pub enum TxnRequest {
    NewOrder(NewOrderParams),
    Payment(PaymentParams),
    Delivery(DeliveryParams),
    OrderStatus(OrderStatusParams),
    StockLevel(StockLevelParams),
}

impl TxnRequest {
    /// Request type.
    pub fn txn_type(&self) -> TxnType {
        match self {
            TxnRequest::NewOrder(_) => TxnType::NewOrder,
            TxnRequest::Payment(_) => TxnType::Payment,
            TxnRequest::Delivery(_) => TxnType::Delivery,
            TxnRequest::OrderStatus(_) => TxnType::OrderStatus,
            TxnRequest::StockLevel(_) => TxnType::StockLevel,
        }
    }
}

/// Generates spec-conforming transaction inputs for one terminal.
pub struct ParamGen {
    pub warehouses: i64,
    pub scale: ScaleParams,
    pub mix: Mix,
    /// Monotonic history-row id source (unique per worker).
    h_uid_next: i64,
}

impl ParamGen {
    /// `worker_index` seeds the unique history-id namespace.
    pub fn new(warehouses: i64, scale: ScaleParams, mix: Mix, worker_index: u64) -> Self {
        ParamGen::with_namespace(warehouses, scale, mix, worker_index << 40)
    }

    /// Like [`ParamGen::new`] with an explicit history-id namespace, so
    /// several runs against the same database never collide (the driver
    /// mixes the run seed in).
    pub fn with_namespace(warehouses: i64, scale: ScaleParams, mix: Mix, namespace: u64) -> Self {
        ParamGen { warehouses, scale, mix, h_uid_next: (namespace & (i64::MAX as u64)) as i64 + 1 }
    }

    fn other_warehouse(&self, rng: &mut StdRng, home: i64) -> i64 {
        if self.warehouses <= 1 {
            return home;
        }
        loop {
            let w = rng.random_range(1..=self.warehouses);
            if w != home {
                return w;
            }
        }
    }

    fn customer_selector(&self, rng: &mut StdRng) -> CustomerSelector {
        if rng.random_range(0..100) < 60 {
            CustomerSelector::ById(rand_c_id(rng, self.scale.customers_per_district))
        } else {
            // Restrict the name space to loaded names when the population
            // is scaled below 1000 customers per district.
            let cap = (self.scale.customers_per_district - 1).min(999);
            let n = crate::gen::nurand(rng, 255, crate::gen::C_LAST, 0, cap.max(0));
            let _ = rand_last_name; // spec helper kept for full-scale runs
            CustomerSelector::ByLastName(crate::gen::last_name(n))
        }
    }

    /// Generate the next request for a terminal homed at `home_w`.
    pub fn generate(&mut self, rng: &mut StdRng, home_w: i64) -> TxnRequest {
        let districts = self.scale.districts_per_warehouse;
        match self.mix.sample(rng) {
            TxnType::NewOrder => {
                let d_id = rng.random_range(1..=districts);
                let c_id = rand_c_id(rng, self.scale.customers_per_district);
                let ol_cnt = rng.random_range(5..=15).min(self.scale.items);
                let rollback = rng.random_range(0..100) < self.mix.rollback_pct;
                let mut items = Vec::with_capacity(ol_cnt as usize);
                for n in 0..ol_cnt {
                    let remote = rng.random_range(0..100) < self.mix.remote_item_pct;
                    let supply = if remote { self.other_warehouse(rng, home_w) } else { home_w };
                    let i_id = if rollback && n == ol_cnt - 1 {
                        crate::txns::unused_item_id()
                    } else {
                        rand_i_id(rng, self.scale.items)
                    };
                    items.push(OrderItem {
                        i_id,
                        supply_w_id: supply,
                        quantity: rng.random_range(1..=10),
                    });
                }
                TxnRequest::NewOrder(NewOrderParams { w_id: home_w, d_id, c_id, items, rollback })
            }
            TxnType::Payment => {
                let d_id = rng.random_range(1..=districts);
                let remote = rng.random_range(0..100) < self.mix.remote_payment_pct;
                let (c_w, c_d) = if remote {
                    (self.other_warehouse(rng, home_w), rng.random_range(1..=districts))
                } else {
                    (home_w, d_id)
                };
                let h_uid = self.h_uid_next;
                self.h_uid_next += 1;
                TxnRequest::Payment(PaymentParams {
                    w_id: home_w,
                    d_id,
                    c_w_id: c_w,
                    c_d_id: c_d,
                    customer: self.customer_selector(rng),
                    amount: rng.random_range(100..=500_000) as f64 / 100.0,
                    h_uid,
                })
            }
            TxnType::Delivery => TxnRequest::Delivery(DeliveryParams {
                w_id: home_w,
                carrier_id: rng.random_range(1..=10),
                districts,
            }),
            TxnType::OrderStatus => TxnRequest::OrderStatus(OrderStatusParams {
                w_id: home_w,
                d_id: rng.random_range(1..=districts),
                customer: self.customer_selector(rng),
            }),
            TxnType::StockLevel => TxnRequest::StockLevel(StockLevelParams {
                w_id: home_w,
                d_id: rng.random_range(1..=districts),
                threshold: rng.random_range(10..=20),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mixes_sum_to_100() {
        for m in [Mix::standard(), Mix::read_intensive(), Mix::shardable()] {
            assert_eq!(m.weights.iter().sum::<u32>(), 100, "{}", m.name);
        }
    }

    #[test]
    fn sampling_matches_weights() {
        let mix = Mix::standard();
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 5];
        let n = 100_000;
        for _ in 0..n {
            let ty = mix.sample(&mut rng);
            let idx = TxnType::ALL.iter().position(|t| *t == ty).unwrap();
            counts[idx] += 1;
        }
        for (c, w) in counts.iter().zip(mix.weights.iter()) {
            let observed = *c as f64 / n as f64 * 100.0;
            assert!((observed - *w as f64).abs() < 1.0, "{observed} vs {w}");
        }
    }

    #[test]
    fn standard_mix_cross_partition_fraction_matches_paper() {
        // §6.4: "the ratio of cross-partition transactions is about 11.25%".
        let f = Mix::standard().cross_partition_fraction();
        assert!((f - 0.1125).abs() < 0.02, "fraction = {f}");
        assert_eq!(Mix::shardable().cross_partition_fraction(), 0.0);
    }

    #[test]
    fn shardable_mix_generates_no_remote_accesses() {
        let mut g = ParamGen::new(8, ScaleParams::tiny(), Mix::shardable(), 0);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..2000 {
            match g.generate(&mut rng, 3) {
                TxnRequest::NewOrder(p) => {
                    assert!(p.items.iter().all(|i| i.supply_w_id == 3));
                }
                TxnRequest::Payment(p) => {
                    assert_eq!(p.c_w_id, 3);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn standard_mix_generates_some_remote_accesses() {
        let mut g = ParamGen::new(8, ScaleParams::tiny(), Mix::standard(), 0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut remote_payment = 0;
        let mut payments = 0;
        for _ in 0..5000 {
            if let TxnRequest::Payment(p) = g.generate(&mut rng, 3) {
                payments += 1;
                if p.c_w_id != 3 {
                    remote_payment += 1;
                }
            }
        }
        let pct = remote_payment as f64 / payments as f64 * 100.0;
        assert!((pct - 15.0).abs() < 3.0, "remote payment pct = {pct}");
    }

    #[test]
    fn h_uids_are_worker_unique() {
        let mut a = ParamGen::new(2, ScaleParams::tiny(), Mix::standard(), 1);
        let mut b = ParamGen::new(2, ScaleParams::tiny(), Mix::standard(), 2);
        let mut rng = StdRng::seed_from_u64(13);
        let mut uids = std::collections::HashSet::new();
        for _ in 0..500 {
            if let TxnRequest::Payment(p) = a.generate(&mut rng, 1) {
                assert!(uids.insert(p.h_uid));
            }
            if let TxnRequest::Payment(p) = b.generate(&mut rng, 1) {
                assert!(uids.insert(p.h_uid));
            }
        }
    }
}

//! TPC-C population generation and the spec's random-input rules
//! (rev 5.11 §2.1.6, §4.3.2/3).
//!
//! Population is generated once by [`generate_population`] as typed rows
//! and consumed by a sink, so both Tell ([`load`]) and the partitioned
//! baseline engines (`tell-baselines`) load byte-identical datasets.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tell_common::Result;
use tell_sql::row::encode_row;
use tell_sql::{SqlEngine, Value};

use crate::schema::TpccTables;

/// NURand C constants fixed at load time (clause 2.1.6.1; we keep the
/// run-time C equal to the load-time C, which satisfies the delta rule).
pub const C_LAST: i64 = 123;
pub const C_ID: i64 = 97;
pub const C_OL_I_ID: i64 = 2741;

/// The nine TPC-C tables, as an engine-independent identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TpccTable {
    Warehouse,
    District,
    Customer,
    History,
    NewOrder,
    Orders,
    OrderLine,
    Item,
    Stock,
}

impl TpccTable {
    /// All tables.
    pub const ALL: [TpccTable; 9] = [
        TpccTable::Warehouse,
        TpccTable::District,
        TpccTable::Customer,
        TpccTable::History,
        TpccTable::NewOrder,
        TpccTable::Orders,
        TpccTable::OrderLine,
        TpccTable::Item,
        TpccTable::Stock,
    ];

    /// SQL-layer table name.
    pub fn name(&self) -> &'static str {
        match self {
            TpccTable::Warehouse => "warehouse",
            TpccTable::District => "district",
            TpccTable::Customer => "customer",
            TpccTable::History => "history",
            TpccTable::NewOrder => "neworder",
            TpccTable::Orders => "orders",
            TpccTable::OrderLine => "orderline",
            TpccTable::Item => "item",
            TpccTable::Stock => "stock",
        }
    }

    /// Primary-key column positions (matches the SQL DDL).
    pub fn pk_columns(&self) -> &'static [usize] {
        match self {
            TpccTable::Warehouse => &[0],
            TpccTable::District => &[0, 1],
            TpccTable::Customer => &[0, 1, 2],
            TpccTable::History => &[0],
            TpccTable::NewOrder => &[0, 1, 2],
            TpccTable::Orders => &[0, 1, 2],
            TpccTable::OrderLine => &[0, 1, 2, 3],
            TpccTable::Item => &[0],
            TpccTable::Stock => &[0, 1],
        }
    }
}

/// Non-uniform random, clause 2.1.6.
pub fn nurand(rng: &mut StdRng, a: i64, c: i64, x: i64, y: i64) -> i64 {
    (((rng.random_range(0..=a) | rng.random_range(x..=y)) + c) % (y - x + 1)) + x
}

/// The 10 syllables of clause 4.3.2.3.
const LAST_SYLLABLES: [&str; 10] =
    ["BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"];

/// Customer last name from a number in `[0, 999]`.
pub fn last_name(num: i64) -> String {
    let n = num.clamp(0, 999) as usize;
    format!(
        "{}{}{}",
        LAST_SYLLABLES[n / 100],
        LAST_SYLLABLES[(n / 10) % 10],
        LAST_SYLLABLES[n % 10]
    )
}

/// Random last-name number for transactions: NURand(255, 0, 999).
pub fn rand_last_name(rng: &mut StdRng) -> String {
    last_name(nurand(rng, 255, C_LAST, 0, 999))
}

/// Random customer id: NURand(1023, 1, customers).
pub fn rand_c_id(rng: &mut StdRng, customers: i64) -> i64 {
    nurand(rng, 1023, C_ID, 1, customers)
}

/// Random item id: NURand(8191, 1, items).
pub fn rand_i_id(rng: &mut StdRng, items: i64) -> i64 {
    nurand(rng, 8191, C_OL_I_ID, 1, items)
}

/// a-string: random alphanumerics of length in `[lo, hi]`.
pub fn a_string(rng: &mut StdRng, lo: usize, hi: usize) -> String {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    let len = rng.random_range(lo..=hi);
    (0..len).map(|_| CHARS[rng.random_range(0..CHARS.len())] as char).collect()
}

/// n-string: random digits.
pub fn n_string(rng: &mut StdRng, lo: usize, hi: usize) -> String {
    let len = rng.random_range(lo..=hi);
    (0..len).map(|_| char::from(b'0' + rng.random_range(0..10u8))).collect()
}

/// Scaled-down population parameters. The spec's full scale
/// ([`ScaleParams::spec`]) is 100 k items / 10 districts / 3 k customers
/// per district; scaled runs keep the proportions so contention behaviour
/// is preserved while fitting a single machine.
#[derive(Clone, Copy, Debug)]
pub struct ScaleParams {
    pub items: i64,
    pub districts_per_warehouse: i64,
    pub customers_per_district: i64,
    /// Initial orders per district (spec: one per customer, the last third
    /// still undelivered in NEW-ORDER).
    pub initial_orders_per_district: i64,
}

impl ScaleParams {
    /// Full TPC-C rev 5.11 cardinalities.
    pub fn spec() -> Self {
        ScaleParams {
            items: 100_000,
            districts_per_warehouse: 10,
            customers_per_district: 3_000,
            initial_orders_per_district: 3_000,
        }
    }

    /// A small population for tests and single-machine benchmarks.
    pub fn tiny() -> Self {
        ScaleParams {
            items: 100,
            districts_per_warehouse: 2,
            customers_per_district: 10,
            initial_orders_per_district: 10,
        }
    }

    /// Benchmark default: big enough for realistic access patterns, small
    /// enough to load in seconds.
    pub fn small() -> Self {
        ScaleParams {
            items: 1_000,
            districts_per_warehouse: 10,
            customers_per_district: 60,
            initial_orders_per_district: 60,
        }
    }
}

/// Generate the full population as typed rows, feeding each to `sink`.
/// Deterministic for a given `seed`.
pub fn generate_population(
    warehouses: i64,
    scale: ScaleParams,
    seed: u64,
    mut sink: impl FnMut(TpccTable, Vec<Value>),
) {
    let mut rng = StdRng::seed_from_u64(seed);

    for i in 1..=scale.items {
        let original = rng.random_range(0..10) == 0;
        let mut data = a_string(&mut rng, 26, 50);
        if original {
            data.insert_str(data.len() / 2, "ORIGINAL");
        }
        sink(
            TpccTable::Item,
            vec![
                Value::Int(i),
                Value::Int(rng.random_range(1..=10_000)),
                Value::Text(a_string(&mut rng, 14, 24)),
                Value::Double(rng.random_range(100..=10_000) as f64 / 100.0),
                Value::Text(data),
            ],
        );
    }

    for w in 1..=warehouses {
        sink(
            TpccTable::Warehouse,
            vec![
                Value::Int(w),
                Value::Text(a_string(&mut rng, 6, 10)),
                Value::Text(a_string(&mut rng, 10, 20)),
                Value::Text(a_string(&mut rng, 10, 20)),
                Value::Text(a_string(&mut rng, 10, 20)),
                Value::Text(a_string(&mut rng, 2, 2)),
                Value::Text(format!("{}11111", n_string(&mut rng, 4, 4))),
                Value::Double(rng.random_range(0..=2000) as f64 / 10_000.0),
                // Consistency condition 1 (w_ytd = Σ d_ytd) must hold at
                // load time even for scaled-down district counts.
                Value::Double(30_000.0 * scale.districts_per_warehouse as f64),
            ],
        );
        for i in 1..=scale.items {
            sink(
                TpccTable::Stock,
                vec![
                    Value::Int(w),
                    Value::Int(i),
                    Value::Int(rng.random_range(10..=100)),
                    Value::Text(a_string(&mut rng, 24, 24)),
                    Value::Int(0),
                    Value::Int(0),
                    Value::Int(0),
                    Value::Text(a_string(&mut rng, 26, 50)),
                ],
            );
        }
        for d in 1..=scale.districts_per_warehouse {
            sink(
                TpccTable::District,
                vec![
                    Value::Int(w),
                    Value::Int(d),
                    Value::Text(a_string(&mut rng, 6, 10)),
                    Value::Text(a_string(&mut rng, 10, 20)),
                    Value::Text(a_string(&mut rng, 10, 20)),
                    Value::Text(a_string(&mut rng, 10, 20)),
                    Value::Text(a_string(&mut rng, 2, 2)),
                    Value::Text(format!("{}11111", n_string(&mut rng, 4, 4))),
                    Value::Double(rng.random_range(0..=2000) as f64 / 10_000.0),
                    Value::Double(30_000.0),
                    Value::Int(scale.initial_orders_per_district + 1),
                ],
            );
            for c in 1..=scale.customers_per_district {
                let lname = if c <= 1000 { last_name(c - 1) } else { rand_last_name(&mut rng) };
                let credit = if rng.random_range(0..10) == 0 { "BC" } else { "GC" };
                sink(
                    TpccTable::Customer,
                    vec![
                        Value::Int(w),
                        Value::Int(d),
                        Value::Int(c),
                        Value::Text(a_string(&mut rng, 8, 16)),
                        Value::Text("OE".into()),
                        Value::Text(lname),
                        Value::Text(a_string(&mut rng, 10, 20)),
                        Value::Text(a_string(&mut rng, 10, 20)),
                        Value::Text(a_string(&mut rng, 10, 20)),
                        Value::Text(a_string(&mut rng, 2, 2)),
                        Value::Text(format!("{}11111", n_string(&mut rng, 4, 4))),
                        Value::Text(n_string(&mut rng, 16, 16)),
                        Value::Int(0),
                        Value::Text(credit.into()),
                        Value::Double(50_000.0),
                        Value::Double(rng.random_range(0..=5000) as f64 / 10_000.0),
                        Value::Double(-10.0),
                        Value::Double(10.0),
                        Value::Int(1),
                        Value::Int(0),
                        Value::Text(a_string(&mut rng, 50, 100)),
                    ],
                );
            }
            // ORDERS + ORDERLINE + NEWORDER (the last ~third undelivered).
            let undelivered_from =
                scale.initial_orders_per_district - scale.initial_orders_per_district / 3 + 1;
            // Customers are permuted over orders (clause 4.3.3.1).
            let mut cust: Vec<i64> = (1..=scale.customers_per_district).collect();
            for i in (1..cust.len()).rev() {
                cust.swap(i, rng.random_range(0..=i));
            }
            for o in 1..=scale.initial_orders_per_district {
                let c_id = cust[(o as usize - 1) % cust.len()];
                let ol_cnt = rng.random_range(5..=15).min(scale.items);
                let delivered = o < undelivered_from;
                sink(
                    TpccTable::Orders,
                    vec![
                        Value::Int(w),
                        Value::Int(d),
                        Value::Int(o),
                        Value::Int(c_id),
                        Value::Int(0),
                        if delivered { Value::Int(rng.random_range(1..=10)) } else { Value::Null },
                        Value::Int(ol_cnt),
                        Value::Int(1),
                    ],
                );
                for n in 1..=ol_cnt {
                    sink(
                        TpccTable::OrderLine,
                        vec![
                            Value::Int(w),
                            Value::Int(d),
                            Value::Int(o),
                            Value::Int(n),
                            Value::Int(rng.random_range(1..=scale.items)),
                            Value::Int(w),
                            if delivered { Value::Int(0) } else { Value::Null },
                            Value::Int(5),
                            if delivered {
                                Value::Double(0.0)
                            } else {
                                Value::Double(rng.random_range(1..=999_999) as f64 / 100.0)
                            },
                            Value::Text(a_string(&mut rng, 24, 24)),
                        ],
                    );
                }
                if !delivered {
                    sink(TpccTable::NewOrder, vec![Value::Int(w), Value::Int(d), Value::Int(o)]);
                }
            }
        }
    }
}

/// Load `warehouses` warehouses into a Tell database. Returns the number of
/// rows loaded. Population happens outside transactions (version 0), as an
/// initial load would.
pub fn load(
    engine: &Arc<SqlEngine>,
    warehouses: i64,
    scale: ScaleParams,
    seed: u64,
) -> Result<usize> {
    let db = engine.database();
    let mut buffers: HashMap<TpccTable, Vec<bytes::Bytes>> = HashMap::new();
    let mut schemas = HashMap::new();
    for t in TpccTable::ALL {
        schemas.insert(t, engine.schema(t.name())?);
    }
    let mut encode_err = None;
    generate_population(warehouses, scale, seed, |table, row| {
        if encode_err.is_some() {
            return;
        }
        match encode_row(&schemas[&table], &row) {
            Ok(bytes) => buffers.entry(table).or_default().push(bytes),
            Err(e) => encode_err = Some(e),
        }
    });
    if let Some(e) = encode_err {
        return Err(e);
    }
    let mut rows_loaded = 0;
    for t in TpccTable::ALL {
        let Some(rows) = buffers.remove(&t) else { continue };
        rows_loaded += rows.len();
        let def = db.catalog().table(&db.admin_client(), t.name())?;
        db.bulk_load(&def, rows)?;
    }
    Ok(rows_loaded)
}

/// The handle bundle used by benchmark workers.
pub fn resolve(engine: &SqlEngine, pn: &tell_core::ProcessingNode) -> Result<TpccTables> {
    TpccTables::resolve(engine, pn)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nurand_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = nurand(&mut rng, 1023, C_ID, 1, 3000);
            assert!((1..=3000).contains(&v));
        }
    }

    #[test]
    fn nurand_is_nonuniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            let v = nurand(&mut rng, 8191, C_OL_I_ID, 1, 100_000);
            buckets[((v - 1) * 10 / 100_000) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap() as f64;
        let min = *buckets.iter().min().unwrap() as f64;
        assert!(max / min > 1.05, "distribution should be skewed: {buckets:?}");
    }

    #[test]
    fn last_names_match_spec_examples() {
        assert_eq!(last_name(0), "BARBARBAR");
        assert_eq!(last_name(371), "PRICALLYOUGHT");
        assert_eq!(last_name(999), "EINGEINGEING");
    }

    #[test]
    fn strings_have_requested_lengths() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = a_string(&mut rng, 8, 16);
            assert!((8..=16).contains(&s.len()));
            let n = n_string(&mut rng, 4, 4);
            assert_eq!(n.len(), 4);
            assert!(n.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let collect = || {
            let mut rows = Vec::new();
            generate_population(1, ScaleParams::tiny(), 7, |t, r| rows.push((t, r)));
            rows
        };
        let a = collect();
        let b = collect();
        assert_eq!(a.len(), b.len());
        assert_eq!(a, b);
    }

    #[test]
    fn generation_produces_expected_cardinalities() {
        let scale = ScaleParams::tiny();
        let mut counts: HashMap<TpccTable, usize> = HashMap::new();
        generate_population(2, scale, 7, |t, _| *counts.entry(t).or_default() += 1);
        assert_eq!(counts[&TpccTable::Warehouse], 2);
        assert_eq!(counts[&TpccTable::Item], scale.items as usize);
        assert_eq!(counts[&TpccTable::Stock], (2 * scale.items) as usize);
        assert_eq!(
            counts[&TpccTable::Customer],
            (2 * scale.districts_per_warehouse * scale.customers_per_district) as usize
        );
        assert_eq!(
            counts[&TpccTable::NewOrder],
            (2 * scale.districts_per_warehouse * (scale.initial_orders_per_district / 3)) as usize
        );
        assert!(!counts.contains_key(&TpccTable::History), "history starts empty here");
    }
}

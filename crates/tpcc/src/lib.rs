//! `tell-tpcc` — the TPC-C benchmark (§6.2 of the paper).
//!
//! "The TPC-C is an OLTP database benchmark that models the activity of a
//! wholesale supplier." This crate implements the full nine-table schema,
//! a spec-faithful population generator (NURand, C-load last names), all
//! five transactions, and the paper's three workload mixes:
//!
//! * the **standard (write-intensive)** mix — 45 % new-order, 43 % payment,
//!   4 % delivery, 4 % order-status, 4 % stock-level (35.84 % writes),
//! * the **read-intensive** mix of Table 2 — 9 % new-order, 84 %
//!   order-status, 7 % stock-level (4.89 % writes),
//! * the **shardable** variant of §6.4 — remote new-order and payment
//!   transactions replaced with single-warehouse equivalents.
//!
//! The terminal driver runs workers without wait times ("terminals
//! continuously send requests") and reports TpmC / Tps in *virtual time*
//! (see `DESIGN.md` §1 on the simulation methodology).

pub mod driver;
pub mod gen;
pub mod mix;
pub mod schema;
pub mod txns;

pub use driver::{run_tpcc, DriverReport, TpccConfig};
pub use gen::ScaleParams;
pub use mix::{Mix, TxnType};
pub use schema::{create_tpcc_tables, TpccTables};

//! The nine TPC-C tables, their indexes, and typed access helpers.
//!
//! Tables are created through the SQL layer so their schemas persist in the
//! store and SQL queries can run over the benchmark data (the
//! mixed-workload scenario of §5.2). The transactions themselves access
//! records through `tell-core` directly — like the paper's PN, which
//! executes TPC-C as native code over the record store.

use std::sync::Arc;

use bytes::Bytes;
use tell_common::{Error, IndexId, Result, Rid};
use tell_core::catalog::TableDef;
use tell_core::{ProcessingNode, Transaction};
use tell_sql::row::{decode_row, encode_key, encode_row};
use tell_sql::{SqlEngine, TableSchema, Value};

/// DDL for every TPC-C table (TPC-C rev 5.11 column sets, types mapped to
/// the SQL layer's type system).
pub const TPCC_DDL: &[&str] = &[
    "CREATE TABLE warehouse (w_id INT PRIMARY KEY, w_name VARCHAR(10), w_street_1 VARCHAR(20), \
     w_street_2 VARCHAR(20), w_city VARCHAR(20), w_state CHAR(2), w_zip CHAR(9), \
     w_tax DECIMAL(4,4) NOT NULL, w_ytd DECIMAL(12,2) NOT NULL)",
    "CREATE TABLE district (d_w_id INT, d_id INT, d_name VARCHAR(10), d_street_1 VARCHAR(20), \
     d_street_2 VARCHAR(20), d_city VARCHAR(20), d_state CHAR(2), d_zip CHAR(9), \
     d_tax DECIMAL(4,4) NOT NULL, d_ytd DECIMAL(12,2) NOT NULL, d_next_o_id INT NOT NULL, \
     PRIMARY KEY (d_w_id, d_id))",
    "CREATE TABLE customer (c_w_id INT, c_d_id INT, c_id INT, c_first VARCHAR(16), \
     c_middle CHAR(2), c_last VARCHAR(16) NOT NULL, c_street_1 VARCHAR(20), c_street_2 VARCHAR(20), \
     c_city VARCHAR(20), c_state CHAR(2), c_zip CHAR(9), c_phone CHAR(16), c_since INT, \
     c_credit CHAR(2) NOT NULL, c_credit_lim DECIMAL(12,2), c_discount DECIMAL(4,4) NOT NULL, \
     c_balance DECIMAL(12,2) NOT NULL, c_ytd_payment DECIMAL(12,2) NOT NULL, \
     c_payment_cnt INT NOT NULL, c_delivery_cnt INT NOT NULL, c_data VARCHAR(500), \
     PRIMARY KEY (c_w_id, c_d_id, c_id))",
    "CREATE TABLE history (h_uid INT PRIMARY KEY, h_c_id INT, h_c_d_id INT, h_c_w_id INT, \
     h_d_id INT, h_w_id INT, h_date INT, h_amount DECIMAL(6,2), h_data VARCHAR(24))",
    "CREATE TABLE neworder (no_w_id INT, no_d_id INT, no_o_id INT, \
     PRIMARY KEY (no_w_id, no_d_id, no_o_id))",
    "CREATE TABLE orders (o_w_id INT, o_d_id INT, o_id INT, o_c_id INT NOT NULL, \
     o_entry_d INT, o_carrier_id INT, o_ol_cnt INT NOT NULL, o_all_local INT NOT NULL, \
     PRIMARY KEY (o_w_id, o_d_id, o_id))",
    "CREATE TABLE orderline (ol_w_id INT, ol_d_id INT, ol_o_id INT, ol_number INT, \
     ol_i_id INT NOT NULL, ol_supply_w_id INT, ol_delivery_d INT, ol_quantity INT, \
     ol_amount DECIMAL(6,2), ol_dist_info CHAR(24), \
     PRIMARY KEY (ol_w_id, ol_d_id, ol_o_id, ol_number))",
    "CREATE TABLE item (i_id INT PRIMARY KEY, i_im_id INT, i_name VARCHAR(24) NOT NULL, \
     i_price DECIMAL(5,2) NOT NULL, i_data VARCHAR(50))",
    "CREATE TABLE stock (s_w_id INT, s_i_id INT, s_quantity INT NOT NULL, s_dist_01 CHAR(24), \
     s_ytd INT NOT NULL, s_order_cnt INT NOT NULL, s_remote_cnt INT NOT NULL, s_data VARCHAR(50), \
     PRIMARY KEY (s_w_id, s_i_id))",
];

/// Secondary indexes the transactions need.
pub const TPCC_INDEXES: &[&str] = &[
    // Payment / order-status look customers up by last name (60/40 rule).
    "CREATE INDEX cust_by_name ON customer (c_w_id, c_d_id, c_last)",
    // Order-status needs the customer's most recent order.
    "CREATE INDEX orders_by_cust ON orders (o_w_id, o_d_id, o_c_id, o_id)",
];

/// Column positions, named after the spec's column names.
pub mod col {
    pub mod wh {
        pub const ID: usize = 0;
        pub const TAX: usize = 7;
        pub const YTD: usize = 8;
    }
    pub mod dist {
        pub const W_ID: usize = 0;
        pub const ID: usize = 1;
        pub const TAX: usize = 8;
        pub const YTD: usize = 9;
        pub const NEXT_O_ID: usize = 10;
    }
    pub mod cust {
        pub const W_ID: usize = 0;
        pub const D_ID: usize = 1;
        pub const ID: usize = 2;
        pub const FIRST: usize = 3;
        pub const MIDDLE: usize = 4;
        pub const LAST: usize = 5;
        pub const CREDIT: usize = 13;
        pub const DISCOUNT: usize = 15;
        pub const BALANCE: usize = 16;
        pub const YTD_PAYMENT: usize = 17;
        pub const PAYMENT_CNT: usize = 18;
        pub const DELIVERY_CNT: usize = 19;
        pub const DATA: usize = 20;
    }
    pub mod ord {
        pub const W_ID: usize = 0;
        pub const D_ID: usize = 1;
        pub const ID: usize = 2;
        pub const C_ID: usize = 3;
        pub const ENTRY_D: usize = 4;
        pub const CARRIER_ID: usize = 5;
        pub const OL_CNT: usize = 6;
        pub const ALL_LOCAL: usize = 7;
    }
    pub mod ol {
        pub const W_ID: usize = 0;
        pub const D_ID: usize = 1;
        pub const O_ID: usize = 2;
        pub const NUMBER: usize = 3;
        pub const I_ID: usize = 4;
        pub const SUPPLY_W_ID: usize = 5;
        pub const DELIVERY_D: usize = 6;
        pub const QUANTITY: usize = 7;
        pub const AMOUNT: usize = 8;
    }
    pub mod item {
        pub const ID: usize = 0;
        pub const NAME: usize = 2;
        pub const PRICE: usize = 3;
        pub const DATA: usize = 4;
    }
    pub mod stock {
        pub const W_ID: usize = 0;
        pub const I_ID: usize = 1;
        pub const QUANTITY: usize = 2;
        pub const DIST: usize = 3;
        pub const YTD: usize = 4;
        pub const ORDER_CNT: usize = 5;
        pub const REMOTE_CNT: usize = 6;
        pub const DATA: usize = 7;
    }
    pub mod no {
        pub const W_ID: usize = 0;
        pub const D_ID: usize = 1;
        pub const O_ID: usize = 2;
    }
}

/// Create every table and index. Idempotence: calling twice errors (the
/// database already has the tables).
pub fn create_tpcc_tables(engine: &Arc<SqlEngine>) -> Result<()> {
    let session = engine.session();
    for ddl in TPCC_DDL {
        session.execute(ddl)?;
    }
    for ddl in TPCC_INDEXES {
        session.execute(ddl)?;
    }
    Ok(())
}

/// One table's resolved handles.
#[derive(Clone)]
pub struct TableHandle {
    pub def: Arc<TableDef>,
    pub schema: Arc<TableSchema>,
    pub pk: IndexId,
}

impl TableHandle {
    /// Secondary index id by name.
    pub fn index(&self, name: &str) -> Result<IndexId> {
        self.def
            .index(name)
            .map(|i| i.id)
            .ok_or_else(|| Error::invalid(format!("missing index '{name}'")))
    }
}

/// All nine tables, resolved once per worker.
#[derive(Clone)]
pub struct TpccTables {
    pub warehouse: TableHandle,
    pub district: TableHandle,
    pub customer: TableHandle,
    pub history: TableHandle,
    pub neworder: TableHandle,
    pub orders: TableHandle,
    pub orderline: TableHandle,
    pub item: TableHandle,
    pub stock: TableHandle,
}

impl TpccTables {
    /// Resolve the handles through a worker's catalog view.
    pub fn resolve(engine: &SqlEngine, pn: &ProcessingNode) -> Result<TpccTables> {
        let handle = |name: &str| -> Result<TableHandle> {
            let def = pn.table(name)?;
            let schema = engine.schema(name)?;
            let pk = def.primary_index().id;
            Ok(TableHandle { def, schema, pk })
        };
        Ok(TpccTables {
            warehouse: handle("warehouse")?,
            district: handle("district")?,
            customer: handle("customer")?,
            history: handle("history")?,
            neworder: handle("neworder")?,
            orders: handle("orders")?,
            orderline: handle("orderline")?,
            item: handle("item")?,
            stock: handle("stock")?,
        })
    }
}

// ---------------------------------------------------------------------
// Typed row access helpers used by the transaction implementations.
// ---------------------------------------------------------------------

/// Encode a pk key from integer components.
pub fn int_key(parts: &[i64]) -> Bytes {
    let values: Vec<Value> = parts.iter().map(|v| Value::Int(*v)).collect();
    encode_key(&values)
}

/// Point lookup by primary key; returns `(rid, decoded row)`.
pub fn get_by_pk(
    txn: &mut Transaction<'_>,
    t: &TableHandle,
    key: &Bytes,
) -> Result<Option<(Rid, Vec<Value>)>> {
    let hits = txn.index_lookup(&t.def, t.pk, key)?;
    match hits.into_iter().next() {
        Some((rid, raw)) => Ok(Some((rid, decode_row(&t.schema, &raw)?))),
        None => Ok(None),
    }
}

/// Point lookup that must succeed.
pub fn require_by_pk(
    txn: &mut Transaction<'_>,
    t: &TableHandle,
    key: &Bytes,
) -> Result<(Rid, Vec<Value>)> {
    get_by_pk(txn, t, key)?.ok_or(Error::NotFound)
}

/// Write back an updated row.
pub fn update_row(
    txn: &mut Transaction<'_>,
    t: &TableHandle,
    rid: Rid,
    row: &[Value],
) -> Result<()> {
    txn.update(&t.def, rid, encode_row(&t.schema, row)?)
}

/// Insert a new row.
pub fn insert_row(txn: &mut Transaction<'_>, t: &TableHandle, row: &[Value]) -> Result<Rid> {
    txn.insert(&t.def, encode_row(&t.schema, row)?)
}

/// Index range scan decoded into rows: `lo <= key < hi`.
pub fn range_rows(
    txn: &mut Transaction<'_>,
    t: &TableHandle,
    index: IndexId,
    lo: &Bytes,
    hi: Option<&Bytes>,
    limit: usize,
) -> Result<Vec<(Rid, Vec<Value>)>> {
    txn.index_range(&t.def, index, lo, hi, limit)?
        .into_iter()
        .map(|(_, rid, raw)| Ok((rid, decode_row(&t.schema, &raw)?)))
        .collect()
}

/// Helpers to pull typed fields out of decoded rows.
pub trait RowExt {
    fn int(&self, i: usize) -> i64;
    fn f(&self, i: usize) -> f64;
    fn text(&self, i: usize) -> &str;
}

impl RowExt for Vec<Value> {
    fn int(&self, i: usize) -> i64 {
        self[i].as_i64().unwrap_or(0)
    }
    fn f(&self, i: usize) -> f64 {
        self[i].as_f64().unwrap_or(0.0)
    }
    fn text(&self, i: usize) -> &str {
        self[i].as_str().unwrap_or("")
    }
}

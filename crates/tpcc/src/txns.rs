//! The five TPC-C transactions, implemented against `tell-core`'s
//! transaction API the way the paper's PN executes them: native code over
//! the shared record store, using primary-key lookups, secondary-index
//! scans and buffered writes.

use bytes::Bytes;
use tell_common::{Error, Result};
use tell_core::Transaction;
use tell_sql::row::{encode_key, key_prefix_successor};
use tell_sql::Value;

use crate::schema::{
    col, get_by_pk, insert_row, int_key, range_rows, require_by_pk, update_row, RowExt, TpccTables,
};

/// Marker message for the spec's 1 % intentional new-order rollback
/// (clause 2.4.1.4: an unused item number forces a rollback). The driver
/// treats these as completed-but-not-counted, not as conflicts.
pub const USER_ROLLBACK: &str = "tpcc user rollback (unused item id)";

/// How a transaction picks its customer (clause 2.5.2.2: 60 % by id, 40 %
/// by last name, taking the middle row ordered by first name).
#[derive(Clone, Debug)]
pub enum CustomerSelector {
    ById(i64),
    ByLastName(String),
}

/// One line of a new order.
#[derive(Clone, Debug)]
pub struct OrderItem {
    pub i_id: i64,
    pub supply_w_id: i64,
    pub quantity: i64,
}

/// New-order inputs.
#[derive(Clone, Debug)]
pub struct NewOrderParams {
    pub w_id: i64,
    pub d_id: i64,
    pub c_id: i64,
    pub items: Vec<OrderItem>,
    /// Simulated user error: the last item id is unused.
    pub rollback: bool,
}

/// New-order result (used by consistency tests).
#[derive(Clone, Debug, PartialEq)]
pub struct NewOrderOutput {
    pub o_id: i64,
    pub total_amount: f64,
}

/// The new-order transaction (clause 2.4).
pub fn new_order(
    txn: &mut Transaction<'_>,
    t: &TpccTables,
    p: &NewOrderParams,
    now: i64,
) -> Result<NewOrderOutput> {
    let (_, w_row) = require_by_pk(txn, &t.warehouse, &int_key(&[p.w_id]))?;
    let w_tax = w_row.f(col::wh::TAX);

    let (d_rid, mut d_row) = require_by_pk(txn, &t.district, &int_key(&[p.w_id, p.d_id]))?;
    let d_tax = d_row.f(col::dist::TAX);
    let o_id = d_row.int(col::dist::NEXT_O_ID);
    d_row[col::dist::NEXT_O_ID] = Value::Int(o_id + 1);
    update_row(txn, &t.district, d_rid, &d_row)?;

    let (_, c_row) = require_by_pk(txn, &t.customer, &int_key(&[p.w_id, p.d_id, p.c_id]))?;
    let c_discount = c_row.f(col::cust::DISCOUNT);

    let all_local = p.items.iter().all(|i| i.supply_w_id == p.w_id);
    insert_row(
        txn,
        &t.orders,
        &[
            Value::Int(p.w_id),
            Value::Int(p.d_id),
            Value::Int(o_id),
            Value::Int(p.c_id),
            Value::Int(now),
            Value::Null,
            Value::Int(p.items.len() as i64),
            Value::Int(all_local as i64),
        ],
    )?;
    insert_row(txn, &t.neworder, &[Value::Int(p.w_id), Value::Int(p.d_id), Value::Int(o_id)])?;

    let mut total = 0.0;
    for (n, line) in p.items.iter().enumerate() {
        let item = get_by_pk(txn, &t.item, &int_key(&[line.i_id]))?;
        let Some((_, i_row)) = item else {
            // Unused item id: the spec's simulated user error. The whole
            // transaction rolls back (nothing was applied yet — writes are
            // buffered until commit).
            debug_assert!(p.rollback && n == p.items.len() - 1);
            return Err(Error::Aborted(USER_ROLLBACK.into()));
        };
        let i_price = i_row.f(col::item::PRICE);

        let (s_rid, mut s_row) =
            require_by_pk(txn, &t.stock, &int_key(&[line.supply_w_id, line.i_id]))?;
        let s_qty = s_row.int(col::stock::QUANTITY);
        let new_qty = if s_qty >= line.quantity + 10 {
            s_qty - line.quantity
        } else {
            s_qty - line.quantity + 91
        };
        s_row[col::stock::QUANTITY] = Value::Int(new_qty);
        s_row[col::stock::YTD] = Value::Int(s_row.int(col::stock::YTD) + line.quantity);
        s_row[col::stock::ORDER_CNT] = Value::Int(s_row.int(col::stock::ORDER_CNT) + 1);
        if line.supply_w_id != p.w_id {
            s_row[col::stock::REMOTE_CNT] = Value::Int(s_row.int(col::stock::REMOTE_CNT) + 1);
        }
        update_row(txn, &t.stock, s_rid, &s_row)?;

        let amount = line.quantity as f64 * i_price;
        total += amount;
        insert_row(
            txn,
            &t.orderline,
            &[
                Value::Int(p.w_id),
                Value::Int(p.d_id),
                Value::Int(o_id),
                Value::Int(n as i64 + 1),
                Value::Int(line.i_id),
                Value::Int(line.supply_w_id),
                Value::Null,
                Value::Int(line.quantity),
                Value::Double(amount),
                Value::Text(s_row.text(col::stock::DIST).to_string()),
            ],
        )?;
    }
    let total_amount = total * (1.0 - c_discount) * (1.0 + w_tax + d_tax);
    Ok(NewOrderOutput { o_id, total_amount })
}

/// Payment inputs.
#[derive(Clone, Debug)]
pub struct PaymentParams {
    pub w_id: i64,
    pub d_id: i64,
    /// Customer's home warehouse/district (15 % remote in the standard mix).
    pub c_w_id: i64,
    pub c_d_id: i64,
    pub customer: CustomerSelector,
    pub amount: f64,
    /// Unique id for the history row (generated by the driver).
    pub h_uid: i64,
}

/// Find a customer per the 60/40 id/last-name rule. Returns `(rid, row)`.
pub fn select_customer(
    txn: &mut Transaction<'_>,
    t: &TpccTables,
    w: i64,
    d: i64,
    sel: &CustomerSelector,
) -> Result<(tell_common::Rid, Vec<Value>)> {
    match sel {
        CustomerSelector::ById(c) => require_by_pk(txn, &t.customer, &int_key(&[w, d, *c])),
        CustomerSelector::ByLastName(last) => {
            let idx = t.customer.index("cust_by_name")?;
            let key = encode_key(&[Value::Int(w), Value::Int(d), Value::Text(last.clone())]);
            let mut matches: Vec<(tell_common::Rid, Vec<Value>)> = txn
                .index_lookup(&t.customer.def, idx, &key)?
                .into_iter()
                .map(|(rid, raw)| Ok((rid, tell_sql::row::decode_row(&t.customer.schema, &raw)?)))
                .collect::<Result<_>>()?;
            if matches.is_empty() {
                return Err(Error::NotFound);
            }
            // Clause 2.5.2.2: order by C_FIRST, take ceil(n/2) (1-based).
            matches.sort_by(|a, b| a.1[col::cust::FIRST].total_cmp(&b.1[col::cust::FIRST]));
            let pos = matches.len().div_ceil(2) - 1;
            Ok(matches.swap_remove(pos))
        }
    }
}

/// The payment transaction (clause 2.5).
pub fn payment(
    txn: &mut Transaction<'_>,
    t: &TpccTables,
    p: &PaymentParams,
    now: i64,
) -> Result<()> {
    let (w_rid, mut w_row) = require_by_pk(txn, &t.warehouse, &int_key(&[p.w_id]))?;
    w_row[col::wh::YTD] = Value::Double(w_row.f(col::wh::YTD) + p.amount);
    update_row(txn, &t.warehouse, w_rid, &w_row)?;

    let (d_rid, mut d_row) = require_by_pk(txn, &t.district, &int_key(&[p.w_id, p.d_id]))?;
    d_row[col::dist::YTD] = Value::Double(d_row.f(col::dist::YTD) + p.amount);
    update_row(txn, &t.district, d_rid, &d_row)?;

    let (c_rid, mut c_row) = select_customer(txn, t, p.c_w_id, p.c_d_id, &p.customer)?;
    let c_id = c_row.int(col::cust::ID);
    c_row[col::cust::BALANCE] = Value::Double(c_row.f(col::cust::BALANCE) - p.amount);
    c_row[col::cust::YTD_PAYMENT] = Value::Double(c_row.f(col::cust::YTD_PAYMENT) + p.amount);
    c_row[col::cust::PAYMENT_CNT] = Value::Int(c_row.int(col::cust::PAYMENT_CNT) + 1);
    if c_row.text(col::cust::CREDIT) == "BC" {
        let mut data = format!(
            "{} {} {} {} {} {:.2}|{}",
            c_id,
            p.c_d_id,
            p.c_w_id,
            p.d_id,
            p.w_id,
            p.amount,
            c_row.text(col::cust::DATA)
        );
        data.truncate(500);
        c_row[col::cust::DATA] = Value::Text(data);
    }
    update_row(txn, &t.customer, c_rid, &c_row)?;

    insert_row(
        txn,
        &t.history,
        &[
            Value::Int(p.h_uid),
            Value::Int(c_id),
            Value::Int(p.c_d_id),
            Value::Int(p.c_w_id),
            Value::Int(p.d_id),
            Value::Int(p.w_id),
            Value::Int(now),
            Value::Double(p.amount),
            Value::Text("payment".into()),
        ],
    )?;
    Ok(())
}

/// Delivery inputs.
#[derive(Clone, Debug)]
pub struct DeliveryParams {
    pub w_id: i64,
    pub carrier_id: i64,
    pub districts: i64,
}

/// The delivery transaction (clause 2.7): deliver the oldest undelivered
/// order of every district. Returns the number of orders delivered.
pub fn delivery(
    txn: &mut Transaction<'_>,
    t: &TpccTables,
    p: &DeliveryParams,
    now: i64,
) -> Result<usize> {
    let mut delivered = 0;
    for d in 1..=p.districts {
        let lo = int_key(&[p.w_id, d]);
        let hi = key_prefix_successor(&[Value::Int(p.w_id), Value::Int(d)]);
        let oldest = range_rows(txn, &t.neworder, t.neworder.pk, &lo, Some(&hi), 1)?;
        let Some((no_rid, no_row)) = oldest.into_iter().next() else { continue };
        let o_id = no_row.int(col::no::O_ID);
        txn.delete(&t.neworder.def, no_rid)?;

        let (o_rid, mut o_row) = require_by_pk(txn, &t.orders, &int_key(&[p.w_id, d, o_id]))?;
        let c_id = o_row.int(col::ord::C_ID);
        o_row[col::ord::CARRIER_ID] = Value::Int(p.carrier_id);
        update_row(txn, &t.orders, o_rid, &o_row)?;

        let ol_lo = int_key(&[p.w_id, d, o_id]);
        let ol_hi = key_prefix_successor(&[Value::Int(p.w_id), Value::Int(d), Value::Int(o_id)]);
        let lines =
            range_rows(txn, &t.orderline, t.orderline.pk, &ol_lo, Some(&ol_hi), usize::MAX)?;
        let mut amount_sum = 0.0;
        for (ol_rid, mut ol_row) in lines {
            amount_sum += ol_row.f(col::ol::AMOUNT);
            ol_row[col::ol::DELIVERY_D] = Value::Int(now);
            update_row(txn, &t.orderline, ol_rid, &ol_row)?;
        }

        let (c_rid, mut c_row) = require_by_pk(txn, &t.customer, &int_key(&[p.w_id, d, c_id]))?;
        c_row[col::cust::BALANCE] = Value::Double(c_row.f(col::cust::BALANCE) + amount_sum);
        c_row[col::cust::DELIVERY_CNT] = Value::Int(c_row.int(col::cust::DELIVERY_CNT) + 1);
        update_row(txn, &t.customer, c_rid, &c_row)?;
        delivered += 1;
    }
    Ok(delivered)
}

/// Order-status inputs.
#[derive(Clone, Debug)]
pub struct OrderStatusParams {
    pub w_id: i64,
    pub d_id: i64,
    pub customer: CustomerSelector,
}

/// Order-status output.
#[derive(Clone, Debug, PartialEq)]
pub struct OrderStatusOutput {
    pub c_id: i64,
    pub c_balance: f64,
    pub o_id: Option<i64>,
    pub line_count: usize,
}

/// The order-status transaction (clause 2.6, read-only).
pub fn order_status(
    txn: &mut Transaction<'_>,
    t: &TpccTables,
    p: &OrderStatusParams,
) -> Result<OrderStatusOutput> {
    let (_, c_row) = select_customer(txn, t, p.w_id, p.d_id, &p.customer)?;
    let c_id = c_row.int(col::cust::ID);
    let c_balance = c_row.f(col::cust::BALANCE);

    // Most recent order of this customer via the (w, d, c, o) index.
    let idx = t.orders.index("orders_by_cust")?;
    let lo = int_key(&[p.w_id, p.d_id, c_id]);
    let hi = key_prefix_successor(&[Value::Int(p.w_id), Value::Int(p.d_id), Value::Int(c_id)]);
    let orders = txn.index_range(&t.orders.def, idx, &lo, Some(&hi), usize::MAX)?;
    let Some((_, _, last_raw)) = orders.last() else {
        return Ok(OrderStatusOutput { c_id, c_balance, o_id: None, line_count: 0 });
    };
    let o_row = tell_sql::row::decode_row(&t.orders.schema, last_raw)?;
    let o_id = o_row.int(col::ord::ID);

    let ol_lo = int_key(&[p.w_id, p.d_id, o_id]);
    let ol_hi = key_prefix_successor(&[Value::Int(p.w_id), Value::Int(p.d_id), Value::Int(o_id)]);
    let lines = range_rows(txn, &t.orderline, t.orderline.pk, &ol_lo, Some(&ol_hi), usize::MAX)?;
    Ok(OrderStatusOutput { c_id, c_balance, o_id: Some(o_id), line_count: lines.len() })
}

/// Stock-level inputs.
#[derive(Clone, Debug)]
pub struct StockLevelParams {
    pub w_id: i64,
    pub d_id: i64,
    pub threshold: i64,
}

/// The stock-level transaction (clause 2.8, read-only): distinct items of
/// the district's last 20 orders with stock below the threshold.
pub fn stock_level(
    txn: &mut Transaction<'_>,
    t: &TpccTables,
    p: &StockLevelParams,
) -> Result<usize> {
    let (_, d_row) = require_by_pk(txn, &t.district, &int_key(&[p.w_id, p.d_id]))?;
    let next_o = d_row.int(col::dist::NEXT_O_ID);
    let from_o = (next_o - 20).max(1);

    let lo = int_key(&[p.w_id, p.d_id, from_o]);
    let hi = int_key(&[p.w_id, p.d_id, next_o]);
    let lines = range_rows(txn, &t.orderline, t.orderline.pk, &lo, Some(&hi), usize::MAX)?;
    let mut item_ids: Vec<i64> = lines.iter().map(|(_, r)| r.int(col::ol::I_ID)).collect();
    item_ids.sort_unstable();
    item_ids.dedup();

    let mut low = 0usize;
    for i_id in item_ids {
        let (_, s_row) = require_by_pk(txn, &t.stock, &int_key(&[p.w_id, i_id]))?;
        if s_row.int(col::stock::QUANTITY) < p.threshold {
            low += 1;
        }
    }
    Ok(low)
}

/// An unused item id for rollback simulation.
pub fn unused_item_id() -> i64 {
    i64::MAX / 2
}

/// Extra: bytes key helper re-exported for drivers needing raw pk keys.
pub fn pk_key(parts: &[i64]) -> Bytes {
    int_key(parts)
}

//! Property-based tests for the foundational data structures.

use proptest::prelude::*;
use tell_common::codec::{orderpreserving, Reader, Writer};
use tell_common::{BitSet, Histogram};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The bitset agrees with a reference `HashSet` model under arbitrary
    /// operation sequences.
    #[test]
    fn bitset_matches_set_model(ops in prop::collection::vec((0usize..512, prop::bool::ANY), 0..200)) {
        let mut bits = BitSet::new();
        let mut model = std::collections::BTreeSet::new();
        for (i, set) in ops {
            if set {
                prop_assert_eq!(bits.set(i), model.insert(i));
            } else {
                prop_assert_eq!(bits.clear(i), model.remove(&i));
            }
        }
        prop_assert_eq!(bits.count_ones(), model.len());
        for i in 0..512 {
            prop_assert_eq!(bits.get(i), model.contains(&i));
        }
        let ones: Vec<usize> = bits.iter_ones().collect();
        let expected: Vec<usize> = model.iter().copied().collect();
        prop_assert_eq!(ones, expected);
        // first_zero / last_one agree with the model.
        let first_zero = (0..).find(|i| !model.contains(i)).unwrap();
        prop_assert_eq!(bits.first_zero(), first_zero);
        prop_assert_eq!(bits.last_one(), model.iter().next_back().copied());
    }

    /// shift_down(k) is equivalent to subtracting k from every member and
    /// dropping the negatives.
    #[test]
    fn bitset_shift_down_matches_model(
        members in prop::collection::btree_set(0usize..400, 0..60),
        shift in 0usize..500,
    ) {
        let mut bits = BitSet::new();
        for &m in &members {
            bits.set(m);
        }
        bits.shift_down(shift);
        let expected: Vec<usize> =
            members.iter().filter(|m| **m >= shift).map(|m| m - shift).collect();
        let got: Vec<usize> = bits.iter_ones().collect();
        prop_assert_eq!(got, expected);
    }

    /// Encoding roundtrips exactly.
    #[test]
    fn bitset_encode_roundtrip(members in prop::collection::btree_set(0usize..1000, 0..100)) {
        let mut bits = BitSet::new();
        for &m in &members {
            bits.set(m);
        }
        let mut buf = Vec::new();
        bits.encode_into(&mut buf);
        let (decoded, used) = BitSet::decode_from(&buf).unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(decoded, bits);
    }

    /// The codec reader returns exactly what the writer wrote, in order.
    #[test]
    fn codec_roundtrip(
        a in any::<u64>(),
        b in any::<i64>(),
        c in any::<u16>(),
        s in ".{0,64}",
        raw in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut buf = Vec::new();
        buf.put_u64(a);
        buf.put_i64(b);
        buf.put_u16(c);
        buf.put_string(&s);
        buf.put_bytes(&raw);
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.u64().unwrap(), a);
        prop_assert_eq!(r.i64().unwrap(), b);
        prop_assert_eq!(r.u16().unwrap(), c);
        prop_assert_eq!(r.string().unwrap(), s);
        prop_assert_eq!(r.bytes().unwrap(), &raw[..]);
        prop_assert!(r.is_exhausted());
    }

    /// Truncating an encoded buffer anywhere never panics — it errors.
    #[test]
    fn codec_truncation_is_safe(
        s in ".{0,32}",
        cut in 0usize..100,
    ) {
        let mut buf = Vec::new();
        buf.put_u64(42);
        buf.put_string(&s);
        let cut = cut.min(buf.len());
        let mut r = Reader::new(&buf[..cut]);
        // Either both reads succeed (cut == len) or one errors; no panic.
        let _ = r.u64().and_then(|_| r.string());
    }

    /// Order-preserving integer encodings preserve order.
    #[test]
    fn order_preserving_encodings(a in any::<i64>(), b in any::<i64>()) {
        let ea = orderpreserving::encode_i64(a);
        let eb = orderpreserving::encode_i64(b);
        prop_assert_eq!(a.cmp(&b), ea.cmp(&eb));
        prop_assert_eq!(orderpreserving::decode_i64(&ea), Some(a));
        let ua = orderpreserving::encode_u64(a as u64);
        prop_assert_eq!(orderpreserving::decode_u64(&ua), Some(a as u64));
    }

    /// Histogram mean/stddev match a direct computation; percentiles are
    /// within bucket tolerance; merging equals recording the concatenation.
    #[test]
    fn histogram_statistics(samples in prop::collection::vec(0.0f64..1e6, 1..300)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((h.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((h.stddev() - var.sqrt()).abs() <= 1e-6 * (1.0 + var.sqrt()));
        // p100 upper bound == max; percentile within ~3% of exact.
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let exact_p90 = sorted[((0.9 * n).ceil() as usize - 1).min(sorted.len() - 1)];
        let approx = h.percentile(0.9);
        prop_assert!(approx <= h.max() && approx >= h.min());
        if exact_p90 > 1.0 {
            prop_assert!((approx / exact_p90 - 1.0).abs() < 0.05, "approx {} exact {}", approx, exact_p90);
        }
    }

    #[test]
    fn histogram_merge_equals_concat(
        a in prop::collection::vec(0.0f64..1e4, 0..100),
        b in prop::collection::vec(0.0f64..1e4, 0..100),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hc = Histogram::new();
        for &x in &a { ha.record(x); hc.record(x); }
        for &x in &b { hb.record(x); hc.record(x); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hc.count());
        prop_assert!((ha.mean() - hc.mean()).abs() < 1e-6);
        prop_assert!((ha.stddev() - hc.stddev()).abs() < 1e-6);
        prop_assert_eq!(ha.percentile(0.5), hc.percentile(0.5));
    }
}

//! Workspace-wide error type.
//!
//! Kept dependency-free: a plain enum with hand-written `Display`. Variants
//! are coarse on purpose — callers in the transaction layer mostly need to
//! distinguish *conflict* (retryable under optimistic concurrency control)
//! from everything else.

use std::fmt;

/// Convenience alias used by every crate in the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the storage, transaction and query layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A store-conditional failed because the cell changed since load-link,
    /// or a transactional write-write conflict was detected at commit.
    Conflict,
    /// The transaction was aborted; carries the reason.
    Aborted(String),
    /// Key / record / table / index not found.
    NotFound,
    /// The storage system (or a required partition) is unavailable.
    Unavailable(String),
    /// A storage node ran out of its configured memory capacity.
    CapacityExceeded { node: u32, capacity: usize },
    /// Malformed on-wire or on-store bytes.
    Corrupt(String),
    /// Caller misuse: operating on a finished transaction, duplicate table
    /// name, mismatched schema, etc.
    InvalidOperation(String),
    /// SQL lexing/parsing error with position information.
    Parse { message: String, position: usize },
    /// Planner/executor error (unknown column, type mismatch, ...).
    Query(String),
    /// A feature intentionally outside the reproduction scope.
    Unsupported(String),
}

impl Error {
    /// True when retrying the transaction may succeed (optimistic CC loser).
    pub fn is_retryable(&self) -> bool {
        matches!(self, Error::Conflict | Error::Aborted(_))
    }

    /// Shorthand for an [`Error::InvalidOperation`].
    pub fn invalid(msg: impl Into<String>) -> Self {
        Error::InvalidOperation(msg.into())
    }

    /// Shorthand for an [`Error::Corrupt`].
    pub fn corrupt(msg: impl Into<String>) -> Self {
        Error::Corrupt(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Conflict => write!(f, "write-write conflict"),
            Error::Aborted(r) => write!(f, "transaction aborted: {r}"),
            Error::NotFound => write!(f, "not found"),
            Error::Unavailable(w) => write!(f, "storage unavailable: {w}"),
            Error::CapacityExceeded { node, capacity } => {
                write!(f, "storage node sn:{node} exceeded capacity of {capacity} bytes")
            }
            Error::Corrupt(w) => write!(f, "corrupt data: {w}"),
            Error::InvalidOperation(w) => write!(f, "invalid operation: {w}"),
            Error::Parse { message, position } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            Error::Query(w) => write!(f, "query error: {w}"),
            Error::Unsupported(w) => write!(f, "unsupported: {w}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_is_retryable() {
        assert!(Error::Conflict.is_retryable());
        assert!(Error::Aborted("x".into()).is_retryable());
        assert!(!Error::NotFound.is_retryable());
        assert!(!Error::corrupt("bad").is_retryable());
    }

    #[test]
    fn display_is_human_readable() {
        let e = Error::CapacityExceeded { node: 2, capacity: 1024 };
        assert_eq!(e.to_string(), "storage node sn:2 exceeded capacity of 1024 bytes");
        let p = Error::Parse { message: "unexpected ')'".into(), position: 12 };
        assert!(p.to_string().contains("byte 12"));
    }
}

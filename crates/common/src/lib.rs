//! Shared primitives for the `tell-rs` workspace.
//!
//! This crate deliberately contains nothing database-specific: identifiers,
//! error types, a growable bitset (used by snapshot descriptors), binary
//! codec helpers (all wire and record formats in the workspace are
//! hand-rolled little-endian), latency statistics, and the simulated clock
//! that underpins the virtual-time benchmark methodology described in
//! `DESIGN.md`.

pub mod bitset;
pub mod clock;
pub mod codec;
pub mod error;
pub mod ids;
pub mod isolation;
pub mod stats;

pub use bitset::BitSet;
pub use clock::SimClock;
pub use error::{Error, Result};
pub use ids::{CmId, IndexId, PartitionId, PnId, Rid, SnId, TableId, TxnId};
pub use isolation::IsolationLevel;
pub use stats::{bucket_quantile, histogram_bucket_upper, Histogram, Summary, HISTOGRAM_BUCKETS};

//! Transaction isolation levels.
//!
//! The paper fixes snapshot isolation as Tell's contract (§4.1), but the
//! shared-data split (PN-side version resolution, CM-ordered commits) is
//! exactly the seam where weaker and stronger levels trade coordination
//! for speed. The four levels form a total order — every history legal at
//! a stronger level is legal at every weaker one:
//!
//! * [`IsolationLevel::ReadCommitted`] — each read observes the freshest
//!   committed state the PN knows of; no per-transaction snapshot, so
//!   non-repeatable reads and lost updates are admitted.
//! * [`IsolationLevel::NonMonotonicSi`] — every transaction reads from one
//!   consistent snapshot and first-committer-wins holds, but consecutive
//!   transactions of one session may receive *older* snapshots than their
//!   predecessors (Saeida Ardekani et al.: dropping monotonicity cuts the
//!   CM round-trip cost).
//! * [`IsolationLevel::Si`] — the paper's level: consistent snapshots,
//!   first-committer-wins, and session monotonicity on a single commit
//!   manager.
//! * [`IsolationLevel::Serializable`] — SI plus commit-time promotion of
//!   the read set into the store-conditional validation ("A Critique of
//!   Snapshot Isolation"'s write-snapshot check on our LL/SC seam), which
//!   rejects write skew.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IsolationLevel {
    /// Read committed: per-read freshest committed state.
    ReadCommitted,
    /// Non-monotonic snapshot isolation: consistent but possibly stale
    /// per-transaction snapshots.
    NonMonotonicSi,
    /// Snapshot isolation (the paper's default).
    #[default]
    Si,
    /// SI plus read-set validation: conflict-serializable commits.
    Serializable,
}

impl IsolationLevel {
    /// All levels, weakest first (the lattice order used by the
    /// differential checker matrix).
    pub const ALL: [IsolationLevel; 4] = [
        IsolationLevel::ReadCommitted,
        IsolationLevel::NonMonotonicSi,
        IsolationLevel::Si,
        IsolationLevel::Serializable,
    ];

    /// Stable one-byte wire code (also the `--isolation` numeric form).
    pub fn code(self) -> u8 {
        match self {
            IsolationLevel::ReadCommitted => 1,
            IsolationLevel::NonMonotonicSi => 2,
            IsolationLevel::Si => 3,
            IsolationLevel::Serializable => 4,
        }
    }

    /// Decode a wire code; `None` for anything [`code`](Self::code) never
    /// produces (0 is deliberately invalid so a zeroed byte cannot alias a
    /// level).
    pub fn from_code(code: u8) -> Option<IsolationLevel> {
        match code {
            1 => Some(IsolationLevel::ReadCommitted),
            2 => Some(IsolationLevel::NonMonotonicSi),
            3 => Some(IsolationLevel::Si),
            4 => Some(IsolationLevel::Serializable),
            _ => None,
        }
    }

    /// Canonical lowercase name (flag value, verdict lines, JSON keys).
    pub fn as_str(self) -> &'static str {
        match self {
            IsolationLevel::ReadCommitted => "rc",
            IsolationLevel::NonMonotonicSi => "nmsi",
            IsolationLevel::Si => "si",
            IsolationLevel::Serializable => "serializable",
        }
    }
}

impl std::fmt::Display for IsolationLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for IsolationLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "rc" | "read-committed" | "read_committed" => Ok(IsolationLevel::ReadCommitted),
            "nmsi" | "non-monotonic-si" | "non_monotonic_si" => Ok(IsolationLevel::NonMonotonicSi),
            "si" | "snapshot" => Ok(IsolationLevel::Si),
            "serializable" | "ssi" => Ok(IsolationLevel::Serializable),
            other => Err(format!(
                "unknown isolation level {other:?} (expected rc, nmsi, si or serializable)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_order_is_weakest_to_strongest() {
        assert!(IsolationLevel::ReadCommitted < IsolationLevel::NonMonotonicSi);
        assert!(IsolationLevel::NonMonotonicSi < IsolationLevel::Si);
        assert!(IsolationLevel::Si < IsolationLevel::Serializable);
        assert!(IsolationLevel::ALL.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn codes_round_trip_and_zero_is_invalid() {
        for level in IsolationLevel::ALL {
            assert_eq!(IsolationLevel::from_code(level.code()), Some(level));
        }
        assert_eq!(IsolationLevel::from_code(0), None);
        assert_eq!(IsolationLevel::from_code(5), None);
    }

    #[test]
    fn names_parse_back() {
        for level in IsolationLevel::ALL {
            assert_eq!(level.as_str().parse::<IsolationLevel>().unwrap(), level);
        }
        assert!("strict".parse::<IsolationLevel>().is_err());
    }

    #[test]
    fn default_is_si() {
        assert_eq!(IsolationLevel::default(), IsolationLevel::Si);
    }
}

//! Simulated (virtual-time) clocks.
//!
//! The benchmark methodology (DESIGN.md §1) measures throughput and latency
//! in *simulated microseconds*: every worker thread owns a [`SimClock`] and
//! the storage/network layers charge operation costs against it. This is what
//! lets a 12-server InfiniBand testbed be reproduced on a single machine —
//! latency budgets are preserved even though wall-clock time is not.

use std::cell::Cell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A per-worker virtual clock measured in microseconds.
///
/// Cloning a `SimClock` yields a handle to the *same* underlying clock
/// (shared within one worker thread; `SimClock` is deliberately `!Send` so it
/// cannot be accidentally shared across threads — cross-thread aggregation
/// goes through [`SimClock::now_us`] snapshots).
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    micros: Rc<Cell<f64>>,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current virtual time in microseconds.
    #[inline]
    pub fn now_us(&self) -> f64 {
        self.micros.get()
    }

    /// Advance the clock by `us` microseconds.
    #[inline]
    pub fn advance(&self, us: f64) {
        debug_assert!(us >= 0.0, "clocks only move forward");
        self.micros.set(self.micros.get() + us);
    }

    /// Move the clock to `us` if that is later than the current time.
    /// Used when a worker waits on a resource that frees up at a known time.
    #[inline]
    pub fn advance_to(&self, us: f64) {
        if us > self.micros.get() {
            self.micros.set(us);
        }
    }

    /// Reset to time zero (between benchmark phases).
    pub fn reset(&self) {
        self.micros.set(0.0);
    }
}

/// A thread-safe monotonically-advancing virtual timestamp, used by shared
/// services (e.g. the centralized validator in the FoundationDB-like
/// baseline) to model a serial resource: each request occupies the resource
/// for `service_us` and observes the queueing delay caused by earlier
/// requests.
#[derive(Debug, Default)]
pub struct SharedBusyClock {
    /// Time (in nanoseconds, as integer for atomic math) at which the
    /// resource becomes free.
    free_at_ns: AtomicU64,
}

impl SharedBusyClock {
    /// Resource free at time zero.
    pub fn new() -> Arc<Self> {
        Arc::new(SharedBusyClock::default())
    }

    /// Occupy the resource for `service_us` starting no earlier than
    /// `arrival_us`. Returns the virtual time at which the request completes.
    pub fn occupy(&self, arrival_us: f64, service_us: f64) -> f64 {
        let arrival_ns = (arrival_us * 1000.0) as u64;
        let service_ns = (service_us * 1000.0) as u64;
        let mut cur = self.free_at_ns.load(Ordering::Relaxed);
        loop {
            let start = cur.max(arrival_ns);
            let done = start + service_ns;
            match self.free_at_ns.compare_exchange_weak(
                cur,
                done,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return done as f64 / 1000.0,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Time at which the resource is next free, in microseconds.
    pub fn free_at_us(&self) -> f64 {
        self.free_at_ns.load(Ordering::Relaxed) as f64 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances() {
        let c = SimClock::new();
        assert_eq!(c.now_us(), 0.0);
        c.advance(5.5);
        c.advance(1.0);
        assert!((c.now_us() - 6.5).abs() < 1e-9);
        c.advance_to(4.0); // in the past: no-op
        assert!((c.now_us() - 6.5).abs() < 1e-9);
        c.advance_to(10.0);
        assert_eq!(c.now_us(), 10.0);
        c.reset();
        assert_eq!(c.now_us(), 0.0);
    }

    #[test]
    fn clones_share_state() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(3.0);
        assert_eq!(b.now_us(), 3.0);
    }

    #[test]
    fn busy_clock_serializes_requests() {
        let c = SharedBusyClock::new();
        // Two requests arriving at t=0 with 10us service: second finishes at 20.
        let d1 = c.occupy(0.0, 10.0);
        let d2 = c.occupy(0.0, 10.0);
        assert_eq!(d1, 10.0);
        assert_eq!(d2, 20.0);
        // A late arrival does not travel back in time.
        let d3 = c.occupy(100.0, 5.0);
        assert_eq!(d3, 105.0);
        assert_eq!(c.free_at_us(), 105.0);
    }

    #[test]
    fn busy_clock_is_thread_safe() {
        let c = SharedBusyClock::new();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    c.occupy(0.0, 1.0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 400 serialized 1us requests => free at 400us exactly.
        assert_eq!(c.free_at_us(), 400.0);
    }
}

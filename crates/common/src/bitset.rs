//! A growable bitset.
//!
//! The commit manager's snapshot descriptor (§4.2) stores the set `N` of
//! newly-committed transaction ids above the base version as a bitset: "each
//! consecutive bit in N represents the next higher tid and if set indicates a
//! committed transaction". This type is that bitset. It also serializes to a
//! compact little-endian byte layout because snapshot descriptors travel
//! through the shared store when multiple commit managers synchronize.

const WORD_BITS: usize = 64;

/// Growable bitset backed by `u64` words.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    /// Number of set bits, maintained incrementally.
    ones: usize,
}

impl BitSet {
    /// Empty bitset.
    pub fn new() -> Self {
        BitSet { words: Vec::new(), ones: 0 }
    }

    /// Empty bitset with room for `bits` bits before reallocating.
    pub fn with_capacity(bits: usize) -> Self {
        BitSet { words: Vec::with_capacity(bits.div_ceil(WORD_BITS)), ones: 0 }
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// True if no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ones == 0
    }

    /// Capacity in bits currently backed by storage.
    #[inline]
    pub fn bit_capacity(&self) -> usize {
        self.words.len() * WORD_BITS
    }

    /// Test bit `i`. Bits beyond the backing storage read as unset.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        match self.words.get(i / WORD_BITS) {
            Some(w) => (w >> (i % WORD_BITS)) & 1 == 1,
            None => false,
        }
    }

    /// Set bit `i`, growing as needed. Returns whether the bit was newly set.
    pub fn set(&mut self, i: usize) -> bool {
        let word = i / WORD_BITS;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << (i % WORD_BITS);
        let newly = self.words[word] & mask == 0;
        self.words[word] |= mask;
        if newly {
            self.ones += 1;
        }
        newly
    }

    /// Clear bit `i`. Returns whether the bit was previously set.
    pub fn clear(&mut self, i: usize) -> bool {
        let word = i / WORD_BITS;
        if word >= self.words.len() {
            return false;
        }
        let mask = 1u64 << (i % WORD_BITS);
        let was = self.words[word] & mask != 0;
        self.words[word] &= !mask;
        if was {
            self.ones -= 1;
        }
        was
    }

    /// Remove every bit and release storage.
    pub fn reset(&mut self) {
        self.words.clear();
        self.ones = 0;
    }

    /// Index of the lowest *unset* bit (the "next hole"). Used by the commit
    /// manager to advance the base version past a dense committed prefix.
    pub fn first_zero(&self) -> usize {
        for (wi, w) in self.words.iter().enumerate() {
            if *w != u64::MAX {
                return wi * WORD_BITS + w.trailing_ones() as usize;
            }
        }
        self.words.len() * WORD_BITS
    }

    /// Index of the highest set bit, if any.
    pub fn last_one(&self) -> Option<usize> {
        for (wi, w) in self.words.iter().enumerate().rev() {
            if *w != 0 {
                return Some(wi * WORD_BITS + (WORD_BITS - 1 - w.leading_zeros() as usize));
            }
        }
        None
    }

    /// Shift the whole set right by `n` bits (dropping the lowest `n`). Used
    /// when the snapshot base advances: bits representing tids at or below the
    /// new base are discarded.
    pub fn shift_down(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        let word_shift = n / WORD_BITS;
        let bit_shift = n % WORD_BITS;
        if word_shift >= self.words.len() {
            self.reset();
            return;
        }
        self.words.drain(..word_shift);
        if bit_shift > 0 {
            let len = self.words.len();
            for i in 0..len {
                let hi = if i + 1 < len { self.words[i + 1] } else { 0 };
                self.words[i] = (self.words[i] >> bit_shift) | (hi << (WORD_BITS - bit_shift));
            }
        }
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
        self.ones = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }

    /// Union with another bitset.
    pub fn union_with(&mut self, other: &BitSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
        self.ones = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }

    /// Iterate over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let mut w = *w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + bit)
                }
            })
        })
    }

    /// Serialized size in bytes (word count prefix + words).
    pub fn encoded_len(&self) -> usize {
        4 + self.words.len() * 8
    }

    /// Append the little-endian encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.words.len() as u32).to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Decode from the front of `buf`, returning the bitset and bytes consumed.
    pub fn decode_from(buf: &[u8]) -> Option<(BitSet, usize)> {
        if buf.len() < 4 {
            return None;
        }
        let n = u32::from_le_bytes(buf[..4].try_into().ok()?) as usize;
        let need = 4 + n * 8;
        if buf.len() < need {
            return None;
        }
        let mut words = Vec::with_capacity(n);
        for i in 0..n {
            let off = 4 + i * 8;
            words.push(u64::from_le_bytes(buf[off..off + 8].try_into().ok()?));
        }
        let ones = words.iter().map(|w| w.count_ones() as usize).sum();
        Some((BitSet { words, ones }, need))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = BitSet::new();
        assert!(!b.get(100));
        assert!(b.set(100));
        assert!(!b.set(100));
        assert!(b.get(100));
        assert_eq!(b.count_ones(), 1);
        assert!(b.clear(100));
        assert!(!b.clear(100));
        assert!(b.is_empty());
    }

    #[test]
    fn first_zero_scans_past_dense_prefix() {
        let mut b = BitSet::new();
        for i in 0..130 {
            b.set(i);
        }
        assert_eq!(b.first_zero(), 130);
        b.clear(64);
        assert_eq!(b.first_zero(), 64);
        assert_eq!(BitSet::new().first_zero(), 0);
    }

    #[test]
    fn last_one() {
        let mut b = BitSet::new();
        assert_eq!(b.last_one(), None);
        b.set(0);
        b.set(200);
        assert_eq!(b.last_one(), Some(200));
        b.clear(200);
        assert_eq!(b.last_one(), Some(0));
    }

    #[test]
    fn shift_down_drops_low_bits() {
        let mut b = BitSet::new();
        b.set(3);
        b.set(70);
        b.set(130);
        b.shift_down(70);
        assert!(b.get(0)); // old 70
        assert!(b.get(60)); // old 130
        assert!(!b.get(3));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn shift_down_entire_set() {
        let mut b = BitSet::new();
        b.set(5);
        b.shift_down(1000);
        assert!(b.is_empty());
        assert_eq!(b.bit_capacity(), 0);
    }

    #[test]
    fn shift_down_word_aligned() {
        let mut b = BitSet::new();
        b.set(64);
        b.set(65);
        b.shift_down(64);
        assert!(b.get(0));
        assert!(b.get(1));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn union() {
        let mut a = BitSet::new();
        a.set(1);
        let mut b = BitSet::new();
        b.set(1);
        b.set(100);
        a.union_with(&b);
        assert!(a.get(1) && a.get(100));
        assert_eq!(a.count_ones(), 2);
    }

    #[test]
    fn iter_ones_is_sorted() {
        let mut b = BitSet::new();
        for i in [5usize, 1, 64, 63, 200] {
            b.set(i);
        }
        let v: Vec<usize> = b.iter_ones().collect();
        assert_eq!(v, vec![1, 5, 63, 64, 200]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut b = BitSet::new();
        b.set(0);
        b.set(77);
        b.set(1000);
        let mut buf = Vec::new();
        b.encode_into(&mut buf);
        assert_eq!(buf.len(), b.encoded_len());
        let (d, used) = BitSet::decode_from(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(d, b);
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut b = BitSet::new();
        b.set(9);
        let mut buf = Vec::new();
        b.encode_into(&mut buf);
        assert!(BitSet::decode_from(&buf[..buf.len() - 1]).is_none());
        assert!(BitSet::decode_from(&[1, 2]).is_none());
    }
}

//! Latency statistics: histograms with mean / standard deviation / tail
//! percentiles, matching the metrics the paper reports (Table 4 mean ± σ,
//! Table 5 TP99 / TP999).

/// Log-bucketed latency histogram over non-negative `f64` samples
/// (microseconds by convention).
///
/// Buckets grow geometrically (~2 % relative width), so percentile estimates
/// are accurate to a couple of percent across nine orders of magnitude while
/// the histogram stays a fixed ~12 KiB. Mean and variance are tracked exactly
/// (Welford), not from buckets.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

/// Growth factor per bucket: 2^(1/32) ≈ 1.0219.
const BUCKETS: usize = 1500;
const GROWTH_LOG2_INV: f64 = 32.0;

fn bucket_of(v: f64) -> usize {
    if v < 1.0 {
        return 0;
    }
    let b = (v.log2() * GROWTH_LOG2_INV) as usize + 1;
    b.min(BUCKETS - 1)
}

fn bucket_upper(b: usize) -> f64 {
    if b == 0 {
        1.0
    } else {
        (b as f64 / GROWTH_LOG2_INV).exp2()
    }
}

/// Number of log buckets in every [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = BUCKETS;

/// Inclusive upper bound of bucket `b` (clamped to the last bucket).
///
/// All histograms share one fixed bucket layout, so bucket arrays from
/// different histograms — or from two snapshots of the same histogram —
/// are directly comparable element-wise.
pub fn histogram_bucket_upper(b: usize) -> f64 {
    bucket_upper(b.min(BUCKETS - 1))
}

/// Approximate `q`-quantile of a raw bucket-count array (e.g. the
/// element-wise difference of two [`Histogram::bucket_counts`] snapshots,
/// giving the quantile over just that window).
///
/// Returns the matching bucket's upper bound, or `0.0` when the array is
/// empty. Unlike [`Histogram::percentile`] there is no min/max clamp — the
/// window's extremes are unknown — so results carry the ~2 % bucket error.
pub fn bucket_quantile(buckets: &[u64], q: f64) -> f64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (b, c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bucket_upper(b);
        }
    }
    bucket_upper(BUCKETS - 1)
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: 0.0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        debug_assert!(v >= 0.0 && v.is_finite(), "latency samples must be finite and >= 0");
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact arithmetic mean.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Exact population standard deviation.
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Smallest sample seen (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Approximate `q`-quantile (`q` in `[0, 1]`), e.g. `0.99` for TP99.
    ///
    /// Edge behavior: `q = 0.0` means the observed minimum (not the rank-1
    /// sample's bucket estimate), and `q = 1.0` means the observed maximum.
    /// Every result is clamped to the `[min, max]` range actually seen.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if q <= 0.0 {
            return self.min;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(b).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Condensed view of the distribution: the numbers the paper reports
    /// (Table 4 mean ± σ, Table 5 TP99 / TP999) plus the observed range.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            stddev: self.stddev(),
            p50: self.percentile(0.50),
            p99: self.percentile(0.99),
            p999: self.percentile(0.999),
        }
    }

    /// Raw per-bucket sample counts (length [`HISTOGRAM_BUCKETS`]).
    ///
    /// Bucket `b` holds samples in `(histogram_bucket_upper(b - 1),
    /// histogram_bucket_upper(b)]` (bucket 0 holds `[0, 1)`). Counts only
    /// grow, so subtracting an older snapshot element-wise yields the
    /// distribution of just the samples recorded in between.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Non-empty buckets as ascending `(upper_bound, count)` pairs — the
    /// sparse form used by the Prometheus `_bucket` exporter.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(b, c)| (bucket_upper(b), *c))
            .collect()
    }

    /// Exact total of all samples (`mean * count`) — the Prometheus `_sum`.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        if self.count == 0 {
            self.mean = other.mean;
            self.m2 = other.m2;
        } else {
            self.mean += delta * n2 / total;
            self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The distribution summary returned by [`Histogram::summary`].
///
/// Percentiles are bucket estimates (≈2 % relative error); `count`, `min`,
/// `max`, `mean`, and `stddev` are exact.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Exact arithmetic mean.
    pub mean: f64,
    /// Exact population standard deviation.
    pub stddev: f64,
    /// Median estimate.
    pub p50: f64,
    /// TP99 estimate.
    pub p99: f64,
    /// TP999 estimate.
    pub p999: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.stddev(), 0.0);
        assert_eq!(h.percentile(0.99), 0.0);
        assert_eq!(h.min(), 0.0);
    }

    #[test]
    fn mean_and_stddev_are_exact() {
        let mut h = Histogram::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            h.record(v);
        }
        assert!((h.mean() - 5.0).abs() < 1e-9);
        assert!((h.stddev() - 2.0).abs() < 1e-9);
        assert_eq!(h.min(), 2.0);
        assert_eq!(h.max(), 9.0);
    }

    #[test]
    fn percentiles_are_close() {
        let mut h = Histogram::new();
        for i in 1..=10_000 {
            h.record(i as f64);
        }
        let p50 = h.percentile(0.50);
        let p99 = h.percentile(0.99);
        let p999 = h.percentile(0.999);
        assert!((p50 - 5000.0).abs() / 5000.0 < 0.05, "p50={p50}");
        assert!((p99 - 9900.0).abs() / 9900.0 < 0.05, "p99={p99}");
        assert!((p999 - 9990.0).abs() / 9990.0 < 0.05, "p999={p999}");
    }

    #[test]
    fn percentile_bounded_by_observed_range() {
        let mut h = Histogram::new();
        h.record(100.0);
        assert_eq!(h.percentile(0.999), 100.0);
        assert_eq!(h.percentile(0.0001), 100.0);
    }

    #[test]
    fn percentile_zero_means_min() {
        let mut h = Histogram::new();
        for v in [3.0, 10.0, 500.0, 80_000.0] {
            h.record(v);
        }
        // q=0 returns the exact observed minimum, not the rank-1 sample's
        // bucket upper bound.
        assert_eq!(h.percentile(0.0), 3.0);
        assert_eq!(h.percentile(1.0), 80_000.0);
    }

    #[test]
    fn summary_matches_accessors() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let s = h.summary();
        assert_eq!(s.count, h.count());
        assert_eq!(s.min, h.min());
        assert_eq!(s.max, h.max());
        assert_eq!(s.mean, h.mean());
        assert_eq!(s.stddev, h.stddev());
        assert_eq!(s.p50, h.percentile(0.50));
        assert_eq!(s.p99, h.percentile(0.99));
        assert_eq!(s.p999, h.percentile(0.999));
        let empty = Histogram::new().summary();
        assert_eq!(empty.count, 0);
        assert_eq!(empty.min, 0.0);
    }

    #[test]
    fn merge_matches_combined_stream() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for i in 0..1000 {
            let v = (i * 13 % 997) as f64;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-6);
        assert!((a.stddev() - all.stddev()).abs() < 1e-6);
        assert_eq!(a.percentile(0.9), all.percentile(0.9));
    }

    #[test]
    fn merge_into_empty() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        b.record(5.0);
        b.record(15.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_accessors_expose_the_raw_distribution() {
        let mut h = Histogram::new();
        for v in [0.5, 3.0, 3.0, 900.0] {
            h.record(v);
        }
        let counts = h.bucket_counts();
        assert_eq!(counts.len(), HISTOGRAM_BUCKETS);
        assert_eq!(counts.iter().sum::<u64>(), h.count());
        let nz = h.nonzero_buckets();
        assert_eq!(nz.iter().map(|(_, c)| c).sum::<u64>(), h.count());
        assert!(nz.windows(2).all(|w| w[0].0 < w[1].0), "uppers ascend");
        // every sample is <= the upper bound of its bucket
        assert!(nz[0].0 >= 0.5 && nz.last().unwrap().0 >= 900.0);
        assert!((h.sum() - 906.5).abs() < 1e-9);
    }

    #[test]
    fn bucket_quantile_matches_percentile_modulo_clamp() {
        let mut h = Histogram::new();
        for i in 1..=10_000 {
            h.record(i as f64);
        }
        for q in [0.5, 0.99, 0.999] {
            let a = bucket_quantile(h.bucket_counts(), q);
            let b = h.percentile(q);
            assert!((a - b).abs() / b < 0.05, "q={q} bucket={a} pct={b}");
        }
        assert_eq!(bucket_quantile(&[], 0.5), 0.0);
        assert_eq!(bucket_quantile(&[0, 0, 0], 0.99), 0.0);
    }

    #[test]
    fn bucket_delta_gives_window_quantiles() {
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.record(10.0);
        }
        let before = h.bucket_counts().to_vec();
        for _ in 0..1000 {
            h.record(5000.0);
        }
        let delta: Vec<u64> =
            h.bucket_counts().iter().zip(before.iter()).map(|(a, b)| a - b).collect();
        // the window contains only the 5000.0 samples
        let p50 = bucket_quantile(&delta, 0.5);
        assert!((p50 - 5000.0).abs() / 5000.0 < 0.05, "p50={p50}");
    }

    #[test]
    fn huge_values_saturate_last_bucket() {
        let mut h = Histogram::new();
        h.record(1e300);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 1e300);
        // percentile clamps to observed max
        assert_eq!(h.percentile(0.99), 1e300);
    }
}

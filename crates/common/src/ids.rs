//! Strongly-typed identifiers used across the workspace.
//!
//! Transaction ids double as version numbers (§4.2 of the paper: "tids and
//! version numbers are synonyms"), which is why [`TxnId`] exposes ordering
//! and arithmetic helpers.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        impl $name {
            /// Raw numeric value.
            #[inline]
            pub fn raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// System-wide unique transaction id. Monotonically incremented; also the
    /// version number a transaction stamps on the data items it writes.
    TxnId,
    u64,
    "tid:"
);
id_type!(
    /// Record id: the key of a record in the shared store. Monotonically
    /// incremented per table (§5.1).
    Rid,
    u64,
    "rid:"
);
id_type!(
    /// Table identifier assigned by the catalog.
    TableId,
    u32,
    "tbl:"
);
id_type!(
    /// Index identifier assigned by the catalog.
    IndexId,
    u32,
    "idx:"
);
id_type!(
    /// Processing-node identifier.
    PnId,
    u32,
    "pn:"
);
id_type!(
    /// Storage-node identifier.
    SnId,
    u32,
    "sn:"
);
id_type!(
    /// Commit-manager identifier.
    CmId,
    u32,
    "cm:"
);
id_type!(
    /// Partition of the store's key space.
    PartitionId,
    u32,
    "part:"
);

impl TxnId {
    /// The sentinel "no transaction"/bootstrap version. Version 0 is used for
    /// data loaded outside any transaction (initial population).
    pub const BOOTSTRAP: TxnId = TxnId(0);

    /// Next transaction id.
    #[inline]
    pub fn next(self) -> TxnId {
        TxnId(self.0 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_prefix() {
        assert_eq!(TxnId(7).to_string(), "tid:7");
        assert_eq!(Rid(1).to_string(), "rid:1");
        assert_eq!(SnId(3).to_string(), "sn:3");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(TxnId(1) < TxnId(2));
        assert_eq!(TxnId(5).next(), TxnId(6));
    }

    #[test]
    fn conversion_roundtrip() {
        let t: TxnId = 42u64.into();
        assert_eq!(t.raw(), 42);
    }
}

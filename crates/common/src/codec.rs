//! Hand-rolled little-endian binary codec helpers.
//!
//! Every persistent format in the workspace — versioned records, B+tree
//! nodes, transaction-log entries, commit-manager state — is encoded with
//! these helpers. Using one tiny codec instead of a serialization framework
//! keeps wire sizes predictable (they feed the network cost model) and the
//! workspace dependency-free.

use crate::error::{Error, Result};

/// Cursor-style reader over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap `buf` with the cursor at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current cursor position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::corrupt(format!(
                "truncated input: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a single byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `f64`.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a length-prefixed (u32) byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| Error::corrupt("invalid utf-8 string"))
    }

    /// Read a raw fixed-size slice without a length prefix.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }
}

/// Append-only writer mirror of [`Reader`].
pub trait Writer {
    /// Append raw bytes.
    fn put_raw(&mut self, b: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_raw(&[v]);
    }
    fn put_u16(&mut self, v: u16) {
        self.put_raw(&v.to_le_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.put_raw(&v.to_le_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.put_raw(&v.to_le_bytes());
    }
    fn put_i64(&mut self, v: i64) {
        self.put_raw(&v.to_le_bytes());
    }
    fn put_f64(&mut self, v: f64) {
        self.put_raw(&v.to_le_bytes());
    }
    /// Append a u32-length-prefixed byte slice.
    fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(b.len() as u32);
        self.put_raw(b);
    }
    /// Append a u32-length-prefixed UTF-8 string.
    fn put_string(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

impl Writer for Vec<u8> {
    fn put_raw(&mut self, b: &[u8]) {
        self.extend_from_slice(b);
    }
}

/// Big-endian order-preserving encodings, used for store keys that must sort
/// correctly as raw bytes (B+tree separator keys, range scans).
pub mod orderpreserving {
    /// Encode a `u64` so that byte-wise ordering equals numeric ordering.
    pub fn encode_u64(v: u64) -> [u8; 8] {
        v.to_be_bytes()
    }

    /// Inverse of [`encode_u64`].
    pub fn decode_u64(b: &[u8]) -> Option<u64> {
        Some(u64::from_be_bytes(b.get(..8)?.try_into().ok()?))
    }

    /// Encode an `i64` order-preservingly by flipping the sign bit.
    pub fn encode_i64(v: i64) -> [u8; 8] {
        ((v as u64) ^ (1u64 << 63)).to_be_bytes()
    }

    /// Inverse of [`encode_i64`].
    pub fn decode_i64(b: &[u8]) -> Option<i64> {
        let u = u64::from_be_bytes(b.get(..8)?.try_into().ok()?);
        Some((u ^ (1u64 << 63)) as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u16(65535);
        buf.put_u32(1 << 30);
        buf.put_u64(u64::MAX - 1);
        buf.put_i64(-42);
        buf.put_f64(3.5);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 65535);
        assert_eq!(r.u32().unwrap(), 1 << 30);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), 3.5);
        assert!(r.is_exhausted());
    }

    #[test]
    fn roundtrip_bytes_and_strings() {
        let mut buf = Vec::new();
        buf.put_bytes(b"hello");
        buf.put_string("w\u{00f6}rld");
        buf.put_bytes(b"");
        let mut r = Reader::new(&buf);
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.string().unwrap(), "w\u{00f6}rld");
        assert_eq!(r.bytes().unwrap(), b"");
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        buf.put_u64(1);
        let mut r = Reader::new(&buf[..4]);
        assert!(r.u64().is_err());
        let mut r2 = Reader::new(&[3, 0, 0, 0, b'a']);
        assert!(r2.bytes().is_err()); // claims 3 bytes, only 1 present
    }

    #[test]
    fn invalid_utf8_is_corrupt() {
        let mut buf = Vec::new();
        buf.put_bytes(&[0xff, 0xfe]);
        let mut r = Reader::new(&buf);
        assert!(matches!(r.string(), Err(crate::Error::Corrupt(_))));
    }

    #[test]
    fn order_preserving_u64() {
        let mut prev = orderpreserving::encode_u64(0).to_vec();
        for v in [1u64, 2, 255, 256, 1 << 20, u64::MAX] {
            let cur = orderpreserving::encode_u64(v).to_vec();
            assert!(cur > prev, "encoding must preserve order for {v}");
            assert_eq!(orderpreserving::decode_u64(&cur), Some(v));
            prev = cur;
        }
    }

    #[test]
    fn order_preserving_i64() {
        let values = [i64::MIN, -5, -1, 0, 1, 5, i64::MAX];
        let encoded: Vec<_> = values.iter().map(|v| orderpreserving::encode_i64(*v)).collect();
        for w in encoded.windows(2) {
            assert!(w[0] < w[1]);
        }
        for (v, e) in values.iter().zip(encoded.iter()) {
            assert_eq!(orderpreserving::decode_i64(e), Some(*v));
        }
    }
}

//! Differential property tests for the per-level oracles in
//! `tell_sim::checker`.
//!
//! Four miniature reference engines — one per [`IsolationLevel`] — execute
//! random command streams. Each engine produces histories that are valid
//! *by construction* at its level, so the matching oracle (and every weaker
//! one) must accept them: that is the acceptance lattice
//! `accept(Serializable) ⊆ accept(Si) ⊆ accept(NMSI) ⊆ accept(RC)` asserted
//! on real generated histories, not just on paper. Then seeded anomalies —
//! dirty read, stale (torn) read, lost update, non-monotonic session, write
//! skew — pin each oracle from the other side: every anomaly must be
//! rejected at exactly the levels that forbid it and admitted at every
//! level below.
//!
//! The reference engines (shared skeleton, level-specific policies):
//!
//! - **Read committed** — every read re-fetches the freshest committed
//!   version; commits never conflict.
//! - **Non-monotonic SI** — two "commit managers" each serve a cached
//!   snapshot refreshed every third begin, and begins alternate between
//!   them, so a session can watch time go backwards; first-committer-wins
//!   over the write set.
//! - **SI** — a fresh snapshot at begin; first-committer-wins over the
//!   write set.
//! - **Serializable** — SI plus backward validation over the *read* set:
//!   a commit fails if any committed writer invisible to the snapshot
//!   touched a key the transaction read or wrote (OCC-style
//!   certification, which serializes in commit order).

use std::collections::{BTreeMap, HashMap};

use proptest::prelude::*;
use tell_commitmgr::SnapshotDescriptor;
use tell_common::{BitSet, IsolationLevel};
use tell_sim::{check_at, History, TxnRecord};

const SLOTS: usize = 4;
const KEYS: u64 = 5;

#[derive(Clone, Copy, Debug)]
enum Cmd {
    Begin(usize),
    Read(usize, u64),
    Write(usize, u64),
    Commit(usize),
    Abort(usize),
}

fn decode(op: u8, slot: u8, key: u8) -> Cmd {
    let slot = slot as usize % SLOTS;
    let key = key as u64 % KEYS;
    match op % 5 {
        0 => Cmd::Begin(slot),
        1 => Cmd::Read(slot, key),
        2 => Cmd::Write(slot, key),
        3 => Cmd::Commit(slot),
        _ => Cmd::Abort(slot),
    }
}

/// A snapshot in reference-engine form: base plus newly-committed tids.
#[derive(Clone, Debug)]
struct Snap {
    base: u64,
    newly: Vec<u64>,
}

impl Snap {
    fn sees(&self, v: u64) -> bool {
        v <= self.base || self.newly.contains(&v)
    }

    fn descriptor(&self) -> SnapshotDescriptor {
        let mut bits = BitSet::new();
        for &v in &self.newly {
            bits.set((v - self.base - 1) as usize);
        }
        SnapshotDescriptor::new(self.base, bits)
    }
}

struct Open {
    slot: usize,
    tid: u64,
    snap: Snap,
    begin_seq: usize,
    reads: Vec<(u64, u64)>,
    writes: Vec<u64>,
}

/// The level-parameterized reference engine: a sequentially-consistent
/// implementation over the single total order of proptest commands.
struct Engine {
    level: IsolationLevel,
    next_tid: u64,
    /// `tid -> committed?` for every finished transaction.
    finished: BTreeMap<u64, bool>,
    /// Committed writers per key, in commit order.
    writers: HashMap<u64, Vec<u64>>,
    /// NMSI only: one cached snapshot per simulated manager, plus the
    /// per-manager begin counts that drive the refresh cadence.
    caches: [Option<Snap>; 2],
    cache_begins: [u64; 2],
    begins: u64,
    history: History,
}

impl Engine {
    fn new(level: IsolationLevel) -> Self {
        Engine {
            level,
            next_tid: 0,
            finished: BTreeMap::new(),
            writers: HashMap::new(),
            caches: [None, None],
            cache_begins: [0, 0],
            begins: 0,
            history: History::default(),
        }
    }

    /// Snapshot of everything finished so far: base is the highest
    /// contiguous finished tid, `newly` the committed tids above it.
    fn fresh_snap(&self) -> Snap {
        let mut base = 0;
        while self.finished.contains_key(&(base + 1)) {
            base += 1;
        }
        let newly = self
            .finished
            .iter()
            .filter(|(t, committed)| **t > base && **committed)
            .map(|(t, _)| *t)
            .collect();
        Snap { base, newly }
    }

    fn begin(&mut self, slot: usize) -> Open {
        self.next_tid += 1;
        let tid = self.next_tid;
        let m = (self.begins % 2) as usize;
        self.begins += 1;
        let snap = if self.level == IsolationLevel::NonMonotonicSi {
            // Alternate between two managers whose caches refresh out of
            // phase — successive begins in one session can regress in time.
            let refresh = self.caches[m].is_none() || self.cache_begins[m].is_multiple_of(3);
            self.cache_begins[m] += 1;
            if refresh {
                let s = self.fresh_snap();
                self.caches[m] = Some(s.clone());
                s
            } else {
                self.caches[m].clone().expect("cache present")
            }
        } else {
            self.fresh_snap()
        };
        Open {
            slot,
            tid,
            snap,
            begin_seq: self.history.txns.len(),
            reads: Vec::new(),
            writes: Vec::new(),
        }
    }

    fn read(&self, open: &Open, key: u64) -> u64 {
        let ws = self.writers.get(&key);
        if self.level == IsolationLevel::ReadCommitted {
            // Freshest committed version, re-fetched at read time.
            ws.and_then(|v| v.last()).copied().unwrap_or(0)
        } else {
            ws.into_iter().flatten().filter(|w| open.snap.sees(**w)).copied().max().unwrap_or(0)
        }
    }

    fn finish(&mut self, open: Open, want_commit: bool) {
        // Which keys must still be current at commit time for the commit to
        // succeed: none at RC, the write set under snapshot levels
        // (first-committer-wins), reads and writes under serializable.
        let validated: Vec<u64> = match self.level {
            IsolationLevel::ReadCommitted => Vec::new(),
            IsolationLevel::Serializable => {
                open.writes.iter().copied().chain(open.reads.iter().map(|(k, _)| *k)).collect()
            }
            _ => open.writes.clone(),
        };
        let conflicted = want_commit
            && validated
                .iter()
                .any(|k| self.writers.get(k).into_iter().flatten().any(|w| !open.snap.sees(*w)));
        let committed = want_commit && !conflicted;
        if committed {
            for &k in &open.writes {
                self.writers.entry(k).or_default().push(open.tid);
            }
        }
        self.finished.insert(open.tid, committed);
        self.history.txns.push(TxnRecord {
            worker: open.slot,
            tid: open.tid,
            isolation: self.level,
            snapshot: open.snap.descriptor(),
            begin_seq: open.begin_seq,
            epoch: 0,
            reads: open.reads,
            writes: if committed { open.writes } else { Vec::new() },
            committed,
        });
    }
}

fn execute(stream: &[(u8, u8, u8)], level: IsolationLevel) -> History {
    let mut engine = Engine::new(level);
    let mut slots: Vec<Option<Open>> = (0..SLOTS).map(|_| None).collect();
    for &(op, slot, key) in stream {
        match decode(op, slot, key) {
            Cmd::Begin(s) => {
                if slots[s].is_none() {
                    slots[s] = Some(engine.begin(s));
                }
            }
            Cmd::Read(s, k) => {
                if let Some(open) = slots[s].as_mut() {
                    if !open.writes.contains(&k) {
                        let observed = engine.read(open, k);
                        open.reads.push((k, observed));
                    }
                }
            }
            Cmd::Write(s, k) => {
                if let Some(open) = slots[s].as_mut() {
                    if !open.writes.contains(&k) {
                        open.writes.push(k);
                    }
                }
            }
            Cmd::Commit(s) => {
                if let Some(open) = slots[s].take() {
                    engine.finish(open, true);
                }
            }
            Cmd::Abort(s) => {
                if let Some(open) = slots[s].take() {
                    engine.finish(open, false);
                }
            }
        }
    }
    for open in slots.into_iter().flatten() {
        engine.finish(open, true);
    }
    engine.history
}

fn stream() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..160)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The acceptance lattice, from the accepting side: an engine that is
    /// correct at level L produces histories every oracle at L *or weaker*
    /// must accept.
    #[test]
    fn engine_histories_are_accepted_at_their_level_and_below(stream in stream()) {
        for level in IsolationLevel::ALL {
            let history = execute(&stream, level);
            for weaker in IsolationLevel::ALL.iter().copied().filter(|l| *l <= level) {
                if let Err(v) = check_at(weaker, &history) {
                    prop_assert!(
                        false,
                        "{level} engine history rejected at {weaker}: {v}\n{}",
                        history.to_json(),
                    );
                }
            }
        }
    }

    /// Weakening one read of an SI history to an *older committed* version
    /// splits read committed from the snapshot levels: RC still accepts
    /// (the old writer did commit before the reader completed), every
    /// snapshot level rejects (the read is no longer maximal-visible).
    #[test]
    fn stale_reads_split_rc_from_the_snapshot_levels(stream in stream(), pick in any::<usize>()) {
        let history = execute(&stream, IsolationLevel::Si);
        // Commit order per key, to find each observation's predecessor.
        let mut writers: HashMap<u64, Vec<u64>> = HashMap::new();
        for t in history.committed() {
            for &k in &t.writes {
                writers.entry(k).or_default().push(t.tid);
            }
        }
        // Candidate (txn, read) pairs whose observation can be made stale.
        let mut candidates: Vec<(usize, usize, u64)> = Vec::new();
        for (i, t) in history.txns.iter().enumerate() {
            for (r, &(k, observed)) in t.reads.iter().enumerate() {
                if observed == 0 {
                    continue;
                }
                let ws = &writers[&k];
                let p = ws.iter().position(|w| *w == observed).expect("observed committed");
                let stale = if p == 0 { 0 } else { ws[p - 1] };
                candidates.push((i, r, stale));
            }
        }
        prop_assume!(!candidates.is_empty());
        let (i, r, stale) = candidates[pick % candidates.len()];
        let mut history = history;
        history.txns[i].reads[r].1 = stale;
        prop_assert!(check_at(IsolationLevel::ReadCommitted, &history).is_ok(),
            "RC must admit the stale-but-committed read");
        for level in [IsolationLevel::NonMonotonicSi, IsolationLevel::Si] {
            prop_assert!(check_at(level, &history).is_err(),
                "{level} must reject the stale read");
        }
    }
}

// ---------------------------------------------------------------------------
// Seeded anomalies: each classic anomaly must be rejected at exactly the
// levels that forbid it. Together with the engine tests above this pins the
// lattice from both sides.
// ---------------------------------------------------------------------------

fn snap(base: u64, newly: &[u64]) -> SnapshotDescriptor {
    let mut bits = BitSet::new();
    for &v in newly {
        bits.set((v - base - 1) as usize);
    }
    SnapshotDescriptor::new(base, bits)
}

#[allow(clippy::too_many_arguments)]
fn txn(
    worker: usize,
    tid: u64,
    snapshot: SnapshotDescriptor,
    begin_seq: usize,
    reads: Vec<(u64, u64)>,
    writes: Vec<u64>,
    committed: bool,
) -> TxnRecord {
    TxnRecord {
        worker,
        tid,
        isolation: IsolationLevel::Si,
        snapshot,
        begin_seq,
        epoch: 0,
        reads,
        writes,
        committed,
    }
}

/// The levels (weakest first) that accept `history`.
fn accepted(history: &History) -> Vec<IsolationLevel> {
    IsolationLevel::ALL.into_iter().filter(|l| check_at(*l, history).is_ok()).collect()
}

#[test]
fn dirty_read_is_rejected_at_every_level() {
    let mut h = History::default();
    // Reads a writer that never existed — not even RC admits it.
    h.txns.push(txn(0, 1, snap(0, &[]), 0, vec![(1, 9)], vec![], true));
    assert_eq!(accepted(&h), vec![]);
}

#[test]
fn read_of_an_uncommitted_writer_is_rejected_at_every_level() {
    let mut h = History::default();
    // Writer 1 aborts (its writes never land), yet the reader observed it.
    h.txns.push(txn(0, 1, snap(0, &[]), 0, vec![], vec![], false));
    h.txns.push(txn(1, 2, snap(1, &[]), 1, vec![(3, 1)], vec![], true));
    assert_eq!(accepted(&h), vec![]);
}

#[test]
fn stale_read_is_admitted_only_at_read_committed() {
    let mut h = History::default();
    h.txns.push(txn(0, 1, snap(0, &[]), 0, vec![], vec![7], true));
    h.txns.push(txn(1, 2, snap(1, &[]), 1, vec![], vec![7], true));
    // Both writers are visible to the reader, yet it observed the older
    // one: fine at RC (writer 1 committed before the read), torn above.
    h.txns.push(txn(2, 3, snap(2, &[]), 2, vec![(7, 1)], vec![], true));
    assert_eq!(accepted(&h), vec![IsolationLevel::ReadCommitted]);
}

#[test]
fn lost_update_is_admitted_only_at_read_committed() {
    let mut h = History::default();
    // Two committed writers of key 4, mutually invisible.
    h.txns.push(txn(0, 1, snap(0, &[]), 0, vec![], vec![4], true));
    h.txns.push(txn(1, 2, snap(0, &[]), 0, vec![], vec![4], true));
    assert_eq!(accepted(&h), vec![IsolationLevel::ReadCommitted]);
}

#[test]
fn non_monotonic_session_is_admitted_below_si() {
    let mut h = History::default();
    // Worker 0 commits txn 1, then begins txn 2 on a stale snapshot that
    // misses its own commit. The reads are consistent with the stale
    // snapshot, so NMSI shrugs; SI's session rule does not.
    h.txns.push(txn(0, 1, snap(0, &[]), 0, vec![], vec![4], true));
    h.txns.push(txn(0, 2, snap(0, &[]), 1, vec![(4, 0)], vec![], true));
    assert_eq!(accepted(&h), vec![IsolationLevel::ReadCommitted, IsolationLevel::NonMonotonicSi]);
}

#[test]
fn write_skew_is_admitted_below_serializable() {
    let mut h = History::default();
    h.txns.push(txn(0, 1, snap(0, &[]), 0, vec![], vec![10], true));
    h.txns.push(txn(1, 2, snap(1, &[]), 1, vec![], vec![11], true));
    // Txns 3 and 4 read both keys under the same snapshot and write one
    // each: legal SI (disjoint write sets), an rw-cycle in the DSG.
    h.txns.push(txn(2, 3, snap(2, &[]), 2, vec![(10, 1), (11, 2)], vec![10], true));
    h.txns.push(txn(3, 4, snap(2, &[]), 2, vec![(10, 1), (11, 2)], vec![11], true));
    assert_eq!(
        accepted(&h),
        vec![IsolationLevel::ReadCommitted, IsolationLevel::NonMonotonicSi, IsolationLevel::Si]
    );
}

#[test]
fn serial_history_is_accepted_at_every_level() {
    let mut h = History::default();
    h.txns.push(txn(0, 1, snap(0, &[]), 0, vec![(2, 0)], vec![2], true));
    h.txns.push(txn(1, 2, snap(1, &[]), 1, vec![(2, 1)], vec![2], true));
    h.txns.push(txn(0, 3, snap(2, &[]), 2, vec![(2, 2)], vec![], true));
    assert_eq!(accepted(&h), IsolationLevel::ALL.to_vec());
}

//! The isolation matrix on the *real* simulator: three fixed seeds × all
//! four levels, every run checked against its own oracle and every weaker
//! one (the acceptance lattice on genuinely simulated histories, not
//! reference-engine ones), and every cell bit-reproducible.
//!
//! `scripts/check.sh --sim` runs this matrix as the isolation gate.

use tell_common::IsolationLevel;
use tell_sim::{check_at, run, FaultMix, SimConfig};

const SEEDS: [u64; 3] = [11, 23, 47];

fn config(seed: u64, level: IsolationLevel) -> SimConfig {
    SimConfig {
        seed,
        virtual_secs: 0.15,
        // Fault-free on purpose: the fault mixes are exercised by the
        // driver smoke tests; the matrix isolates level semantics.
        mix: FaultMix::None,
        isolation: level,
        ..SimConfig::default()
    }
}

#[test]
fn every_cell_passes_its_own_oracle_and_the_lattice() {
    for seed in SEEDS {
        for level in IsolationLevel::ALL {
            let out = run(&config(seed, level));
            assert!(
                out.violation.is_none(),
                "seed {seed} at {level}: {:?}\n{}",
                out.violation,
                out.history.to_json(),
            );
            assert!(out.stats.commits > 0, "seed {seed} at {level}: no commits");
            for weaker in IsolationLevel::ALL.into_iter().filter(|l| *l < level) {
                if let Err(v) = check_at(weaker, &out.history) {
                    panic!("seed {seed}: {level} history rejected at weaker {weaker}: {v}");
                }
            }
        }
    }
}

#[test]
fn every_cell_is_bit_reproducible() {
    for seed in SEEDS {
        for level in IsolationLevel::ALL {
            let a = run(&config(seed, level));
            let b = run(&config(seed, level));
            assert_eq!(
                a.history.to_json(),
                b.history.to_json(),
                "seed {seed} at {level}: histories diverged across replays"
            );
            assert_eq!(
                format!("{:?}", a.stats),
                format!("{:?}", b.stats),
                "seed {seed} at {level}: stats diverged across replays"
            );
        }
    }
}

//! Property tests for the SI oracle in `tell_sim::checker`.
//!
//! A miniature reference SI engine executes random command streams and
//! produces histories that are snapshot-isolated *by construction* — the
//! checker must accept every one of them. Then two targeted mutations
//! falsify specific invariants — a torn read and a mutually-invisible
//! writer pair — and the checker must reject each with the matching
//! violation. Together these pin the oracle from both sides: it neither
//! cries wolf on legal SI behavior (including first-committer-wins aborts
//! and write skew) nor waves through the two anomaly classes the
//! simulation exists to catch.

use proptest::prelude::*;
use tell_commitmgr::SnapshotDescriptor;
use tell_common::{BitSet, IsolationLevel};
use tell_sim::{check, History, TxnRecord, Violation};

/// One step of the command stream, decoded from raw proptest bytes so the
/// generator shrinks well (any byte triple is a valid command).
#[derive(Clone, Copy, Debug)]
enum Cmd {
    Begin(usize),
    Read(usize, u64),
    Write(usize, u64),
    Commit(usize),
    Abort(usize),
}

const SLOTS: usize = 4;
const KEYS: u64 = 5;

fn decode(op: u8, slot: u8, key: u8) -> Cmd {
    let slot = slot as usize % SLOTS;
    let key = key as u64 % KEYS;
    match op % 5 {
        0 => Cmd::Begin(slot),
        1 => Cmd::Read(slot, key),
        2 => Cmd::Write(slot, key),
        3 => Cmd::Commit(slot),
        _ => Cmd::Abort(slot),
    }
}

/// An open transaction in the reference engine.
struct Open {
    slot: usize,
    tid: u64,
    base: u64,
    newly: Vec<u64>,
    begin_seq: usize,
    reads: Vec<(u64, u64)>,
    writes: Vec<u64>,
}

impl Open {
    fn sees(&self, v: u64) -> bool {
        v <= self.base || self.newly.contains(&v)
    }

    fn descriptor(&self) -> SnapshotDescriptor {
        let mut bits = BitSet::new();
        for &v in &self.newly {
            bits.set((v - self.base - 1) as usize);
        }
        SnapshotDescriptor::new(self.base, bits)
    }
}

/// The reference engine: a sequentially-consistent SI implementation over
/// a single total order of steps (the proptest command stream). It plays
/// the roles of commit manager (tid allocation, snapshot construction)
/// and store (version visibility, first-committer-wins) at once.
#[derive(Default)]
struct Engine {
    next_tid: u64,
    /// `tid -> committed?` for every finished transaction.
    finished: std::collections::BTreeMap<u64, bool>,
    /// Tids currently running (their slots hold the `Open` state).
    active: std::collections::BTreeSet<u64>,
    /// Committed writers per key, in commit order.
    writers: std::collections::HashMap<u64, Vec<u64>>,
    history: History,
}

impl Engine {
    fn begin(&mut self, slot: usize) -> Open {
        self.next_tid += 1;
        let tid = self.next_tid;
        self.active.insert(tid);
        // Base: highest b with every tid in 1..=b finished.
        let mut base = 0;
        while self.finished.contains_key(&(base + 1)) {
            base += 1;
        }
        let newly: Vec<u64> = self
            .finished
            .iter()
            .filter(|(t, committed)| **t > base && **committed)
            .map(|(t, _)| *t)
            .collect();
        Open {
            slot,
            tid,
            base,
            newly,
            begin_seq: self.history.txns.len(),
            reads: Vec::new(),
            writes: Vec::new(),
        }
    }

    fn read(&self, open: &Open, key: u64) -> u64 {
        self.writers
            .get(&key)
            .into_iter()
            .flatten()
            .filter(|w| open.sees(**w))
            .copied()
            .max()
            .unwrap_or(0)
    }

    fn finish(&mut self, open: Open, want_commit: bool) {
        // First-committer-wins: a write over a version the snapshot cannot
        // see conflicts (Tell's LL/SC install would fail).
        let conflicted = want_commit
            && open
                .writes
                .iter()
                .any(|k| self.writers.get(k).into_iter().flatten().any(|w| !open.sees(*w)));
        let committed = want_commit && !conflicted;
        if committed {
            for &k in &open.writes {
                self.writers.entry(k).or_default().push(open.tid);
            }
        }
        self.active.remove(&open.tid);
        self.finished.insert(open.tid, committed);
        self.history.txns.push(TxnRecord {
            worker: open.slot,
            tid: open.tid,
            isolation: IsolationLevel::Si,
            snapshot: open.descriptor(),
            begin_seq: open.begin_seq,
            epoch: 0,
            reads: open.reads,
            writes: if committed { open.writes } else { Vec::new() },
            committed,
        });
    }
}

/// Execute a raw command stream and return the (valid-by-construction)
/// history.
fn execute(stream: &[(u8, u8, u8)]) -> History {
    let mut engine = Engine::default();
    let mut slots: Vec<Option<Open>> = (0..SLOTS).map(|_| None).collect();
    for &(op, slot, key) in stream {
        match decode(op, slot, key) {
            Cmd::Begin(s) => {
                if slots[s].is_none() {
                    slots[s] = Some(engine.begin(s));
                }
            }
            Cmd::Read(s, k) => {
                if let Some(open) = slots[s].as_mut() {
                    // Reads of self-written keys observe the private write
                    // buffer, which the driver does not record either.
                    if !open.writes.contains(&k) {
                        let observed = engine.read(open, k);
                        open.reads.push((k, observed));
                    }
                }
            }
            Cmd::Write(s, k) => {
                if let Some(open) = slots[s].as_mut() {
                    if !open.writes.contains(&k) {
                        open.writes.push(k);
                    }
                }
            }
            Cmd::Commit(s) => {
                if let Some(open) = slots[s].take() {
                    engine.finish(open, true);
                }
            }
            Cmd::Abort(s) => {
                if let Some(open) = slots[s].take() {
                    engine.finish(open, false);
                }
            }
        }
    }
    // Close every still-open transaction so its reads reach the history.
    for open in slots.into_iter().flatten() {
        engine.finish(open, true);
    }
    engine.history
}

fn stream() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..160)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every history the reference engine produces satisfies the oracle.
    #[test]
    fn valid_histories_are_accepted(stream in stream()) {
        let history = execute(&stream);
        if let Err(v) = check(&history) {
            prop_assert!(false, "checker rejected a valid SI history: {v}");
        }
    }

    /// Corrupting one read to a wrong writer is always caught as a torn
    /// snapshot.
    #[test]
    fn torn_snapshot_is_rejected(stream in stream(), pick in any::<usize>()) {
        let mut history = execute(&stream);
        let readers: Vec<usize> = (0..history.txns.len())
            .filter(|i| !history.txns[*i].reads.is_empty())
            .collect();
        prop_assume!(!readers.is_empty());
        let t = readers[pick % readers.len()];
        // Any observed value different from the true one violates the
        // read rule: the rule pins reads to exactly one writer.
        history.txns[t].reads[0].1 += 1;
        match check(&history) {
            Err(Violation::TornSnapshot { .. }) => {}
            other => prop_assert!(false, "expected TornSnapshot, got {other:?}"),
        }
    }

    /// Two mutually-invisible committed writers of one key are always
    /// caught as a lost update.
    #[test]
    fn lost_update_is_rejected(stream in stream(), key in 0..KEYS) {
        let mut history = execute(&stream);
        // Append two concurrent committed writers with fresh tids and
        // identical snapshots that see neither each other nor anything
        // beyond what already happened.
        let top = history.txns.iter().map(|t| t.tid).max().unwrap_or(0);
        for tid in [top + 1, top + 2] {
            history.txns.push(TxnRecord {
                worker: 0,
                tid,
                isolation: IsolationLevel::Si,
                snapshot: SnapshotDescriptor::new(top, BitSet::new()),
                begin_seq: 0,
                epoch: 0,
                reads: vec![],
                writes: vec![key],
                committed: true,
            });
        }
        match check(&history) {
            Err(Violation::LostUpdate { key: k, .. }) => prop_assert_eq!(k, key),
            other => prop_assert!(false, "expected LostUpdate, got {other:?}"),
        }
    }
}

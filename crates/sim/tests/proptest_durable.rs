//! Property test pinning the durable-restart story: storage-node churn
//! plans that exceed the in-memory death budget — up to and including
//! killing every copy-holder of a partition — must still produce histories
//! the SI oracle accepts once nodes restart from their logs.
//!
//! Each case is a full deterministic simulation run, so the case count is
//! deliberately small; `PROPTEST_CASES` scales it up for soak runs and
//! down for the `scripts/check.sh --durable` gate.

use proptest::prelude::*;
use tell_sim::{run, run_with_plan, FaultEvent, FaultKind, FaultMix, FaultPlan, SimConfig};

fn durable_cfg(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        virtual_secs: 0.04,
        mix: FaultMix::SnChurn,
        workers: 3,
        keys: 12,
        storage_nodes: 3,
        replication_factor: 2,
        durable: true,
        ..SimConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Seeded durable churn plans (relaxed death budget, restart-from-log
    /// revivals) always pass the oracle.
    #[test]
    fn durable_churn_passes_the_oracle(seed in 1u64..10_000) {
        let outcome = run(&durable_cfg(seed));
        prop_assert!(outcome.ok(), "seed {seed}: {:?}", outcome.violation);
    }

    /// The scenario durability exists for: a seeded whole-cluster blackout
    /// — every node killed, then every node restarted from its log — with
    /// the blackout window placed by the seed. Acked writes survive, new
    /// commits happen afterwards, and the history checks clean.
    #[test]
    fn seeded_blackout_and_restart_passes_the_oracle(
        seed in 1u64..10_000,
        start_frac in 0.2f64..0.5,
    ) {
        let cfg = durable_cfg(seed);
        let horizon = cfg.horizon_us();
        let start = horizon * start_frac;
        let mut events = Vec::new();
        for n in 0..cfg.storage_nodes {
            events.push(FaultEvent { at_us: start, kind: FaultKind::SnKill(n) });
        }
        for n in 0..cfg.storage_nodes {
            events.push(FaultEvent {
                at_us: start + horizon * 0.1 * (n + 1) as f64,
                kind: FaultKind::SnRestart(n),
            });
        }
        let total = events.len();
        let outcome = run_with_plan(&cfg, FaultPlan { seed: 0, events });
        prop_assert!(outcome.ok(), "seed {seed}: {:?}", outcome.violation);
        prop_assert_eq!(outcome.stats.events_fired, total);
        prop_assert!(outcome.stats.commits > 0, "seed {seed}: no commits");
    }
}

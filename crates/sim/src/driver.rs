//! The deterministic simulation driver.
//!
//! Worker threads run real transactions against a full in-process
//! PN/SN/CM deployment, but execution is *turn-based*: a turnstile (one
//! mutex + condvar) admits exactly one thread at a time — either one worker
//! performing exactly one transaction step, or the scheduler deciding who
//! goes next. The scheduler always grants the turn to the worker with the
//! smallest virtual clock (ties break toward the lowest index), fires fault
//! events from the [`FaultPlan`] when that minimum crosses an event's time,
//! and takes periodic commit-manager scrapes. Because every shared-state
//! mutation happens inside some turn, the whole run — interleaving, fault
//! timing, history — is a pure function of the seed.
//!
//! Virtual time: each worker's clock advances by the network time its PN's
//! meter charged during its step plus a fixed per-turn think time
//! (`TURN_THINK_US`). Nothing reads the wall clock on any decision path;
//! the commit managers are configured with an effectively-infinite
//! wall-clock sync interval and sync on (deterministic) operation counts
//! instead.

use std::sync::{Arc, Condvar, Mutex};

use rand::{Rng, SeedableRng, StdRng};
use tell_commitmgr::manager::CmConfig;
use tell_commitmgr::SnapshotDescriptor;
use tell_common::{CmId, Error, IsolationLevel, SnId, TxnId};
use tell_core::database::IndexSpec;
use tell_core::{Database, TableDef, TellConfig, VersionedRecord};
use tell_durable::{DurableNodeConfig, FsDurability, FsyncPolicy};
use tell_obs::timeseries::DEFAULT_RING_POINTS;
use tell_obs::{
    Counter, Gauge, HealthConfig, HealthEngine, HealthEvent, NodeTick, Registry, Rollup, TsPoint,
    TsRing,
};
use tell_store::{keys, StoreCluster};

use crate::checker::{self, CheckStats, Violation};
use crate::history::{row_value, row_writer, History, LavScrape, TxnRecord};
use crate::plan::{FaultEvent, FaultKind, FaultMix, FaultPlan, Topology};

/// Think time charged per turn, µs of virtual time. Dominates the virtual
/// clock; the horizon divided by this bounds the total number of turns.
const TURN_THINK_US: f64 = 20.0;
/// Extra virtual penalty when a step fails transiently (begin retry).
const BACKOFF_US: f64 = 100.0;
/// Domain-separation constants: worker workload streams and the
/// scheduler's own stream must not collide with the plan stream.
const WORKER_STREAM: u64 = 0x0a11_ce00_77ea_4e15;
const SCHED_STREAM: u64 = 0x5c_4ed0_1e55_77e1;

/// Everything a simulation run needs to know.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Master seed: fault plan, workloads and interleaving all derive from
    /// it.
    pub seed: u64,
    /// Virtual horizon in seconds (virtual time, not wall time).
    pub virtual_secs: f64,
    /// Which fault classes to inject.
    pub mix: FaultMix,
    /// Worker threads (each is one PN worker running transactions).
    pub workers: usize,
    /// Keyspace size. Small on purpose: contention is what makes lost
    /// updates and torn snapshots reachable.
    pub keys: u64,
    /// Storage nodes.
    pub storage_nodes: u32,
    /// Replication factor (the plan keeps at most `rf - 1` SNs dead).
    pub replication_factor: u32,
    /// Commit managers at full strength.
    pub commit_managers: u32,
    /// Give every storage node a durable log tier (`tell-durable`) in a
    /// per-run temp directory. Durable plans may kill *all* copy-holders
    /// at once and revive them with [`FaultKind::SnRestart`] — restart
    /// from log — instead of only peer resync.
    pub durable: bool,
    /// Sample a logical-stack profile on the virtual clock at this rate
    /// (`None` = off). The profile is a pure function of the seeded
    /// virtual clocks, so it is bit-identical across replays of the same
    /// plan — see `tell_obs::prof::SimProfile`.
    pub profile_hz: Option<f64>,
    /// Isolation level every worker transaction runs at. The post-run
    /// history check uses the matching oracle ([`checker::check_at`]).
    pub isolation: IsolationLevel,
    /// Zipfian skew of the YCSB-style key chooser (0 = uniform). Hot keys
    /// are the low ids; skew is what makes write-write conflicts and
    /// level-separating anomalies reachable in short runs.
    pub zipf_theta: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            virtual_secs: 0.5,
            mix: FaultMix::None,
            workers: 4,
            keys: 32,
            storage_nodes: 4,
            replication_factor: 2,
            commit_managers: 2,
            durable: false,
            profile_hz: None,
            isolation: IsolationLevel::Si,
            zipf_theta: 0.8,
        }
    }
}

impl SimConfig {
    /// The virtual horizon in microseconds.
    pub fn horizon_us(&self) -> f64 {
        self.virtual_secs * 1e6
    }

    /// The topology facts the plan generator needs.
    pub fn topology(&self) -> Topology {
        Topology {
            storage_nodes: self.storage_nodes,
            replication_factor: self.replication_factor,
            commit_managers: self.commit_managers,
            durable: self.durable,
        }
    }
}

/// Aggregate counters of a run (all deterministic for a given seed).
#[derive(Clone, Copy, Debug, Default)]
pub struct SimStats {
    /// Transactions completed (committed + aborted).
    pub txns: usize,
    /// Committed transactions.
    pub commits: usize,
    /// Aborted transactions (conflicts and fault-induced).
    pub aborts: usize,
    /// Reads recorded.
    pub reads: usize,
    /// Keys written by committed transactions.
    pub writes: usize,
    /// Fault events actually fired.
    pub events_fired: usize,
    /// Commit-manager scrapes taken.
    pub scrapes: usize,
    /// Cluster lav at the end of the run.
    pub final_lav: u64,
    /// Virtual time when the run wound down.
    pub virtual_end_us: f64,
}

/// The telemetry a run produced: one rolled time-series point per
/// commit-manager scrape (virtual clock, wall 0) and every health-rule
/// transition the engine emitted. Both are pure functions of the seed —
/// the observability e2e tests compare them byte for byte across runs.
#[derive(Clone, Debug, Default)]
pub struct SimTelemetry {
    /// One point per scrape, oldest first.
    pub points: Vec<TsPoint>,
    /// Health transitions, in emission order.
    pub events: Vec<HealthEvent>,
}

impl SimTelemetry {
    /// Stable one-line renderings of every health event, in order — the
    /// byte-reproducibility comparand.
    pub fn rendered_events(&self) -> Vec<String> {
        self.events.iter().map(HealthEvent::render).collect()
    }
}

/// The full result of one simulation run.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// The (possibly shrunk) fault plan that was executed.
    pub plan: FaultPlan,
    /// Everything the run observed.
    pub history: History,
    /// Aggregate counters.
    pub stats: SimStats,
    /// Time-series points and health events (see [`SimTelemetry`]).
    pub telemetry: SimTelemetry,
    /// `None` means the history checked clean.
    pub violation: Option<Violation>,
    /// Checker statistics when the check ran to completion.
    pub check: Option<CheckStats>,
    /// Virtual-clock profile, when [`SimConfig::profile_hz`] was set.
    pub profile: Option<tell_obs::ProfileReport>,
}

impl SimOutcome {
    /// Did the run satisfy the SI oracle?
    pub fn ok(&self) -> bool {
        self.violation.is_none()
    }
}

/// Generate the fault plan for `config` and run it.
pub fn run(config: &SimConfig) -> SimOutcome {
    let plan = FaultPlan::generate(config.seed, config.mix, config.horizon_us(), config.topology());
    run_with_plan(config, plan)
}

// ---------------------------------------------------------------------
// Turnstile.
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum Turn {
    Scheduler,
    Worker(usize),
}

struct LiveTxn {
    snapshot: SnapshotDescriptor,
    /// History length at begin — filled in by [`Shared::release`] under the
    /// turnstile lock, so it is exact.
    begin_seq: usize,
    /// CM membership epoch at begin.
    epoch: u32,
}

struct TurnState {
    turn: Turn,
    clocks: Vec<f64>,
    done: Vec<bool>,
    stop: bool,
    live: Vec<Option<LiveTxn>>,
    history: History,
    /// CM membership epoch (bumped on kill/recover) — lives here so both
    /// the scheduler's scrapes and begin-time stamping read one source.
    epoch: u32,
    violation: Option<Violation>,
}

struct Shared {
    state: Mutex<TurnState>,
    cv: Condvar,
}

/// What a worker step wants applied to the shared state at turn release.
enum Effect {
    None,
    Began(LiveTxn),
    Finished(TxnRecord),
    Broke(Violation),
}

impl Shared {
    /// Block until worker `w` is granted the turn. Returns the stop flag.
    fn acquire(&self, w: usize) -> bool {
        let mut st = self.state.lock().unwrap();
        while st.turn != Turn::Worker(w) {
            st = self.cv.wait(st).unwrap();
        }
        st.stop
    }

    /// Release worker `w`'s turn back to the scheduler, advancing its
    /// clock by `delta_us` and applying `effect`.
    fn release(&self, w: usize, delta_us: f64, effect: Effect) {
        let mut st = self.state.lock().unwrap();
        st.clocks[w] += TURN_THINK_US + delta_us;
        match effect {
            Effect::None => {}
            Effect::Began(mut live) => {
                // The worker held the turn since it took the snapshot, so
                // nothing completed in between: the current history length
                // is exactly the set of transactions done before begin.
                live.begin_seq = st.history.txns.len();
                live.epoch = st.epoch;
                st.live[w] = Some(live);
            }
            Effect::Finished(mut rec) => {
                if let Some(live) = st.live[w].take() {
                    rec.begin_seq = live.begin_seq;
                    rec.epoch = live.epoch;
                }
                st.history.txns.push(rec);
            }
            Effect::Broke(v) => {
                st.live[w] = None;
                if st.violation.is_none() {
                    st.violation = Some(v);
                }
                st.stop = true;
            }
        }
        st.turn = Turn::Scheduler;
        self.cv.notify_all();
    }

    /// Mark worker `w` finished and hand the turn back for good.
    fn finish(&self, w: usize) {
        let mut st = self.state.lock().unwrap();
        st.done[w] = true;
        st.live[w] = None;
        st.turn = Turn::Scheduler;
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------
// Worker workload.
// ---------------------------------------------------------------------

/// One transaction's script: which keys to read, whether to write them
/// back, and how many idle turns to insert between reads (long readers
/// hold their snapshot open across fault events and GC runs).
struct Work {
    keys: Vec<u64>,
    write: bool,
    idle_between: u32,
}

/// YCSB-style Zipfian key chooser: weight of key `i` is `1/(i+1)^theta`,
/// picked by CDF inversion over precomputed cumulative weights. Theta 0 is
/// uniform; the standard YCSB skew is ~0.99. Hot keys are the low ids —
/// the sim's keyspace is small and anonymous, so scrambling adds nothing.
struct KeyPicker {
    cum: Vec<f64>,
}

impl KeyPicker {
    fn new(keyspace: u64, theta: f64) -> Self {
        let mut cum = Vec::with_capacity(keyspace as usize);
        let mut total = 0.0;
        for i in 0..keyspace {
            total += 1.0 / ((i + 1) as f64).powf(theta);
            cum.push(total);
        }
        KeyPicker { cum }
    }

    fn pick(&self, rng: &mut StdRng) -> u64 {
        let total = *self.cum.last().expect("non-empty keyspace");
        let r: f64 = rng.random::<f64>() * total;
        self.cum.partition_point(|&c| c <= r) as u64 % self.cum.len() as u64
    }
}

fn plan_work(rng: &mut StdRng, picker: &KeyPicker, keyspace: u64) -> Work {
    let roll: f64 = rng.random();
    if roll >= 0.90 {
        // Long scan: a contiguous slice of the keyspace read with idle
        // turns in between — the snapshot stays open across fault events,
        // GC runs and (at weak levels) many foreign commits.
        let len = (rng.random_range(4..=8usize) as u64).min(keyspace) as usize;
        let start = picker.pick(rng);
        let keys: Vec<u64> = (0..len as u64).map(|i| (start + i) % keyspace).collect();
        return Work { keys, write: false, idle_between: 2 };
    }
    let (nkeys, write, idle_between) = if roll < 0.25 {
        (rng.random_range(1..=3usize), false, 0) // read-only
    } else if roll < 0.80 {
        (rng.random_range(1..=2usize), true, 0) // read-modify-write
    } else {
        // Long reader: many skewed keys, idle turns in between, sometimes
        // a write at the end (an old snapshot trying to commit is exactly
        // the first-committer-wins case).
        (rng.random_range(4..=8usize), rng.random_bool(0.5), 2)
    };
    let nkeys = (nkeys as u64).min(keyspace) as usize;
    let mut keys = Vec::with_capacity(nkeys);
    while keys.len() < nkeys {
        let k = picker.pick(rng);
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    Work { keys, write, idle_between }
}

fn is_transient(e: &Error) -> bool {
    matches!(e, Error::Conflict | Error::Unavailable(_))
}

#[allow(clippy::too_many_arguments)]
fn worker_main(
    w: usize,
    shared: &Shared,
    db: &std::sync::Arc<Database>,
    table: &std::sync::Arc<TableDef>,
    rids: &[tell_common::Rid],
    picker: &KeyPicker,
    cfg: &SimConfig,
) {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ WORKER_STREAM ^ ((w as u64) << 32 | w as u64));

    // First turn: create the PN here so PnId assignment follows the
    // deterministic grant order, and the PN's virtual clock lives on this
    // thread.
    shared.acquire(w);
    let pn = db.processing_node();
    let mut last_now = pn.clock().now_us();
    shared.release(w, 0.0, Effect::None);

    let mut txn: Option<tell_core::Transaction<'_, std::sync::Arc<StoreCluster>>> = None;
    let mut work = Work { keys: Vec::new(), write: false, idle_between: 0 };
    let mut read_pos = 0usize;
    let mut write_pos = 0usize;
    let mut idle_left = 0u32;
    let mut reads: Vec<(u64, u64)> = Vec::new();

    loop {
        let stop = shared.acquire(w);
        let mut effect = Effect::None;
        let mut extra_us = 0.0;
        let mut finished = false;

        match txn.as_mut() {
            None if stop => {
                shared.finish(w);
                return;
            }
            None => match pn.begin_at(cfg.isolation) {
                Ok(t) => {
                    work = plan_work(&mut rng, picker, cfg.keys);
                    read_pos = 0;
                    write_pos = 0;
                    idle_left = 0;
                    reads = Vec::new();
                    effect = Effect::Began(LiveTxn {
                        snapshot: t.snapshot().clone(),
                        begin_seq: 0, // stamped by release under the lock
                        epoch: 0,
                    });
                    txn = Some(t);
                }
                Err(e) if is_transient(&e) => extra_us = BACKOFF_US,
                Err(e) => {
                    effect = Effect::Broke(Violation::UnexpectedError {
                        worker: w,
                        message: e.to_string(),
                    });
                    finished = true;
                }
            },
            Some(t) => {
                let tid = t.tid().raw();
                let snapshot = t.snapshot().clone();
                // A stop request ends the transaction on its next turn.
                let step: Result<Option<bool>, Error> = if stop {
                    t.abort().map(|_| Some(false))
                } else if idle_left > 0 {
                    idle_left -= 1;
                    Ok(None)
                } else if read_pos < work.keys.len() {
                    let k = work.keys[read_pos];
                    t.get(table, rids[k as usize]).map(|row| {
                        let observed = row.as_deref().and_then(row_writer).unwrap_or(u64::MAX);
                        reads.push((k, observed));
                        read_pos += 1;
                        idle_left = work.idle_between;
                        None
                    })
                } else if work.write && write_pos < work.keys.len() {
                    let k = work.keys[write_pos];
                    t.update(table, rids[k as usize], row_value(tid, k).into()).map(|_| {
                        write_pos += 1;
                        None
                    })
                } else {
                    t.commit().map(|_| Some(true))
                };
                match step {
                    Ok(None) => {}
                    Ok(Some(committed)) => {
                        effect = Effect::Finished(TxnRecord {
                            worker: w,
                            tid,
                            isolation: cfg.isolation,
                            snapshot,
                            begin_seq: 0, // stamped by release from LiveTxn
                            epoch: 0,
                            reads: std::mem::take(&mut reads),
                            writes: if committed && work.write {
                                work.keys.clone()
                            } else {
                                Vec::new()
                            },
                            committed,
                        });
                        txn = None;
                    }
                    Err(e) if is_transient(&e) => {
                        // Conflict (or a fault-window unavailability): the
                        // transaction is over. `commit` aborts internally
                        // before returning `Err`; a failed read/update
                        // leaves the txn running, so abort it explicitly.
                        let t = txn.as_mut().expect("txn present in step");
                        if t.is_running() {
                            if let Err(abort_err) = t.abort() {
                                if !is_transient(&abort_err) {
                                    effect = Effect::Broke(Violation::UnexpectedError {
                                        worker: w,
                                        message: abort_err.to_string(),
                                    });
                                    finished = true;
                                }
                            }
                        }
                        if !finished {
                            effect = Effect::Finished(TxnRecord {
                                worker: w,
                                tid,
                                isolation: cfg.isolation,
                                snapshot,
                                begin_seq: 0, // stamped by release from LiveTxn
                                epoch: 0,
                                reads: std::mem::take(&mut reads),
                                writes: Vec::new(),
                                committed: false,
                            });
                        }
                        txn = None;
                    }
                    Err(e) => {
                        effect = Effect::Broke(Violation::UnexpectedError {
                            worker: w,
                            message: e.to_string(),
                        });
                        txn = None;
                        finished = true;
                    }
                }
            }
        }

        let now = pn.clock().now_us();
        let delta = (now - last_now).max(0.0) + extra_us;
        last_now = now;
        if finished {
            // Apply the final effect, then bow out.
            shared.release(w, delta, effect);
            shared.acquire(w);
            shared.finish(w);
            return;
        }
        shared.release(w, delta, effect);
    }
}

// ---------------------------------------------------------------------
// Scheduler.
// ---------------------------------------------------------------------

struct Scheduler<'a> {
    cfg: &'a SimConfig,
    db: &'a std::sync::Arc<Database>,
    table: &'a std::sync::Arc<TableDef>,
    rids: &'a [tell_common::Rid],
    rng: StdRng,
    /// CM instance ids handed to recovered managers (fresh, never reused).
    next_cm_id: u32,
    /// Ids of killed managers whose stale published state we keep erasing
    /// (in-flight transactions they issued republish it on completion; a
    /// real deployment's management node performs the same janitorial
    /// delete).
    killed_cms: Vec<u32>,
    /// PN crashes awaiting their recovery event: `(pn, tid, key)`.
    pending_crashes: Vec<(tell_common::PnId, TxnId, u64)>,
    stats: SimStats,
    /// Sim-local metrics registry, updated from turnstile state at each
    /// scrape. Deliberately NOT `tell_obs::global()`: parallel tests in
    /// one process pollute the global registry, and the telemetry history
    /// must be a pure function of the seed.
    reg: Registry,
    /// Rollup over the sim's own ring, ticked at the scrape cadence.
    rollup: Rollup,
    /// Health rules over the rolled points plus per-SN liveness.
    health: HealthEngine,
    telemetry: SimTelemetry,
    /// Committed/aborted totals already folded into `reg`.
    last_commits: u64,
    last_aborts: u64,
}

impl Scheduler<'_> {
    fn apply_event(&mut self, st: &mut TurnState, event: &FaultEvent) {
        self.stats.events_fired += 1;
        match event.kind {
            FaultKind::SnKill(n) => {
                if n < self.cfg.storage_nodes {
                    self.db.store().kill_node(SnId(n));
                }
            }
            FaultKind::SnRevive(n) => {
                if n < self.cfg.storage_nodes {
                    self.db.store().revive_node(SnId(n));
                }
            }
            FaultKind::SnRestart(n) => {
                if n < self.cfg.storage_nodes {
                    if self.cfg.durable {
                        match self.db.store().restart_node_from_log(SnId(n)) {
                            Ok(()) => {}
                            Err(e) => self.break_run(
                                st,
                                Violation::UnexpectedError {
                                    worker: usize::MAX,
                                    message: format!("sn-restart {n} failed: {e}"),
                                },
                            ),
                        }
                    } else {
                        // Hand-built plan on an in-memory deployment: the
                        // closest applicable action is a plain revive.
                        self.db.store().revive_node(SnId(n));
                    }
                }
            }
            FaultKind::RestoreReplication => {
                self.db.store().restore_replication();
            }
            FaultKind::CmKill => {
                let members = self.db.commit_managers().members();
                if members.len() > 1 {
                    let victim = members[0].0;
                    if self.db.commit_managers().fail(victim).is_ok() {
                        self.killed_cms.push(victim.raw());
                        st.epoch += 1;
                    }
                }
            }
            FaultKind::CmRecover => {
                let cluster = self.db.commit_managers();
                if (cluster.len() as u32) < self.cfg.commit_managers {
                    let id = CmId(self.next_cm_id);
                    self.next_cm_id += 1;
                    if cluster.spawn_recovered(id).is_ok() {
                        st.epoch += 1;
                    }
                }
            }
            FaultKind::PnCrash => match self.crash_pn_mid_commit() {
                Ok(()) => {}
                // The victim transaction's partition happened to be in a
                // fault window — no crash to inject this time.
                Err(e) if is_transient(&e) => {}
                Err(e) => self.break_run(
                    st,
                    Violation::UnexpectedError {
                        worker: usize::MAX,
                        message: format!("pn-crash injection failed: {e}"),
                    },
                ),
            },
            FaultKind::PnRecover => {
                if self.pending_crashes.is_empty() {
                    return;
                }
                let crash = self.pending_crashes.remove(0);
                match tell_core::recovery::recover_failed_pn(self.db, crash.0) {
                    Ok(_) => {}
                    // A partition the rollback needs is unavailable right
                    // now. Keep the crash queued: its tid stays active at
                    // the commit manager, pinning the lav below it, so GC
                    // cannot reclaim around the dirty version while we
                    // wait for a later recover (or the end of the run).
                    Err(e) if is_transient(&e) => self.pending_crashes.insert(0, crash),
                    Err(e) => self.break_run(
                        st,
                        Violation::UnexpectedError {
                            worker: usize::MAX,
                            message: format!("pn recovery failed: {e}"),
                        },
                    ),
                }
            }
            FaultKind::GcRun => match tell_core::gc::run_gc(self.db) {
                Ok(_) => self.check_gc_reachability(st),
                // A durable blackout window may leave partitions with no
                // fresh copy up; GC simply skips this pass and the next
                // scheduled run retries after restarts.
                Err(e) if is_transient(&e) => {}
                Err(e) => self.break_run(
                    st,
                    Violation::UnexpectedError {
                        worker: usize::MAX,
                        message: format!("gc failed: {e}"),
                    },
                ),
            },
            FaultKind::RpcDegrade { drop_pct, delay_pct, delay_us, dup_pct, flush_stall_us } => {
                // No-op for the in-process stack (nothing routes through
                // tell-rpc here), but the hook is driven anyway so a future
                // remote-backed harness inherits the schedule unchanged.
                tell_rpc::fault::install(
                    self.cfg.seed,
                    tell_rpc::fault::FaultConfig {
                        drop_prob: drop_pct as f64 / 100.0,
                        delay_prob: delay_pct as f64 / 100.0,
                        delay_us: delay_us as u64,
                        dup_prob: dup_pct as f64 / 100.0,
                        flush_stall_us: flush_stall_us as u64,
                    },
                );
            }
            FaultKind::RpcHeal => tell_rpc::fault::clear(),
        }
    }

    /// Reproduce §4.4.1's failure window: a PN that has written its log
    /// entry and applied one update, then dies before setting the commit
    /// flag. The dirty version stays in the store (invisible — its tid is
    /// committed nowhere) until the paired recovery event rolls it back.
    fn crash_pn_mid_commit(&mut self) -> tell_common::Result<()> {
        let crash_pn = self.db.processing_node();
        let pn_id = crash_pn.id();
        let txn = crash_pn.begin()?;
        let tid = txn.tid();
        let key = self.rng.random_range(0..self.cfg.keys);
        let rid = self.rids[key as usize];
        let client = self.db.admin_client();
        tell_core::txlog::append(
            &client,
            &tell_core::txlog::LogEntry {
                tid,
                pn: pn_id,
                timestamp_us: 0,
                write_set: vec![(self.table.id, rid)],
                committed: false,
            },
        )?;
        let record_key = keys::record(self.table.id, rid);
        let (token, raw) =
            client.get(&record_key)?.ok_or_else(|| Error::invalid("sim record missing"))?;
        let mut rec = VersionedRecord::decode(&raw)?;
        rec.add_version(tid, Some(row_value(tid.raw(), key).into()));
        client.store_conditional(&record_key, token, rec.encode())?;
        std::mem::forget(txn); // the PN is gone; nobody completes the tid
        self.pending_crashes.push((pn_id, tid, key));
        Ok(())
    }

    /// After a GC pass: every live snapshot must still be able to read its
    /// visible winner for every key (§5.4 keeps the newest version at or
    /// below the lav precisely so this holds).
    fn check_gc_reachability(&mut self, st: &mut TurnState) {
        // Committed writers per key, from the history recorded so far.
        let mut writers: std::collections::HashMap<u64, Vec<u64>> =
            std::collections::HashMap::new();
        for t in st.history.txns.iter().filter(|t| t.committed) {
            for &k in &t.writes {
                writers.entry(k).or_default().push(t.tid);
            }
        }
        let client = self.db.admin_client();
        for live in st.live.iter().flatten() {
            for key in 0..self.cfg.keys {
                let winner = writers
                    .get(&key)
                    .into_iter()
                    .flatten()
                    .filter(|tid| live.snapshot.contains(**tid))
                    .copied()
                    .max()
                    .unwrap_or(0);
                let record_key = keys::record(self.table.id, self.rids[key as usize]);
                let present = match client.get(&record_key) {
                    Ok(Some((_, raw))) => match VersionedRecord::decode(&raw) {
                        Ok(rec) => rec.has_version(winner),
                        Err(_) => false,
                    },
                    // The key's partition is inside a fault window (e.g. a
                    // durable blackout): unreachable, not reclaimed. Skip
                    // it — the next GC pass re-checks once it is back.
                    Err(e) if is_transient(&e) => continue,
                    _ => false,
                };
                if !present {
                    self.break_run(st, Violation::GcReachability { key, version: winner });
                    return;
                }
            }
        }
    }

    fn scrape(&mut self, st: &mut TurnState, at_us: f64) {
        // Janitor: erase state republished by killed managers (their
        // in-flight transactions re-create the key on completion), so the
        // cluster lav is computed over live members only.
        let client = self.db.admin_client();
        for id in &self.killed_cms {
            let _ = client.delete(&keys::cm_state(*id));
        }
        let cluster = self.db.commit_managers();
        let bases: Vec<(u32, u64)> =
            cluster.members().iter().map(|(id, base)| (id.raw(), *base)).collect();
        let lav = cluster.current_lav();
        st.history.scrapes.push(LavScrape { at_us, epoch: st.epoch, lav, bases });
        self.stats.scrapes += 1;

        // Telemetry rollup tick: fold turnstile state into the sim-local
        // registry, roll a point (virtual clock, wall 0 — reproducible
        // byte for byte), and run the health rules. Reachability is judged
        // per storage node; the cluster-wide metrics ride a synthetic
        // "cluster" tick so rate rules are evaluated once per interval,
        // not once per node.
        let commits = st.history.txns.iter().filter(|t| t.committed).count() as u64;
        let aborts = st.history.txns.len() as u64 - commits;
        self.reg.add(Counter::TxnCommitted, commits.saturating_sub(self.last_commits));
        self.reg.add(Counter::TxnAborted, aborts.saturating_sub(self.last_aborts));
        self.last_commits = commits;
        self.last_aborts = aborts;
        let max_tid = st.history.txns.iter().map(|t| t.tid).max().unwrap_or(lav);
        self.reg.set_gauge(Gauge::CmLavLag, max_tid.saturating_sub(lav));
        let point = self.rollup.roll(&self.reg, at_us, 0);
        let mut ticks: Vec<NodeTick> = self
            .db
            .store()
            .nodes()
            .iter()
            .map(|node| NodeTick {
                node: format!("sn{}", node.id.raw()),
                reachable: node.is_alive(),
                point: None,
            })
            .collect();
        ticks.push(NodeTick {
            node: "cluster".into(),
            reachable: true,
            point: Some(point.clone()),
        });
        let events = self.health.observe(at_us, 0, &ticks);
        self.telemetry.points.push(point);
        self.telemetry.events.extend(events);
    }

    fn break_run(&mut self, st: &mut TurnState, v: Violation) {
        if st.violation.is_none() {
            st.violation = Some(v);
        }
        st.stop = true;
    }
}

/// Monotonic counter making every durable run's temp directory unique —
/// the shrinker replays many plans in one process, and each replay must
/// start from empty logs.
static DURABLE_RUN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Run `plan` against a fresh deployment described by `config`.
pub fn run_with_plan(config: &SimConfig, plan: FaultPlan) -> SimOutcome {
    tell_rpc::fault::clear();
    // A durable run gets a fresh per-run data root; recovery content is a
    // pure function of the writes, so determinism is unaffected. Tiny
    // segments + a low checkpoint threshold make rotation, checkpointing
    // and multi-segment replay all happen inside even a short sim. Fsync
    // is off: restarts here re-open files written by a live process, so
    // the knob only costs wall time (crash-at-a-syscall coverage lives in
    // tell-durable's own proptests).
    let data_root = config.durable.then(|| {
        std::env::temp_dir().join(format!(
            "tell-sim-durable-{}-{}-{}",
            std::process::id(),
            config.seed,
            DURABLE_RUN.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ))
    });
    let store_durability = data_root.as_ref().map(|root| {
        FsDurability::new(
            root.clone(),
            DurableNodeConfig {
                segment_bytes: 4096,
                fsync: FsyncPolicy::Never,
                checkpoint_every: 64,
                cache_bytes: 1 << 20,
                background_eviction: false,
            },
        ) as std::sync::Arc<dyn tell_store::DurabilityProvider>
    });
    let db = Database::create(TellConfig {
        storage_nodes: config.storage_nodes as usize,
        replication_factor: config.replication_factor as usize,
        commit_managers: config.commit_managers as usize,
        store_durability,
        cm: CmConfig {
            // Wall-clock syncing would be nondeterministic; sync on
            // operation counts instead.
            sync_interval: std::time::Duration::from_secs(3600),
            sync_every_ops: 4,
            ..CmConfig::default()
        },
        ..TellConfig::default()
    });
    let table = db
        .create_table(
            "sim",
            vec![IndexSpec::new("pk", true, |r: &[u8]| {
                r.get(8..16).map(bytes::Bytes::copy_from_slice)
            })],
        )
        .expect("create sim table");
    let rows: Vec<bytes::Bytes> = (0..config.keys).map(|k| row_value(0, k).into()).collect();
    let rids = db.bulk_load(&table, rows).expect("bulk load sim rows");

    let shared = Shared {
        state: Mutex::new(TurnState {
            turn: Turn::Scheduler,
            clocks: vec![0.0; config.workers],
            done: vec![false; config.workers],
            stop: false,
            live: (0..config.workers).map(|_| None).collect(),
            history: History::default(),
            epoch: 0,
            violation: None,
        }),
        cv: Condvar::new(),
    };

    let horizon = config.horizon_us();
    let mut scheduler = Scheduler {
        cfg: config,
        db: &db,
        table: &table,
        rids: &rids,
        rng: StdRng::seed_from_u64(config.seed ^ SCHED_STREAM),
        next_cm_id: 100,
        killed_cms: Vec::new(),
        pending_crashes: Vec::new(),
        stats: SimStats::default(),
        reg: Registry::new(),
        rollup: Rollup::new(Arc::new(TsRing::new(DEFAULT_RING_POINTS))),
        health: HealthEngine::new(HealthConfig::default()),
        telemetry: SimTelemetry::default(),
        last_commits: 0,
        last_aborts: 0,
    };
    let scrape_interval = horizon / 24.0;
    let mut next_scrape = scrape_interval;
    let mut event_idx = 0usize;

    // Optional virtual-clock profile: workers attach before their first
    // turn and every simulated-cost charge point ticks it, so the folded
    // output is a pure function of the seeded virtual clocks.
    let sim_prof = config.profile_hz.map(tell_obs::SimProfile::new);
    let picker = KeyPicker::new(config.keys, config.zipf_theta);

    let (history, violation, mut stats, telemetry) = std::thread::scope(|scope| {
        for w in 0..config.workers {
            let shared = &shared;
            let db = &db;
            let table = &table;
            let rids = &rids[..];
            let picker = &picker;
            let sim_prof = sim_prof.clone();
            scope.spawn(move || {
                if let Some(prof) = &sim_prof {
                    tell_obs::prof::sim_attach(prof, 0.0);
                }
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    worker_main(w, shared, db, table, rids, picker, config);
                }));
                if sim_prof.is_some() {
                    tell_obs::prof::sim_detach();
                }
                if let Err(panic) = result {
                    let message = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "worker panicked".into());
                    let mut st = shared.state.lock().unwrap();
                    if st.violation.is_none() {
                        st.violation = Some(Violation::UnexpectedError { worker: w, message });
                    }
                    st.stop = true;
                    st.done[w] = true;
                    st.live[w] = None;
                    st.turn = Turn::Scheduler;
                    shared.cv.notify_all();
                }
            });
        }

        let mut st = shared.state.lock().unwrap();
        loop {
            while st.turn != Turn::Scheduler {
                st = shared.cv.wait(st).unwrap();
            }
            if st.done.iter().all(|d| *d) {
                break;
            }
            // Next turn: the live worker with the smallest virtual clock.
            let (next, min_clock) = st
                .clocks
                .iter()
                .enumerate()
                .filter(|(w, _)| !st.done[*w])
                .map(|(w, c)| (w, *c))
                .fold(
                    (usize::MAX, f64::INFINITY),
                    |best, (w, c)| {
                        if c < best.1 {
                            (w, c)
                        } else {
                            best
                        }
                    },
                );
            if !st.stop {
                if min_clock >= horizon {
                    st.stop = true;
                } else {
                    while event_idx < plan.events.len()
                        && plan.events[event_idx].at_us <= min_clock
                        && !st.stop
                    {
                        let event = plan.events[event_idx];
                        event_idx += 1;
                        scheduler.apply_event(&mut st, &event);
                    }
                    while next_scrape <= min_clock {
                        scheduler.scrape(&mut st, next_scrape);
                        next_scrape += scrape_interval;
                    }
                }
            }
            st.turn = Turn::Worker(next);
            shared.cv.notify_all();
        }
        let end = st.clocks.iter().cloned().fold(0.0f64, f64::max);
        scheduler.stats.virtual_end_us = end;
        (
            std::mem::take(&mut st.history),
            st.violation.take(),
            scheduler.stats,
            std::mem::take(&mut scheduler.telemetry),
        )
    });

    tell_rpc::fault::clear();
    stats.final_lav = db.commit_managers().current_lav();
    stats.txns = history.txns.len();
    stats.commits = history.txns.iter().filter(|t| t.committed).count();
    stats.aborts = stats.txns - stats.commits;
    stats.reads = history.txns.iter().map(|t| t.reads.len()).sum();
    stats.writes = history.txns.iter().filter(|t| t.committed).map(|t| t.writes.len()).sum();

    // A live violation (GC reachability, unexpected error) trumps the
    // post-hoc check; otherwise the history faces the oracle matching the
    // level the run executed at.
    let (violation, check) = match violation {
        Some(v) => (Some(v), None),
        None => match checker::check_at(config.isolation, &history) {
            Ok(stats) => (None, Some(stats)),
            Err(v) => (Some(v), None),
        },
    };

    // The engines keep their files open, so unlinking the per-run root is
    // safe even before the deployment drops.
    if let Some(root) = data_root {
        let _ = std::fs::remove_dir_all(root);
    }

    let profile = sim_prof.map(|p| p.report());
    SimOutcome { plan, history, stats, telemetry, violation, check, profile }
}

/// Shrink a failing plan to the smallest failing prefix by bisection and
/// return that minimal run. If the full plan does not fail, its (passing)
/// outcome is returned unchanged.
pub fn shrink_plan(config: &SimConfig, plan: &FaultPlan) -> SimOutcome {
    let full = run_with_plan(config, plan.clone());
    if full.ok() {
        return full;
    }
    // Invariant: prefix(hi) fails; lo is the largest known-passing length.
    let mut lo = 0usize;
    let mut hi = plan.events.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if run_with_plan(config, plan.prefix(mid)).ok() {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    run_with_plan(config, plan.prefix(hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(mix: FaultMix, seed: u64) -> SimConfig {
        SimConfig { seed, virtual_secs: 0.05, mix, workers: 3, keys: 12, ..SimConfig::default() }
    }

    fn digest(outcome: &SimOutcome) -> Vec<(u64, bool, usize, usize)> {
        outcome
            .history
            .txns
            .iter()
            .map(|t| (t.tid, t.committed, t.reads.len(), t.writes.len()))
            .collect()
    }

    #[test]
    fn fault_free_run_passes_the_oracle() {
        let outcome = run(&tiny(FaultMix::None, 11));
        assert!(outcome.ok(), "violation: {:?}", outcome.violation);
        assert!(outcome.stats.commits > 0, "no commits in {:?}", outcome.stats);
        assert!(outcome.check.unwrap().reads_checked > 0);
    }

    #[test]
    fn every_level_passes_its_own_oracle() {
        for level in IsolationLevel::ALL {
            let cfg = SimConfig { isolation: level, ..tiny(FaultMix::None, 11) };
            let outcome = run(&cfg);
            assert!(outcome.ok(), "{level}: violation {:?}", outcome.violation);
            assert!(outcome.stats.commits > 0, "{level}: no commits in {:?}", outcome.stats);
        }
    }

    #[test]
    fn same_seed_is_bit_reproducible() {
        let cfg = tiny(FaultMix::SnChurn, 7);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.plan, b.plan);
        assert_eq!(digest(&a), digest(&b));
        assert_eq!(a.violation, b.violation);
        assert_eq!(a.stats.events_fired, b.stats.events_fired);
    }

    #[test]
    fn sn_churn_run_passes_the_oracle() {
        let outcome = run(&tiny(FaultMix::SnChurn, 3));
        assert!(outcome.ok(), "violation: {:?}", outcome.violation);
        assert!(outcome.stats.events_fired > 0);
    }

    #[test]
    fn cm_restart_run_passes_the_oracle() {
        let outcome = run(&tiny(FaultMix::CmRestart, 5));
        assert!(outcome.ok(), "violation: {:?}", outcome.violation);
    }

    #[test]
    fn full_mix_run_passes_the_oracle() {
        let outcome = run(&tiny(FaultMix::All, 9));
        assert!(outcome.ok(), "violation: {:?}", outcome.violation);
    }

    fn tiny_durable(mix: FaultMix, seed: u64) -> SimConfig {
        SimConfig { durable: true, ..tiny(mix, seed) }
    }

    #[test]
    fn durable_sn_churn_run_passes_the_oracle() {
        let outcome = run(&tiny_durable(FaultMix::SnChurn, 3));
        assert!(outcome.ok(), "violation: {:?}", outcome.violation);
        assert!(outcome.stats.events_fired > 0);
        assert!(outcome.stats.commits > 0, "no commits in {:?}", outcome.stats);
    }

    #[test]
    fn durable_full_mix_run_passes_the_oracle() {
        let outcome = run(&tiny_durable(FaultMix::All, 9));
        assert!(outcome.ok(), "violation: {:?}", outcome.violation);
    }

    #[test]
    fn durable_run_is_bit_reproducible() {
        let cfg = tiny_durable(FaultMix::SnChurn, 7);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.plan, b.plan);
        assert_eq!(digest(&a), digest(&b));
        assert_eq!(a.violation, b.violation);
        assert_eq!(a.stats.events_fired, b.stats.events_fired);
    }

    #[test]
    fn kill_all_copy_holders_then_restart_from_log_passes_the_oracle() {
        // The scenario the in-memory budget forbids: every storage node —
        // and therefore every copy of every partition — dies inside the
        // run, and the cluster comes back purely from the durable logs.
        let cfg = tiny_durable(FaultMix::None, 21);
        let horizon = cfg.horizon_us();
        let mut events = Vec::new();
        for n in 0..cfg.storage_nodes {
            events.push(FaultEvent { at_us: horizon * 0.3, kind: FaultKind::SnKill(n) });
        }
        for n in 0..cfg.storage_nodes {
            events.push(FaultEvent {
                at_us: horizon * (0.45 + 0.02 * n as f64),
                kind: FaultKind::SnRestart(n),
            });
        }
        events.push(FaultEvent { at_us: horizon * 0.6, kind: FaultKind::GcRun });
        let plan = FaultPlan { seed: 0, events };
        let total = plan.events.len();
        let outcome = run_with_plan(&cfg, plan);
        assert!(outcome.ok(), "violation: {:?}", outcome.violation);
        assert_eq!(outcome.stats.events_fired, total, "all events must fire");
        // The run must regain liveness after the blackout: some commits
        // recorded strictly after every node restarted.
        let check = outcome.check.expect("checker ran");
        assert!(check.reads_checked > 0);
        assert!(outcome.stats.commits > 0, "no commits in {:?}", outcome.stats);
        assert!(
            outcome.stats.virtual_end_us >= horizon * 0.9,
            "run wound down early at {}us",
            outcome.stats.virtual_end_us
        );
    }

    #[test]
    fn telemetry_history_is_bit_reproducible() {
        // The observability acceptance bar: same seed, same fault mix —
        // byte-identical telemetry points AND byte-identical rendered
        // health-event sequence across two runs.
        let cfg = tiny(FaultMix::SnChurn, 17);
        let a = run(&cfg);
        let b = run(&cfg);
        assert!(a.ok(), "violation: {:?}", a.violation);
        assert!(!a.telemetry.points.is_empty(), "scrapes must roll points");
        assert_eq!(a.telemetry.points.len(), a.stats.scrapes);
        assert_eq!(a.telemetry.points, b.telemetry.points);
        assert_eq!(a.telemetry.rendered_events(), b.telemetry.rendered_events());
        // Commit/abort deltas in the points tile the run's totals.
        let commits: u64 =
            a.telemetry.points.iter().map(|p| p.counter(Counter::TxnCommitted)).sum();
        assert!(commits <= a.stats.commits as u64);
        assert!(commits > 0 || a.stats.commits == 0, "scrape deltas must carry the run's commits");
    }

    #[test]
    fn sn_kill_window_fires_and_resolves_replica_unavailable() {
        // Hand-built plan: SN 0 dies for the middle of the run. The health
        // engine must fire replica_unavailable for sn0 inside the window
        // and resolve it after the revive — in that order, exactly once
        // each.
        let cfg = tiny(FaultMix::None, 23);
        let horizon = cfg.horizon_us();
        let plan = FaultPlan {
            seed: 0,
            events: vec![
                FaultEvent { at_us: horizon * 0.2, kind: FaultKind::SnKill(0) },
                FaultEvent { at_us: horizon * 0.6, kind: FaultKind::SnRevive(0) },
            ],
        };
        let outcome = run_with_plan(&cfg, plan);
        assert!(outcome.ok(), "violation: {:?}", outcome.violation);
        let rendered = outcome.telemetry.rendered_events();
        let firing: Vec<usize> = rendered
            .iter()
            .enumerate()
            .filter(|(_, l)| l.contains("FIRING replica_unavailable node=sn0"))
            .map(|(i, _)| i)
            .collect();
        let resolved: Vec<usize> = rendered
            .iter()
            .enumerate()
            .filter(|(_, l)| l.contains("resolved replica_unavailable node=sn0"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(firing.len(), 1, "exactly one firing transition: {rendered:?}");
        assert_eq!(resolved.len(), 1, "exactly one resolve transition: {rendered:?}");
        assert!(firing[0] < resolved[0], "fire before resolve: {rendered:?}");
        // Replay of the identical plan reproduces the identical sequence.
        let again = run_with_plan(
            &cfg,
            FaultPlan {
                seed: 0,
                events: vec![
                    FaultEvent { at_us: horizon * 0.2, kind: FaultKind::SnKill(0) },
                    FaultEvent { at_us: horizon * 0.6, kind: FaultKind::SnRevive(0) },
                ],
            },
        );
        assert_eq!(again.telemetry.rendered_events(), rendered);
    }

    #[test]
    fn profiled_run_is_bit_reproducible() {
        // The profiler acceptance bar: same seed, same plan — the folded
        // collapsed-stack output is byte-identical across two replays, and
        // it actually contains transaction-phase frames (the run did real
        // work under the sampler, it didn't just idle).
        let cfg = SimConfig { profile_hz: Some(2000.0), ..tiny(FaultMix::SnChurn, 19) };
        let a = run(&cfg);
        let b = run(&cfg);
        assert!(a.ok(), "violation: {:?}", a.violation);
        let pa = a.profile.clone().expect("profile requested");
        let pb = b.profile.clone().expect("profile requested");
        assert!(pa.samples > 0, "sampler must credit samples: {pa:?}");
        assert!(!pa.folded.is_empty(), "folded output must be non-empty");
        assert_eq!(pa.folded, pb.folded, "same seed must give a bit-identical profile");
        assert_eq!(pa.samples, pb.samples);
        assert_eq!(pa.idle, pb.idle);
        assert!(pa.folded.contains("txn."), "profile must contain a txn phase: {}", pa.folded);
        // Unprofiled replay of the same seed is unperturbed by profiling.
        let plain = run(&tiny(FaultMix::SnChurn, 19));
        assert_eq!(digest(&a), digest(&plain));
        assert!(plain.profile.is_none());
    }

    #[test]
    fn shrink_returns_passing_outcome_for_clean_plan() {
        let cfg = tiny(FaultMix::None, 13);
        let plan = FaultPlan::generate(cfg.seed, cfg.mix, cfg.horizon_us(), cfg.topology());
        let outcome = shrink_plan(&cfg, &plan);
        assert!(outcome.ok());
        assert_eq!(outcome.plan.events.len(), plan.events.len());
    }
}

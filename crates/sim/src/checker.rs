//! Per-level history oracles: validate a recorded [`History`] against the
//! isolation level the run was executed at (§4.1–§4.2 plus the weaker and
//! stronger levels Tell's CM can serve).
//!
//! [`check_at`] selects the rule set by [`IsolationLevel`]; the rules are
//! strictly containing, so the acceptance sets form the expected lattice:
//! every history accepted at Serializable is accepted at SI, every SI
//! history at NMSI, every NMSI history at read-committed.
//!
//! Rules by level (each level inherits everything above it in this list):
//!
//! - **All levels** — tid uniqueness (commit managers must never
//!   double-allocate, even across restarts) and commit-manager
//!   monotonicity: the global lav within a membership epoch and each CM
//!   instance's published base never move backwards between scrapes.
//! - **Read committed** — no dirty reads: every non-initial observation
//!   must name a *committed* writer of that key that completed before the
//!   reader did. (The begin snapshot is not binding — RC refreshes
//!   mid-transaction, so this oracle checks necessary conditions only.)
//! - **Non-monotonic SI** — per-transaction snapshot consistency: every
//!   read observes the *maximal committed version visible in the reader's
//!   snapshot* ("v := max(V ∩ V')"), and no lost updates
//!   (first-committer-wins between mutually invisible committed writers).
//!   The snapshot itself may be stale and per-worker non-monotonic.
//! - **SI** — session order: within one worker and one CM membership
//!   epoch, a transaction that begins after an earlier one completed must
//!   see that transaction's commit (read-your-own-commits) and must not
//!   regress its snapshot.
//! - **Serializable** — the direct serialization graph over committed
//!   transactions (ww edges in per-key commit order, wr edges from
//!   observed reads, rw anti-dependency edges to the overwriting writer)
//!   must be acyclic. Write skew, admitted everywhere below, dies here.
//!
//! Post-GC reachability is checked live by the driver (it needs access to
//! the store), not here; a reachability failure surfaces as
//! [`Violation::GcReachability`] via [`crate::driver`].

use std::collections::HashMap;
use std::fmt;

use crate::history::{History, TxnRecord};
use tell_common::IsolationLevel;

/// Why a history is not valid at the requested level (or otherwise broken).
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// A read observed a version that is not the maximal visible committed
    /// version for its key (NMSI and above).
    TornSnapshot {
        /// Reading transaction.
        tid: u64,
        /// Key read.
        key: u64,
        /// Writer tid the read observed.
        observed: u64,
        /// Writer tid the snapshot says it should have observed.
        expected: u64,
    },
    /// A read observed a writer that never committed, or committed only
    /// after the reader completed (read-committed's one read rule).
    DirtyRead {
        /// Reading transaction.
        tid: u64,
        /// Key read.
        key: u64,
        /// The observed writer tid.
        writer: u64,
    },
    /// Two committed writers of the same key were mutually invisible
    /// (NMSI and above).
    LostUpdate {
        /// Key both transactions wrote.
        key: u64,
        /// Earlier-committing writer.
        first: u64,
        /// Later-committing writer whose snapshot missed `first`.
        second: u64,
    },
    /// A worker began a transaction after its own earlier commit completed,
    /// yet the new snapshot does not contain that commit (SI and above,
    /// within one CM membership epoch).
    NonMonotonicRead {
        /// Worker whose session broke.
        worker: usize,
        /// The committed transaction that went missing.
        earlier: u64,
        /// The later transaction whose snapshot missed it.
        later: u64,
    },
    /// A worker's successive snapshots moved backwards (SI and above,
    /// within one CM membership epoch).
    SnapshotRegression {
        /// Worker whose session broke.
        worker: usize,
        /// The earlier transaction.
        earlier: u64,
        /// The later transaction whose snapshot is not a superset.
        later: u64,
    },
    /// The direct serialization graph over committed transactions has a
    /// cycle (Serializable only).
    SerializationCycle {
        /// The tids on the cycle, in dependency order.
        tids: Vec<u64>,
    },
    /// The same tid was handed to two transactions.
    DuplicateTid {
        /// The reused tid.
        tid: u64,
    },
    /// The cluster-wide lowest active version moved backwards.
    NonMonotonicLav {
        /// Value at the earlier scrape.
        before: u64,
        /// Value at the later scrape.
        after: u64,
    },
    /// A commit-manager instance's published base moved backwards.
    NonMonotonicBase {
        /// The commit-manager instance id.
        cm: u32,
        /// Base at the earlier scrape.
        before: u64,
        /// Base at the later scrape.
        after: u64,
    },
    /// GC removed a version some live snapshot could still read
    /// (reported by the driver's live check, carried here for a uniform
    /// verdict type).
    GcReachability {
        /// Key whose version disappeared.
        key: u64,
        /// The version a live snapshot expected to find.
        version: u64,
    },
    /// A worker hit an error outside the accepted set (conflicts and
    /// unavailability are expected under faults; anything else is a bug).
    UnexpectedError {
        /// Worker that hit the error.
        worker: usize,
        /// Rendered error.
        message: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::TornSnapshot { tid, key, observed, expected } => write!(
                f,
                "torn snapshot: txn {tid} read key {key} from writer {observed}, \
                 snapshot requires writer {expected}"
            ),
            Violation::DirtyRead { tid, key, writer } => write!(
                f,
                "dirty read: txn {tid} read key {key} from writer {writer}, which \
                 never committed before the reader completed"
            ),
            Violation::LostUpdate { key, first, second } => write!(
                f,
                "lost update: committed writers {first} and {second} of key {key} \
                 are mutually invisible"
            ),
            Violation::NonMonotonicRead { worker, earlier, later } => write!(
                f,
                "non-monotonic read: worker {worker} committed txn {earlier}, then \
                 began txn {later} with a snapshot that misses it"
            ),
            Violation::SnapshotRegression { worker, earlier, later } => write!(
                f,
                "snapshot regression: worker {worker} ran txn {earlier}, then txn \
                 {later} under a snapshot that is not a superset"
            ),
            Violation::SerializationCycle { tids } => {
                let path: Vec<String> = tids.iter().map(|t| t.to_string()).collect();
                write!(f, "serialization cycle: {}", path.join(" -> "))
            }
            Violation::DuplicateTid { tid } => {
                write!(f, "duplicate tid: {tid} allocated twice")
            }
            Violation::NonMonotonicLav { before, after } => {
                write!(f, "lav moved backwards: {before} -> {after}")
            }
            Violation::NonMonotonicBase { cm, before, after } => {
                write!(f, "cm {cm} base moved backwards: {before} -> {after}")
            }
            Violation::GcReachability { key, version } => write!(
                f,
                "gc reachability: key {key} lost version {version} still visible \
                 to a live snapshot"
            ),
            Violation::UnexpectedError { worker, message } => {
                write!(f, "worker {worker} unexpected error: {message}")
            }
        }
    }
}

/// What a clean check looked at.
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckStats {
    /// Committed transactions validated.
    pub committed: usize,
    /// Aborted transactions validated (their reads still count).
    pub aborted: usize,
    /// Individual reads validated against the level's read rule.
    pub reads_checked: usize,
    /// Ordered writer pairs examined for lost updates.
    pub write_pairs_checked: usize,
    /// Same-worker transaction pairs examined for session order.
    pub session_pairs_checked: usize,
    /// Direct-serialization-graph edges walked for cycles.
    pub dsg_edges_checked: usize,
    /// Scrapes validated for monotonicity.
    pub scrapes_checked: usize,
}

/// Validate `history` against the SI oracle — shorthand for
/// [`check_at`]`(IsolationLevel::Si, history)`, kept because SI is Tell's
/// native level and the default everywhere.
pub fn check(history: &History) -> Result<CheckStats, Violation> {
    check_at(IsolationLevel::Si, history)
}

/// Validate `history` against the oracle for `level`.
///
/// Returns the first violation found, in a deterministic order: tid
/// uniqueness, then reads (history order), then lost updates (key order,
/// then commit order), then session order (history order), then the
/// serialization graph, then scrape monotonicity.
pub fn check_at(level: IsolationLevel, history: &History) -> Result<CheckStats, Violation> {
    let mut stats = CheckStats::default();

    // --- tid uniqueness (all levels) ---------------------------------------
    let mut seen = HashMap::with_capacity(history.txns.len());
    for t in &history.txns {
        if let Some(_prev) = seen.insert(t.tid, t.worker) {
            return Err(Violation::DuplicateTid { tid: t.tid });
        }
    }

    // Index committed writers per key, in completion (append) order. The
    // driver's turnstile guarantees append order is the true total order of
    // completion, so within a key this is commit order.
    let mut writers: HashMap<u64, Vec<&TxnRecord>> = HashMap::new();
    for t in history.committed() {
        stats.committed += 1;
        for &k in &t.writes {
            writers.entry(k).or_default().push(t);
        }
    }
    stats.aborted = history.txns.len() - stats.committed;

    // Completion index of every record, for ordering arguments below.
    let completion: HashMap<u64, usize> =
        history.txns.iter().enumerate().map(|(i, t)| (t.tid, i)).collect();

    if level >= IsolationLevel::NonMonotonicSi {
        // --- snapshot consistency (NMSI and above) -------------------------
        // For each read: the expected observation is the maximal committed
        // writer of that key whose tid is visible in the reader's snapshot
        // (0 = the bulk-loaded initial version, always visible).
        //
        // Subtlety: "committed" must be evaluated *as of the read*, but a
        // writer invisible to the snapshot contributes nothing either way,
        // and a visible writer must have committed before the snapshot was
        // taken — so checking against the full run's committed set is
        // equivalent.
        for t in &history.txns {
            for &(key, observed) in &t.reads {
                stats.reads_checked += 1;
                let expected = writers
                    .get(&key)
                    .into_iter()
                    .flatten()
                    .filter(|w| t.snapshot.contains(w.tid))
                    .map(|w| w.tid)
                    .max()
                    .unwrap_or(0);
                if observed != expected {
                    return Err(Violation::TornSnapshot { tid: t.tid, key, observed, expected });
                }
            }
        }
    } else {
        // --- no dirty reads (read committed) -------------------------------
        // RC refreshes its snapshot mid-transaction, so the recorded begin
        // snapshot is not binding and the max-visible rule above would
        // misfire. What RC still forbids: observing a writer that never
        // committed, or whose commit completed only after the reader did.
        // (The turnstile makes "completed before" well-defined: a writer's
        // commit publishes within the writer's own turn, so any reader that
        // observed it completes at a strictly later history index.)
        for (i, t) in history.txns.iter().enumerate() {
            for &(key, observed) in &t.reads {
                stats.reads_checked += 1;
                if observed == 0 {
                    continue;
                }
                let ok = writers
                    .get(&key)
                    .into_iter()
                    .flatten()
                    .any(|w| w.tid == observed && completion[&w.tid] < i);
                if !ok {
                    return Err(Violation::DirtyRead { tid: t.tid, key, writer: observed });
                }
            }
        }
    }

    if level >= IsolationLevel::NonMonotonicSi {
        // --- no lost updates (NMSI and above) ------------------------------
        // For committed writers A (earlier) and B (later) of the same key,
        // visibility in at least one direction is required. Any tid ≤ B.base
        // is automatically visible to B, so only writers above B.base need
        // the explicit check — we bound the scan by skipping A with
        // A.tid ≤ B.base.
        let mut keys: Vec<&u64> = writers.keys().collect();
        keys.sort();
        for key in &keys {
            let ws = &writers[key];
            for (j, b) in ws.iter().enumerate() {
                for a in &ws[..j] {
                    if a.tid <= b.snapshot.base() {
                        continue; // automatically visible to b
                    }
                    stats.write_pairs_checked += 1;
                    let a_sees_b = a.snapshot.contains(b.tid);
                    let b_sees_a = b.snapshot.contains(a.tid);
                    if !a_sees_b && !b_sees_a {
                        return Err(Violation::LostUpdate {
                            key: **key,
                            first: a.tid.min(b.tid),
                            second: a.tid.max(b.tid),
                        });
                    }
                }
            }
        }
    }

    if level >= IsolationLevel::Si {
        // --- session order (SI and above) ----------------------------------
        // Per worker, in completion order, compare each record against its
        // immediate predecessor. Workers run one transaction at a time, so
        // adjacent pairs chain: monotone adjacent snapshots give monotone
        // sessions, and read-your-own-commits for older transactions follows
        // by subset transitivity. Both checks are gated on (a) the later
        // transaction actually beginning after the earlier completed
        // (begin_seq) and (b) an unchanged CM membership epoch — a failover
        // may legitimately land the worker on a manager with an older view.
        let mut prev_by_worker: HashMap<usize, usize> = HashMap::new();
        for (i, b) in history.txns.iter().enumerate() {
            if let Some(&ai) = prev_by_worker.get(&b.worker) {
                let a = &history.txns[ai];
                if a.epoch == b.epoch && b.begin_seq > ai {
                    stats.session_pairs_checked += 1;
                    if a.committed && !b.snapshot.contains(a.tid) {
                        return Err(Violation::NonMonotonicRead {
                            worker: b.worker,
                            earlier: a.tid,
                            later: b.tid,
                        });
                    }
                    if !a.snapshot.is_subset_of(&b.snapshot) {
                        return Err(Violation::SnapshotRegression {
                            worker: b.worker,
                            earlier: a.tid,
                            later: b.tid,
                        });
                    }
                }
            }
            prev_by_worker.insert(b.worker, i);
        }
    }

    if level == IsolationLevel::Serializable {
        // --- serialization graph acyclicity (Serializable only) ------------
        // Nodes are committed transactions; edges follow Adya's DSG:
        //   ww: per-key commit order (adjacent pairs suffice — the rest
        //       follow by transitivity along the chain);
        //   wr: observed writer -> reader;
        //   rw: reader -> the writer that overwrote the version it read
        //       (the immediate successor; later writers follow via ww).
        // The torn-snapshot rule above already validated every observation
        // against the committed writer set, so `observed` here is always
        // resolvable.
        let committed: Vec<&TxnRecord> = history.committed().collect();
        let node: HashMap<u64, usize> =
            committed.iter().enumerate().map(|(i, t)| (t.tid, i)).collect();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); committed.len()];
        let add = |adj: &mut Vec<Vec<usize>>, from: usize, to: usize| {
            if from != to {
                adj[from].push(to);
            }
        };
        let mut keys: Vec<&u64> = writers.keys().collect();
        keys.sort();
        for key in &keys {
            for pair in writers[key].windows(2) {
                add(&mut adj, node[&pair[0].tid], node[&pair[1].tid]);
            }
        }
        for (i, t) in committed.iter().enumerate() {
            for &(key, observed) in &t.reads {
                let ws: &[&TxnRecord] = writers.get(&key).map(|v| v.as_slice()).unwrap_or(&[]);
                let pos =
                    if observed == 0 { None } else { ws.iter().position(|w| w.tid == observed) };
                if let Some(p) = pos {
                    add(&mut adj, node[&ws[p].tid], i);
                }
                let succ = match pos {
                    None => ws.first(),
                    Some(p) => ws.get(p + 1),
                };
                if let Some(w) = succ {
                    add(&mut adj, i, node[&w.tid]);
                }
            }
        }
        for a in &mut adj {
            a.sort_unstable();
            a.dedup();
            stats.dsg_edges_checked += a.len();
        }

        // Iterative DFS with an explicit stack; color 1 = on the current
        // path, so hitting a 1-colored node recovers a concrete cycle.
        let mut color = vec![0u8; committed.len()];
        let mut parent = vec![usize::MAX; committed.len()];
        for root in 0..committed.len() {
            if color[root] != 0 {
                continue;
            }
            color[root] = 1;
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(frame) = stack.last_mut() {
                let v = frame.0;
                if frame.1 < adj[v].len() {
                    let u = adj[v][frame.1];
                    frame.1 += 1;
                    if color[u] == 0 {
                        color[u] = 1;
                        parent[u] = v;
                        stack.push((u, 0));
                    } else if color[u] == 1 {
                        let mut tids = vec![committed[v].tid];
                        let mut x = v;
                        while x != u {
                            x = parent[x];
                            tids.push(committed[x].tid);
                        }
                        tids.reverse();
                        return Err(Violation::SerializationCycle { tids });
                    }
                } else {
                    color[v] = 2;
                    stack.pop();
                }
            }
        }
    }

    // --- lav/base monotonicity (all levels) --------------------------------
    // The cluster lav is a min over live managers, so it is only comparable
    // between scrapes taken under the same CM membership (epoch). Bases are
    // per-instance and instances are never reused, so those compare across
    // the whole run.
    let mut last_lav: Option<(u32, u64)> = None;
    let mut last_base: HashMap<u32, u64> = HashMap::new();
    for s in &history.scrapes {
        stats.scrapes_checked += 1;
        if let Some((epoch, lav)) = last_lav {
            if s.epoch == epoch && s.lav < lav {
                return Err(Violation::NonMonotonicLav { before: lav, after: s.lav });
            }
        }
        last_lav = Some((s.epoch, s.lav));
        for &(cm, base) in &s.bases {
            if let Some(&prev) = last_base.get(&cm) {
                if base < prev {
                    return Err(Violation::NonMonotonicBase { cm, before: prev, after: base });
                }
            }
            last_base.insert(cm, base);
        }
    }

    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{History, LavScrape, TxnRecord};
    use tell_commitmgr::SnapshotDescriptor;
    use tell_common::BitSet;

    fn snap(base: u64, newly: &[u64]) -> SnapshotDescriptor {
        let mut bits = BitSet::new();
        for &v in newly {
            bits.set((v - base - 1) as usize);
        }
        SnapshotDescriptor::new(base, bits)
    }

    fn txn(tid: u64, snapshot: SnapshotDescriptor) -> TxnRecord {
        TxnRecord {
            worker: 0,
            tid,
            isolation: IsolationLevel::Si,
            snapshot,
            begin_seq: 0,
            epoch: 0,
            reads: vec![],
            writes: vec![],
            committed: true,
        }
    }

    #[test]
    fn empty_history_passes() {
        let stats = check(&History::default()).unwrap();
        assert_eq!(stats.committed, 0);
    }

    #[test]
    fn serial_updates_pass() {
        // t1 writes k under bootstrap; t2 (sees t1) reads t1's value, writes.
        let mut h = History::default();
        let mut t1 = txn(1, snap(0, &[]));
        t1.reads.push((7, 0));
        t1.writes.push(7);
        let mut t2 = txn(2, snap(1, &[]));
        t2.reads.push((7, 1));
        t2.writes.push(7);
        h.txns.push(t1);
        h.txns.push(t2);
        let stats = check(&h).unwrap();
        assert_eq!(stats.committed, 2);
        assert_eq!(stats.reads_checked, 2);
    }

    #[test]
    fn torn_snapshot_detected() {
        // t2's snapshot sees t1, yet it observed the initial version.
        let mut h = History::default();
        let mut t1 = txn(1, snap(0, &[]));
        t1.writes.push(7);
        let mut t2 = txn(2, snap(1, &[]));
        t2.reads.push((7, 0));
        h.txns.push(t1);
        h.txns.push(t2);
        assert_eq!(
            check(&h).unwrap_err(),
            Violation::TornSnapshot { tid: 2, key: 7, observed: 0, expected: 1 }
        );
    }

    #[test]
    fn reading_an_invisible_writer_is_torn() {
        // t2's snapshot does NOT include t1, yet it observed t1's write.
        let mut h = History::default();
        let mut t1 = txn(1, snap(0, &[]));
        t1.writes.push(7);
        let mut t2 = txn(2, snap(0, &[]));
        t2.reads.push((7, 1));
        h.txns.push(t1);
        h.txns.push(t2);
        assert_eq!(
            check(&h).unwrap_err(),
            Violation::TornSnapshot { tid: 2, key: 7, observed: 1, expected: 0 }
        );
    }

    #[test]
    fn lost_update_detected() {
        // Both commit a write to key 7; neither snapshot sees the other.
        let mut h = History::default();
        let mut t1 = txn(1, snap(0, &[]));
        t1.writes.push(7);
        let mut t2 = txn(2, snap(0, &[]));
        t2.writes.push(7);
        h.txns.push(t1);
        h.txns.push(t2);
        assert_eq!(check(&h).unwrap_err(), Violation::LostUpdate { key: 7, first: 1, second: 2 });
    }

    #[test]
    fn write_skew_is_admitted() {
        // Disjoint write sets with overlapping reads: allowed under SI.
        let mut h = History::default();
        let mut t1 = txn(1, snap(0, &[]));
        t1.reads.push((8, 0));
        t1.writes.push(7);
        let mut t2 = txn(2, snap(0, &[]));
        t2.reads.push((7, 0));
        t2.writes.push(8);
        h.txns.push(t1);
        h.txns.push(t2);
        assert!(check(&h).is_ok());
    }

    #[test]
    fn aborted_writer_is_invisible() {
        // t1 aborts; t2 sees tid 1 in its snapshot (the CM may still list
        // it) but must observe the initial version.
        let mut h = History::default();
        let mut t1 = txn(1, snap(0, &[]));
        t1.writes.push(7);
        t1.committed = false;
        let mut t2 = txn(2, snap(1, &[]));
        t2.reads.push((7, 0));
        h.txns.push(t1);
        h.txns.push(t2);
        assert!(check(&h).is_ok());
    }

    #[test]
    fn duplicate_tid_detected() {
        let mut h = History::default();
        h.txns.push(txn(5, snap(0, &[])));
        h.txns.push(txn(5, snap(0, &[])));
        assert_eq!(check(&h).unwrap_err(), Violation::DuplicateTid { tid: 5 });
    }

    #[test]
    fn lav_regression_detected() {
        let mut h = History::default();
        h.scrapes.push(LavScrape { at_us: 1.0, epoch: 0, lav: 10, bases: vec![] });
        h.scrapes.push(LavScrape { at_us: 2.0, epoch: 0, lav: 9, bases: vec![] });
        assert_eq!(check(&h).unwrap_err(), Violation::NonMonotonicLav { before: 10, after: 9 });
    }

    #[test]
    fn per_cm_base_regression_detected() {
        let mut h = History::default();
        h.scrapes.push(LavScrape { at_us: 1.0, epoch: 0, lav: 1, bases: vec![(3, 8)] });
        h.scrapes.push(LavScrape { at_us: 2.0, epoch: 0, lav: 1, bases: vec![(3, 7)] });
        assert_eq!(
            check(&h).unwrap_err(),
            Violation::NonMonotonicBase { cm: 3, before: 8, after: 7 }
        );
    }

    #[test]
    fn fresh_cm_instance_may_start_low() {
        // Instance 4 replaces 3 with a lower base: fine, ids are fresh.
        let mut h = History::default();
        h.scrapes.push(LavScrape { at_us: 1.0, epoch: 0, lav: 1, bases: vec![(3, 8)] });
        h.scrapes.push(LavScrape { at_us: 2.0, epoch: 0, lav: 1, bases: vec![(4, 5)] });
        assert!(check(&h).is_ok());
    }

    // --- per-level matrix ---------------------------------------------------

    #[test]
    fn rc_admits_torn_and_stale_reads() {
        // The torn-snapshot history from above: a scandal at NMSI/SI, fine
        // at RC (observed the initial version, which always exists).
        let mut h = History::default();
        let mut t1 = txn(1, snap(0, &[]));
        t1.writes.push(7);
        let mut t2 = txn(2, snap(1, &[]));
        t2.reads.push((7, 0));
        h.txns.push(t1);
        h.txns.push(t2);
        assert!(check_at(IsolationLevel::ReadCommitted, &h).is_ok());
        assert!(check_at(IsolationLevel::NonMonotonicSi, &h).is_err());
    }

    #[test]
    fn rc_admits_lost_update() {
        let mut h = History::default();
        let mut t1 = txn(1, snap(0, &[]));
        t1.writes.push(7);
        let mut t2 = txn(2, snap(0, &[]));
        t2.writes.push(7);
        h.txns.push(t1);
        h.txns.push(t2);
        assert!(check_at(IsolationLevel::ReadCommitted, &h).is_ok());
        assert!(check_at(IsolationLevel::NonMonotonicSi, &h).is_err());
    }

    #[test]
    fn rc_rejects_dirty_read() {
        // t1 observes writer 2 before txn 2's commit completed (txn 2
        // completes later in the history) — dirty at every level.
        let mut h = History::default();
        let mut t1 = txn(1, snap(0, &[]));
        t1.reads.push((7, 2));
        let mut t2 = txn(2, snap(0, &[]));
        t2.writes.push(7);
        h.txns.push(t1);
        h.txns.push(t2);
        assert_eq!(
            check_at(IsolationLevel::ReadCommitted, &h).unwrap_err(),
            Violation::DirtyRead { tid: 1, key: 7, writer: 2 }
        );
        assert!(check_at(IsolationLevel::Si, &h).is_err());
    }

    #[test]
    fn rc_rejects_read_of_never_committed_writer() {
        let mut h = History::default();
        let mut t1 = txn(1, snap(0, &[]));
        t1.writes.push(7);
        t1.committed = false;
        let mut t2 = txn(2, snap(0, &[]));
        t2.reads.push((7, 1));
        h.txns.push(t1);
        h.txns.push(t2);
        assert_eq!(
            check_at(IsolationLevel::ReadCommitted, &h).unwrap_err(),
            Violation::DirtyRead { tid: 2, key: 7, writer: 1 }
        );
    }

    #[test]
    fn nmsi_admits_non_monotonic_session_si_rejects() {
        // Worker 0 commits t1, then begins t2 (after t1 completed: begin_seq
        // 1) on a stale snapshot that misses its own commit.
        let mut h = History::default();
        let mut t1 = txn(1, snap(0, &[]));
        t1.writes.push(7);
        let mut t2 = txn(2, snap(0, &[]));
        t2.begin_seq = 1;
        h.txns.push(t1);
        h.txns.push(t2);
        assert!(check_at(IsolationLevel::NonMonotonicSi, &h).is_ok());
        assert_eq!(
            check_at(IsolationLevel::Si, &h).unwrap_err(),
            Violation::NonMonotonicRead { worker: 0, earlier: 1, later: 2 }
        );
    }

    #[test]
    fn session_checks_gate_on_epoch_and_begin_order() {
        // Same shape, but the epoch bumped between the two transactions —
        // a failover may land the worker on a manager with an older view.
        let mut h = History::default();
        let mut t1 = txn(1, snap(0, &[]));
        t1.writes.push(7);
        let mut t2 = txn(2, snap(0, &[]));
        t2.begin_seq = 1;
        t2.epoch = 1;
        h.txns.push(t1.clone());
        h.txns.push(t2);
        assert!(check_at(IsolationLevel::Si, &h).is_ok());

        // And concurrent (begin_seq 0 = began before t1 completed): no
        // session obligation either.
        let mut h2 = History::default();
        let mut t2 = txn(2, snap(0, &[]));
        t2.begin_seq = 0;
        h2.txns.push(t1);
        h2.txns.push(t2);
        assert!(check_at(IsolationLevel::Si, &h2).is_ok());
    }

    #[test]
    fn snapshot_regression_detected_at_si() {
        // t1 aborted (so read-your-own-commits does not fire first); t2's
        // snapshot has a smaller base than t1's — a backwards session.
        let mut h = History::default();
        let mut t1 = txn(1, snap(1, &[]));
        t1.committed = false;
        let mut t2 = txn(2, snap(0, &[]));
        t2.begin_seq = 1;
        h.txns.push(t1);
        h.txns.push(t2);
        assert!(check_at(IsolationLevel::NonMonotonicSi, &h).is_ok());
        assert_eq!(
            check_at(IsolationLevel::Si, &h).unwrap_err(),
            Violation::SnapshotRegression { worker: 0, earlier: 1, later: 2 }
        );
    }

    #[test]
    fn serializable_rejects_write_skew() {
        // The admitted-at-SI history from write_skew_is_admitted: rw edges
        // t1 -> t2 (t1 read key 8, t2 overwrote it) and t2 -> t1 close a
        // cycle.
        let mut h = History::default();
        let mut t1 = txn(1, snap(0, &[]));
        t1.reads.push((8, 0));
        t1.writes.push(7);
        let mut t2 = txn(2, snap(0, &[]));
        t2.reads.push((7, 0));
        t2.writes.push(8);
        h.txns.push(t1);
        h.txns.push(t2);
        assert!(check_at(IsolationLevel::Si, &h).is_ok());
        assert!(matches!(
            check_at(IsolationLevel::Serializable, &h).unwrap_err(),
            Violation::SerializationCycle { .. }
        ));
    }

    #[test]
    fn serializable_accepts_serial_history() {
        let mut h = History::default();
        let mut t1 = txn(1, snap(0, &[]));
        t1.reads.push((7, 0));
        t1.writes.push(7);
        let mut t2 = txn(2, snap(1, &[]));
        t2.begin_seq = 1;
        t2.reads.push((7, 1));
        t2.writes.push(7);
        h.txns.push(t1);
        h.txns.push(t2);
        let stats = check_at(IsolationLevel::Serializable, &h).unwrap();
        assert!(stats.dsg_edges_checked > 0);
    }

    #[test]
    fn acceptance_lattice_on_crafted_histories() {
        // A history accepted at Serializable passes everywhere below; the
        // write-skew history is the canonical SI-but-not-serializable
        // witness; lost update separates RC from NMSI.
        let levels = IsolationLevel::ALL;
        let serial = {
            let mut h = History::default();
            let mut t1 = txn(1, snap(0, &[]));
            t1.writes.push(7);
            let mut t2 = txn(2, snap(1, &[]));
            t2.begin_seq = 1;
            t2.reads.push((7, 1));
            h.txns.push(t1);
            h.txns.push(t2);
            h
        };
        for level in levels {
            assert!(check_at(level, &serial).is_ok(), "serial history rejected at {level}");
        }
        let mut last_ok = true;
        for level in levels {
            let ok = check_at(level, &{
                let mut h = History::default();
                let mut t1 = txn(1, snap(0, &[]));
                t1.reads.push((8, 0));
                t1.writes.push(7);
                let mut t2 = txn(2, snap(0, &[]));
                t2.reads.push((7, 0));
                t2.writes.push(8);
                h.txns.push(t1);
                h.txns.push(t2);
                h
            })
            .is_ok();
            // Once a level rejects, every stronger level must reject too.
            assert!(last_ok || !ok, "lattice inversion at {level}");
            last_ok = ok;
        }
    }
}

//! The SI oracle: validate a recorded [`History`] against snapshot
//! isolation as Tell defines it (§4.1–§4.2).
//!
//! Four families of invariants:
//!
//! 1. **Snapshot consistency** — every read must observe the *maximal
//!    committed version visible in the reader's snapshot* ("v := max(V ∩
//!    V')"). A read observing an invisible writer, or skipping past a newer
//!    visible one, is a torn snapshot.
//! 2. **No lost updates** — two committed transactions that both write the
//!    same key must not be mutually invisible (first-committer-wins). This
//!    is the per-history characterization from "On the Semantics of
//!    Snapshot Isolation"; write skew is deliberately admitted, as "A
//!    Critique of Snapshot Isolation" prescribes for SI.
//! 3. **Identifier sanity** — tids are unique across the run (commit
//!    managers must never double-allocate, even across restarts).
//! 4. **Commit-manager monotonicity** — the global lav and each CM
//!    instance's published base never move backwards between scrapes.
//!    Recovered managers get fresh instance ids, so a restart cannot fake
//!    monotonicity by resetting an old id.
//!
//! Post-GC reachability is checked live by the driver (it needs access to
//! the store), not here; a reachability failure surfaces as
//! [`Violation::GcReachability`] via [`crate::driver`].

use std::collections::HashMap;
use std::fmt;

use crate::history::History;

/// Why a history is not snapshot-isolated (or otherwise broken).
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// A read observed a version that is not the maximal visible committed
    /// version for its key.
    TornSnapshot {
        /// Reading transaction.
        tid: u64,
        /// Key read.
        key: u64,
        /// Writer tid the read observed.
        observed: u64,
        /// Writer tid the snapshot says it should have observed.
        expected: u64,
    },
    /// Two committed writers of the same key were mutually invisible.
    LostUpdate {
        /// Key both transactions wrote.
        key: u64,
        /// Earlier-committing writer.
        first: u64,
        /// Later-committing writer whose snapshot missed `first`.
        second: u64,
    },
    /// The same tid was handed to two transactions.
    DuplicateTid {
        /// The reused tid.
        tid: u64,
    },
    /// The cluster-wide lowest active version moved backwards.
    NonMonotonicLav {
        /// Value at the earlier scrape.
        before: u64,
        /// Value at the later scrape.
        after: u64,
    },
    /// A commit-manager instance's published base moved backwards.
    NonMonotonicBase {
        /// The commit-manager instance id.
        cm: u32,
        /// Base at the earlier scrape.
        before: u64,
        /// Base at the later scrape.
        after: u64,
    },
    /// GC removed a version some live snapshot could still read
    /// (reported by the driver's live check, carried here for a uniform
    /// verdict type).
    GcReachability {
        /// Key whose version disappeared.
        key: u64,
        /// The version a live snapshot expected to find.
        version: u64,
    },
    /// A worker hit an error outside the accepted set (conflicts and
    /// unavailability are expected under faults; anything else is a bug).
    UnexpectedError {
        /// Worker that hit the error.
        worker: usize,
        /// Rendered error.
        message: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::TornSnapshot { tid, key, observed, expected } => write!(
                f,
                "torn snapshot: txn {tid} read key {key} from writer {observed}, \
                 snapshot requires writer {expected}"
            ),
            Violation::LostUpdate { key, first, second } => write!(
                f,
                "lost update: committed writers {first} and {second} of key {key} \
                 are mutually invisible"
            ),
            Violation::DuplicateTid { tid } => {
                write!(f, "duplicate tid: {tid} allocated twice")
            }
            Violation::NonMonotonicLav { before, after } => {
                write!(f, "lav moved backwards: {before} -> {after}")
            }
            Violation::NonMonotonicBase { cm, before, after } => {
                write!(f, "cm {cm} base moved backwards: {before} -> {after}")
            }
            Violation::GcReachability { key, version } => write!(
                f,
                "gc reachability: key {key} lost version {version} still visible \
                 to a live snapshot"
            ),
            Violation::UnexpectedError { worker, message } => {
                write!(f, "worker {worker} unexpected error: {message}")
            }
        }
    }
}

/// What a clean check looked at.
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckStats {
    /// Committed transactions validated.
    pub committed: usize,
    /// Aborted transactions validated (their reads still count).
    pub aborted: usize,
    /// Individual reads validated against the read rule.
    pub reads_checked: usize,
    /// Ordered writer pairs examined for lost updates.
    pub write_pairs_checked: usize,
    /// Scrapes validated for monotonicity.
    pub scrapes_checked: usize,
}

/// Validate `history` against the SI oracle.
///
/// Returns the first violation found, in a deterministic order: tid
/// uniqueness, then reads (history order), then lost updates (key order,
/// then commit order), then scrape monotonicity.
pub fn check(history: &History) -> Result<CheckStats, Violation> {
    let mut stats = CheckStats::default();

    // --- 3. tid uniqueness -------------------------------------------------
    let mut seen = HashMap::with_capacity(history.txns.len());
    for t in &history.txns {
        if let Some(_prev) = seen.insert(t.tid, t.worker) {
            return Err(Violation::DuplicateTid { tid: t.tid });
        }
    }

    // Index committed writers per key, in completion (append) order. The
    // driver's turnstile guarantees append order is the true total order of
    // completion, so within a key this is commit order.
    let mut writers: HashMap<u64, Vec<&crate::history::TxnRecord>> = HashMap::new();
    for t in history.committed() {
        stats.committed += 1;
        for &k in &t.writes {
            writers.entry(k).or_default().push(t);
        }
    }
    stats.aborted = history.txns.len() - stats.committed;

    // --- 1. snapshot consistency ------------------------------------------
    // For each read: the expected observation is the maximal committed
    // writer of that key whose tid is visible in the reader's snapshot
    // (0 = the bulk-loaded initial version, always visible).
    //
    // Subtlety: "committed" must be evaluated *as of the read*, but under SI
    // a writer invisible to the snapshot contributes nothing either way, and
    // a visible writer must have committed before the snapshot was taken —
    // so checking against the full run's committed set is equivalent.
    for t in &history.txns {
        for &(key, observed) in &t.reads {
            stats.reads_checked += 1;
            let expected = writers
                .get(&key)
                .into_iter()
                .flatten()
                .filter(|w| t.snapshot.contains(w.tid))
                .map(|w| w.tid)
                .max()
                .unwrap_or(0);
            if observed != expected {
                return Err(Violation::TornSnapshot { tid: t.tid, key, observed, expected });
            }
        }
    }

    // --- 2. no lost updates -------------------------------------------------
    // For committed writers A (earlier) and B (later) of the same key, SI
    // requires visibility in at least one direction. Any tid ≤ B.base is
    // automatically visible to B, so only writers in (B.base, B.tid) ∪
    // {tids above B.base} need the explicit check — we bound the scan by
    // skipping A with A.tid ≤ B.base.
    let mut keys: Vec<&u64> = writers.keys().collect();
    keys.sort();
    for key in keys {
        let ws = &writers[key];
        for (j, b) in ws.iter().enumerate() {
            for a in &ws[..j] {
                if a.tid <= b.snapshot.base() {
                    continue; // automatically visible to b
                }
                stats.write_pairs_checked += 1;
                let a_sees_b = a.snapshot.contains(b.tid);
                let b_sees_a = b.snapshot.contains(a.tid);
                if !a_sees_b && !b_sees_a {
                    return Err(Violation::LostUpdate {
                        key: *key,
                        first: a.tid.min(b.tid),
                        second: a.tid.max(b.tid),
                    });
                }
            }
        }
    }

    // --- 4. lav/base monotonicity -------------------------------------------
    // The cluster lav is a min over live managers, so it is only comparable
    // between scrapes taken under the same CM membership (epoch). Bases are
    // per-instance and instances are never reused, so those compare across
    // the whole run.
    let mut last_lav: Option<(u32, u64)> = None;
    let mut last_base: HashMap<u32, u64> = HashMap::new();
    for s in &history.scrapes {
        stats.scrapes_checked += 1;
        if let Some((epoch, lav)) = last_lav {
            if s.epoch == epoch && s.lav < lav {
                return Err(Violation::NonMonotonicLav { before: lav, after: s.lav });
            }
        }
        last_lav = Some((s.epoch, s.lav));
        for &(cm, base) in &s.bases {
            if let Some(&prev) = last_base.get(&cm) {
                if base < prev {
                    return Err(Violation::NonMonotonicBase { cm, before: prev, after: base });
                }
            }
            last_base.insert(cm, base);
        }
    }

    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{History, LavScrape, TxnRecord};
    use tell_commitmgr::SnapshotDescriptor;
    use tell_common::BitSet;

    fn snap(base: u64, newly: &[u64]) -> SnapshotDescriptor {
        let mut bits = BitSet::new();
        for &v in newly {
            bits.set((v - base - 1) as usize);
        }
        SnapshotDescriptor::new(base, bits)
    }

    fn txn(tid: u64, snapshot: SnapshotDescriptor) -> TxnRecord {
        TxnRecord { worker: 0, tid, snapshot, reads: vec![], writes: vec![], committed: true }
    }

    #[test]
    fn empty_history_passes() {
        let stats = check(&History::default()).unwrap();
        assert_eq!(stats.committed, 0);
    }

    #[test]
    fn serial_updates_pass() {
        // t1 writes k under bootstrap; t2 (sees t1) reads t1's value, writes.
        let mut h = History::default();
        let mut t1 = txn(1, snap(0, &[]));
        t1.reads.push((7, 0));
        t1.writes.push(7);
        let mut t2 = txn(2, snap(1, &[]));
        t2.reads.push((7, 1));
        t2.writes.push(7);
        h.txns.push(t1);
        h.txns.push(t2);
        let stats = check(&h).unwrap();
        assert_eq!(stats.committed, 2);
        assert_eq!(stats.reads_checked, 2);
    }

    #[test]
    fn torn_snapshot_detected() {
        // t2's snapshot sees t1, yet it observed the initial version.
        let mut h = History::default();
        let mut t1 = txn(1, snap(0, &[]));
        t1.writes.push(7);
        let mut t2 = txn(2, snap(1, &[]));
        t2.reads.push((7, 0));
        h.txns.push(t1);
        h.txns.push(t2);
        assert_eq!(
            check(&h).unwrap_err(),
            Violation::TornSnapshot { tid: 2, key: 7, observed: 0, expected: 1 }
        );
    }

    #[test]
    fn reading_an_invisible_writer_is_torn() {
        // t2's snapshot does NOT include t1, yet it observed t1's write.
        let mut h = History::default();
        let mut t1 = txn(1, snap(0, &[]));
        t1.writes.push(7);
        let mut t2 = txn(2, snap(0, &[]));
        t2.reads.push((7, 1));
        h.txns.push(t1);
        h.txns.push(t2);
        assert_eq!(
            check(&h).unwrap_err(),
            Violation::TornSnapshot { tid: 2, key: 7, observed: 1, expected: 0 }
        );
    }

    #[test]
    fn lost_update_detected() {
        // Both commit a write to key 7; neither snapshot sees the other.
        let mut h = History::default();
        let mut t1 = txn(1, snap(0, &[]));
        t1.writes.push(7);
        let mut t2 = txn(2, snap(0, &[]));
        t2.writes.push(7);
        h.txns.push(t1);
        h.txns.push(t2);
        assert_eq!(check(&h).unwrap_err(), Violation::LostUpdate { key: 7, first: 1, second: 2 });
    }

    #[test]
    fn write_skew_is_admitted() {
        // Disjoint write sets with overlapping reads: allowed under SI.
        let mut h = History::default();
        let mut t1 = txn(1, snap(0, &[]));
        t1.reads.push((8, 0));
        t1.writes.push(7);
        let mut t2 = txn(2, snap(0, &[]));
        t2.reads.push((7, 0));
        t2.writes.push(8);
        h.txns.push(t1);
        h.txns.push(t2);
        assert!(check(&h).is_ok());
    }

    #[test]
    fn aborted_writer_is_invisible() {
        // t1 aborts; t2 sees tid 1 in its snapshot (the CM may still list
        // it) but must observe the initial version.
        let mut h = History::default();
        let mut t1 = txn(1, snap(0, &[]));
        t1.writes.push(7);
        t1.committed = false;
        let mut t2 = txn(2, snap(1, &[]));
        t2.reads.push((7, 0));
        h.txns.push(t1);
        h.txns.push(t2);
        assert!(check(&h).is_ok());
    }

    #[test]
    fn duplicate_tid_detected() {
        let mut h = History::default();
        h.txns.push(txn(5, snap(0, &[])));
        h.txns.push(txn(5, snap(0, &[])));
        assert_eq!(check(&h).unwrap_err(), Violation::DuplicateTid { tid: 5 });
    }

    #[test]
    fn lav_regression_detected() {
        let mut h = History::default();
        h.scrapes.push(LavScrape { at_us: 1.0, epoch: 0, lav: 10, bases: vec![] });
        h.scrapes.push(LavScrape { at_us: 2.0, epoch: 0, lav: 9, bases: vec![] });
        assert_eq!(check(&h).unwrap_err(), Violation::NonMonotonicLav { before: 10, after: 9 });
    }

    #[test]
    fn per_cm_base_regression_detected() {
        let mut h = History::default();
        h.scrapes.push(LavScrape { at_us: 1.0, epoch: 0, lav: 1, bases: vec![(3, 8)] });
        h.scrapes.push(LavScrape { at_us: 2.0, epoch: 0, lav: 1, bases: vec![(3, 7)] });
        assert_eq!(
            check(&h).unwrap_err(),
            Violation::NonMonotonicBase { cm: 3, before: 8, after: 7 }
        );
    }

    #[test]
    fn fresh_cm_instance_may_start_low() {
        // Instance 4 replaces 3 with a lower base: fine, ids are fresh.
        let mut h = History::default();
        h.scrapes.push(LavScrape { at_us: 1.0, epoch: 0, lav: 1, bases: vec![(3, 8)] });
        h.scrapes.push(LavScrape { at_us: 2.0, epoch: 0, lav: 1, bases: vec![(4, 5)] });
        assert!(check(&h).is_ok());
    }
}

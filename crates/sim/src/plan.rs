//! Fault plans: a seed expands into a schedule of timed fault events.
//!
//! Times are in **virtual microseconds** — the same clock the workers'
//! `NetMeter`s charge — so a plan scales with the workload, not with the
//! host machine. The driver fires an event when the globally-slowest
//! worker's clock passes the event time, which makes the (event, workload)
//! interleaving a pure function of the seed.

use rand::{Rng, SeedableRng, StdRng};

/// One injected fault (or maintenance action — GC runs ride the same
/// schedule: they are not faults, but they interact with every fault).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Kill storage node `n` (fail-stop; replicas keep serving).
    SnKill(u32),
    /// Revive storage node `n` (resyncs its copies from current masters).
    SnRevive(u32),
    /// Restart storage node `n` from its durable log (only generated when
    /// the topology is durable): the node's RAM image is discarded and
    /// rebuilt from the persistence tier, then caught up from any fresh
    /// peer. Unlike [`FaultKind::SnRevive`], this works even when every
    /// copy-holder of a partition died — the log is the source of truth.
    SnRestart(u32),
    /// Re-create missing replicas on the surviving nodes (§4.4.2).
    RestoreReplication,
    /// Crash-stop the lowest-id live commit manager (skipped when it is
    /// the last one — a zero-manager system is just blocked, §4.4.3).
    CmKill,
    /// Spawn a replacement commit manager that recovers from peer state
    /// and the transaction log (no-op at full strength).
    CmRecover,
    /// A processing node dies mid-commit: log entry written, one update
    /// applied, commit flag never set (§4.4.1). Leaves the dirty state in
    /// the store until the paired [`FaultKind::PnRecover`].
    PnCrash,
    /// Run the PN recovery process for the oldest crashed PN: roll back
    /// its write set and force-resolve its tid everywhere.
    PnRecover,
    /// Run a garbage-collection pass (§5.4) — the driver checks that no
    /// version a live snapshot can read disappears.
    GcRun,
    /// Degrade the RPC transport via `tell_rpc::fault` (drop/delay/
    /// duplicate frames, client flush stalls). Percentages, not
    /// probabilities, so plans print and compare exactly.
    RpcDegrade {
        /// Per-frame drop chance, percent.
        drop_pct: u8,
        /// Per-frame delay chance, percent.
        delay_pct: u8,
        /// Delay magnitude, µs.
        delay_us: u32,
        /// Per-frame duplication chance, percent.
        dup_pct: u8,
        /// Client batch-flush stall, µs.
        flush_stall_us: u32,
    },
    /// Clear the RPC fault injector.
    RpcHeal,
}

impl FaultKind {
    /// Compact single-token rendering used by plan summaries and dumps.
    pub fn label(&self) -> String {
        match self {
            FaultKind::SnKill(n) => format!("sn-kill:{n}"),
            FaultKind::SnRevive(n) => format!("sn-revive:{n}"),
            FaultKind::SnRestart(n) => format!("sn-restart:{n}"),
            FaultKind::RestoreReplication => "re-replicate".into(),
            FaultKind::CmKill => "cm-kill".into(),
            FaultKind::CmRecover => "cm-recover".into(),
            FaultKind::PnCrash => "pn-crash".into(),
            FaultKind::PnRecover => "pn-recover".into(),
            FaultKind::GcRun => "gc".into(),
            FaultKind::RpcDegrade { drop_pct, delay_pct, delay_us, dup_pct, flush_stall_us } => {
                format!(
                    "rpc-degrade:d{drop_pct}/l{delay_pct}x{delay_us}/x{dup_pct}/s{flush_stall_us}"
                )
            }
            FaultKind::RpcHeal => "rpc-heal".into(),
        }
    }
}

/// A fault scheduled at a virtual time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Virtual time (µs) at which the driver fires the event.
    pub at_us: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// Which classes of faults a plan draws from. Mirrors the `--faults` flag
/// of `examples/tell_sim.rs` and the three `scripts/check.sh --sim` seeds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultMix {
    /// No faults — GC runs only. The SI baseline every other mix is
    /// measured against.
    None,
    /// Storage-node churn: kill/revive/re-replicate cycles.
    SnChurn,
    /// Commit-manager kill + recover-from-log cycles.
    CmRestart,
    /// Everything: SN churn, CM restarts, PN crashes mid-commit, RPC
    /// degradation windows.
    All,
}

impl FaultMix {
    /// Parse the `--faults` flag value.
    pub fn parse(s: &str) -> Option<FaultMix> {
        match s {
            "none" => Some(FaultMix::None),
            "sn" => Some(FaultMix::SnChurn),
            "cm" => Some(FaultMix::CmRestart),
            "all" => Some(FaultMix::All),
            _ => None,
        }
    }

    /// The flag spelling of this mix.
    pub fn name(&self) -> &'static str {
        match self {
            FaultMix::None => "none",
            FaultMix::SnChurn => "sn",
            FaultMix::CmRestart => "cm",
            FaultMix::All => "all",
        }
    }
}

/// The topology facts plan generation needs to emit only sensible events.
#[derive(Clone, Copy, Debug)]
pub struct Topology {
    /// Storage nodes in the cluster.
    pub storage_nodes: u32,
    /// Replication factor (bounds how many SNs may be down at once).
    pub replication_factor: u32,
    /// Commit managers at full strength.
    pub commit_managers: u32,
    /// Whether storage nodes have a durable log tier. Durable topologies
    /// relax the SN death budget — any number of nodes may be down at once
    /// because [`FaultKind::SnRestart`] rebuilds them from their logs — and
    /// mix restart-from-log into the revival schedule.
    pub durable: bool,
}

/// A seeded, ordered schedule of fault events.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// The seed the plan was expanded from (0 for hand-built plans).
    pub seed: u64,
    /// Events in non-decreasing `at_us` order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Expand `seed` into a schedule over `[0, horizon_us)`.
    ///
    /// Generation keeps a model of the cluster (which SNs are down, how
    /// many CMs are live, whether a PN crash is pending) so every emitted
    /// event is *applicable* when fired in order: at most `rf - 1` storage
    /// nodes are ever down together, the last commit manager is never
    /// killed, and every crash/degrade has its matching recover/heal.
    pub fn generate(seed: u64, mix: FaultMix, horizon_us: f64, topo: Topology) -> FaultPlan {
        // XOR with a constant so the plan stream never coincides with the
        // per-worker workload streams derived from the same seed.
        let mut rng = StdRng::seed_from_u64(seed ^ PLAN_STREAM);
        let mut events = Vec::new();

        // GC runs in every mix: 4–8 passes spread over the horizon.
        let gc_passes = rng.random_range(4..=8);
        for i in 0..gc_passes {
            let slot = horizon_us / gc_passes as f64;
            let at = slot * i as f64 + rng.random_range(0.0..slot);
            events.push(FaultEvent { at_us: at, kind: FaultKind::GcRun });
        }

        let sn_faults = matches!(mix, FaultMix::SnChurn | FaultMix::All);
        let cm_faults = matches!(mix, FaultMix::CmRestart | FaultMix::All);
        let pn_faults = matches!(mix, FaultMix::All);
        let rpc_faults = matches!(mix, FaultMix::All);

        if sn_faults && topo.storage_nodes > 1 && topo.replication_factor > 1 {
            // Kill/revive cycles. In-memory-only, with RF `r`, up to r-1
            // concurrent deaths keep every partition reachable (transient
            // Unavailable is still expected while a kill propagates). With
            // a durable log tier the budget is the whole cluster: even a
            // partition whose every copy-holder died comes back via
            // restart-from-log.
            let death_budget =
                if topo.durable { topo.storage_nodes } else { topo.replication_factor - 1 };
            let mut t = rng.random_range(0.05..0.25) * horizon_us;
            // Nodes currently scheduled to be dead, with their revive
            // times. A node counts as down until its revive event fires,
            // so a kill is only scheduled while the number of nodes whose
            // revive lies in the future stays within the budget — without
            // durability, exceeding rf-1 could leave a revive no alive
            // copy to resync from and resurrect stale data (real data
            // loss, not an SI bug the checker should flag).
            let mut down: Vec<(u32, f64)> = Vec::new();
            while t < horizon_us * 0.9 {
                down.retain(|(_, revive_at)| *revive_at > t);
                if (down.len() as u32) < death_budget {
                    let alive: Vec<u32> = (0..topo.storage_nodes)
                        .filter(|n| !down.iter().any(|(d, _)| d == n))
                        .collect();
                    let victim = alive[rng.random_range(0..alive.len())];
                    events.push(FaultEvent { at_us: t, kind: FaultKind::SnKill(victim) });
                    let dead_for = rng.random_range(0.05..0.2) * horizon_us;
                    let revive_at = (t + dead_for).min(horizon_us * 0.95);
                    // Durable nodes usually restart from their log (the
                    // interesting path); plain revive still appears so the
                    // resync-from-peer path stays exercised. A revived
                    // copy that finds no fresh peer just stays stale —
                    // unavailability, never resurrection.
                    let revive_kind = if topo.durable && rng.random_bool(0.7) {
                        FaultKind::SnRestart(victim)
                    } else {
                        FaultKind::SnRevive(victim)
                    };
                    events.push(FaultEvent { at_us: revive_at, kind: revive_kind });
                    if rng.random_bool(0.5) {
                        events.push(FaultEvent {
                            at_us: revive_at + 1.0,
                            kind: FaultKind::RestoreReplication,
                        });
                    }
                    down.push((victim, revive_at));
                }
                t += rng.random_range(0.1..0.3) * horizon_us;
            }
        }

        if cm_faults && topo.commit_managers > 1 {
            let mut t = rng.random_range(0.1..0.3) * horizon_us;
            while t < horizon_us * 0.85 {
                events.push(FaultEvent { at_us: t, kind: FaultKind::CmKill });
                let recover_at = t + rng.random_range(0.05..0.15) * horizon_us;
                events.push(FaultEvent {
                    at_us: recover_at.min(horizon_us * 0.95),
                    kind: FaultKind::CmRecover,
                });
                t = recover_at + rng.random_range(0.1..0.3) * horizon_us;
            }
        }

        if pn_faults {
            let crashes = rng.random_range(1..=3);
            for _ in 0..crashes {
                let t = rng.random_range(0.1..0.8) * horizon_us;
                events.push(FaultEvent { at_us: t, kind: FaultKind::PnCrash });
                events.push(FaultEvent {
                    at_us: t + rng.random_range(0.02..0.1) * horizon_us,
                    kind: FaultKind::PnRecover,
                });
            }
        }

        if rpc_faults {
            let windows = rng.random_range(1..=2);
            for _ in 0..windows {
                let t = rng.random_range(0.1..0.7) * horizon_us;
                events.push(FaultEvent {
                    at_us: t,
                    kind: FaultKind::RpcDegrade {
                        drop_pct: rng.random_range(1..=5),
                        delay_pct: rng.random_range(5..=20),
                        delay_us: rng.random_range(50..=500),
                        dup_pct: rng.random_range(1..=5),
                        flush_stall_us: rng.random_range(0..=200),
                    },
                });
                events.push(FaultEvent {
                    at_us: t + rng.random_range(0.05..0.2) * horizon_us,
                    kind: FaultKind::RpcHeal,
                });
            }
        }

        events.sort_by(|a, b| a.at_us.total_cmp(&b.at_us));
        FaultPlan { seed, events }
    }

    /// First `n` events of the plan (the shrinker's unit of reduction).
    pub fn prefix(&self, n: usize) -> FaultPlan {
        FaultPlan { seed: self.seed, events: self.events[..n.min(self.events.len())].to_vec() }
    }

    /// One line per event, for failure dumps.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!("  {:>12.1}us {}\n", e.at_us, e.kind.label()));
        }
        out
    }
}

/// Domain-separation constant for the plan RNG stream.
const PLAN_STREAM: u64 = 0x5e1f_00d5_fa17_7000;

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology { storage_nodes: 4, replication_factor: 2, commit_managers: 2, durable: false }
    }

    fn durable_topo() -> Topology {
        Topology { durable: true, ..topo() }
    }

    #[test]
    fn same_seed_same_plan() {
        let a = FaultPlan::generate(42, FaultMix::All, 2e6, topo());
        let b = FaultPlan::generate(42, FaultMix::All, 2e6, topo());
        assert_eq!(a, b);
        assert!(!a.events.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::generate(1, FaultMix::SnChurn, 2e6, topo());
        let b = FaultPlan::generate(2, FaultMix::SnChurn, 2e6, topo());
        assert_ne!(a, b);
    }

    #[test]
    fn events_are_time_ordered() {
        let plan = FaultPlan::generate(7, FaultMix::All, 3e6, topo());
        for pair in plan.events.windows(2) {
            assert!(pair[0].at_us <= pair[1].at_us);
        }
    }

    #[test]
    fn none_mix_is_gc_only() {
        let plan = FaultPlan::generate(9, FaultMix::None, 2e6, topo());
        assert!(plan.events.iter().all(|e| e.kind == FaultKind::GcRun));
        assert!(!plan.events.is_empty());
    }

    #[test]
    fn sn_churn_never_exceeds_the_replication_budget() {
        // Replaying any plan's kills/revives in event order must keep the
        // number of simultaneously-dead nodes within rf - 1; losing every
        // copy of a partition is data loss, not a fault the SI checker is
        // meant to exercise.
        for seed in 0..50u64 {
            for mix in [FaultMix::SnChurn, FaultMix::All] {
                let plan = FaultPlan::generate(seed, mix, 2e6, topo());
                let mut dead = std::collections::HashSet::new();
                for e in &plan.events {
                    match e.kind {
                        FaultKind::SnKill(n) => {
                            assert!(dead.insert(n), "seed {seed}: kill of dead node {n}");
                            assert!(
                                dead.len() < topo().replication_factor as usize,
                                "seed {seed}: {} nodes dead at once",
                                dead.len()
                            );
                        }
                        FaultKind::SnRevive(n) => {
                            assert!(dead.remove(&n), "seed {seed}: revive of live node {n}");
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    #[test]
    fn durable_churn_restarts_from_log_and_may_exceed_the_old_budget() {
        // Across seeds, durable plans must (a) never kill an already-dead
        // node or revive a live one, (b) stay within the whole-cluster
        // budget, and (c) actually use restart-from-log. At least one seed
        // should exceed the in-memory rf-1 budget — that is the point of
        // the relaxation.
        let mut saw_restart = false;
        let mut saw_over_budget = false;
        for seed in 0..50u64 {
            let plan = FaultPlan::generate(seed, FaultMix::SnChurn, 2e6, durable_topo());
            let mut dead = std::collections::HashSet::new();
            for e in &plan.events {
                match e.kind {
                    FaultKind::SnKill(n) => {
                        assert!(dead.insert(n), "seed {seed}: kill of dead node {n}");
                        assert!(dead.len() <= durable_topo().storage_nodes as usize);
                        if dead.len() >= durable_topo().replication_factor as usize {
                            saw_over_budget = true;
                        }
                    }
                    FaultKind::SnRevive(n) => {
                        assert!(dead.remove(&n), "seed {seed}: revive of live node {n}");
                    }
                    FaultKind::SnRestart(n) => {
                        assert!(dead.remove(&n), "seed {seed}: restart of live node {n}");
                        saw_restart = true;
                    }
                    _ => {}
                }
            }
        }
        assert!(saw_restart, "no durable plan used sn-restart");
        assert!(saw_over_budget, "no durable plan exceeded the rf-1 budget");
    }

    #[test]
    fn non_durable_plans_never_restart_from_log() {
        for seed in 0..20u64 {
            let plan = FaultPlan::generate(seed, FaultMix::All, 2e6, topo());
            assert!(
                plan.events.iter().all(|e| !matches!(e.kind, FaultKind::SnRestart(_))),
                "seed {seed}: sn-restart in a non-durable plan"
            );
        }
    }

    #[test]
    fn prefix_truncates() {
        let plan = FaultPlan::generate(3, FaultMix::All, 2e6, topo());
        let p = plan.prefix(2);
        assert_eq!(p.events.len(), 2);
        assert_eq!(p.events[..], plan.events[..2]);
        assert_eq!(plan.prefix(10_000).events.len(), plan.events.len());
    }
}

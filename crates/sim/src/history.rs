//! The observable history of a simulation run.
//!
//! Workers log every transaction they execute — the snapshot it was handed,
//! every read with the value observed, every key written, and the final
//! outcome. The [`crate::checker`] validates this log against the SI oracle
//! without ever re-contacting the database: the history *is* the evidence.
//!
//! Values are self-describing: a row written by transaction `t` for key `k`
//! encodes `t` (and `k`) in its bytes, so "which committed writer did this
//! read observe?" falls straight out of the payload. The bootstrap bulk-load
//! writes with `TxnId::BOOTSTRAP` (0), so an observed writer of 0 means "the
//! initial version".

use tell_commitmgr::SnapshotDescriptor;
use tell_common::IsolationLevel;

/// Encode the row a transaction writes: `[writer_tid BE][key_id BE]`.
pub fn row_value(writer_tid: u64, key: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(16);
    v.extend_from_slice(&writer_tid.to_be_bytes());
    v.extend_from_slice(&key.to_be_bytes());
    v
}

/// Decode the writer tid out of a row produced by [`row_value`] (or the
/// bulk-load initial row, which also follows the format with tid 0).
pub fn row_writer(row: &[u8]) -> Option<u64> {
    if row.len() < 8 {
        return None;
    }
    Some(u64::from_be_bytes(row[..8].try_into().unwrap()))
}

/// One transaction as the worker experienced it.
#[derive(Clone, Debug)]
pub struct TxnRecord {
    /// Worker index that ran the transaction.
    pub worker: usize,
    /// The tid the commit manager allocated.
    pub tid: u64,
    /// Isolation level the transaction ran at.
    pub isolation: IsolationLevel,
    /// The snapshot descriptor the transaction was handed at begin. (At
    /// read-committed the engine may refresh past it mid-transaction;
    /// the per-level oracles account for that.)
    pub snapshot: SnapshotDescriptor,
    /// Number of records already in the history when this transaction
    /// began: every record with index `< begin_seq` completed strictly
    /// before this transaction's snapshot was taken. The session-order
    /// checks (read-your-own-commits, snapshot monotonicity) key off it.
    pub begin_seq: usize,
    /// Commit-manager membership epoch at begin. A worker silently lands
    /// on a different manager only across an epoch bump, so session
    /// checks compare records within one epoch only.
    pub epoch: u32,
    /// `(key, observed_writer_tid)` per read, in program order. Reads of a
    /// key the transaction itself already buffered a write for are *not*
    /// recorded (they observe the private buffer, not the snapshot).
    pub reads: Vec<(u64, u64)>,
    /// Keys this transaction wrote (update intents that reached commit).
    pub writes: Vec<u64>,
    /// Did the transaction commit? Aborted transactions still matter to the
    /// checker (their reads must be snapshot-consistent too) but their
    /// writes never become visible.
    pub committed: bool,
}

/// A periodic observation of the commit managers' global state.
#[derive(Clone, Debug)]
pub struct LavScrape {
    /// Virtual time of the scrape.
    pub at_us: f64,
    /// Commit-manager membership epoch: bumped on every CM kill or
    /// recovery. The cluster lav is a min over live managers, so it is only
    /// guaranteed monotone while membership is stable — the checker
    /// compares lav within an epoch. Per-instance bases are monotone
    /// unconditionally.
    pub epoch: u32,
    /// Lowest active version across the CM cluster at that instant.
    pub lav: u64,
    /// `(cm_instance, base)` for every live commit manager. Instance ids
    /// are never reused across restarts, so per-instance bases must be
    /// monotone.
    pub bases: Vec<(u32, u64)>,
}

/// Everything a run observed, in commit/abort completion order.
///
/// The driver serializes workers through a turnstile, so the order records
/// are appended in is the real total order of completion — the checker
/// relies on this when reasoning about concurrency.
#[derive(Clone, Debug, Default)]
pub struct History {
    /// Completed transactions (committed and aborted).
    pub txns: Vec<TxnRecord>,
    /// Commit-manager scrapes, in scrape order.
    pub scrapes: Vec<LavScrape>,
}

impl History {
    /// Committed transactions only.
    pub fn committed(&self) -> impl Iterator<Item = &TxnRecord> {
        self.txns.iter().filter(|t| t.committed)
    }

    /// Dump as JSON for failure artifacts. Hand-rolled — the fields are
    /// all integers and the format only needs to be stable, not general.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"txns\": [\n");
        for (i, t) in self.txns.iter().enumerate() {
            let reads: Vec<String> = t.reads.iter().map(|(k, w)| format!("[{k},{w}]")).collect();
            let writes: Vec<String> = t.writes.iter().map(|k| k.to_string()).collect();
            // Enumerate the newly-committed tids above the base; the count
            // tells us when to stop scanning.
            let want = t.snapshot.newly_committed_count();
            let mut newly: Vec<String> = Vec::with_capacity(want);
            let mut v = t.snapshot.base() + 1;
            while newly.len() < want {
                if t.snapshot.contains(v) {
                    newly.push(v.to_string());
                }
                v += 1;
            }
            out.push_str(&format!(
                "    {{\"worker\":{},\"tid\":{},\"level\":\"{}\",\"begin_seq\":{},\"epoch\":{},\"base\":{},\"newly\":[{}],\"reads\":[{}],\"writes\":[{}],\"committed\":{}}}{}\n",
                t.worker,
                t.tid,
                t.isolation,
                t.begin_seq,
                t.epoch,
                t.snapshot.base(),
                newly.join(","),
                reads.join(","),
                writes.join(","),
                t.committed,
                if i + 1 < self.txns.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n  \"scrapes\": [\n");
        for (i, s) in self.scrapes.iter().enumerate() {
            let bases: Vec<String> = s.bases.iter().map(|(id, b)| format!("[{id},{b}]")).collect();
            out.push_str(&format!(
                "    {{\"at_us\":{:.1},\"epoch\":{},\"lav\":{},\"bases\":[{}]}}{}\n",
                s.at_us,
                s.epoch,
                s.lav,
                bases.join(","),
                if i + 1 < self.scrapes.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_roundtrip() {
        let row = row_value(42, 7);
        assert_eq!(row.len(), 16);
        assert_eq!(row_writer(&row), Some(42));
        assert_eq!(row_writer(&[1, 2, 3]), None);
    }

    #[test]
    fn json_dump_is_wellformed_enough() {
        let mut h = History::default();
        h.txns.push(TxnRecord {
            worker: 0,
            tid: 5,
            isolation: IsolationLevel::Si,
            snapshot: SnapshotDescriptor::bootstrap(),
            begin_seq: 0,
            epoch: 0,
            reads: vec![(1, 0)],
            writes: vec![1],
            committed: true,
        });
        h.scrapes.push(LavScrape { at_us: 10.0, epoch: 0, lav: 5, bases: vec![(0, 5)] });
        let json = h.to_json();
        assert!(json.contains("\"tid\":5"));
        assert!(json.contains("\"level\":\"si\""));
        assert!(json.contains("\"lav\":5"));
        // Balanced braces/brackets as a cheap sanity proxy.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}

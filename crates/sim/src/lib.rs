//! `tell-sim` — deterministic fault-schedule simulation with a
//! snapshot-isolation history checker (DESIGN.md §9).
//!
//! The paper's recovery story (§4.4) and its SI protocol (§4.1) are easy to
//! exercise by hand and hard to exercise *systematically*: the interesting
//! bugs live in interleavings of transactions with storage-node deaths,
//! commit-manager restarts, half-finished commits and garbage collection.
//! This crate searches that space reproducibly:
//!
//! * [`plan`] — a seed expands into a [`plan::FaultPlan`]: timed fault
//!   events (SN kill/revive, CM kill/restart-from-log, PN crash mid-commit,
//!   RPC degradation via the `tell_rpc::fault` hook, GC runs) over the
//!   virtual-time horizon.
//! * [`driver`] — a turn-based deterministic scheduler: worker threads run
//!   real [`tell_core::txn::Transaction`]s against a full in-process
//!   PN/SN/CM stack, but only one worker holds the *turn* at a time and the
//!   next turn always goes to the worker with the smallest virtual clock.
//!   Same seed, same interleaving, same history — bit for bit.
//! * [`history`] + [`checker`] — every transaction's begin/read/write/
//!   commit/abort is recorded (values encode the writer's tid) and the
//!   checker validates the whole run against the oracle for the isolation
//!   level the run executed at ([`checker::check_at`]): dirty-read freedom
//!   at read committed; snapshot consistency and no lost updates at
//!   non-monotonic SI; per-worker session order at SI; serialization-graph
//!   acyclicity at serializable — plus tid uniqueness, lav/base
//!   monotonicity, and post-GC reachability at every level.
//!
//! The SI oracle follows "A Critique of Snapshot Isolation" (lost update
//! forbidden, write skew admitted) and the per-history characterization of
//! "On the Semantics of Snapshot Isolation": each read must return the
//! *maximal committed version visible in the reader's snapshot*, and two
//! committed transactions writing the same key must not be mutually
//! invisible. The rule sets are strictly containing, so the checkers'
//! acceptance sets form a lattice — the differential tests in
//! `tests/proptest_isolation.rs` and `tests/isolation_matrix.rs` pin it
//! from both sides.
//!
//! Entry point: [`driver::run`] (or `examples/tell_sim.rs` for the CLI with
//! seed replay and fault-plan shrinking).

pub mod checker;
pub mod driver;
pub mod history;
pub mod plan;

pub use checker::{check, check_at, CheckStats, Violation};
pub use driver::{run, run_with_plan, shrink_plan, SimConfig, SimOutcome, SimStats, SimTelemetry};
pub use history::{History, LavScrape, TxnRecord};
pub use plan::{FaultEvent, FaultKind, FaultMix, FaultPlan};

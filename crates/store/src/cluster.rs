//! The storage cluster: logical partitions, replication, fail-over.
//!
//! The cluster is the *server side* of the store. It is a self-contained
//! system (§2.1 "the storage layer is autonomous"): it manages data
//! distribution and replication transparently; processing nodes only talk to
//! it through [`crate::client::StoreClient`], which adds network cost
//! metering.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;
use tell_common::{Error, PartitionId, Result, SnId};
use tell_netsim::NetworkProfile;

use crate::cell::{Cell, Token};
use crate::durability::{DurabilityProvider, NodeDurability};
use crate::keys::Key;
use crate::node::{CopyStore, StorageNode};

/// One row returned by a scan: key, its LL/SC token, and the value.
pub type ScanRow = (Key, Token, Bytes);

/// Precondition of a conditional write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expect {
    /// The key must not exist (insert).
    Absent,
    /// The key must exist with exactly this token (LL/SC store-conditional).
    Token(Token),
    /// No precondition (unconditional upsert; used for loading and for
    /// single-writer state like commit-manager snapshots).
    Any,
}

/// The mutation of a write operation.
#[derive(Clone, Debug)]
pub enum Mutation {
    /// Store these bytes.
    Put(Bytes),
    /// Remove the key.
    Delete,
}

/// One logical partition of the key space with its replica copies.
struct LogicalPartition {
    /// Monotonic token source for this partition. Shared by all copies so a
    /// fail-over never reuses a token.
    next_token: AtomicU64,
    /// Acked-mutation sequence: bumped (under the master copy's write lock)
    /// for every mutation the partition acknowledges. A copy whose
    /// `applied_seq` equals this is *fresh*; only fresh copies serve.
    seq: AtomicU64,
    /// Hosting nodes; the first *alive and fresh* entry is the master.
    assignment: RwLock<Vec<SnId>>,
    /// Physical copies, indexed by node id.
    copies: RwLock<Vec<(SnId, Arc<CopyStore>)>>,
}

impl LogicalPartition {
    fn copy_of(&self, node: SnId) -> Option<Arc<CopyStore>> {
        self.copies.read().iter().find(|(id, _)| *id == node).map(|(_, c)| Arc::clone(c))
    }
}

/// Cluster construction parameters.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Number of storage nodes.
    pub nodes: usize,
    /// Replication factor: number of copies of every partition (1 = no
    /// redundancy). Matches the paper's RF1/RF2/RF3 configurations.
    pub replication_factor: usize,
    /// Logical partitions. More partitions = finer write-lock granularity.
    pub partitions: usize,
    /// Optional per-node memory capacity in bytes (drives Fig 7).
    pub node_capacity_bytes: Option<usize>,
    /// Fabric connecting PNs and SNs.
    pub profile: NetworkProfile,
    /// Optional persistence tier: every acked mutation is recorded to the
    /// hosting nodes' engines, and [`StoreCluster::restart_node_from_log`]
    /// can rebuild a node from its log. `None` (the default) keeps the
    /// store pure in-memory.
    pub durability: Option<Arc<dyn DurabilityProvider>>,
}

impl StoreConfig {
    /// Reasonable defaults for `nodes` storage nodes.
    pub fn new(nodes: usize) -> Self {
        StoreConfig {
            nodes,
            replication_factor: 1,
            partitions: (nodes * 8).max(8),
            node_capacity_bytes: None,
            profile: NetworkProfile::infiniband(),
            durability: None,
        }
    }

    /// Set the replication factor.
    pub fn replication(mut self, rf: usize) -> Self {
        self.replication_factor = rf;
        self
    }

    /// Set per-node capacity.
    pub fn capacity(mut self, bytes: usize) -> Self {
        self.node_capacity_bytes = Some(bytes);
        self
    }

    /// Set the network profile.
    pub fn profile(mut self, profile: NetworkProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Attach a persistence tier.
    pub fn durability(mut self, provider: Arc<dyn DurabilityProvider>) -> Self {
        self.durability = Some(provider);
        self
    }
}

/// The distributed record store.
pub struct StoreCluster {
    nodes: Vec<Arc<StorageNode>>,
    partitions: Vec<LogicalPartition>,
    profile: NetworkProfile,
    replication_factor: usize,
    durability: Option<Arc<dyn DurabilityProvider>>,
    /// Per-node durability engines (all `None` without a provider).
    engines: RwLock<Vec<Option<Arc<dyn NodeDurability>>>>,
}

impl StoreCluster {
    /// Build a cluster per `config`. Partition `p` is hosted on nodes
    /// `p % n, (p+1) % n, ...` (RF entries), mirroring RamCloud's
    /// master/backup placement. Panics on a durability recovery error; use
    /// [`StoreCluster::open`] to handle those.
    pub fn new(config: StoreConfig) -> Arc<Self> {
        StoreCluster::open(config).expect("store durability recovery failed")
    }

    /// Like [`StoreCluster::new`], but surfaces durability recovery errors
    /// (corrupt checkpoint, unreadable data dir) instead of panicking. With
    /// a provider configured, each node's engine is opened and any
    /// recovered partition images are loaded before the cluster serves.
    pub fn open(config: StoreConfig) -> Result<Arc<Self>> {
        assert!(config.nodes > 0, "need at least one storage node");
        assert!(
            config.replication_factor >= 1 && config.replication_factor <= config.nodes,
            "replication factor must be between 1 and the node count"
        );
        let nodes: Vec<Arc<StorageNode>> = (0..config.nodes)
            .map(|i| Arc::new(StorageNode::new(SnId(i as u32), config.node_capacity_bytes)))
            .collect();
        let partitions: Vec<LogicalPartition> = (0..config.partitions)
            .map(|p| {
                let hosts: Vec<SnId> = (0..config.replication_factor)
                    .map(|r| SnId(((p + r) % config.nodes) as u32))
                    .collect();
                let copies = hosts.iter().map(|&id| (id, Arc::new(CopyStore::new()))).collect();
                LogicalPartition {
                    next_token: AtomicU64::new(1),
                    seq: AtomicU64::new(0),
                    assignment: RwLock::new(hosts),
                    copies: RwLock::new(copies),
                }
            })
            .collect();
        let cluster = Arc::new(StoreCluster {
            engines: RwLock::new(vec![None; nodes.len()]),
            nodes,
            partitions,
            profile: config.profile,
            replication_factor: config.replication_factor,
            durability: config.durability,
        });
        if cluster.durability.is_some() {
            for i in 0..cluster.nodes.len() {
                cluster.load_node_from_log(SnId(i as u32))?;
            }
        }
        Ok(cluster)
    }

    /// Open `id`'s durability engine and load whatever it recovered into
    /// the node's copies. The partition's acked sequence only ratchets up,
    /// so a copy recovered behind its peers is correctly stale.
    fn load_node_from_log(&self, id: SnId) -> Result<()> {
        let provider = self.durability.as_ref().expect("durability configured");
        let recovered = provider.open_node(id)?;
        let node = self.node(id);
        let mut total = 0usize;
        for image in recovered.partitions {
            let Some(part) = self.partitions.get(image.pid as usize) else { continue };
            // Placement is deterministic, but a partition re-homed by
            // restore_replication in a previous life may no longer map
            // here; those images are simply not loaded.
            let Some(copy) = part.copy_of(id) else { continue };
            let mut map = copy.map.write();
            map.clear();
            for (key, cell) in image.entries {
                total += Cell::footprint(key.len(), cell.value.len());
                map.insert(key, cell);
            }
            copy.applied_seq.store(image.applied_seq, Ordering::Release);
            part.seq.fetch_max(image.applied_seq, Ordering::Relaxed);
            part.next_token.fetch_max(image.max_token + 1, Ordering::Relaxed);
        }
        node.reset_accounting(total);
        self.engines.write()[id.raw() as usize] = Some(recovered.engine);
        Ok(())
    }

    /// The durability engine serving `id`, if any.
    fn engine_of(&self, id: SnId) -> Option<Arc<dyn NodeDurability>> {
        self.durability.as_ref()?;
        self.engines.read()[id.raw() as usize].clone()
    }

    /// Whether a persistence tier is attached.
    pub fn durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The fabric profile the cluster was built with.
    pub fn network_profile(&self) -> &NetworkProfile {
        &self.profile
    }

    /// Configured replication factor.
    pub fn replication_factor(&self) -> usize {
        self.replication_factor
    }

    /// All storage nodes.
    pub fn nodes(&self) -> &[Arc<StorageNode>] {
        &self.nodes
    }

    /// Number of logical partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Total bytes stored across all alive nodes.
    pub fn total_used_bytes(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_alive()).map(|n| n.used_bytes()).sum()
    }

    #[inline]
    fn partition_id(&self, key: &[u8]) -> usize {
        // FNV-1a; cheap, uniform enough for routing.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in key {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        (h % self.partitions.len() as u64) as usize
    }

    /// Partition a key routes to (exposed for placement-aware tests).
    pub fn route(&self, key: &[u8]) -> PartitionId {
        PartitionId(self.partition_id(key) as u32)
    }

    fn node(&self, id: SnId) -> &Arc<StorageNode> {
        &self.nodes[id.raw() as usize]
    }

    /// Master (first alive *fresh* host) and alive replica count of a
    /// partition. A copy is fresh when it has applied every acked mutation;
    /// an alive-but-stale copy (revived while no fresh peer was up) must
    /// not serve, or it would resurrect data the partition already moved
    /// past. The check takes the copy's read lock briefly, which fences it
    /// against an in-flight write on the same copy.
    fn master_of(&self, pid: usize) -> Result<(SnId, usize)> {
        let part = &self.partitions[pid];
        let assignment = part.assignment.read();
        let mut master = None;
        let mut alive = 0usize;
        let mut saw_stale = false;
        for &host in assignment.iter() {
            if !self.node(host).is_alive() {
                continue;
            }
            alive += 1;
            if master.is_some() {
                continue;
            }
            let Some(copy) = part.copy_of(host) else { continue };
            let _guard = copy.map.read();
            if copy.applied_seq.load(Ordering::Acquire) == part.seq.load(Ordering::Acquire) {
                master = Some(host);
            } else {
                saw_stale = true;
            }
        }
        match master {
            Some(m) => Ok((m, alive - 1)),
            None if saw_stale => Err(Error::Unavailable(format!(
                "no fresh replica for partition {pid} (alive copies are stale)"
            ))),
            None => Err(Error::Unavailable(format!("no alive replica for partition {pid}"))),
        }
    }

    // ---------------------------------------------------------------
    // Server-side operations (no metering; the client layer charges).
    // ---------------------------------------------------------------

    /// Read a key from the partition master. Returns `(token, value)`.
    pub fn srv_read(&self, key: &[u8]) -> Result<Option<(Token, Bytes)>> {
        let pid = self.partition_id(key);
        let (master, _) = self.master_of(pid)?;
        let copy = self.partitions[pid]
            .copy_of(master)
            .ok_or_else(|| Error::Unavailable("master copy missing".into()))?;
        let map = copy.map.read();
        Ok(map.get(key).map(|c| (c.token, c.value.clone())))
    }

    /// Apply a conditional write. Returns the new token for puts, `None`
    /// for deletes. The write is applied to the master and *synchronously*
    /// to every alive replica while the master's write lock is held, so
    /// copies are always byte-identical (in-memory storage requires
    /// synchronous replication, §2.3). Also returns the number of replicas
    /// written, so the caller can charge replication cost.
    pub fn srv_write(
        &self,
        key: &Key,
        expect: Expect,
        mutation: Mutation,
    ) -> Result<(Option<Token>, usize)> {
        let pid = self.partition_id(key);
        let (master, replicas) = self.master_of(pid)?;
        let part = &self.partitions[pid];
        let master_copy =
            part.copy_of(master).ok_or_else(|| Error::Unavailable("master copy missing".into()))?;

        let mut map = master_copy.map.write();
        let existing = map.get(key.as_ref());
        match (expect, existing) {
            (Expect::Absent, Some(_)) => return Err(Error::Conflict),
            (Expect::Token(_), None) => return Err(Error::Conflict),
            (Expect::Token(t), Some(c)) if c.token != t => return Err(Error::Conflict),
            _ => {}
        }

        let old_footprint =
            existing.map(|c| Cell::footprint(key.len(), c.value.len()) as isize).unwrap_or(0);

        match mutation {
            Mutation::Put(value) => {
                let new_footprint = Cell::footprint(key.len(), value.len()) as isize;
                let delta = new_footprint - old_footprint;
                // Capacity check against every hosting alive node before the
                // write becomes visible anywhere.
                if delta > 0 {
                    let assignment = part.assignment.read();
                    for &host in assignment.iter() {
                        let n = self.node(host);
                        if n.is_alive() && n.would_exceed(delta as usize) {
                            return Err(Error::CapacityExceeded {
                                node: host.raw(),
                                capacity: n.capacity_bytes().unwrap_or(0),
                            });
                        }
                    }
                }
                let token = part.next_token.fetch_add(1, Ordering::Relaxed);
                let cell = Cell { token, value };
                let seq = self.alloc_seq_and_record(part, pid, master, key, Some(&cell))?;
                map.insert(key.clone(), cell.clone());
                self.node(master).account(delta);
                master_copy.applied_seq.store(seq, Ordering::Release);
                // Replicas: same cell, while still holding the master lock.
                self.replicate(part, pid, master, seq, key, Some(cell), delta);
                Ok((Some(token), replicas))
            }
            Mutation::Delete => {
                if existing.is_none() {
                    // Deleting a missing key unconditionally is a no-op.
                    return if expect == Expect::Any {
                        Ok((None, 0))
                    } else {
                        Err(Error::Conflict)
                    };
                }
                let seq = self.alloc_seq_and_record(part, pid, master, key, None)?;
                map.remove(key.as_ref());
                self.node(master).account(-old_footprint);
                master_copy.applied_seq.store(seq, Ordering::Release);
                self.replicate(part, pid, master, seq, key, None, -old_footprint);
                Ok((None, replicas))
            }
        }
    }

    /// Record one acked mutation to `host`'s durability engine, if any.
    fn record_durable(
        &self,
        pid: usize,
        host: SnId,
        seq: u64,
        key: &Key,
        cell: Option<&Cell>,
    ) -> Result<()> {
        match self.engine_of(host) {
            Some(engine) => engine.record(pid as u32, seq, key, cell),
            None => Ok(()),
        }
    }

    /// Allocate the partition's next acked sequence and record the mutation
    /// to the master's durability engine *before* anything becomes visible:
    /// an engine error must not leave a mutation applied in RAM that the
    /// caller sees fail (a later restart-from-log or a `mark_committed`
    /// rollback would then disagree with live state). On error the sequence
    /// allocation is rolled back — safe because the caller holds the master
    /// copy's write lock, and only a fresh-copy master allocates, so no
    /// concurrent writer can have advanced `seq` meanwhile.
    fn alloc_seq_and_record(
        &self,
        part: &LogicalPartition,
        pid: usize,
        master: SnId,
        key: &Key,
        cell: Option<&Cell>,
    ) -> Result<u64> {
        let seq = part.seq.fetch_add(1, Ordering::AcqRel) + 1;
        if let Err(e) = self.record_durable(pid, master, seq, key, cell) {
            part.seq.store(seq - 1, Ordering::Release);
            return Err(e);
        }
        Ok(seq)
    }

    /// Apply a mutation at `seq` to every alive replica that is current
    /// through `seq - 1`. A stale replica (revived without a fresh peer to
    /// re-sync from) is skipped — applying the new write would not make it
    /// fresh, and advancing its `applied_seq` would falsely mark it so.
    #[allow(clippy::too_many_arguments)]
    fn replicate(
        &self,
        part: &LogicalPartition,
        pid: usize,
        master: SnId,
        seq: u64,
        key: &Key,
        cell: Option<Cell>,
        delta: isize,
    ) {
        let copies = part.copies.read();
        for (host, copy) in copies.iter() {
            if *host == master || !self.node(*host).is_alive() {
                continue;
            }
            let mut m = copy.map.write();
            if copy.applied_seq.load(Ordering::Acquire) != seq - 1 {
                continue;
            }
            match &cell {
                Some(c) => {
                    m.insert(key.clone(), c.clone());
                }
                None => {
                    m.remove(key.as_ref());
                }
            }
            copy.applied_seq.store(seq, Ordering::Release);
            drop(m);
            self.node(*host).account(delta);
            // A replica engine that cannot log the record is equivalent to a
            // trailing batched-fsync log: the copy stays fresh in RAM, and a
            // later restart-from-log recovers behind and re-syncs from a
            // fresh peer. Propagating the error would abort this loop and
            // leave the *remaining* replicas permanently stale instead.
            if self.record_durable(pid, *host, seq, key, cell.as_ref()).is_err() {
                tell_obs::incr(tell_obs::Counter::DurableReplicaRecordsDropped);
            }
        }
    }

    /// Atomic fetch-and-add on a counter cell (u64, little-endian). Missing
    /// counters start at zero. Returns the post-increment value.
    pub fn srv_increment(&self, key: &Key, delta: u64) -> Result<u64> {
        let pid = self.partition_id(key);
        let (master, _) = self.master_of(pid)?;
        let part = &self.partitions[pid];
        let master_copy =
            part.copy_of(master).ok_or_else(|| Error::Unavailable("master copy missing".into()))?;
        let mut map = master_copy.map.write();
        let current = match map.get(key.as_ref()) {
            Some(c) => {
                let bytes: [u8; 8] = c
                    .value
                    .as_ref()
                    .try_into()
                    .map_err(|_| Error::corrupt("counter cell is not 8 bytes"))?;
                u64::from_le_bytes(bytes)
            }
            None => 0,
        };
        let new = current.checked_add(delta).ok_or_else(|| Error::invalid("counter overflow"))?;
        let token = part.next_token.fetch_add(1, Ordering::Relaxed);
        let cell = Cell { token, value: Bytes::copy_from_slice(&new.to_le_bytes()) };
        let delta_fp =
            if map.contains_key(key.as_ref()) { 0 } else { Cell::footprint(key.len(), 8) as isize };
        let seq = self.alloc_seq_and_record(part, pid, master, key, Some(&cell))?;
        map.insert(key.clone(), cell.clone());
        self.node(master).account(delta_fp);
        master_copy.applied_seq.store(seq, Ordering::Release);
        self.replicate(part, pid, master, seq, key, Some(cell), delta_fp);
        Ok(new)
    }

    /// Ordered scan of `[start, end)` across all partitions (scatter-gather
    /// from every master, merged). Returns at most `limit` entries in
    /// ascending key order, plus the number of distinct master nodes
    /// contacted (for cost accounting).
    pub fn srv_scan(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
        reverse: bool,
    ) -> Result<(Vec<ScanRow>, usize)> {
        let mut out: Vec<(Key, Token, Bytes)> = Vec::new();
        let mut masters = std::collections::HashSet::new();
        for pid in 0..self.partitions.len() {
            let (master, _) = self.master_of(pid)?;
            masters.insert(master);
            let copy = self.partitions[pid]
                .copy_of(master)
                .ok_or_else(|| Error::Unavailable("master copy missing".into()))?;
            let map = copy.map.read();
            let range: Box<dyn Iterator<Item = (&Bytes, &Cell)>> = match end {
                Some(e) => Box::new(map.range::<[u8], _>((
                    std::ops::Bound::Included(start),
                    std::ops::Bound::Excluded(e),
                ))),
                None => Box::new(map.range::<[u8], _>((
                    std::ops::Bound::Included(start),
                    std::ops::Bound::Unbounded,
                ))),
            };
            for (k, c) in range {
                out.push((k.clone(), c.token, c.value.clone()));
            }
        }
        if reverse {
            out.sort_by(|a, b| b.0.cmp(&a.0));
        } else {
            out.sort_by(|a, b| a.0.cmp(&b.0));
        }
        out.truncate(limit);
        Ok((out, masters.len()))
    }

    // ---------------------------------------------------------------
    // Failure handling.
    // ---------------------------------------------------------------

    /// Crash-stop a node. Partitions it mastered fail over to their first
    /// alive replica; with RF1 those partitions become unavailable.
    pub fn kill_node(&self, id: SnId) {
        self.node(id).kill();
    }

    /// Revive a failed node, re-syncing every copy it hosts from a *fresh*
    /// peer so it is consistent before serving again. Copies with no fresh
    /// peer to sync from are left untouched: if mutations were acked while
    /// the node was down they stay stale (and unserved); if none were, they
    /// are still fresh and serve immediately.
    pub fn revive_node(&self, id: SnId) {
        let node = self.node(id);
        let mut total = 0usize;
        for (pid, part) in self.partitions.iter().enumerate() {
            let Some(copy) = part.copy_of(id) else { continue };
            self.resync_copy_from_fresh_peer(pid, part, id, &copy);
            total += copy.footprint();
        }
        node.reset_accounting(total);
        node.revive();
    }

    /// If a fresh alive peer of partition `pid` exists, clone its state
    /// into `copy` (hosted on `id`) and re-align `id`'s durability log.
    fn resync_copy_from_fresh_peer(
        &self,
        pid: usize,
        part: &LogicalPartition,
        id: SnId,
        copy: &Arc<CopyStore>,
    ) {
        let assignment = part.assignment.read();
        let peers: Vec<SnId> =
            assignment.iter().filter(|h| **h != id && self.node(**h).is_alive()).copied().collect();
        drop(assignment);
        for peer in peers {
            let Some(src) = part.copy_of(peer) else { continue };
            let src_map = src.map.read();
            let src_seq = src.applied_seq.load(Ordering::Acquire);
            if src_seq != part.seq.load(Ordering::Acquire) {
                continue; // stale peer: not a legal sync source
            }
            let snapshot: BTreeMap<Bytes, Cell> = src_map.clone();
            drop(src_map);
            *copy.map.write() = snapshot.clone();
            copy.applied_seq.store(src_seq, Ordering::Release);
            if let Some(engine) = self.engine_of(id) {
                let entries: Vec<(Bytes, Cell)> = snapshot.into_iter().collect();
                // A re-alignment failure is safe to tolerate: the log's
                // recovered applied_seq stays behind the partition's, so a
                // future restart-from-log yields a correctly-stale copy
                // rather than resurrecting this state inconsistently.
                let _ = engine.reset_partition(pid as u32, src_seq, &entries);
            }
            return;
        }
    }

    /// Re-establish the replication factor after failures by placing new
    /// copies of under-replicated partitions on alive nodes ("the system
    /// re-organizes itself and restores the replication level", §4.4.2).
    /// Returns the number of copies created.
    pub fn restore_replication(&self) -> usize {
        let mut created = 0;
        for (pid, part) in self.partitions.iter().enumerate() {
            let mut copies = part.copies.write();
            let alive: Vec<SnId> =
                copies.iter().map(|(h, _)| *h).filter(|h| self.node(*h).is_alive()).collect();
            if alive.len() >= self.replication_factor || alive.is_empty() {
                continue;
            }
            let have: std::collections::HashSet<SnId> = copies.iter().map(|(h, _)| *h).collect();
            let candidates: Vec<SnId> = self
                .nodes
                .iter()
                .filter(|n| n.is_alive() && !have.contains(&n.id))
                .map(|n| n.id)
                .collect();
            // New copies must be cloned from a *fresh* source, or the new
            // replica would be born already holding resurrected state.
            let part_seq = part.seq.load(Ordering::Acquire);
            let Some(src) = copies
                .iter()
                .filter(|(h, _)| alive.contains(h))
                .find(|(_, c)| c.applied_seq.load(Ordering::Acquire) == part_seq)
                .map(|(_, c)| Arc::clone(c))
            else {
                continue;
            };
            for target in candidates.into_iter().take(self.replication_factor - alive.len()) {
                let snapshot: BTreeMap<Bytes, Cell> = src.map.read().clone();
                let src_seq = src.applied_seq.load(Ordering::Acquire);
                let fp: usize =
                    snapshot.iter().map(|(k, c)| Cell::footprint(k.len(), c.value.len())).sum();
                let new_copy = Arc::new(CopyStore::new());
                *new_copy.map.write() = snapshot.clone();
                new_copy.applied_seq.store(src_seq, Ordering::Release);
                copies.push((target, new_copy));
                part.assignment.write().push(target);
                self.node(target).account(fp as isize);
                if let Some(engine) = self.engine_of(target) {
                    let entries: Vec<(Bytes, Cell)> = snapshot.into_iter().collect();
                    let _ = engine.reset_partition(pid as u32, src_seq, &entries);
                }
                created += 1;
            }
        }
        created
    }

    /// Restart a node *from its durability log* instead of a peer re-sync:
    /// the crash-recovery path for a node whose RAM is gone. Its engine is
    /// closed and re-opened (replaying checkpoint + segments), every copy
    /// it hosts is rebuilt from the recovered images, and copies that are
    /// behind the partition's acked sequence are then re-synced from fresh
    /// peers where available. With every copy-holder of a partition dead,
    /// this is the only path that brings the partition back without data
    /// loss.
    pub fn restart_node_from_log(&self, id: SnId) -> Result<()> {
        if self.durability.is_none() {
            return Err(Error::invalid("restart_node_from_log requires a durability provider"));
        }
        // Drop the old engine handle first so the provider can re-open the
        // node's files exclusively (and its background threads stop).
        self.engines.write()[id.raw() as usize] = None;
        // A restart models RAM loss: wipe every hosted copy before loading
        // the recovered images.
        for part in &self.partitions {
            if let Some(copy) = part.copy_of(id) {
                copy.map.write().clear();
                copy.applied_seq.store(0, Ordering::Release);
            }
        }
        self.load_node_from_log(id)?;
        // Recovered-but-behind copies catch up from fresh peers (the log
        // may trail under a batched fsync policy).
        for (pid, part) in self.partitions.iter().enumerate() {
            let Some(copy) = part.copy_of(id) else { continue };
            if copy.applied_seq.load(Ordering::Acquire) != part.seq.load(Ordering::Acquire) {
                self.resync_copy_from_fresh_peer(pid, part, id, &copy);
            }
        }
        let node = self.node(id);
        let total: usize =
            self.partitions.iter().filter_map(|p| p.copy_of(id)).map(|c| c.footprint()).sum();
        node.reset_accounting(total);
        node.revive();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(nodes: usize, rf: usize) -> Arc<StoreCluster> {
        StoreCluster::new(StoreConfig::new(nodes).replication(rf))
    }

    fn k(s: &str) -> Key {
        Bytes::copy_from_slice(s.as_bytes())
    }
    fn v(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn write_then_read() {
        let c = cluster(3, 1);
        let (t, _) = c.srv_write(&k("a"), Expect::Absent, Mutation::Put(v("1"))).unwrap();
        let (token, val) = c.srv_read(b"a").unwrap().unwrap();
        assert_eq!(Some(token), t);
        assert_eq!(val, v("1"));
        assert_eq!(c.srv_read(b"missing").unwrap(), None);
    }

    #[test]
    fn insert_twice_conflicts() {
        let c = cluster(1, 1);
        c.srv_write(&k("a"), Expect::Absent, Mutation::Put(v("1"))).unwrap();
        let err = c.srv_write(&k("a"), Expect::Absent, Mutation::Put(v("2"))).unwrap_err();
        assert_eq!(err, Error::Conflict);
    }

    #[test]
    fn store_conditional_detects_intervening_write() {
        let c = cluster(1, 1);
        c.srv_write(&k("a"), Expect::Absent, Mutation::Put(v("1"))).unwrap();
        let (t1, _) = c.srv_read(b"a").unwrap().unwrap();
        // Another writer sneaks in.
        c.srv_write(&k("a"), Expect::Token(t1), Mutation::Put(v("2"))).unwrap();
        // First writer's SC must now fail.
        let err = c.srv_write(&k("a"), Expect::Token(t1), Mutation::Put(v("3"))).unwrap_err();
        assert_eq!(err, Error::Conflict);
    }

    #[test]
    fn llsc_solves_aba() {
        // Delete + re-insert of the *same value* must still fail an SC that
        // load-linked before the delete (§4.1: LL/SC is stronger than CAS).
        let c = cluster(1, 1);
        c.srv_write(&k("a"), Expect::Absent, Mutation::Put(v("same"))).unwrap();
        let (t1, val1) = c.srv_read(b"a").unwrap().unwrap();
        c.srv_write(&k("a"), Expect::Token(t1), Mutation::Delete).unwrap();
        c.srv_write(&k("a"), Expect::Absent, Mutation::Put(v("same"))).unwrap();
        let (t2, val2) = c.srv_read(b"a").unwrap().unwrap();
        assert_eq!(val1, val2, "value is byte-identical (the ABA scenario)");
        assert_ne!(t1, t2, "but the token moved");
        let err = c.srv_write(&k("a"), Expect::Token(t1), Mutation::Put(v("x"))).unwrap_err();
        assert_eq!(err, Error::Conflict);
    }

    #[test]
    fn conditional_delete() {
        let c = cluster(1, 1);
        c.srv_write(&k("a"), Expect::Absent, Mutation::Put(v("1"))).unwrap();
        let (t, _) = c.srv_read(b"a").unwrap().unwrap();
        assert_eq!(
            c.srv_write(&k("a"), Expect::Token(t + 99), Mutation::Delete).unwrap_err(),
            Error::Conflict
        );
        c.srv_write(&k("a"), Expect::Token(t), Mutation::Delete).unwrap();
        assert_eq!(c.srv_read(b"a").unwrap(), None);
        // Unconditional delete of a missing key is a no-op.
        let (none, _) = c.srv_write(&k("a"), Expect::Any, Mutation::Delete).unwrap();
        assert_eq!(none, None);
        // Conditional delete of a missing key conflicts.
        assert_eq!(
            c.srv_write(&k("a"), Expect::Token(t), Mutation::Delete).unwrap_err(),
            Error::Conflict
        );
    }

    #[test]
    fn increment_is_sequential() {
        let c = cluster(2, 1);
        let key = crate::keys::counter("tid");
        assert_eq!(c.srv_increment(&key, 5).unwrap(), 5);
        assert_eq!(c.srv_increment(&key, 256).unwrap(), 261);
        let (_, raw) = c.srv_read(&key).unwrap().unwrap();
        assert_eq!(u64::from_le_bytes(raw.as_ref().try_into().unwrap()), 261);
    }

    #[test]
    fn scan_is_ordered_across_partitions() {
        let c = cluster(4, 1);
        for i in 0..50u32 {
            let key = Bytes::from(format!("scan/{i:04}"));
            c.srv_write(&key, Expect::Absent, Mutation::Put(v("x"))).unwrap();
        }
        let (rows, masters) = c.srv_scan(b"scan/", Some(b"scan0"), 1000, false).unwrap();
        assert_eq!(rows.len(), 50);
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(masters >= 1);
        // Reverse scan with limit.
        let (rev, _) = c.srv_scan(b"scan/", Some(b"scan0"), 10, true).unwrap();
        assert_eq!(rev.len(), 10);
        assert!(rev.windows(2).all(|w| w[0].0 > w[1].0));
        assert_eq!(rev[0].0, Bytes::from("scan/0049"));
    }

    #[test]
    fn failover_to_replica_preserves_data() {
        let c = cluster(3, 2);
        for i in 0..100u32 {
            let key = Bytes::from(format!("k{i}"));
            c.srv_write(&key, Expect::Absent, Mutation::Put(v("d"))).unwrap();
        }
        c.kill_node(SnId(0));
        // Every key must still be readable (RF2 tolerates one failure).
        for i in 0..100u32 {
            let key = format!("k{i}");
            assert!(c.srv_read(key.as_bytes()).unwrap().is_some(), "lost {key}");
        }
        // And writable: tokens keep increasing after failover.
        let (t, _) = c.srv_read(b"k1").unwrap().unwrap();
        c.srv_write(&k("k1"), Expect::Token(t), Mutation::Put(v("new"))).unwrap();
    }

    #[test]
    fn rf1_failure_makes_some_partitions_unavailable() {
        let c = cluster(2, 1);
        for i in 0..64u32 {
            let key = Bytes::from(format!("k{i}"));
            c.srv_write(&key, Expect::Absent, Mutation::Put(v("d"))).unwrap();
        }
        c.kill_node(SnId(0));
        let mut unavailable = 0;
        for i in 0..64u32 {
            if c.srv_read(format!("k{i}").as_bytes()).is_err() {
                unavailable += 1;
            }
        }
        assert!(unavailable > 0, "RF1 cannot survive a node failure");
    }

    #[test]
    fn revive_resyncs_stale_copies() {
        let c = cluster(2, 2);
        c.srv_write(&k("a"), Expect::Absent, Mutation::Put(v("1"))).unwrap();
        c.kill_node(SnId(0));
        // Update while node 0 is down: its copy goes stale.
        let (t, _) = c.srv_read(b"a").unwrap().unwrap();
        c.srv_write(&k("a"), Expect::Token(t), Mutation::Put(v("2"))).unwrap();
        c.revive_node(SnId(0));
        c.kill_node(SnId(1));
        // Node 0 is master again and must serve the *new* value.
        let (_, val) = c.srv_read(b"a").unwrap().unwrap();
        assert_eq!(val, v("2"));
    }

    #[test]
    fn restore_replication_creates_new_copies() {
        let c = cluster(3, 2);
        for i in 0..30u32 {
            let key = Bytes::from(format!("k{i}"));
            c.srv_write(&key, Expect::Absent, Mutation::Put(v("d"))).unwrap();
        }
        c.kill_node(SnId(0));
        let created = c.restore_replication();
        assert!(created > 0);
        // Now even a second failure must not lose data.
        c.kill_node(SnId(1));
        for i in 0..30u32 {
            let key = format!("k{i}");
            assert!(c.srv_read(key.as_bytes()).unwrap().is_some(), "lost {key}");
        }
    }

    #[test]
    fn capacity_is_enforced() {
        let c = StoreCluster::new(StoreConfig::new(1).capacity(4096));
        let big = Bytes::from(vec![0u8; 2000]);
        c.srv_write(&k("a"), Expect::Absent, Mutation::Put(big.clone())).unwrap();
        let err = c.srv_write(&k("b"), Expect::Absent, Mutation::Put(Bytes::from(vec![0u8; 3000])));
        assert!(matches!(err, Err(Error::CapacityExceeded { .. })));
        // Overwriting in place (same size) still fits.
        let (t, _) = c.srv_read(b"a").unwrap().unwrap();
        c.srv_write(&k("a"), Expect::Token(t), Mutation::Put(big)).unwrap();
        // Deleting frees space.
        c.srv_write(&k("a"), Expect::Any, Mutation::Delete).unwrap();
        c.srv_write(&k("b"), Expect::Absent, Mutation::Put(Bytes::from(vec![0u8; 3000]))).unwrap();
    }

    #[test]
    fn replication_keeps_copies_identical() {
        let c = cluster(3, 3);
        c.srv_write(&k("x"), Expect::Absent, Mutation::Put(v("1"))).unwrap();
        let (t0, v0) = c.srv_read(b"x").unwrap().unwrap();
        // Kill the master twice; every surviving replica must agree.
        c.kill_node(SnId(c.route(b"x").raw() % 3));
        let (t1, v1) = c.srv_read(b"x").unwrap().unwrap();
        assert_eq!((t0, v0), (t1, v1));
    }

    #[test]
    fn stale_revived_copy_is_unavailable_not_resurrected() {
        // RF2 on 2 nodes. Kill n0, ack a write (only n1 applied it), kill
        // n1, revive n0 with no fresh peer: n0 is alive but stale and must
        // refuse to serve the partition rather than hand back old state.
        let c = cluster(2, 2);
        c.srv_write(&k("a"), Expect::Absent, Mutation::Put(v("old"))).unwrap();
        c.kill_node(SnId(0));
        let (t, _) = c.srv_read(b"a").unwrap().unwrap();
        c.srv_write(&k("a"), Expect::Token(t), Mutation::Put(v("new"))).unwrap();
        c.kill_node(SnId(1));
        c.revive_node(SnId(0));
        let err = c.srv_read(b"a").unwrap_err();
        assert!(matches!(err, Error::Unavailable(_)), "stale copy served: {err:?}");
        // The fresh copy-holder coming back makes the partition serve the
        // acked value again (and n0 re-syncs next time it revives).
        c.revive_node(SnId(1));
        let (_, val) = c.srv_read(b"a").unwrap().unwrap();
        assert_eq!(val, v("new"));
    }

    // -----------------------------------------------------------------
    // Durability-seam tests against an in-memory mock provider (the real
    // log-structured engine is exercised from tell-durable's tests).
    // -----------------------------------------------------------------

    use crate::durability::{
        DurabilityProvider, NodeDurability, RecoveredNode, RecoveredPartition,
    };
    use parking_lot::Mutex;
    use std::collections::HashMap;

    #[derive(Debug)]
    enum MemOp {
        Record(u32, u64, Bytes, Option<Cell>),
        Reset(u32, u64, Vec<(Bytes, Cell)>),
    }

    /// In-memory stand-in for a persistence tier: one op log per node.
    /// Nodes listed in `failing` get an erroring engine (I/O fault stand-in).
    #[derive(Debug, Default)]
    struct MemProvider {
        logs: Arc<Mutex<HashMap<u32, Vec<MemOp>>>>,
        failing: Arc<Mutex<std::collections::HashSet<u32>>>,
    }

    #[derive(Debug)]
    struct MemEngine {
        logs: Arc<Mutex<HashMap<u32, Vec<MemOp>>>>,
        failing: Arc<Mutex<std::collections::HashSet<u32>>>,
        node: u32,
    }

    impl NodeDurability for MemEngine {
        fn record(&self, pid: u32, seq: u64, key: &Bytes, cell: Option<&Cell>) -> Result<()> {
            if self.failing.lock().contains(&self.node) {
                return Err(Error::Unavailable("engine i/o error".into()));
            }
            self.logs.lock().entry(self.node).or_default().push(MemOp::Record(
                pid,
                seq,
                key.clone(),
                cell.cloned(),
            ));
            Ok(())
        }
        fn sync(&self) -> Result<()> {
            Ok(())
        }
        fn reset_partition(&self, pid: u32, seq: u64, entries: &[(Bytes, Cell)]) -> Result<()> {
            self.logs.lock().entry(self.node).or_default().push(MemOp::Reset(
                pid,
                seq,
                entries.to_vec(),
            ));
            Ok(())
        }
    }

    impl DurabilityProvider for MemProvider {
        fn open_node(&self, node: SnId) -> Result<RecoveredNode> {
            let mut parts: BTreeMap<u32, (u64, u64, BTreeMap<Bytes, Cell>)> = BTreeMap::new();
            let logs = self.logs.lock();
            for op in logs.get(&node.raw()).into_iter().flatten() {
                match op {
                    MemOp::Record(pid, seq, key, cell) => {
                        let p = parts.entry(*pid).or_default();
                        p.0 = p.0.max(*seq);
                        match cell {
                            Some(c) => {
                                p.1 = p.1.max(c.token);
                                p.2.insert(key.clone(), c.clone());
                            }
                            None => {
                                p.2.remove(key);
                            }
                        }
                    }
                    MemOp::Reset(pid, seq, entries) => {
                        let p = parts.entry(*pid).or_default();
                        p.0 = p.0.max(*seq);
                        p.2 = entries.iter().cloned().collect();
                        for (_, c) in entries {
                            p.1 = p.1.max(c.token);
                        }
                    }
                }
            }
            let partitions = parts
                .into_iter()
                .map(|(pid, (applied_seq, max_token, map))| RecoveredPartition {
                    pid,
                    applied_seq,
                    max_token,
                    entries: map.into_iter().collect(),
                })
                .collect();
            Ok(RecoveredNode {
                engine: Arc::new(MemEngine {
                    logs: Arc::clone(&self.logs),
                    failing: Arc::clone(&self.failing),
                    node: node.raw(),
                }),
                partitions,
            })
        }
    }

    fn durable_cluster(nodes: usize, rf: usize) -> (Arc<StoreCluster>, Arc<MemProvider>) {
        let provider = Arc::new(MemProvider::default());
        let c = StoreCluster::new(
            StoreConfig::new(nodes).replication(rf).durability(Arc::clone(&provider) as _),
        );
        (c, provider)
    }

    #[test]
    fn restart_from_log_rebuilds_a_fully_dead_partition() {
        let (c, _provider) = durable_cluster(1, 1);
        c.srv_write(&k("keep"), Expect::Absent, Mutation::Put(v("v1"))).unwrap();
        c.srv_write(&k("gone"), Expect::Absent, Mutation::Put(v("v2"))).unwrap();
        let (t, _) = c.srv_read(b"keep").unwrap().unwrap();
        c.srv_write(&k("keep"), Expect::Token(t), Mutation::Put(v("v1-new"))).unwrap();
        c.srv_write(&k("gone"), Expect::Any, Mutation::Delete).unwrap();
        c.kill_node(SnId(0));
        assert!(c.srv_read(b"keep").is_err(), "RF1 with its only holder dead");
        c.restart_node_from_log(SnId(0)).unwrap();
        let (t_rec, val) = c.srv_read(b"keep").unwrap().unwrap();
        assert_eq!(val, v("v1-new"));
        assert_eq!(c.srv_read(b"gone").unwrap(), None, "delete replayed, not resurrected");
        // Tokens restart strictly above every recovered one (no ABA): a
        // post-restart write to the same partition observes a larger token.
        let (t_new, _) =
            c.srv_write(&k("keep"), Expect::Token(t_rec), Mutation::Put(v("x"))).unwrap();
        assert!(t_new.unwrap() > t_rec);
    }

    #[test]
    fn master_engine_failure_keeps_write_invisible_and_partition_healthy() {
        let (c, provider) = durable_cluster(1, 1);
        c.srv_write(&k("a"), Expect::Absent, Mutation::Put(v("v1"))).unwrap();
        provider.failing.lock().insert(0);
        let err = c.srv_write(&k("a"), Expect::Any, Mutation::Put(v("v2"))).unwrap_err();
        assert!(matches!(err, Error::Unavailable(_)), "got {err:?}");
        // The failed write never became visible: readers still see v1, and
        // the partition is not wedged by a leaked sequence number.
        let (_, val) = c.srv_read(b"a").unwrap().unwrap();
        assert_eq!(val, v("v1"));
        provider.failing.lock().remove(&0);
        c.srv_write(&k("a"), Expect::Any, Mutation::Put(v("v3"))).unwrap();
        let (_, val) = c.srv_read(b"a").unwrap().unwrap();
        assert_eq!(val, v("v3"));
    }

    #[test]
    fn replica_engine_failure_does_not_abort_replication() {
        let (c, provider) = durable_cluster(3, 3);
        let p = c.route(b"a").raw() as usize;
        // Placement is deterministic: hosts are p, p+1, p+2 (mod 3).
        let (m, r1) = ((p % 3) as u32, ((p + 1) % 3) as u32);
        c.srv_write(&k("a"), Expect::Absent, Mutation::Put(v("v1"))).unwrap();
        provider.failing.lock().insert(r1);
        c.srv_write(&k("a"), Expect::Any, Mutation::Put(v("v2"))).unwrap();
        // The replica *after* the failing one still applied the write: with
        // the master and the failing replica dead, the last copy is fresh
        // and serves the acked value.
        c.kill_node(SnId(m));
        c.kill_node(SnId(r1));
        let (_, val) = c.srv_read(b"a").unwrap().unwrap();
        assert_eq!(val, v("v2"));
    }

    #[test]
    fn cluster_reopen_recovers_from_provider() {
        let provider = Arc::new(MemProvider::default());
        {
            let c = StoreCluster::new(
                StoreConfig::new(2).replication(2).durability(Arc::clone(&provider) as _),
            );
            for i in 0..20u32 {
                let key = Bytes::from(format!("k{i}"));
                c.srv_write(&key, Expect::Absent, Mutation::Put(v("d"))).unwrap();
            }
        }
        let c = StoreCluster::new(
            StoreConfig::new(2).replication(2).durability(Arc::clone(&provider) as _),
        );
        for i in 0..20u32 {
            let key = format!("k{i}");
            assert!(c.srv_read(key.as_bytes()).unwrap().is_some(), "lost {key} across reopen");
        }
    }

    #[test]
    fn restart_from_log_catches_up_from_fresh_peers() {
        // n0 dies, writes continue on n1, n0 restarts from its (behind)
        // log: recovered copies are stale and must re-sync from n1 before
        // serving.
        let (c, _provider) = durable_cluster(2, 2);
        c.srv_write(&k("a"), Expect::Absent, Mutation::Put(v("one"))).unwrap();
        c.kill_node(SnId(0));
        let (t, _) = c.srv_read(b"a").unwrap().unwrap();
        c.srv_write(&k("a"), Expect::Token(t), Mutation::Put(v("two"))).unwrap();
        c.restart_node_from_log(SnId(0)).unwrap();
        c.kill_node(SnId(1));
        let (_, val) = c.srv_read(b"a").unwrap().unwrap();
        assert_eq!(val, v("two"), "restarted node caught up past its log");
    }

    #[test]
    fn unavailable_killed_partition_revives_durably_after_everyone_dies() {
        // Both copy-holders die; restart them from their logs; everything
        // acked must be back and the stale-data window closed.
        let (c, _provider) = durable_cluster(2, 2);
        for i in 0..16u32 {
            let key = Bytes::from(format!("k{i}"));
            c.srv_write(&key, Expect::Absent, Mutation::Put(v("d"))).unwrap();
        }
        c.kill_node(SnId(0));
        c.kill_node(SnId(1));
        assert!(c.srv_read(b"k0").is_err());
        c.restart_node_from_log(SnId(0)).unwrap();
        c.restart_node_from_log(SnId(1)).unwrap();
        for i in 0..16u32 {
            let key = format!("k{i}");
            assert!(c.srv_read(key.as_bytes()).unwrap().is_some(), "lost {key}");
        }
    }
}

//! `tell-store` — the shared record store.
//!
//! A from-scratch reimplementation of the storage substrate Tell runs on
//! (the paper uses RamCloud, §6.1): a strongly consistent, in-memory,
//! partitioned key-value store with
//!
//! * atomic `get`/`put` on single records,
//! * **LL/SC**: [`client::StoreClient::get`] is the load-link (it returns a
//!   store token alongside the value) and
//!   [`client::StoreClient::store_conditional`] is the store-conditional —
//!   it succeeds only if the token is unchanged. Tokens are
//!   partition-monotonic, so a delete/re-insert can never reuse a token and
//!   the ABA problem (§4.1) cannot occur,
//! * an atomic fetch-and-add counter primitive (tid/rid allocation),
//! * synchronous replication with configurable replication factor and
//!   transparent fail-over to replicas (§4.4.2),
//! * per-node memory capacity accounting (drives Fig 7's "3 SNs cannot hold
//!   the data" result), and
//! * request **batching**: a multi-get / multi-write is one network
//!   exchange (§5.1 "Tell aggressively batches operations").
//!
//! All network costs are charged in virtual time through
//! [`tell_netsim::NetMeter`]; the data structures themselves are real and
//! shared, so concurrent conflicts are genuine.

pub mod api;
pub mod cell;
pub mod client;
pub mod cluster;
pub mod durability;
pub mod keys;
pub mod node;
pub mod op;
pub mod predicate;

pub use api::{StoreApi, StoreEndpoint};
pub use cell::{Cell, Token};
pub use client::{Expect, StoreClient, WriteOp};
pub use cluster::{StoreCluster, StoreConfig};
pub use durability::{DurabilityProvider, NodeDurability, RecoveredNode, RecoveredPartition};
pub use keys::Key;
pub use op::{
    BatchDriver, CounterHandle, GetHandle, MultiGetHandle, MultiWriteHandle, OpHandle, OpResult,
    StoreOp, WriteHandle,
};
pub use predicate::{CmpOp, Predicate};

//! Storage cells: a value plus its store token.

use bytes::Bytes;

/// Opaque version token of a cell. Tokens are allocated from a
/// partition-monotonic counter: every successful write (including a
/// re-insert after a delete) observes a strictly larger token, which is what
/// makes the store's conditional writes true LL/SC rather than value-based
/// compare-and-swap — a rewrite of identical bytes still changes the token,
/// so the ABA problem of §4.1 cannot occur.
pub type Token = u64;

/// One key's stored state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cell {
    /// Store token at which this value was written.
    pub token: Token,
    /// The value bytes. `Bytes` is cheaply cloneable (refcounted), so reads
    /// never copy payloads.
    pub value: Bytes,
}

impl Cell {
    /// Approximate memory footprint charged against a node's capacity.
    pub fn footprint(key_len: usize, value_len: usize) -> usize {
        // key + value + fixed per-entry overhead (map node, token).
        key_len + value_len + 64
    }
}

//! Asynchronous submission surface: operations, handles and results.
//!
//! The paper's PNs issue storage requests asynchronously and aggressively
//! batch small messages into few large ones (§5.1); a strictly blocking
//! client API cannot express either. [`StoreOp`] reifies the point
//! operations of `StoreApi` as values, so a client can *submit* work and
//! collect it later through an [`OpHandle`]: `submit(op) -> OpHandle` is
//! the asynchronous half, `OpHandle::wait()` the synchronous join. Remote
//! clients coalesce every operation outstanding in the same submission
//! window into one wire frame; the local simulated client completes
//! immediately (its batching already happens in virtual-time accounting).
//!
//! There is no async runtime here — handles are deliberately plain values
//! resolved by a [`BatchDriver`], which keeps the whole workspace on
//! std-only threads as PR 1 established.

use std::rc::Rc;

use bytes::Bytes;
use tell_common::{Error, Result};

use crate::cell::Token;
use crate::client::WriteOp;
use crate::keys::Key;

/// A point operation submitted asynchronously. Scans are not included:
/// they are bulk transfers whose payload dominates framing, so batching
/// them buys nothing (§5.1 targets small messages).
#[derive(Clone, Debug, PartialEq)]
pub enum StoreOp {
    /// Load-link one key.
    Get {
        /// Key to read.
        key: Key,
    },
    /// Batched load-link, order-preserving.
    MultiGet {
        /// Keys to read.
        keys: Vec<Key>,
    },
    /// One conditional write (put / insert / SC / delete via `expect`).
    Write {
        /// The write to apply.
        op: WriteOp,
    },
    /// Batched conditional writes with independent per-op results.
    MultiWrite {
        /// The writes to apply.
        ops: Vec<WriteOp>,
    },
    /// Atomic fetch-and-add.
    Increment {
        /// Counter cell.
        key: Key,
        /// Amount to add.
        delta: u64,
    },
}

/// The completion of a [`StoreOp`], mirroring its shape.
#[derive(Clone, Debug, PartialEq)]
pub enum OpResult {
    /// Completion of [`StoreOp::Get`].
    Cell(Option<(Token, Bytes)>),
    /// Completion of [`StoreOp::MultiGet`].
    Cells(Vec<Option<(Token, Bytes)>>),
    /// Completion of [`StoreOp::Write`] (`None` for deletes).
    Written(Option<Token>),
    /// Completion of [`StoreOp::MultiWrite`].
    WriteResults(Vec<Result<Option<Token>>>),
    /// Completion of [`StoreOp::Increment`].
    Counter(u64),
}

impl OpResult {
    /// Extract a [`OpResult::Cell`]; any other shape is a protocol bug.
    pub fn into_cell(self) -> Result<Option<(Token, Bytes)>> {
        match self {
            OpResult::Cell(c) => Ok(c),
            other => Err(shape_error("Cell", &other)),
        }
    }

    /// Extract a [`OpResult::Cells`].
    pub fn into_cells(self) -> Result<Vec<Option<(Token, Bytes)>>> {
        match self {
            OpResult::Cells(c) => Ok(c),
            other => Err(shape_error("Cells", &other)),
        }
    }

    /// Extract a [`OpResult::Written`].
    pub fn into_written(self) -> Result<Option<Token>> {
        match self {
            OpResult::Written(t) => Ok(t),
            other => Err(shape_error("Written", &other)),
        }
    }

    /// Extract a [`OpResult::WriteResults`].
    pub fn into_write_results(self) -> Result<Vec<Result<Option<Token>>>> {
        match self {
            OpResult::WriteResults(r) => Ok(r),
            other => Err(shape_error("WriteResults", &other)),
        }
    }

    /// Extract a [`OpResult::Counter`].
    pub fn into_counter(self) -> Result<u64> {
        match self {
            OpResult::Counter(v) => Ok(v),
            other => Err(shape_error("Counter", &other)),
        }
    }
}

fn shape_error(wanted: &str, got: &OpResult) -> Error {
    let got = match got {
        OpResult::Cell(_) => "Cell",
        OpResult::Cells(_) => "Cells",
        OpResult::Written(_) => "Written",
        OpResult::WriteResults(_) => "WriteResults",
        OpResult::Counter(_) => "Counter",
    };
    Error::corrupt(format!("op completed with {got}, caller expected {wanted}"))
}

/// Resolves pending tickets. The remote client's submission window
/// implements this: the first `resolve` flushes every queued operation as
/// one batched frame and parks the per-op completions for later tickets.
pub trait BatchDriver {
    /// Produce the completion for `ticket`, flushing first if needed.
    fn resolve(&self, ticket: u64) -> Result<OpResult>;
}

enum HandleState {
    /// Completed at submission (local client, or submission-time error).
    Ready(Result<OpResult>),
    /// Outstanding in a driver's window.
    Pending { driver: Rc<dyn BatchDriver>, ticket: u64 },
}

/// A submitted operation's future result. `wait` consumes the handle; an
/// unawaited handle is legal (its completion is simply dropped when the
/// window flushes), so fire-and-forget writes need no ceremony.
pub struct OpHandle {
    state: HandleState,
}

impl OpHandle {
    /// A handle that completed at submission time.
    pub fn ready(result: Result<OpResult>) -> Self {
        OpHandle { state: HandleState::Ready(result) }
    }

    /// A handle resolved later by `driver` under `ticket`.
    pub fn pending(driver: Rc<dyn BatchDriver>, ticket: u64) -> Self {
        OpHandle { state: HandleState::Pending { driver, ticket } }
    }

    /// Block until the operation completes and return its result. For a
    /// window-batched handle this flushes *every* operation outstanding in
    /// the same window — one frame out, one back — then demultiplexes.
    pub fn wait(self) -> Result<OpResult> {
        match self.state {
            HandleState::Ready(result) => result,
            HandleState::Pending { driver, ticket } => driver.resolve(ticket),
        }
    }
}

impl std::fmt::Debug for OpHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.state {
            HandleState::Ready(r) => write!(f, "OpHandle::Ready({r:?})"),
            HandleState::Pending { ticket, .. } => write!(f, "OpHandle::Pending(ticket={ticket})"),
        }
    }
}

macro_rules! typed_handle {
    ($(#[$doc:meta])* $name:ident, $out:ty, $extract:ident) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name(OpHandle);

        impl $name {
            /// Wrap a raw handle; `wait` will demand the matching shape.
            pub fn new(inner: OpHandle) -> Self {
                $name(inner)
            }

            /// Block until complete; see [`OpHandle::wait`].
            pub fn wait(self) -> Result<$out> {
                self.0.wait()?.$extract()
            }
        }
    };
}

typed_handle!(
    /// Typed handle for a submitted [`StoreOp::Get`].
    GetHandle,
    Option<(Token, Bytes)>,
    into_cell
);
typed_handle!(
    /// Typed handle for a submitted [`StoreOp::MultiGet`].
    MultiGetHandle,
    Vec<Option<(Token, Bytes)>>,
    into_cells
);
typed_handle!(
    /// Typed handle for a submitted [`StoreOp::Write`].
    WriteHandle,
    Option<Token>,
    into_written
);
typed_handle!(
    /// Typed handle for a submitted [`StoreOp::MultiWrite`].
    MultiWriteHandle,
    Vec<Result<Option<Token>>>,
    into_write_results
);
typed_handle!(
    /// Typed handle for a submitted [`StoreOp::Increment`].
    CounterHandle,
    u64,
    into_counter
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn ready_handle_returns_its_result() {
        let h = OpHandle::ready(Ok(OpResult::Counter(7)));
        assert_eq!(h.wait().unwrap(), OpResult::Counter(7));
        let h = OpHandle::ready(Err(Error::Conflict));
        assert_eq!(h.wait().unwrap_err(), Error::Conflict);
    }

    #[test]
    fn typed_handles_reject_shape_mismatch() {
        let h = CounterHandle::new(OpHandle::ready(Ok(OpResult::Cell(None))));
        assert!(matches!(h.wait().unwrap_err(), Error::Corrupt(_)));
        let h = GetHandle::new(OpHandle::ready(Ok(OpResult::Cell(None))));
        assert_eq!(h.wait().unwrap(), None);
    }

    struct CountingDriver {
        calls: RefCell<u32>,
    }

    impl BatchDriver for CountingDriver {
        fn resolve(&self, ticket: u64) -> Result<OpResult> {
            *self.calls.borrow_mut() += 1;
            Ok(OpResult::Counter(ticket))
        }
    }

    #[test]
    fn pending_handle_resolves_through_its_driver() {
        let driver = Rc::new(CountingDriver { calls: RefCell::new(0) });
        let h = OpHandle::pending(Rc::clone(&driver) as Rc<dyn BatchDriver>, 42);
        assert_eq!(h.wait().unwrap(), OpResult::Counter(42));
        assert_eq!(*driver.calls.borrow(), 1);
    }
}

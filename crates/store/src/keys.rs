//! Key construction.
//!
//! The store's key space is flat bytes; the layers above carve it into
//! keyspaces with a one-byte tag so unrelated subsystems can never collide
//! and prefix scans stay cheap. All multi-byte components are big-endian so
//! byte order equals numeric order (transaction-log scans walk tids in
//! order; record scans walk rids in order).

use bytes::Bytes;
use tell_common::{IndexId, Rid, TableId, TxnId};

/// Store keys are plain byte strings.
pub type Key = Bytes;

/// One-byte keyspace tags.
pub mod tag {
    /// Catalog / schema metadata.
    pub const META: u8 = 0;
    /// Atomic counters (tid ranges, rid allocation).
    pub const COUNTER: u8 = 1;
    /// Data records (one KV pair per record, all versions inside).
    pub const RECORD: u8 = 2;
    /// B+tree index nodes.
    pub const INDEX: u8 = 3;
    /// Transaction log entries (§4.4.1).
    pub const TXNLOG: u8 = 4;
    /// Commit-manager published state (§4.2).
    pub const CMSTATE: u8 = 5;
    /// Version-number-set entries of the SBVS buffering strategy (§5.5.3).
    pub const VERSIONSET: u8 = 6;
}

/// Key of the record `rid` of table `table`.
pub fn record(table: TableId, rid: Rid) -> Key {
    let mut k = Vec::with_capacity(13);
    k.push(tag::RECORD);
    k.extend_from_slice(&table.raw().to_be_bytes());
    k.extend_from_slice(&rid.raw().to_be_bytes());
    Bytes::from(k)
}

/// Prefix covering every record of `table` (for full-table scans).
pub fn record_prefix(table: TableId) -> Key {
    let mut k = Vec::with_capacity(5);
    k.push(tag::RECORD);
    k.extend_from_slice(&table.raw().to_be_bytes());
    Bytes::from(k)
}

/// Parse a record key back into `(table, rid)`.
pub fn parse_record(key: &[u8]) -> Option<(TableId, Rid)> {
    if key.len() != 13 || key[0] != tag::RECORD {
        return None;
    }
    let table = u32::from_be_bytes(key[1..5].try_into().ok()?);
    let rid = u64::from_be_bytes(key[5..13].try_into().ok()?);
    Some((TableId(table), Rid(rid)))
}

/// Key of B+tree node `node_id` of index `index`.
pub fn index_node(index: IndexId, node_id: u64) -> Key {
    let mut k = Vec::with_capacity(13);
    k.push(tag::INDEX);
    k.extend_from_slice(&index.raw().to_be_bytes());
    k.extend_from_slice(&node_id.to_be_bytes());
    Bytes::from(k)
}

/// Key of the transaction-log entry of `tid`.
pub fn txn_log(tid: TxnId) -> Key {
    let mut k = Vec::with_capacity(9);
    k.push(tag::TXNLOG);
    k.extend_from_slice(&tid.raw().to_be_bytes());
    Bytes::from(k)
}

/// Prefix covering the whole transaction log.
pub fn txn_log_prefix() -> Key {
    Bytes::from(vec![tag::TXNLOG])
}

/// Parse a transaction-log key back into its tid.
pub fn parse_txn_log(key: &[u8]) -> Option<TxnId> {
    if key.len() != 9 || key[0] != tag::TXNLOG {
        return None;
    }
    Some(TxnId(u64::from_be_bytes(key[1..9].try_into().ok()?)))
}

/// Key of a named atomic counter.
pub fn counter(name: &str) -> Key {
    let mut k = Vec::with_capacity(1 + name.len());
    k.push(tag::COUNTER);
    k.extend_from_slice(name.as_bytes());
    Bytes::from(k)
}

/// Key under which commit manager `cm` publishes its state.
pub fn cm_state(cm: u32) -> Key {
    let mut k = Vec::with_capacity(5);
    k.push(tag::CMSTATE);
    k.extend_from_slice(&cm.to_be_bytes());
    Bytes::from(k)
}

/// Prefix covering all commit-manager state entries.
pub fn cm_state_prefix() -> Key {
    Bytes::from(vec![tag::CMSTATE])
}

/// Key of a catalog metadata entry.
pub fn meta(name: &str) -> Key {
    let mut k = Vec::with_capacity(1 + name.len());
    k.push(tag::META);
    k.extend_from_slice(name.as_bytes());
    Bytes::from(k)
}

/// Key of the shared version-number-set entry of cache unit `unit` of
/// `table` (SBVS buffering, §5.5.3).
pub fn version_set(table: TableId, unit: u64) -> Key {
    let mut k = Vec::with_capacity(13);
    k.push(tag::VERSIONSET);
    k.extend_from_slice(&table.raw().to_be_bytes());
    k.extend_from_slice(&unit.to_be_bytes());
    Bytes::from(k)
}

/// Smallest key strictly greater than every key starting with `prefix`
/// (exclusive upper bound for prefix scans). `None` if the prefix is all
/// `0xff` and unbounded.
pub fn prefix_end(prefix: &[u8]) -> Option<Key> {
    let mut end = prefix.to_vec();
    while let Some(last) = end.last_mut() {
        if *last < 0xff {
            *last += 1;
            return Some(Bytes::from(end));
        }
        end.pop();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_keys_sort_by_rid() {
        let a = record(TableId(1), Rid(1));
        let b = record(TableId(1), Rid(2));
        let c = record(TableId(1), Rid(256));
        assert!(a < b && b < c);
        assert!(a.starts_with(&record_prefix(TableId(1))));
    }

    #[test]
    fn record_key_roundtrip() {
        let k = record(TableId(7), Rid(u64::MAX - 3));
        assert_eq!(parse_record(&k), Some((TableId(7), Rid(u64::MAX - 3))));
        assert_eq!(parse_record(b"nope"), None);
    }

    #[test]
    fn txn_log_keys_sort_by_tid() {
        let a = txn_log(TxnId(5));
        let b = txn_log(TxnId(500));
        assert!(a < b);
        assert_eq!(parse_txn_log(&a), Some(TxnId(5)));
        assert!(a.starts_with(&txn_log_prefix()));
    }

    #[test]
    fn keyspaces_do_not_collide() {
        let keys = [
            record(TableId(0), Rid(0)),
            index_node(IndexId(0), 0),
            txn_log(TxnId(0)),
            counter(""),
            cm_state(0),
            meta(""),
            version_set(TableId(0), 0),
        ];
        for (i, a) in keys.iter().enumerate() {
            for (j, b) in keys.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b);
                    assert_ne!(a[0], b[0], "distinct keyspace tags");
                }
            }
        }
    }

    #[test]
    fn prefix_end_is_tight() {
        let p = record_prefix(TableId(3));
        let end = prefix_end(&p).unwrap();
        assert!(record(TableId(3), Rid(u64::MAX)) < end);
        assert!(record_prefix(TableId(4)) >= end);
        assert_eq!(prefix_end(&[0xff, 0xff]), None);
        assert_eq!(prefix_end(&[0x01, 0xff]).unwrap().as_ref(), &[0x02]);
    }
}

//! The storage abstraction the layers above program against.
//!
//! [`StoreApi`] is the operation surface of a storage client; it is
//! implemented by the in-process [`StoreClient`] and by `tell-rpc`'s
//! `RemoteStoreClient`, so a processing node runs unchanged against a local
//! simulated cluster or real storage nodes across TCP.
//!
//! Clients carry a [`NetMeter`] whose `SimClock` is deliberately `!Send`
//! (one virtual clock per worker thread), so a client can never be stored in
//! a shared `Database`. [`StoreEndpoint`] is the `Send + Sync` half: a cheap
//! handle to the storage service from which each worker mints its own
//! metered client.

use bytes::Bytes;
use std::sync::Arc;
use tell_common::Result;
use tell_netsim::NetMeter;

use crate::cell::Token;
use crate::client::{StoreClient, WriteOp};
use crate::cluster::StoreCluster;
use crate::keys::Key;
use crate::op::{
    CounterHandle, GetHandle, MultiGetHandle, MultiWriteHandle, OpHandle, StoreOp, WriteHandle,
};
use crate::predicate::Predicate;

/// Storage operations available to a processing node, commit manager or
/// index. Mirrors [`StoreClient`]'s inherent methods; see those for cost
/// accounting and semantics (LL/SC per §4.1, batching per §5.1).
///
/// The surface has two halves. The **asynchronous** half is primary:
/// [`StoreApi::submit`] hands an operation to the client and returns an
/// [`OpHandle`] immediately; independent operations submitted before the
/// first `wait` share one submission window, which a remote client flushes
/// as a *single* batched frame (§5.1's "aggressively batches operations").
/// The **blocking** half (`get`, `put`, …) is kept for convenience and
/// compatibility — implementations define it as submit-then-wait, so a
/// blocking call issued while async operations are outstanding rides the
/// same frame as the window it joins.
pub trait StoreApi: Clone {
    /// Submit `op` for asynchronous execution. The returned handle may be
    /// waited on at any later point, or dropped to fire-and-forget.
    fn submit(&self, op: StoreOp) -> OpHandle;

    /// Asynchronous load-link of one key.
    fn get_async(&self, key: &Key) -> GetHandle {
        GetHandle::new(self.submit(StoreOp::Get { key: key.clone() }))
    }

    /// Asynchronous batched load-link.
    fn multi_get_async(&self, keys: &[Key]) -> MultiGetHandle {
        MultiGetHandle::new(self.submit(StoreOp::MultiGet { keys: keys.to_vec() }))
    }

    /// Asynchronous conditional write.
    fn write_async(&self, op: WriteOp) -> WriteHandle {
        WriteHandle::new(self.submit(StoreOp::Write { op }))
    }

    /// Asynchronous batched conditional writes.
    fn multi_write_async(&self, ops: Vec<WriteOp>) -> MultiWriteHandle {
        MultiWriteHandle::new(self.submit(StoreOp::MultiWrite { ops }))
    }

    /// Asynchronous fetch-and-add.
    fn increment_async(&self, key: &Key, delta: u64) -> CounterHandle {
        CounterHandle::new(self.submit(StoreOp::Increment { key: key.clone(), delta }))
    }

    /// Load-link: read `key`, returning its token and value.
    fn get(&self, key: &Key) -> Result<Option<(Token, Bytes)>>;

    /// Batched load-link of several keys in one exchange.
    fn multi_get(&self, keys: &[Key]) -> Result<Vec<Option<(Token, Bytes)>>>;

    /// Unconditional upsert; returns the new token.
    fn put(&self, key: &Key, value: Bytes) -> Result<Token>;

    /// Insert; fails with `Conflict` if the key exists.
    fn insert(&self, key: &Key, value: Bytes) -> Result<Token>;

    /// Store-conditional: write only if the cell still carries `token`.
    fn store_conditional(&self, key: &Key, token: Token, value: Bytes) -> Result<Token>;

    /// Delete only if the cell still carries `token`.
    fn delete_conditional(&self, key: &Key, token: Token) -> Result<()>;

    /// Unconditional delete (no-op when missing).
    fn delete(&self, key: &Key) -> Result<()>;

    /// Batched conditional writes: one exchange, independent per-op results.
    fn multi_write(&self, ops: Vec<WriteOp>) -> Result<Vec<Result<Option<Token>>>>;

    /// Atomic fetch-and-add.
    fn increment(&self, key: &Key, delta: u64) -> Result<u64>;

    /// Ordered scan of `[start, end)`, at most `limit` entries.
    fn scan_range(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
    ) -> Result<Vec<(Key, Token, Bytes)>>;

    /// Reverse-ordered scan of `[start, end)` (largest key first).
    fn scan_range_rev(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
    ) -> Result<Vec<(Key, Token, Bytes)>>;

    /// Scan every key starting with `prefix`.
    fn scan_prefix(&self, prefix: &[u8], limit: usize) -> Result<Vec<(Key, Token, Bytes)>>;

    /// Prefix scan with a [`Predicate`] pushed down to the storage node
    /// (§5.2). The predicate is serializable, so the remote client ships it
    /// in the request and only matching rows cross the network — local and
    /// remote transports now account bandwidth identically.
    fn scan_prefix_pushdown(
        &self,
        prefix: &[u8],
        limit: usize,
        filter: &Predicate,
    ) -> Result<Vec<(Key, Token, Bytes)>>;

    /// The meter charging this worker's virtual clock.
    fn meter(&self) -> &NetMeter;
}

impl StoreApi for StoreClient {
    fn submit(&self, op: StoreOp) -> OpHandle {
        StoreClient::submit(self, op)
    }

    fn get(&self, key: &Key) -> Result<Option<(Token, Bytes)>> {
        StoreClient::get(self, key)
    }

    fn multi_get(&self, keys: &[Key]) -> Result<Vec<Option<(Token, Bytes)>>> {
        StoreClient::multi_get(self, keys)
    }

    fn put(&self, key: &Key, value: Bytes) -> Result<Token> {
        StoreClient::put(self, key, value)
    }

    fn insert(&self, key: &Key, value: Bytes) -> Result<Token> {
        StoreClient::insert(self, key, value)
    }

    fn store_conditional(&self, key: &Key, token: Token, value: Bytes) -> Result<Token> {
        StoreClient::store_conditional(self, key, token, value)
    }

    fn delete_conditional(&self, key: &Key, token: Token) -> Result<()> {
        StoreClient::delete_conditional(self, key, token)
    }

    fn delete(&self, key: &Key) -> Result<()> {
        StoreClient::delete(self, key)
    }

    fn multi_write(&self, ops: Vec<WriteOp>) -> Result<Vec<Result<Option<Token>>>> {
        StoreClient::multi_write(self, ops)
    }

    fn increment(&self, key: &Key, delta: u64) -> Result<u64> {
        StoreClient::increment(self, key, delta)
    }

    fn scan_range(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
    ) -> Result<Vec<(Key, Token, Bytes)>> {
        StoreClient::scan_range(self, start, end, limit)
    }

    fn scan_range_rev(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
    ) -> Result<Vec<(Key, Token, Bytes)>> {
        StoreClient::scan_range_rev(self, start, end, limit)
    }

    fn scan_prefix(&self, prefix: &[u8], limit: usize) -> Result<Vec<(Key, Token, Bytes)>> {
        StoreClient::scan_prefix(self, prefix, limit)
    }

    fn scan_prefix_pushdown(
        &self,
        prefix: &[u8],
        limit: usize,
        filter: &Predicate,
    ) -> Result<Vec<(Key, Token, Bytes)>> {
        StoreClient::scan_prefix_pushdown(self, prefix, limit, filter)
    }

    fn meter(&self) -> &NetMeter {
        StoreClient::meter(self)
    }
}

/// A `Send + Sync` handle to a storage service from which per-worker
/// clients are minted. The local endpoint is `Arc<StoreCluster>`; the
/// remote endpoint (in `tell-rpc`) is a TCP connection pool. The serving
/// side is the same seam in reverse: `tell-rpc`'s reactor exposes an
/// `Arc<StoreCluster>` over the wire by dispatching decoded requests
/// straight onto it, so local and remote deployments share every code
/// path below this trait.
pub trait StoreEndpoint: Clone + Send + Sync + 'static {
    /// The client type this endpoint produces.
    type Client: StoreApi;

    /// A client charging `meter`.
    fn client(&self, meter: NetMeter) -> Self::Client;

    /// A client with free (zero-cost) metering, for administrative work.
    fn unmetered_client(&self) -> Self::Client {
        self.client(NetMeter::free())
    }
}

impl StoreEndpoint for Arc<StoreCluster> {
    type Client = StoreClient;

    fn client(&self, meter: NetMeter) -> StoreClient {
        StoreClient::new(Arc::clone(self), meter)
    }
}

//! Storage nodes and partition copies.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use bytes::Bytes;
use tell_common::SnId;
use tell_obs::ProfRwLock;

use crate::cell::Cell;

/// A storage node: liveness flag plus memory accounting. The actual data
/// lives in the partition copies assigned to the node (see
/// [`crate::cluster::StoreCluster`]); a node failure makes every copy it
/// hosts unreachable at once, which is exactly the failure granularity the
/// paper's fail-over story needs (§4.4.2).
#[derive(Debug)]
pub struct StorageNode {
    /// Node identifier.
    pub id: SnId,
    alive: AtomicBool,
    used_bytes: AtomicUsize,
    capacity_bytes: Option<usize>,
}

impl StorageNode {
    /// A live node with an optional memory capacity.
    pub fn new(id: SnId, capacity_bytes: Option<usize>) -> Self {
        StorageNode {
            id,
            alive: AtomicBool::new(true),
            used_bytes: AtomicUsize::new(0),
            capacity_bytes,
        }
    }

    /// Is the node reachable?
    #[inline]
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Mark the node failed (crash-stop).
    pub fn kill(&self) {
        self.alive.store(false, Ordering::Release);
    }

    /// Bring the node back (its data must be re-synced by the cluster).
    pub fn revive(&self) {
        self.alive.store(true, Ordering::Release);
    }

    /// Bytes currently accounted to this node.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes.load(Ordering::Relaxed)
    }

    /// Configured capacity, if any.
    pub fn capacity_bytes(&self) -> Option<usize> {
        self.capacity_bytes
    }

    /// Would storing `additional` more bytes exceed capacity?
    pub fn would_exceed(&self, additional: usize) -> bool {
        match self.capacity_bytes {
            Some(cap) => self.used_bytes.load(Ordering::Relaxed) + additional > cap,
            None => false,
        }
    }

    /// Account `delta` bytes (positive = grow).
    pub fn account(&self, delta: isize) {
        if delta >= 0 {
            self.used_bytes.fetch_add(delta as usize, Ordering::Relaxed);
        } else {
            self.used_bytes.fetch_sub((-delta) as usize, Ordering::Relaxed);
        }
    }

    /// Reset accounting (used when a revived node is re-synced).
    pub fn reset_accounting(&self, bytes: usize) {
        self.used_bytes.store(bytes, Ordering::Relaxed);
    }
}

/// One physical copy of a partition's data on some node.
#[derive(Debug)]
pub struct CopyStore {
    /// Ordered map so prefix/range scans are cheap.
    pub map: ProfRwLock<BTreeMap<Bytes, Cell>>,
    /// Partition mutation sequence this copy has applied. A copy is *fresh*
    /// iff this equals the partition's acked-mutation sequence; only fresh
    /// copies may serve reads or source a re-sync, which is what prevents a
    /// revived node from resurrecting stale data. Updated under `map`'s
    /// write lock, compared under its read lock.
    pub applied_seq: AtomicU64,
}

impl Default for CopyStore {
    fn default() -> Self {
        CopyStore::new()
    }
}

impl CopyStore {
    /// Empty copy.
    pub fn new() -> Self {
        CopyStore {
            map: ProfRwLock::new("store.partition.map", BTreeMap::new()),
            applied_seq: AtomicU64::new(0),
        }
    }

    /// Sum of entry footprints, used to rebuild accounting after re-sync.
    pub fn footprint(&self) -> usize {
        self.map.read().iter().map(|(k, c)| Cell::footprint(k.len(), c.value.len())).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn liveness_toggles() {
        let n = StorageNode::new(SnId(1), None);
        assert!(n.is_alive());
        n.kill();
        assert!(!n.is_alive());
        n.revive();
        assert!(n.is_alive());
    }

    #[test]
    fn capacity_accounting() {
        let n = StorageNode::new(SnId(0), Some(1000));
        assert!(!n.would_exceed(1000));
        assert!(n.would_exceed(1001));
        n.account(600);
        assert_eq!(n.used_bytes(), 600);
        assert!(n.would_exceed(500));
        n.account(-100);
        assert_eq!(n.used_bytes(), 500);
        assert!(!n.would_exceed(500));
        let unlimited = StorageNode::new(SnId(1), None);
        assert!(!unlimited.would_exceed(usize::MAX / 2));
    }

    #[test]
    fn copy_footprint_counts_entries() {
        let c = CopyStore::new();
        assert_eq!(c.footprint(), 0);
        c.map.write().insert(
            Bytes::from_static(b"key"),
            Cell { token: 1, value: Bytes::from_static(b"value") },
        );
        assert_eq!(c.footprint(), Cell::footprint(3, 5));
    }
}

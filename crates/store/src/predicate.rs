//! Serializable scan predicates for §5.2 selection pushdown.
//!
//! The paper names "executing simple operations such as selection or
//! projection in the SN" as the way to shrink result sets before they cross
//! the network. A closure cannot travel in a frame, so the pushed-down
//! filter is this small expression tree: byte-level comparisons composable
//! with and/or/not. Both the in-process client and the remote storage node
//! evaluate the *same* [`Predicate::matches`], which is what makes the
//! bandwidth accounting symmetric between the two transports.
//!
//! Predicates operate on raw key and value bytes — the store knows nothing
//! about record versioning or row layouts (those live in `tell-core` /
//! `tell-sql` above). Layers with richer schemas compile their filters down
//! to byte comparisons, or post-filter client-side.

use bytes::Bytes;
use tell_common::codec::{Reader, Writer};
use tell_common::{Error, Result};

/// Comparison operator for [`Predicate::ValueCompare`], byte-wise
/// lexicographic. Order-preserving encodings (`tell_common::codec::
/// orderpreserving`) make lexicographic compare equal numeric compare.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    fn tag(self) -> u8 {
        match self {
            CmpOp::Eq => 0,
            CmpOp::Ne => 1,
            CmpOp::Lt => 2,
            CmpOp::Le => 3,
            CmpOp::Gt => 4,
            CmpOp::Ge => 5,
        }
    }

    fn from_tag(tag: u8) -> Result<Self> {
        Ok(match tag {
            0 => CmpOp::Eq,
            1 => CmpOp::Ne,
            2 => CmpOp::Lt,
            3 => CmpOp::Le,
            4 => CmpOp::Gt,
            5 => CmpOp::Ge,
            other => return Err(Error::corrupt(format!("unknown CmpOp tag {other}"))),
        })
    }
}

/// Maximum nesting depth accepted when decoding (and enforced on encode for
/// symmetry): deep enough for any realistic filter, shallow enough that a
/// hostile frame cannot blow the decoder's stack.
pub const MAX_PREDICATE_DEPTH: usize = 32;

/// A serializable filter over `(key, value)` byte slices, shipped inside
/// `ScanPrefixFiltered` frames and evaluated on the storage node.
#[derive(Clone, Debug, PartialEq)]
pub enum Predicate {
    /// Matches every row (pushdown degenerates to a plain prefix scan).
    True,
    /// Key starts with these bytes.
    KeyPrefix(Bytes),
    /// Value starts with these bytes.
    ValuePrefix(Bytes),
    /// Compare `value[offset .. offset + literal.len()]` with `literal`,
    /// byte-wise lexicographically. A value too short to cover the window
    /// never matches (regardless of operator — even `Ne`), so short rows
    /// cannot satisfy a filter vacuously.
    ValueCompare {
        /// Byte offset of the compared window in the value.
        offset: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Literal to compare against; its length is the window length.
        literal: Bytes,
    },
    /// Every child matches (empty ⇒ true).
    All(Vec<Predicate>),
    /// At least one child matches (empty ⇒ false).
    Any(Vec<Predicate>),
    /// Child does not match.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `value[offset..][..literal.len()] op literal`.
    pub fn value_compare(offset: usize, op: CmpOp, literal: impl Into<Bytes>) -> Self {
        Predicate::ValueCompare { offset, op, literal: literal.into() }
    }

    /// `value[offset..] == literal` at the window, shorthand for the common
    /// equality probe.
    pub fn value_eq(offset: usize, literal: impl Into<Bytes>) -> Self {
        Predicate::value_compare(offset, CmpOp::Eq, literal)
    }

    /// Evaluate against one row. This is the single source of truth: the
    /// local client, the remote server and any test call the same code.
    pub fn matches(&self, key: &[u8], value: &[u8]) -> bool {
        match self {
            Predicate::True => true,
            Predicate::KeyPrefix(p) => key.starts_with(p),
            Predicate::ValuePrefix(p) => value.starts_with(p),
            Predicate::ValueCompare { offset, op, literal } => {
                match value.get(*offset..*offset + literal.len()) {
                    Some(window) => op.eval(window.cmp(literal)),
                    None => false,
                }
            }
            Predicate::All(children) => children.iter().all(|c| c.matches(key, value)),
            Predicate::Any(children) => children.iter().any(|c| c.matches(key, value)),
            Predicate::Not(child) => !child.matches(key, value),
        }
    }

    /// Serialize into `buf` using the workspace codec. Fails on trees
    /// deeper than [`MAX_PREDICATE_DEPTH`] so that anything we encode is
    /// guaranteed decodable.
    pub fn encode_into(&self, buf: &mut Vec<u8>) -> Result<()> {
        self.encode_at(buf, 0)
    }

    fn encode_at(&self, buf: &mut Vec<u8>, depth: usize) -> Result<()> {
        if depth >= MAX_PREDICATE_DEPTH {
            return Err(Error::invalid(format!(
                "predicate deeper than {MAX_PREDICATE_DEPTH} levels"
            )));
        }
        match self {
            Predicate::True => buf.put_u8(0),
            Predicate::KeyPrefix(p) => {
                buf.put_u8(1);
                buf.put_bytes(p);
            }
            Predicate::ValuePrefix(p) => {
                buf.put_u8(2);
                buf.put_bytes(p);
            }
            Predicate::ValueCompare { offset, op, literal } => {
                buf.put_u8(3);
                buf.put_u64(*offset as u64);
                buf.put_u8(op.tag());
                buf.put_bytes(literal);
            }
            Predicate::All(children) | Predicate::Any(children) => {
                buf.put_u8(if matches!(self, Predicate::All(_)) { 4 } else { 5 });
                buf.put_u32(children.len() as u32);
                for child in children {
                    child.encode_at(buf, depth + 1)?;
                }
            }
            Predicate::Not(child) => {
                buf.put_u8(6);
                child.encode_at(buf, depth + 1)?;
            }
        }
        Ok(())
    }

    /// Inverse of [`Predicate::encode_into`]; rejects unknown tags and
    /// trees deeper than [`MAX_PREDICATE_DEPTH`].
    pub fn decode_from(reader: &mut Reader<'_>) -> Result<Self> {
        Self::decode_at(reader, 0)
    }

    fn decode_at(reader: &mut Reader<'_>, depth: usize) -> Result<Self> {
        if depth >= MAX_PREDICATE_DEPTH {
            return Err(Error::corrupt(format!(
                "predicate deeper than {MAX_PREDICATE_DEPTH} levels"
            )));
        }
        Ok(match reader.u8()? {
            0 => Predicate::True,
            1 => Predicate::KeyPrefix(Bytes::copy_from_slice(reader.bytes()?)),
            2 => Predicate::ValuePrefix(Bytes::copy_from_slice(reader.bytes()?)),
            3 => {
                let offset = usize::try_from(reader.u64()?)
                    .map_err(|_| Error::corrupt("predicate offset overflows usize"))?;
                let op = CmpOp::from_tag(reader.u8()?)?;
                let literal = Bytes::copy_from_slice(reader.bytes()?);
                Predicate::ValueCompare { offset, op, literal }
            }
            tag @ (4 | 5) => {
                let count = reader.u32()? as usize;
                if count > reader.remaining() {
                    // Each child needs at least its one tag byte; a count
                    // beyond that is a lie, refuse before allocating.
                    return Err(Error::corrupt("predicate child count exceeds input"));
                }
                let mut children = Vec::with_capacity(count);
                for _ in 0..count {
                    children.push(Self::decode_at(reader, depth + 1)?);
                }
                if tag == 4 {
                    Predicate::All(children)
                } else {
                    Predicate::Any(children)
                }
            }
            6 => Predicate::Not(Box::new(Self::decode_at(reader, depth + 1)?)),
            other => return Err(Error::corrupt(format!("unknown Predicate tag {other}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(p: &Predicate) -> Predicate {
        let mut buf = Vec::new();
        p.encode_into(&mut buf).unwrap();
        let mut r = Reader::new(&buf);
        let out = Predicate::decode_from(&mut r).unwrap();
        assert!(r.is_exhausted(), "predicate decode must consume exactly its bytes");
        out
    }

    #[test]
    fn matches_semantics() {
        assert!(Predicate::True.matches(b"k", b"v"));
        assert!(Predicate::KeyPrefix(Bytes::from_static(b"or/")).matches(b"or/42", b""));
        assert!(!Predicate::KeyPrefix(Bytes::from_static(b"or/")).matches(b"st/42", b""));
        assert!(Predicate::ValuePrefix(Bytes::from_static(b"ab")).matches(b"", b"abc"));
        let ge = Predicate::value_compare(2, CmpOp::Ge, vec![0x10]);
        assert!(ge.matches(b"", &[0, 0, 0x10]));
        assert!(ge.matches(b"", &[0, 0, 0x11]));
        assert!(!ge.matches(b"", &[0, 0, 0x0f]));
        // Window past the end of the value: never a match, even for Ne.
        assert!(!Predicate::value_compare(2, CmpOp::Ne, vec![1]).matches(b"", &[0, 0]));
        let both = Predicate::All(vec![
            Predicate::KeyPrefix(Bytes::from_static(b"a")),
            Predicate::value_eq(0, vec![9]),
        ]);
        assert!(both.matches(b"ax", &[9]));
        assert!(!both.matches(b"bx", &[9]));
        assert!(!Predicate::Any(vec![]).matches(b"", b""));
        assert!(Predicate::All(vec![]).matches(b"", b""));
        assert!(!Predicate::Not(Box::new(Predicate::True)).matches(b"", b""));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let cases = [
            Predicate::True,
            Predicate::KeyPrefix(Bytes::from_static(b"tbl/")),
            Predicate::ValuePrefix(Bytes::new()),
            Predicate::value_compare(17, CmpOp::Le, vec![1, 2, 3]),
            Predicate::All(vec![
                Predicate::value_eq(0, vec![0]),
                Predicate::Any(vec![Predicate::True, Predicate::Not(Box::new(Predicate::True))]),
            ]),
        ];
        for p in &cases {
            assert_eq!(&roundtrip(p), p);
        }
    }

    #[test]
    fn decode_rejects_garbage_and_depth_bombs() {
        let mut r = Reader::new(&[99]);
        assert!(Predicate::decode_from(&mut r).is_err());

        // MAX_PREDICATE_DEPTH nested Nots: one too deep to decode, and
        // encode refuses to produce it in the first place.
        let mut deep = Predicate::True;
        for _ in 0..MAX_PREDICATE_DEPTH {
            deep = Predicate::Not(Box::new(deep));
        }
        let mut buf = Vec::new();
        assert!(deep.encode_into(&mut buf).is_err());
        let raw: Vec<u8> = std::iter::repeat_n(6u8, MAX_PREDICATE_DEPTH).chain([0u8]).collect();
        let mut r = Reader::new(&raw);
        assert!(Predicate::decode_from(&mut r).is_err());

        // A child count larger than the remaining input is refused early.
        let mut buf = Vec::new();
        buf.put_u8(4);
        buf.put_u32(u32::MAX);
        let mut r = Reader::new(&buf);
        assert!(matches!(Predicate::decode_from(&mut r), Err(Error::Corrupt(_))));
    }
}

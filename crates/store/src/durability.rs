//! The durability seam between the in-memory store and a persistence tier.
//!
//! `tell-store` keeps every partition copy in RAM; durability is an
//! optional tier *behind* it (the paper's storage nodes are the durable
//! substrate PNs are rebuilt from, §3). A [`DurabilityProvider`] opens one
//! [`NodeDurability`] engine per storage node: the cluster feeds it every
//! acked mutation, and on a cold restart the provider hands back the
//! recovered partition images so the node rejoins with exactly the prefix
//! of writes it durably acknowledged.
//!
//! The trait objects keep the dependency direction clean: `tell-durable`
//! implements these traits on its log-structured engine, while the default
//! `None` provider preserves the pure in-memory behavior (and benches)
//! unchanged.

use std::sync::Arc;

use bytes::Bytes;
use tell_common::{Result, SnId};

use crate::cell::Cell;

/// Per-node durability engine: the write-ahead side of the seam.
pub trait NodeDurability: Send + Sync + std::fmt::Debug {
    /// Persist one acked mutation: `key` in partition `pid` now holds
    /// `cell` (`None` = delete) at partition mutation sequence `seq`.
    /// Returning `Ok` means the write is durable to the engine's configured
    /// fsync policy.
    fn record(&self, pid: u32, seq: u64, key: &Bytes, cell: Option<&Cell>) -> Result<()>;

    /// Force everything recorded so far to stable storage.
    fn sync(&self) -> Result<()>;

    /// Re-align partition `pid`'s log with a snapshot taken from a fresh
    /// copy: after this, recovery must yield exactly `entries` at
    /// `applied_seq`. Called when a revived node re-syncs in RAM from a
    /// peer — its log missed those mutations (including deletes), so the
    /// engine logs the delta itself.
    fn reset_partition(&self, pid: u32, applied_seq: u64, entries: &[(Bytes, Cell)]) -> Result<()>;
}

/// Factory for per-node engines, plus the recovery entry point.
pub trait DurabilityProvider: Send + Sync + std::fmt::Debug {
    /// Open (or re-open) the engine for `node`, replaying its on-disk state.
    /// A fresh data dir yields an engine with no recovered partitions.
    fn open_node(&self, node: SnId) -> Result<RecoveredNode>;
}

/// What a provider recovered for one storage node.
pub struct RecoveredNode {
    /// The live engine to feed subsequent mutations into.
    pub engine: Arc<dyn NodeDurability>,
    /// Recovered partition images (empty on a fresh data dir).
    pub partitions: Vec<RecoveredPartition>,
}

/// One partition copy's recovered image.
pub struct RecoveredPartition {
    /// Logical partition id.
    pub pid: u32,
    /// The partition mutation sequence this image is current through.
    pub applied_seq: u64,
    /// Highest LL/SC token observed, so the partition's token counter can
    /// restart strictly above every recovered cell.
    pub max_token: u64,
    /// Live entries.
    pub entries: Vec<(Bytes, Cell)>,
}

impl std::fmt::Debug for RecoveredNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecoveredNode")
            .field("partitions", &self.partitions.len())
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for RecoveredPartition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecoveredPartition")
            .field("pid", &self.pid)
            .field("applied_seq", &self.applied_seq)
            .field("max_token", &self.max_token)
            .field("entries", &self.entries.len())
            .finish()
    }
}

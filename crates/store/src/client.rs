//! The PN-side storage client.
//!
//! Every processing node (and every worker thread inside one) holds its own
//! `StoreClient`. The client is where network time is spent: each call
//! charges the worker's virtual clock through a [`NetMeter`]. Batched calls
//! ([`StoreClient::multi_get`], [`StoreClient::multi_write`]) charge a
//! *single* exchange — this implements the paper's claim that "batching
//! enables transactions to access multiple records with a single request"
//! (§5.1).

use std::sync::Arc;

use bytes::Bytes;
use tell_common::{Error, Result};
use tell_netsim::NetMeter;

use crate::cell::Token;
use crate::cluster::{Expect as ClusterExpect, Mutation, StoreCluster};
use crate::keys::{prefix_end, Key};
use crate::op::{OpHandle, OpResult, StoreOp};
use crate::predicate::Predicate;

pub use crate::cluster::Expect;

/// Fixed protocol overhead charged per operation in a request.
const OP_OVERHEAD: usize = 32;
/// Size of a bare acknowledgement.
const ACK_BYTES: usize = 16;
/// Server-side CPU per row touched by a sequential scan, in µs. Much
/// cheaper than a point operation: scans stream through the ordered map.
const SCAN_ROW_CPU_US: f64 = 0.05;

/// One operation inside a batched write.
#[derive(Clone, Debug, PartialEq)]
pub struct WriteOp {
    /// Target key.
    pub key: Key,
    /// Precondition.
    pub expect: Expect,
    /// `Some(bytes)` to put, `None` to delete.
    pub value: Option<Bytes>,
}

impl WriteOp {
    /// Conditional put.
    pub fn put(key: Key, expect: Expect, value: Bytes) -> Self {
        WriteOp { key, expect, value: Some(value) }
    }

    /// Conditional delete.
    pub fn delete(key: Key, expect: Expect) -> Self {
        WriteOp { key, expect, value: None }
    }

    fn payload_len(&self) -> usize {
        self.key.len() + self.value.as_ref().map(|v| v.len()).unwrap_or(0) + OP_OVERHEAD
    }
}

/// Handle to the storage cluster for one worker.
#[derive(Clone)]
pub struct StoreClient {
    cluster: Arc<StoreCluster>,
    meter: NetMeter,
}

impl StoreClient {
    /// New client charging `meter`.
    pub fn new(cluster: Arc<StoreCluster>, meter: NetMeter) -> Self {
        StoreClient { cluster, meter }
    }

    /// Client with free (zero-cost) metering, for tests.
    pub fn unmetered(cluster: Arc<StoreCluster>) -> Self {
        StoreClient { cluster, meter: NetMeter::free() }
    }

    /// The cluster this client talks to.
    pub fn cluster(&self) -> &Arc<StoreCluster> {
        &self.cluster
    }

    /// The meter charging this worker's clock.
    pub fn meter(&self) -> &NetMeter {
        &self.meter
    }

    /// Submit an operation asynchronously. The local cluster is in-process
    /// memory, so the operation executes *now* — through the very blocking
    /// methods below, which keeps the simulated-clock accounting identical
    /// whether a caller uses the async or the blocking surface — and the
    /// returned handle is already complete. Overlap is a remote-transport
    /// phenomenon; in the simulation it is already priced into the batched
    /// multi-op charges (§5.1).
    pub fn submit(&self, op: StoreOp) -> OpHandle {
        let result = match op {
            StoreOp::Get { key } => self.get(&key).map(OpResult::Cell),
            StoreOp::MultiGet { keys } => self.multi_get(&keys).map(OpResult::Cells),
            StoreOp::Write { op } => match (&op.expect, &op.value) {
                // Same refusal the wire server gives this shape, so the two
                // transports stay behaviorally identical.
                (Expect::Absent, None) => {
                    Err(Error::invalid("delete with Expect::Absent is meaningless"))
                }
                _ => self.write_one(&op.key, op.expect, op.value).map(OpResult::Written),
            },
            StoreOp::MultiWrite { ops } => self.multi_write(ops).map(OpResult::WriteResults),
            StoreOp::Increment { key, delta } => self.increment(&key, delta).map(OpResult::Counter),
        };
        OpHandle::ready(result)
    }

    /// Load-link: read `key`, returning its token and value. The token is
    /// the link for a later [`StoreClient::store_conditional`].
    pub fn get(&self, key: &Key) -> Result<Option<(Token, Bytes)>> {
        let _frame = tell_obs::FrameGuard::enter(tell_obs::FrameKind::StoreRead);
        self.meter.stats().note_reads(1);
        tell_obs::incr(tell_obs::Counter::StoreReadOps);
        let res = self.cluster.srv_read(key)?;
        let inn = res.as_ref().map(|(_, v)| v.len()).unwrap_or(0) + ACK_BYTES;
        self.meter.charge_request(key.len() + OP_OVERHEAD, inn, 1);
        Ok(res)
    }

    /// Batched load-link of several keys: **one** network exchange.
    pub fn multi_get(&self, keys: &[Key]) -> Result<Vec<Option<(Token, Bytes)>>> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        let _frame = tell_obs::FrameGuard::enter(tell_obs::FrameKind::StoreRead);
        self.meter.stats().note_reads(keys.len() as u64);
        tell_obs::add(tell_obs::Counter::StoreReadOps, keys.len() as u64);
        let mut out = Vec::with_capacity(keys.len());
        let mut in_bytes = ACK_BYTES;
        let mut out_bytes = 0;
        for key in keys {
            out_bytes += key.len() + OP_OVERHEAD;
            let res = self.cluster.srv_read(key)?;
            in_bytes += res.as_ref().map(|(_, v)| v.len()).unwrap_or(0) + 8;
            out.push(res);
        }
        self.meter.charge_request(out_bytes, in_bytes, keys.len());
        Ok(out)
    }

    /// Unconditional upsert. Returns the new token.
    pub fn put(&self, key: &Key, value: Bytes) -> Result<Token> {
        self.write_one(key, Expect::Any, Some(value)).map(|t| t.expect("put returns a token"))
    }

    /// Insert; fails with `Conflict` if the key exists.
    pub fn insert(&self, key: &Key, value: Bytes) -> Result<Token> {
        self.write_one(key, Expect::Absent, Some(value)).map(|t| t.expect("insert returns a token"))
    }

    /// Store-conditional: write `value` only if the cell still carries
    /// `token` from our load-link. This is the paper's conflict-detection
    /// primitive (§4.1).
    pub fn store_conditional(&self, key: &Key, token: Token, value: Bytes) -> Result<Token> {
        self.write_one(key, Expect::Token(token), Some(value))
            .map(|t| t.expect("sc returns a token"))
    }

    /// Conditional delete.
    pub fn delete_conditional(&self, key: &Key, token: Token) -> Result<()> {
        self.write_one(key, Expect::Token(token), None).map(|_| ())
    }

    /// Unconditional delete (no-op when missing).
    pub fn delete(&self, key: &Key) -> Result<()> {
        self.write_one(key, Expect::Any, None).map(|_| ())
    }

    fn write_one(&self, key: &Key, expect: Expect, value: Option<Bytes>) -> Result<Option<Token>> {
        let payload = key.len() + value.as_ref().map(|v| v.len()).unwrap_or(0) + OP_OVERHEAD;
        let mutation = match value {
            Some(v) => Mutation::Put(v),
            None => Mutation::Delete,
        };
        // Charge the exchange whether or not it conflicts: a failed SC costs
        // a round trip too.
        let _frame = tell_obs::FrameGuard::enter(tell_obs::FrameKind::StoreWrite);
        self.meter.stats().note_writes(1);
        tell_obs::incr(tell_obs::Counter::StoreWriteOps);
        self.meter.charge_request(payload, ACK_BYTES, 1);
        let (token, replicas) = self.cluster.srv_write(key, to_cluster(expect), mutation)?;
        if replicas > 0 {
            self.meter.charge_replication(replicas, payload);
        }
        Ok(token)
    }

    /// Batched conditional writes: one exchange, independent per-op results
    /// (the batch is a network optimisation, not an atomic unit — commit
    /// atomicity lives in the transaction layer above, §4.3).
    pub fn multi_write(&self, ops: Vec<WriteOp>) -> Result<Vec<Result<Option<Token>>>> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        // On a storage node serving a remote frame, the apply work gets its
        // own span under the dispatch span. The PN's in-process path stays
        // span-free: the transaction's install phase already covers it.
        let span = if tell_obs::in_server_dispatch() {
            tell_obs::SpanTimer::start(tell_obs::SpanKind::StoreWrite, 0.0)
        } else {
            None
        };
        let _frame = tell_obs::FrameGuard::enter(tell_obs::FrameKind::StoreWrite);
        let op_count = ops.len() as u32;
        let out_bytes: usize = ops.iter().map(|o| o.payload_len()).sum();
        self.meter.stats().note_writes(ops.len() as u64);
        tell_obs::add(tell_obs::Counter::StoreWriteOps, ops.len() as u64);
        self.meter.charge_request(out_bytes, ACK_BYTES + 8 * ops.len(), ops.len());
        let mut results = Vec::with_capacity(ops.len());
        for op in ops {
            let payload = op.payload_len();
            let mutation = match op.value {
                Some(v) => Mutation::Put(v),
                None => Mutation::Delete,
            };
            match self.cluster.srv_write(&op.key, to_cluster(op.expect), mutation) {
                Ok((token, replicas)) => {
                    if replicas > 0 {
                        // Synchronous replication is per written object: the
                        // batch amortizes the client round trip, but every
                        // object still travels master -> backups before the
                        // ack (the dominant RF3 cost, Fig 5).
                        self.meter.charge_replication(replicas, payload);
                    }
                    results.push(Ok(token));
                }
                Err(e) => results.push(Err(e)),
            }
        }
        if let Some(span) = span {
            let status = if results.iter().any(|r| r.is_err()) {
                tell_obs::SpanStatus::Conflict
            } else {
                tell_obs::SpanStatus::Ok
            };
            span.finish(0.0, op_count, status);
        }
        Ok(results)
    }

    /// Atomic fetch-and-add, used to allocate tid/rid ranges (§4.2 "PNs can
    /// increment the counter by a high value to acquire a range").
    pub fn increment(&self, key: &Key, delta: u64) -> Result<u64> {
        self.meter.stats().note_writes(1);
        tell_obs::incr(tell_obs::Counter::StoreWriteOps);
        self.meter.charge_request(key.len() + 8 + OP_OVERHEAD, ACK_BYTES + 8, 1);
        self.cluster.srv_increment(key, delta)
    }

    /// Ordered scan of `[start, end)`, at most `limit` entries.
    pub fn scan_range(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
    ) -> Result<Vec<(Key, Token, Bytes)>> {
        self.scan(start, end, limit, false)
    }

    /// Reverse-ordered scan (largest key first) of `[start, end)`. Used by
    /// recovery to iterate the transaction log backwards (§4.4.1).
    pub fn scan_range_rev(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
    ) -> Result<Vec<(Key, Token, Bytes)>> {
        self.scan(start, end, limit, true)
    }

    /// Scan every key starting with `prefix`.
    pub fn scan_prefix(&self, prefix: &[u8], limit: usize) -> Result<Vec<(Key, Token, Bytes)>> {
        let end = prefix_end(prefix);
        self.scan(prefix, end.as_deref(), limit, false)
    }

    /// Scan with a **pushed-down filter** (§5.2 of the paper: "executing
    /// simple operations such as selection or projection in the SN would
    /// enable to reduce the size of the result set and lower the amount of
    /// data sent over the network"). The storage nodes evaluate `filter`
    /// server-side: every scanned row costs server CPU, but only matching
    /// rows cross the network. The filter is a serializable [`Predicate`],
    /// so the remote transport ships the very same expression in its frame.
    pub fn scan_prefix_pushdown(
        &self,
        prefix: &[u8],
        limit: usize,
        filter: &Predicate,
    ) -> Result<Vec<(Key, Token, Bytes)>> {
        let end = prefix_end(prefix);
        let (rows, masters) = self.cluster.srv_scan(prefix, end.as_deref(), usize::MAX, false)?;
        let scanned = rows.len();
        let mut out: Vec<(Key, Token, Bytes)> =
            rows.into_iter().filter(|(k, _, v)| filter.matches(k, v)).collect();
        out.truncate(limit);
        let in_bytes: usize =
            out.iter().map(|(k, _, v)| k.len() + v.len() + 16).sum::<usize>() + ACK_BYTES;
        self.meter.charge_request((prefix.len() + OP_OVERHEAD) * masters.max(1), in_bytes, 1);
        self.meter.charge_cpu(scanned as f64 * SCAN_ROW_CPU_US);
        Ok(out)
    }

    fn scan(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
        reverse: bool,
    ) -> Result<Vec<(Key, Token, Bytes)>> {
        let (rows, masters) = self.cluster.srv_scan(start, end, limit, reverse)?;
        let in_bytes: usize =
            rows.iter().map(|(k, _, v)| k.len() + v.len() + 16).sum::<usize>() + ACK_BYTES;
        // Scatter-gather: the fan-out requests run in parallel; charge one
        // round trip plus the whole payload crossing our link.
        self.meter.charge_request((start.len() + OP_OVERHEAD) * masters.max(1), in_bytes, 1);
        self.meter.charge_cpu(rows.len() as f64 * SCAN_ROW_CPU_US);
        Ok(rows)
    }
}

fn to_cluster(e: Expect) -> ClusterExpect {
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::StoreConfig;
    use tell_common::{Error, SimClock};
    use tell_netsim::{NetworkProfile, TrafficStats};

    fn client() -> StoreClient {
        StoreClient::unmetered(StoreCluster::new(StoreConfig::new(2)))
    }

    fn metered(rf: usize) -> (StoreClient, SimClock) {
        let clock = SimClock::new();
        let meter = NetMeter::new(NetworkProfile::infiniband(), clock.clone(), TrafficStats::new());
        let cluster = StoreCluster::new(StoreConfig::new(3).replication(rf));
        (StoreClient::new(cluster, meter), clock)
    }

    fn k(s: &str) -> Key {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn llsc_happy_path() {
        let c = client();
        let t0 = c.insert(&k("a"), Bytes::from_static(b"v1")).unwrap();
        let (t, v) = c.get(&k("a")).unwrap().unwrap();
        assert_eq!(t, t0);
        assert_eq!(v.as_ref(), b"v1");
        let t2 = c.store_conditional(&k("a"), t, Bytes::from_static(b"v2")).unwrap();
        assert!(t2 > t);
        assert_eq!(
            c.store_conditional(&k("a"), t, Bytes::from_static(b"v3")).unwrap_err(),
            Error::Conflict
        );
    }

    #[test]
    fn multi_get_preserves_order_and_misses() {
        let c = client();
        c.insert(&k("a"), Bytes::from_static(b"1")).unwrap();
        c.insert(&k("c"), Bytes::from_static(b"3")).unwrap();
        let res = c.multi_get(&[k("a"), k("b"), k("c")]).unwrap();
        assert_eq!(res.len(), 3);
        assert_eq!(res[0].as_ref().unwrap().1.as_ref(), b"1");
        assert!(res[1].is_none());
        assert_eq!(res[2].as_ref().unwrap().1.as_ref(), b"3");
    }

    #[test]
    fn multi_write_results_are_independent() {
        let c = client();
        c.insert(&k("a"), Bytes::from_static(b"1")).unwrap();
        let (ta, _) = c.get(&k("a")).unwrap().unwrap();
        let results = c
            .multi_write(vec![
                WriteOp::put(k("a"), Expect::Token(ta), Bytes::from_static(b"2")),
                WriteOp::put(k("a"), Expect::Token(ta), Bytes::from_static(b"3")), // stale now
                WriteOp::put(k("b"), Expect::Absent, Bytes::from_static(b"new")),
            ])
            .unwrap();
        assert!(results[0].is_ok());
        assert_eq!(results[1].as_ref().unwrap_err(), &Error::Conflict);
        assert!(results[2].is_ok());
        assert_eq!(c.get(&k("a")).unwrap().unwrap().1.as_ref(), b"2");
    }

    #[test]
    fn batching_saves_virtual_time() {
        let (c, clock) = metered(1);
        let keys: Vec<Key> = (0..20).map(|i| k(&format!("key{i}"))).collect();
        for key in &keys {
            c.insert(key, Bytes::from_static(b"v")).unwrap();
        }
        clock.reset();
        c.multi_get(&keys).unwrap();
        let batched = clock.now_us();
        clock.reset();
        for key in &keys {
            c.get(key).unwrap();
        }
        let single = clock.now_us();
        assert!(batched * 3.0 < single, "batched={batched} single={single}");
    }

    #[test]
    fn replication_costs_time_on_writes_not_reads() {
        let (c1, clock1) = metered(1);
        let (c3, clock3) = metered(3);
        c1.insert(&k("x"), Bytes::from(vec![0u8; 200])).unwrap();
        c3.insert(&k("x"), Bytes::from(vec![0u8; 200])).unwrap();
        assert!(clock3.now_us() > clock1.now_us(), "RF3 writes are slower");
        clock1.reset();
        clock3.reset();
        c1.get(&k("x")).unwrap();
        c3.get(&k("x")).unwrap();
        // Reads go to the master only (§6.3.1): equal cost.
        assert!((clock1.now_us() - clock3.now_us()).abs() < 1e-9);
    }

    #[test]
    fn increment_allocates_ranges() {
        let c = client();
        let key = crate::keys::counter("tids");
        let hi = c.increment(&key, 256).unwrap();
        assert_eq!(hi, 256);
        let hi2 = c.increment(&key, 256).unwrap();
        assert_eq!(hi2, 512);
    }

    #[test]
    fn prefix_scan_returns_only_prefix() {
        let c = client();
        c.insert(&k("p/a"), Bytes::from_static(b"1")).unwrap();
        c.insert(&k("p/b"), Bytes::from_static(b"2")).unwrap();
        c.insert(&k("q/a"), Bytes::from_static(b"3")).unwrap();
        let rows = c.scan_prefix(b"p/", 100).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|(key, _, _)| key.starts_with(b"p/")));
    }

    #[test]
    fn pushdown_scan_saves_bandwidth_not_server_work() {
        let (c, clock) = metered(1);
        for i in 0..100u32 {
            let key = Bytes::from(format!("t/{i:03}"));
            c.insert(&key, Bytes::from(vec![i as u8; 500])).unwrap();
        }
        clock.reset();
        let all = c.scan_prefix(b"t/", usize::MAX).unwrap();
        let full_cost = clock.now_us();
        assert_eq!(all.len(), 100);
        clock.reset();
        // v[0] == 0 or v[0] == 50: matches exactly rows 000 and 050.
        let pred = Predicate::Any(vec![
            Predicate::value_eq(0, vec![0u8]),
            Predicate::value_eq(0, vec![50u8]),
        ]);
        let filtered = c.scan_prefix_pushdown(b"t/", usize::MAX, &pred).unwrap();
        let pushdown_cost = clock.now_us();
        assert_eq!(filtered.len(), 2);
        assert!(
            pushdown_cost < full_cost * 0.6,
            "pushdown must be cheaper: {pushdown_cost} vs {full_cost}"
        );
    }

    #[test]
    fn submit_completes_immediately_with_identical_accounting() {
        use crate::api::StoreApi;
        let (c, clock) = metered(1);
        let keys: Vec<Key> = (0..8).map(|i| k(&format!("key{i}"))).collect();
        for key in &keys {
            c.insert(key, Bytes::from_static(b"v")).unwrap();
        }
        clock.reset();
        let blocking = c.multi_get(&keys).unwrap();
        let blocking_cost = clock.now_us();
        clock.reset();
        let h = c.multi_get_async(&keys);
        let asynced = h.wait().unwrap();
        let async_cost = clock.now_us();
        assert_eq!(blocking, asynced);
        assert!((blocking_cost - async_cost).abs() < 1e-9, "same virtual charge both ways");
    }

    #[test]
    fn submit_surfaces_typed_errors_in_the_handle() {
        use crate::api::StoreApi;
        let c = client();
        c.insert(&k("a"), Bytes::from_static(b"1")).unwrap();
        let (ta, _) = c.get(&k("a")).unwrap().unwrap();
        c.store_conditional(&k("a"), ta, Bytes::from_static(b"2")).unwrap();
        let h = c.write_async(WriteOp::put(k("a"), Expect::Token(ta), Bytes::from_static(b"x")));
        assert_eq!(h.wait().unwrap_err(), Error::Conflict);
        let h = c.write_async(WriteOp::delete(k("a"), Expect::Absent));
        assert!(matches!(h.wait().unwrap_err(), Error::InvalidOperation(_)));
    }

    #[test]
    fn concurrent_store_conditional_has_single_winner() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cluster = StoreCluster::new(StoreConfig::new(4));
        let c0 = StoreClient::unmetered(Arc::clone(&cluster));
        c0.insert(&k("hot"), Bytes::from_static(b"0")).unwrap();
        let (token, _) = c0.get(&k("hot")).unwrap().unwrap();
        let wins = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..8 {
            let cluster = Arc::clone(&cluster);
            let wins = Arc::clone(&wins);
            handles.push(std::thread::spawn(move || {
                let c = StoreClient::unmetered(cluster);
                let val = Bytes::from(format!("w{i}"));
                if c.store_conditional(&k("hot"), token, val).is_ok() {
                    wins.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(wins.load(Ordering::Relaxed), 1, "exactly one SC wins per link");
    }
}

//! Model-based property tests of the store: a sequence of operations on a
//! replicated, partitioned cluster behaves exactly like a single HashMap
//! with tokens — including across node failures under RF2.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use proptest::prelude::*;
use tell_common::{Error, SnId};
use tell_store::{StoreClient, StoreCluster, StoreConfig};

#[derive(Clone, Debug)]
enum Op {
    Put(u8, Vec<u8>),
    Insert(u8, Vec<u8>),
    /// Store-conditional against the *current* token (should succeed) or a
    /// stale token (should conflict).
    Sc(u8, Vec<u8>, bool),
    Delete(u8),
    Get(u8),
    Increment(u8, u16),
    /// Kill + revive a node mid-sequence (RF2 keeps everything available).
    Bounce(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), prop::collection::vec(any::<u8>(), 0..24)).prop_map(|(k, v)| Op::Put(k, v)),
        (any::<u8>(), prop::collection::vec(any::<u8>(), 0..24))
            .prop_map(|(k, v)| Op::Insert(k, v)),
        (any::<u8>(), prop::collection::vec(any::<u8>(), 0..24), any::<bool>())
            .prop_map(|(k, v, fresh)| Op::Sc(k, v, fresh)),
        any::<u8>().prop_map(Op::Delete),
        any::<u8>().prop_map(Op::Get),
        (any::<u8>(), any::<u16>()).prop_map(|(k, d)| Op::Increment(k, d)),
        (0u8..3).prop_map(Op::Bounce),
    ]
}

fn key(k: u8) -> Bytes {
    Bytes::from(vec![b'k', k])
}

fn ctr_key(k: u8) -> Bytes {
    Bytes::from(vec![b'c', k])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn store_matches_map_model(ops in prop::collection::vec(op_strategy(), 0..120)) {
        let cluster = StoreCluster::new(StoreConfig::new(3).replication(2));
        let client = StoreClient::unmetered(Arc::clone(&cluster));
        // Model: key -> (token, value); counters separately.
        let mut model: HashMap<u8, (u64, Vec<u8>)> = HashMap::new();
        let mut counters: HashMap<u8, u64> = HashMap::new();
        let mut stale_tokens: HashMap<u8, u64> = HashMap::new();

        for op in ops {
            match op {
                Op::Put(k, v) => {
                    let token = client.put(&key(k), Bytes::from(v.clone())).unwrap();
                    if let Some((old, _)) = model.get(&k) {
                        stale_tokens.insert(k, *old);
                    }
                    model.insert(k, (token, v));
                }
                Op::Insert(k, v) => {
                    let result = client.insert(&key(k), Bytes::from(v.clone()));
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(k) {
                        e.insert((result.unwrap(), v));
                    } else {
                        prop_assert_eq!(result.unwrap_err(), Error::Conflict);
                    }
                }
                Op::Sc(k, v, fresh) => {
                    if fresh {
                        if let Some((token, _)) = model.get(&k).cloned() {
                            let new = client
                                .store_conditional(&key(k), token, Bytes::from(v.clone()))
                                .unwrap();
                            stale_tokens.insert(k, token);
                            model.insert(k, (new, v));
                        }
                    } else if let Some(&stale) = stale_tokens.get(&k) {
                        // A genuinely stale token must conflict.
                        let r = client.store_conditional(&key(k), stale, Bytes::from(v));
                        prop_assert_eq!(r.unwrap_err(), Error::Conflict);
                    }
                }
                Op::Delete(k) => {
                    client.delete(&key(k)).unwrap();
                    if let Some((old, _)) = model.remove(&k) {
                        stale_tokens.insert(k, old);
                    }
                }
                Op::Get(k) => {
                    let got = client.get(&key(k)).unwrap();
                    match model.get(&k) {
                        Some((token, v)) => {
                            let (t, raw) = got.unwrap();
                            prop_assert_eq!(&t, token);
                            prop_assert_eq!(raw.as_ref(), &v[..]);
                        }
                        None => prop_assert!(got.is_none()),
                    }
                }
                Op::Increment(k, d) => {
                    let new = client.increment(&ctr_key(k), d as u64).unwrap();
                    let c = counters.entry(k).or_insert(0);
                    *c += d as u64;
                    prop_assert_eq!(new, *c);
                }
                Op::Bounce(n) => {
                    // RF2 over 3 nodes survives any single failure; revive
                    // re-syncs the copies.
                    cluster.kill_node(SnId(n as u32));
                    cluster.revive_node(SnId(n as u32));
                }
            }
        }

        // Final sweep: every model entry is present with the right bytes.
        for (k, (token, v)) in &model {
            let (t, raw) = client.get(&key(*k)).unwrap().unwrap();
            prop_assert_eq!(&t, token);
            prop_assert_eq!(raw.as_ref(), &v[..]);
        }
        // And the prefix scan sees exactly the model's keys, ordered.
        let rows = client.scan_prefix(b"k", usize::MAX).unwrap();
        prop_assert_eq!(rows.len(), model.len());
        prop_assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
    }
}

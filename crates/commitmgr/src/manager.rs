//! The commit manager service (§4.2).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use tell_common::codec::Writer;
use tell_common::{BitSet, CmId, Error, IsolationLevel, Result, TxnId};
use tell_netsim::NetMeter;
use tell_obs::{Gauge, ProfMutex};
use tell_store::{keys, StoreApi, StoreCluster, StoreEndpoint};

use crate::snapshot::SnapshotDescriptor;

/// Name of the store counter that makes tids system-wide unique.
pub const TID_COUNTER: &str = "tell/tid";

/// Flag bit in the first byte of a transaction-log entry marking the
/// transaction committed. The log format itself lives in `tell-core`; the
/// commit manager only needs this one byte during recovery (§4.4.3).
pub const LOG_FLAG_COMMITTED: u8 = 0x01;

/// What a transaction receives from [`CommitManager::start`].
#[derive(Clone, Debug)]
pub struct TxnStart {
    /// System-wide unique transaction id; doubles as the version number for
    /// every data item the transaction writes.
    pub tid: TxnId,
    /// The consistent snapshot the transaction operates with.
    pub snapshot: SnapshotDescriptor,
    /// Lowest active version number: versions below it are garbage-
    /// collection candidates (§5.4).
    pub lav: u64,
}

/// Commit-manager tuning knobs.
#[derive(Clone, Debug)]
pub struct CmConfig {
    /// Use **interleaved tids** (the paper's cited improvement over
    /// continuous ranges, §4.2: "Using ranges of interleaved tids \[58\] is
    /// subject to be implemented in the near future"): each commit manager
    /// owns the congruence class `tid ≡ stripe.0 (mod stripe.1)` and stays
    /// synchronized with the cluster-wide tid watermark, so version numbers
    /// track commit order closely and no shared counter is needed.
    /// When `false`, the original continuous-range scheme is used — simple,
    /// but transactions holding tids from an old range abort whenever a
    /// record already carries a higher version (the "higher abort rate"
    /// the paper concedes; quantified by the tid-range ablation bench).
    pub interleaved: bool,
    /// This manager's congruence class: `(index, managers)`. Assigned by
    /// `CmCluster`; standalone managers default to `(0, 1)`.
    pub stripe: (u64, u64),
    /// Continuous-range mode only: tids grabbed per counter increment.
    pub tid_range: u64,
    /// How often to publish/pull snapshot state when several commit
    /// managers run in parallel (paper: 1 ms "did not noticeably affect the
    /// overall abort rate").
    pub sync_interval: Duration,
    /// Also sync after this many operations, bounding snapshot staleness in
    /// *transaction-count* terms. The paper's 1 ms bound is meaningful
    /// relative to its cluster's commit rate; in simulated time the
    /// equivalent bound is "a few tens of transactions".
    pub sync_every_ops: u64,
    /// Non-monotonic SI only: refresh the cached start snapshot every this
    /// many NMSI starts. Between refreshes a start is served the cached
    /// (stale but consistent) descriptor, modeling the CM round-trip
    /// elision NMSI buys — at the cost of non-monotonic session reads.
    pub nmsi_refresh_every: u64,
}

impl Default for CmConfig {
    fn default() -> Self {
        CmConfig {
            interleaved: true,
            stripe: (0, 1),
            tid_range: 64,
            sync_interval: Duration::from_millis(1),
            sync_every_ops: 16,
            nmsi_refresh_every: 4,
        }
    }
}

#[derive(Default)]
struct State {
    /// All tids at or below `base` have completed.
    base: u64,
    /// Bit `i` ⇔ tid `base + 1 + i` completed (committed or aborted).
    completed: BitSet,
    /// Bit `i` ⇔ tid `base + 1 + i` committed.
    committed: BitSet,
    /// Active transactions started through this manager: tid → snapshot base.
    active: BTreeMap<u64, u64>,
    /// Multiset of active snapshot bases (first key = local min).
    active_bases: BTreeMap<u64, usize>,
    /// Local tid range: next to hand out / exclusive limit (continuous
    /// mode), or the next owned tid (interleaved mode, `tid_limit` unused).
    tid_next: u64,
    tid_limit: u64,
    /// Highest tid known to exist anywhere (handed locally, observed in a
    /// completion, or learned from a peer's published state).
    watermark: u64,
    /// Latest published min-active-base per peer commit manager.
    peer_min_active: BTreeMap<u32, u64>,
    last_sync: Option<Instant>,
    ops_since_sync: u64,
    /// A completion's publish failed (store fault window): the next
    /// `maybe_sync` is due immediately instead of waiting for the cadence,
    /// so the unpublished state is retried on the very next operation.
    publish_pending: bool,
    /// Cached snapshot served to NMSI starts between refreshes.
    nmsi_cache: Option<SnapshotDescriptor>,
    /// NMSI starts served since the manager came up (drives the refresh
    /// cadence).
    nmsi_starts: u64,
    /// Base held down in `active_bases` on behalf of the cache: as long as
    /// the cached snapshot may still be served, the lav must not overtake
    /// its base — a transaction layer eagerly GCs versions below the lav
    /// at write time, and a *future* cached start must still find every
    /// version its stale snapshot can see. The pin advances with each
    /// refresh, so it lags the base by at most one refresh cadence.
    nmsi_pin: Option<u64>,
}

impl State {
    fn local_min_active(&self) -> u64 {
        self.active_bases.keys().next().copied().unwrap_or(self.base)
    }

    fn pin_base(&mut self, base: u64) {
        *self.active_bases.entry(base).or_insert(0) += 1;
    }

    fn unpin_base(&mut self, base: u64) {
        if let Some(cnt) = self.active_bases.get_mut(&base) {
            *cnt -= 1;
            if *cnt == 0 {
                self.active_bases.remove(&base);
            }
        }
    }

    fn mark(&mut self, tid: u64, committed: bool) {
        self.watermark = self.watermark.max(tid);
        if tid <= self.base {
            return; // already covered (e.g. learned through a peer first)
        }
        let off = (tid - self.base - 1) as usize;
        self.completed.set(off);
        if committed {
            self.committed.set(off);
        }
    }

    fn advance_base(&mut self) {
        let n = self.completed.first_zero();
        if n > 0 {
            self.base += n as u64;
            self.completed.shift_down(n);
            self.committed.shift_down(n);
        }
    }

    fn finish(&mut self, tid: TxnId, committed: bool) {
        self.mark(tid.raw(), committed);
        self.advance_base();
        if let Some(base) = self.active.remove(&tid.raw()) {
            if let Some(cnt) = self.active_bases.get_mut(&base) {
                *cnt -= 1;
                if *cnt == 0 {
                    self.active_bases.remove(&base);
                }
            }
        }
    }
}

/// One commit manager instance.
///
/// Several can run in parallel (see [`crate::cluster::CmCluster`]); they
/// synchronize through the shared store: tid uniqueness via the atomic
/// [`TID_COUNTER`], snapshots by periodically publishing local state and
/// merging peers' published states (a join-semilattice: base advances, bitsets
/// union — so merging in any order converges).
///
/// Generic over the storage endpoint so a manager can run over the
/// in-process store or against remote storage nodes via `tell-rpc`.
pub struct CommitManager<E: StoreEndpoint = Arc<StoreCluster>> {
    id: CmId,
    endpoint: E,
    config: CmConfig,
    state: ProfMutex<State>,
}

impl<E: StoreEndpoint> CommitManager<E> {
    /// A fresh commit manager over the storage `endpoint`.
    pub fn new(id: CmId, endpoint: E, config: CmConfig) -> Arc<Self> {
        Arc::new(CommitManager {
            id,
            endpoint,
            config,
            state: ProfMutex::new("cm.state", State::default()),
        })
    }

    /// This manager's id.
    pub fn id(&self) -> CmId {
        self.id
    }

    /// This manager's tid congruence class (interleaved allocation).
    pub fn stripe(&self) -> (u64, u64) {
        self.config.stripe
    }

    /// Start a commit manager that recovers its state after a predecessor
    /// failed (§4.4.3): merge every peer's published state, then roll the
    /// transaction log forward for commits recorded there but not yet
    /// published.
    pub fn recover(id: CmId, endpoint: E, config: CmConfig) -> Result<Arc<Self>> {
        let client = endpoint.unmetered_client();
        let cm = CommitManager::new(id, endpoint, config);
        {
            let mut st = cm.state.lock();
            Self::pull_peers(&cm.id, &client, &mut st)?;
            // The log records commits that may postdate the last publish.
            let rows = client.scan_range_rev(
                &keys::txn_log_prefix(),
                keys::prefix_end(&keys::txn_log_prefix()).as_deref(),
                usize::MAX,
            )?;
            for (key, _, value) in rows {
                let Some(tid) = keys::parse_txn_log(&key) else { continue };
                if tid.raw() <= st.base {
                    break; // reverse scan: everything below is covered
                }
                if value.first().map(|f| f & LOG_FLAG_COMMITTED != 0).unwrap_or(false) {
                    st.mark(tid.raw(), true);
                }
            }
            st.advance_base();
        }
        Ok(cm)
    }

    /// Begin a transaction: returns a fresh tid, the current snapshot and
    /// the lav. Costs one round trip to the commit manager, plus (amortized)
    /// the tid-range counter increment.
    ///
    /// The periodic peer sync is best-effort here, as in `complete`:
    /// it only publishes/pulls gossip state, while tid allocation itself is
    /// manager-local (the range counter below propagates its own errors).
    /// The sync's wall-clock trigger would otherwise make `begin` fail at
    /// arbitrary moments of a storage fault window.
    pub fn start(&self, meter: &NetMeter) -> Result<TxnStart> {
        self.start_at(IsolationLevel::Si, meter)
    }

    /// [`start`](Self::start) with an explicit isolation level.
    ///
    /// The level only changes how the *snapshot* is produced; tid
    /// allocation and active-set registration are identical across levels:
    ///
    /// * `Si` / `Serializable` / `ReadCommitted` — the freshest snapshot
    ///   this manager can construct (Serializable strengthening and RC
    ///   weakening both happen PN-side, in the transaction layer).
    /// * `NonMonotonicSi` — a cached snapshot refreshed only every
    ///   [`CmConfig::nmsi_refresh_every`] NMSI starts. The transaction is
    ///   registered active under the *stale* base, so the cluster lav
    ///   never overtakes a snapshot some live NMSI transaction still
    ///   reads under — GC stays sound. Serving the cache is metered as a
    ///   descriptor-free round trip (the elision NMSI exists to buy).
    pub fn start_at(&self, level: IsolationLevel, meter: &NetMeter) -> Result<TxnStart> {
        if self.maybe_sync(meter).is_err() {
            tell_obs::incr(tell_obs::Counter::CmSyncDeferred);
        }
        let mut st = self.state.lock();
        let tid = if self.config.interleaved {
            let (idx, n) = self.config.stripe;
            debug_assert!(n >= 1 && idx < n);
            if st.tid_next == 0 {
                // First allocation of this manager's class (skip tid 0, the
                // bootstrap version).
                st.tid_next = if idx == 0 { n } else { idx };
            }
            let mut t = st.tid_next;
            if st.watermark >= t {
                // The cluster moved past our class: jump to the watermark so
                // our version numbers keep tracking commit order, marking
                // the skipped (never-handed) tids of our class completed so
                // the base does not stall on them.
                let mut target = st.watermark + 1;
                target += (n + idx - target % n) % n;
                let mut k = t;
                while k < target {
                    st.mark(k, false);
                    k += n;
                }
                st.advance_base();
                t = target;
            }
            st.tid_next = t + n;
            st.watermark = st.watermark.max(t);
            TxnId(t)
        } else {
            if st.tid_next >= st.tid_limit {
                let client = self.endpoint.client(meter.clone());
                let end = client.increment(&keys::counter(TID_COUNTER), self.config.tid_range)?;
                st.tid_limit = end + 1;
                st.tid_next = end + 1 - self.config.tid_range;
            }
            let t = st.tid_next;
            st.tid_next += 1;
            st.watermark = st.watermark.max(t);
            TxnId(t)
        };
        let (snapshot, cached) = if level == IsolationLevel::NonMonotonicSi {
            let cadence = self.config.nmsi_refresh_every.max(1);
            let refresh = st.nmsi_cache.is_none() || st.nmsi_starts.is_multiple_of(cadence);
            st.nmsi_starts += 1;
            if refresh {
                let snap = Self::fresh_snapshot(&st);
                // Advance the cache pin: the old cached base may release
                // its hold on the lav, the new one takes it over (see
                // `State::nmsi_pin` for why the hold must outlive any one
                // transaction).
                if let Some(old) = st.nmsi_pin.take() {
                    st.unpin_base(old);
                }
                st.pin_base(snap.base());
                st.nmsi_pin = Some(snap.base());
                st.nmsi_cache = Some(snap.clone());
                (snap, false)
            } else {
                (st.nmsi_cache.clone().expect("nmsi cache present"), true)
            }
        } else {
            (Self::fresh_snapshot(&st), false)
        };
        // Register under the snapshot's own base (stale for a cached NMSI
        // start): the lav must cover every snapshot a live transaction
        // reads under, or GC could reclaim versions it still needs.
        let base = snapshot.base();
        st.active.insert(tid.raw(), base);
        *st.active_bases.entry(base).or_insert(0) += 1;
        let lav = st
            .peer_min_active
            .values()
            .copied()
            .chain(std::iter::once(st.local_min_active()))
            .min()
            .unwrap_or(st.base);
        // PN ↔ CM round trip; a cached NMSI start elides the descriptor
        // payload (the session reuses the one it already holds).
        let response_bytes = if cached { 24 } else { snapshot.encoded_len() + 16 };
        meter.charge_request(32, response_bytes, 1);
        Self::export_gauges(&st);
        Ok(TxnStart { tid, snapshot, lav })
    }

    /// The freshest snapshot this manager can serve right now, without
    /// allocating a tid or registering anything active. This is the
    /// read-committed refresh path: an RC transaction re-reads the
    /// committed horizon before each data access while staying registered
    /// (and lav-protected) under its begin snapshot.
    pub fn current_snapshot(&self, meter: &NetMeter) -> SnapshotDescriptor {
        let st = self.state.lock();
        let snapshot = Self::fresh_snapshot(&st);
        // Piggybacks on the PN's open CM session: a small request and the
        // descriptor back.
        meter.charge_request(16, snapshot.encoded_len() + 8, 1);
        snapshot
    }

    /// The freshest snapshot this manager can construct: its base plus a
    /// clone of the committed window (cheap — a bitset of outstanding txns).
    fn fresh_snapshot(st: &State) -> SnapshotDescriptor {
        SnapshotDescriptor::new(st.base, {
            let mut bits = BitSet::new();
            bits.union_with(&st.committed);
            bits
        })
    }

    /// Publish this manager's view of the global commit state as gauges.
    /// With several managers in one process the last writer wins, which is
    /// fine: the values chase each other within one sync interval.
    fn export_gauges(st: &State) {
        if !tell_obs::enabled() {
            return;
        }
        // Sampled: gauges are last-write-wins, so publishing every 16th
        // call is indistinguishable at scrape time while the common
        // start/complete path pays one load and one counter bump.
        use std::sync::atomic::{AtomicU64, Ordering};
        static TICK: AtomicU64 = AtomicU64::new(0);
        if !TICK.fetch_add(1, Ordering::Relaxed).is_multiple_of(16) {
            return;
        }
        let lav = st
            .peer_min_active
            .values()
            .copied()
            .chain(std::iter::once(st.local_min_active()))
            .min()
            .unwrap_or(st.base);
        tell_obs::set_gauge(Gauge::CmLav, lav);
        tell_obs::set_gauge(Gauge::CmBase, st.base);
        tell_obs::set_gauge(Gauge::CmWatermark, st.watermark);
        tell_obs::set_gauge(Gauge::CmTidLimit, st.tid_limit);
        tell_obs::set_gauge(Gauge::CmActiveTxns, st.active.len() as u64);
        // How far GC lags behind completion: a long-running transaction
        // holds the lav down while the base keeps advancing.
        tell_obs::set_gauge(Gauge::CmLavLag, st.base.saturating_sub(lav));
        // Continuous-range mode: tids left before the next counter trip.
        tell_obs::set_gauge(Gauge::CmTidRangeRemaining, st.tid_limit.saturating_sub(st.tid_next));
    }

    /// Record a successful commit.
    pub fn set_committed(&self, tid: TxnId, meter: &NetMeter) -> Result<()> {
        self.complete(tid, true, meter)
    }

    /// Record an abort.
    pub fn set_aborted(&self, tid: TxnId, meter: &NetMeter) -> Result<()> {
        self.complete(tid, false, meter)
    }

    /// A completion changes what every future snapshot must contain, so the
    /// updated state is published to the store immediately. Publishing
    /// cannot be amortized the way pulling is: a manager may go idle right
    /// after its last commit, and an unpublished completion would leave
    /// peers' snapshots missing that version until the next publish —
    /// their transactions would conflict on it in the meantime. Starts
    /// don't have this problem (they change nothing a peer's snapshot
    /// depends on), so the pull side stays on the periodic `maybe_sync`
    /// cadence.
    ///
    /// The in-memory `finish` is the visibility commit point: every
    /// snapshot this manager hands out afterwards contains the outcome, so
    /// a publish failure must NOT surface as a completion failure — the
    /// caller would record an abort for a version later readers observe, a
    /// torn history. Publish is safe to defer instead: each completion
    /// re-encodes the full state, and a failed publish marks the state
    /// `publish_pending`, which forces the next `maybe_sync` (any later
    /// start or completion) due immediately rather than on the periodic
    /// cadence — so a store fault window (e.g. every copy-holder of the
    /// cm-state partition down, awaiting restart from its durable log)
    /// delays peer visibility only until the first operation after the
    /// window closes.
    fn complete(&self, tid: TxnId, committed: bool, meter: &NetMeter) -> Result<()> {
        // On a commit-manager node serving a remote frame, applying the
        // outcome gets its own span under the dispatch span; the in-process
        // path stays span-free (the cm_complete phase already covers it).
        let span = if tell_obs::in_server_dispatch() {
            tell_obs::SpanTimer::start(tell_obs::SpanKind::CmApply, 0.0)
        } else {
            None
        };
        let _frame = tell_obs::FrameGuard::enter(tell_obs::FrameKind::CmApply);
        meter.charge_request(40, 16, 1);
        let client = self.endpoint.client(meter.clone());
        {
            let mut st = self.state.lock();
            st.finish(tid, committed);
            if Self::publish(&self.id, &client, &mut st).is_err() {
                st.publish_pending = true;
                tell_obs::incr(tell_obs::Counter::CmPublishDeferred);
            }
            Self::export_gauges(&st);
        }
        if self.maybe_sync(meter).is_err() {
            tell_obs::incr(tell_obs::Counter::CmSyncDeferred);
        }
        if let Some(span) = span {
            let status =
                if committed { tell_obs::SpanStatus::Ok } else { tell_obs::SpanStatus::Conflict };
            span.finish(0.0, 1, status);
        }
        Ok(())
    }

    /// Mark the unused remainder of the local tid range completed, so the
    /// global base is not blocked by tids that will never run. Called when a
    /// commit manager shuts down cleanly.
    pub fn release_unused_range(&self) {
        if self.config.interleaved {
            return; // interleaved classes self-heal via the watermark
        }
        let mut st = self.state.lock();
        let (from, to) = (st.tid_next, st.tid_limit);
        for tid in from..to {
            st.mark(tid, false);
        }
        st.tid_next = st.tid_limit;
        st.advance_base();
    }

    /// Resolve a transaction's outcome without charging a caller meter.
    /// Used by the recovery process (§4.4.1) after rolling back the
    /// transactions of a failed processing node: the failed PN can no longer
    /// notify anyone, so recovery resolves them on every manager.
    pub fn force_resolve(&self, tid: TxnId, committed: bool) {
        let client = self.endpoint.unmetered_client();
        let mut st = self.state.lock();
        st.finish(tid, committed);
        // Best effort, like the rest of the recovery path: the resolution is
        // also applied on every live manager directly, so a failed publish
        // only delays peers, it cannot strand them — and it is retried on
        // the next operation via `publish_pending`.
        if Self::publish(&self.id, &client, &mut st).is_err() {
            st.publish_pending = true;
        }
    }

    /// The lowest active version number as currently known: the minimum
    /// snapshot base across active transactions here and on peers.
    pub fn current_lav(&self) -> u64 {
        let st = self.state.lock();
        st.peer_min_active
            .values()
            .copied()
            .chain(std::iter::once(st.local_min_active()))
            .min()
            .unwrap_or(st.base)
    }

    /// Current base version (test/metrics hook).
    pub fn base(&self) -> u64 {
        self.state.lock().base
    }

    /// Number of transactions this manager believes are active.
    pub fn active_count(&self) -> usize {
        self.state.lock().active.len()
    }

    /// Publish local state and merge peers' states, unconditionally.
    pub fn sync_now(&self, meter: &NetMeter) -> Result<()> {
        let client = self.endpoint.client(meter.clone());
        let mut st = self.state.lock();
        Self::publish(&self.id, &client, &mut st)?;
        st.publish_pending = false;
        Self::pull_peers(&self.id, &client, &mut st)?;
        st.last_sync = Some(Instant::now());
        st.ops_since_sync = 0;
        Ok(())
    }

    fn maybe_sync(&self, meter: &NetMeter) -> Result<()> {
        let due = {
            let mut st = self.state.lock();
            st.ops_since_sync += 1;
            st.publish_pending
                || st.ops_since_sync >= self.config.sync_every_ops
                || match st.last_sync {
                    Some(t) => t.elapsed() >= self.config.sync_interval,
                    None => true,
                }
        };
        if due {
            self.sync_now(meter)?;
        }
        Ok(())
    }

    fn publish<C: StoreApi>(id: &CmId, client: &C, st: &mut State) -> Result<()> {
        let mut buf = Vec::with_capacity(40 + st.committed.encoded_len());
        buf.put_u64(st.base);
        buf.put_u64(st.local_min_active());
        buf.put_u64(st.watermark);
        st.completed.encode_into(&mut buf);
        st.committed.encode_into(&mut buf);
        client.put(&keys::cm_state(id.raw()), Bytes::from(buf))?;
        Ok(())
    }

    fn pull_peers<C: StoreApi>(id: &CmId, client: &C, st: &mut State) -> Result<()> {
        let prefix = keys::cm_state_prefix();
        let rows = client.scan_prefix(&prefix, usize::MAX)?;
        st.peer_min_active.clear();
        for (key, _, value) in rows {
            if key.len() != 5 {
                continue;
            }
            let peer = u32::from_be_bytes(key[1..5].try_into().unwrap());
            if peer == id.raw() {
                continue;
            }
            let (peer_base, peer_min, peer_watermark, completed, committed) = decode_state(&value)?;
            st.peer_min_active.insert(peer, peer_min);
            st.watermark = st.watermark.max(peer_watermark);
            // Everything at or below the peer's base has completed. Aborted
            // effects were rolled back before being reported, so covering
            // them via the base is safe.
            if peer_base > st.base {
                for tid in st.base + 1..=peer_base {
                    st.mark(tid, false);
                }
                // Committed status of those tids is implied by base coverage
                // once our own base advances past them; until then we must
                // treat them as committed to not lose their versions.
                for tid in st.base + 1..=peer_base {
                    let off = (tid - st.base - 1) as usize;
                    st.committed.set(off);
                }
            }
            for i in completed.iter_ones() {
                let tid = peer_base + 1 + i as u64;
                st.mark(tid, committed.get(i));
            }
            st.advance_base();
        }
        Ok(())
    }
}

fn decode_state(buf: &[u8]) -> Result<(u64, u64, u64, BitSet, BitSet)> {
    if buf.len() < 24 {
        return Err(Error::corrupt("cm state truncated"));
    }
    let base = u64::from_le_bytes(buf[..8].try_into().unwrap());
    let min_active = u64::from_le_bytes(buf[8..16].try_into().unwrap());
    let watermark = u64::from_le_bytes(buf[16..24].try_into().unwrap());
    let (completed, used) =
        BitSet::decode_from(&buf[24..]).ok_or_else(|| Error::corrupt("cm completed bits"))?;
    let (committed, _) = BitSet::decode_from(&buf[24 + used..])
        .ok_or_else(|| Error::corrupt("cm committed bits"))?;
    Ok((base, min_active, watermark, completed, committed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tell_store::{StoreClient, StoreConfig};

    fn setup() -> (Arc<CommitManager>, NetMeter) {
        let cluster = StoreCluster::new(StoreConfig::new(2));
        let cm = CommitManager::new(CmId(0), cluster, CmConfig::default());
        (cm, NetMeter::free())
    }

    #[test]
    fn tids_are_unique_and_increasing() {
        let (cm, m) = setup();
        let a = cm.start(&m).unwrap();
        let b = cm.start(&m).unwrap();
        assert!(b.tid > a.tid);
    }

    #[test]
    fn snapshot_excludes_running_transactions() {
        let (cm, m) = setup();
        let t1 = cm.start(&m).unwrap();
        let t2 = cm.start(&m).unwrap();
        // t2 must not see t1 (still running).
        assert!(!t2.snapshot.contains_tid(t1.tid));
        cm.set_committed(t1.tid, &m).unwrap();
        let t3 = cm.start(&m).unwrap();
        assert!(t3.snapshot.contains_tid(t1.tid));
        assert!(!t3.snapshot.contains_tid(t2.tid));
    }

    #[test]
    fn aborted_transactions_never_become_visible_as_newly_committed() {
        let (cm, m) = setup();
        let t1 = cm.start(&m).unwrap();
        cm.set_aborted(t1.tid, &m).unwrap();
        let t2 = cm.start(&m).unwrap();
        // t1 is below/at base now (completed), which is fine: its effects
        // were rolled back. What matters is the base advanced.
        assert!(t2.snapshot.base() >= t1.tid.raw());
        cm.set_committed(t2.tid, &m).unwrap();
    }

    #[test]
    fn base_advances_over_contiguous_completions() {
        let (cm, m) = setup();
        let ts: Vec<_> = (0..5).map(|_| cm.start(&m).unwrap()).collect();
        // Complete out of order: 2, 0, 1 — base should advance to ts[2].tid.
        cm.set_committed(ts[2].tid, &m).unwrap();
        assert!(cm.base() < ts[0].tid.raw());
        cm.set_committed(ts[0].tid, &m).unwrap();
        cm.set_committed(ts[1].tid, &m).unwrap();
        assert_eq!(cm.base(), ts[2].tid.raw());
        // 3 and 4 still active.
        assert_eq!(cm.active_count(), 2);
    }

    #[test]
    fn lav_is_oldest_active_snapshot_base() {
        let (cm, m) = setup();
        let t1 = cm.start(&m).unwrap();
        cm.set_committed(t1.tid, &m).unwrap();
        let t2 = cm.start(&m).unwrap(); // base now t1
        let t3 = cm.start(&m).unwrap();
        assert_eq!(t3.lav, t2.snapshot.base());
        cm.set_committed(t2.tid, &m).unwrap();
        cm.set_committed(t3.tid, &m).unwrap();
        let t4 = cm.start(&m).unwrap();
        assert_eq!(t4.lav, t4.snapshot.base(), "no other actives: lav = own base");
    }

    #[test]
    fn nmsi_cache_pins_the_lav_until_refresh() {
        let (cm, m) = setup();
        let t1 = cm.start_at(IsolationLevel::NonMonotonicSi, &m).unwrap();
        let cached_base = t1.snapshot.base();
        cm.set_committed(t1.tid, &m).unwrap();
        // A burst of SI transactions completes; without the pin the lav
        // would now overtake the cached base and eager GC could reclaim
        // versions a future cached start still needs.
        for _ in 0..3 {
            let t = cm.start(&m).unwrap();
            cm.set_committed(t.tid, &m).unwrap();
        }
        let t2 = cm.start_at(IsolationLevel::NonMonotonicSi, &m).unwrap();
        assert_eq!(t2.snapshot.base(), cached_base, "within cadence: served from cache");
        assert!(t2.lav <= cached_base, "pin holds the lav at the cached base");
        cm.set_committed(t2.tid, &m).unwrap();
        // Drive past the refresh cadence: the cache advances, the pin moves
        // with it, and the lav stays monotone throughout.
        let mut newest_base = cached_base;
        let mut lavs = vec![t1.lav, t2.lav];
        for _ in 0..2 * CmConfig::default().nmsi_refresh_every {
            let t = cm.start_at(IsolationLevel::NonMonotonicSi, &m).unwrap();
            assert!(t.lav <= t.snapshot.base());
            lavs.push(t.lav);
            newest_base = newest_base.max(t.snapshot.base());
            cm.set_committed(t.tid, &m).unwrap();
        }
        assert!(lavs.windows(2).all(|w| w[0] <= w[1]), "lav never regresses: {lavs:?}");
        assert!(newest_base > cached_base, "refresh advanced the cache");
    }

    #[test]
    fn two_managers_share_the_tid_space() {
        let cluster = StoreCluster::new(StoreConfig::new(2));
        // Interleaved allocation: each manager owns a congruence class
        // (assigned by CmCluster in production).
        let cm1 = CommitManager::new(
            CmId(1),
            Arc::clone(&cluster),
            CmConfig { stripe: (0, 2), ..CmConfig::default() },
        );
        let cm2 = CommitManager::new(
            CmId(2),
            Arc::clone(&cluster),
            CmConfig { stripe: (1, 2), ..CmConfig::default() },
        );
        let m = NetMeter::free();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            assert!(seen.insert(cm1.start(&m).unwrap().tid));
            assert!(seen.insert(cm2.start(&m).unwrap().tid));
        }
    }

    #[test]
    fn managers_learn_peer_commits_through_sync() {
        let cluster = StoreCluster::new(StoreConfig::new(2));
        let cfg = CmConfig {
            tid_range: 4,
            sync_interval: Duration::from_secs(3600),
            interleaved: false,
            ..CmConfig::default()
        };
        let cm1 = CommitManager::new(CmId(1), Arc::clone(&cluster), cfg.clone());
        let cm2 = CommitManager::new(CmId(2), Arc::clone(&cluster), cfg);
        let m = NetMeter::free();
        let t1 = cm1.start(&m).unwrap();
        cm1.set_committed(t1.tid, &m).unwrap();
        cm1.sync_now(&m).unwrap();
        cm2.sync_now(&m).unwrap();
        let t2 = cm2.start(&m).unwrap();
        assert!(t2.snapshot.contains_tid(t1.tid), "after sync, cm2 snapshots include cm1's commit");
    }

    #[test]
    fn stale_peers_cause_stale_snapshots_not_corruption() {
        let cluster = StoreCluster::new(StoreConfig::new(2));
        let cfg = CmConfig {
            tid_range: 4,
            sync_interval: Duration::from_secs(3600),
            interleaved: false,
            ..CmConfig::default()
        };
        let cm1 = CommitManager::new(CmId(1), Arc::clone(&cluster), cfg.clone());
        let cm2 = CommitManager::new(CmId(2), Arc::clone(&cluster), cfg);
        let m = NetMeter::free();
        // Prime cm2's sync clock: with the huge interval it will not pull
        // again within this test, however eagerly cm1 publishes.
        cm2.sync_now(&m).unwrap();
        let t1 = cm1.start(&m).unwrap();
        cm1.set_committed(t1.tid, &m).unwrap();
        // cm2 has not pulled since cm1's commit, so it simply does not see
        // t1 yet (an older snapshot is legal, never corrupt).
        let t2 = cm2.start(&m).unwrap();
        assert!(!t2.snapshot.contains_tid(t1.tid));
    }

    #[test]
    fn deferred_publish_retries_on_next_op_not_cadence() {
        use tell_common::SnId;
        let cluster = StoreCluster::new(StoreConfig::new(1));
        let cfg = CmConfig {
            sync_interval: Duration::from_secs(3600),
            sync_every_ops: u64::MAX,
            ..CmConfig::default()
        };
        let cm1 = CommitManager::new(
            CmId(1),
            Arc::clone(&cluster),
            CmConfig { stripe: (0, 2), ..cfg.clone() },
        );
        let cm2 =
            CommitManager::new(CmId(2), Arc::clone(&cluster), CmConfig { stripe: (1, 2), ..cfg });
        let m = NetMeter::free();
        let t1 = cm1.start(&m).unwrap();
        // The store goes dark right before the completion: the publish is
        // deferred, never surfaced as a completion failure.
        cluster.kill_node(SnId(0));
        cm1.set_committed(t1.tid, &m).unwrap();
        cluster.revive_node(SnId(0));
        // Neither cadence trigger is due (huge interval and op budget): the
        // deferral alone must force a republish on the next operation.
        let _ = cm1.start(&m).unwrap();
        cm2.sync_now(&m).unwrap();
        let t2 = cm2.start(&m).unwrap();
        assert!(t2.snapshot.contains_tid(t1.tid), "deferred completion was republished");
    }

    #[test]
    fn release_unused_range_unblocks_base() {
        let cluster = StoreCluster::new(StoreConfig::new(2));
        let cfg = CmConfig {
            tid_range: 8,
            sync_interval: Duration::from_secs(3600),
            interleaved: false,
            ..CmConfig::default()
        };
        let cm1 = CommitManager::new(CmId(1), Arc::clone(&cluster), cfg.clone());
        let cm2 = CommitManager::new(CmId(2), Arc::clone(&cluster), cfg);
        let m = NetMeter::free();
        let t1 = cm1.start(&m).unwrap(); // grabs range [1..9)
        cm1.set_committed(t1.tid, &m).unwrap();
        let t2 = cm2.start(&m).unwrap(); // grabs range [9..17)
        cm2.set_committed(t2.tid, &m).unwrap();
        cm1.sync_now(&m).unwrap();
        cm2.sync_now(&m).unwrap();
        cm1.sync_now(&m).unwrap();
        // cm1 still holds unused tids 2..9, so the global base is stuck at 1.
        assert_eq!(cm1.base(), t1.tid.raw());
        cm1.release_unused_range();
        cm1.sync_now(&m).unwrap();
        cm2.sync_now(&m).unwrap();
        assert_eq!(cm2.base(), t2.tid.raw());
    }

    #[test]
    fn recovery_restores_committed_set_from_log_and_peers() {
        let cluster = StoreCluster::new(StoreConfig::new(2));
        let cfg = CmConfig {
            tid_range: 4,
            sync_interval: Duration::from_secs(3600),
            interleaved: false,
            ..CmConfig::default()
        };
        let m = NetMeter::free();
        let client = StoreClient::unmetered(Arc::clone(&cluster));
        let tid = {
            let cm = CommitManager::new(CmId(7), Arc::clone(&cluster), cfg.clone());
            let t = cm.start(&m).unwrap();
            // Simulate the transaction layer writing a committed log entry.
            client.put(&keys::txn_log(t.tid), Bytes::from(vec![LOG_FLAG_COMMITTED])).unwrap();
            cm.set_committed(t.tid, &m).unwrap();
            cm.sync_now(&m).unwrap();
            t.tid
            // cm dropped: crash
        };
        let cm2 = CommitManager::recover(CmId(8), Arc::clone(&cluster), cfg).unwrap();
        let t2 = cm2.start(&m).unwrap();
        assert!(t2.snapshot.contains_tid(tid));
        assert!(t2.tid > tid, "tid counter survives the crash");
    }

    #[test]
    fn recovery_with_in_flight_tids_straddling_the_published_watermark() {
        // The predecessor dies holding three tids in different stages:
        // t1 committed *and* published, t2 committed only in the log (the
        // crash hit between log write and the next publish), t3 genuinely
        // in flight (uncommitted log entry). The replacement must see t2
        // through the log roll-forward, must NOT invent an outcome for t3,
        // and force-resolving t3 must unblock the base.
        let cluster = StoreCluster::new(StoreConfig::new(2));
        let cfg = CmConfig {
            tid_range: 4,
            sync_interval: Duration::from_secs(3600),
            interleaved: false,
            ..CmConfig::default()
        };
        let m = NetMeter::free();
        let client = StoreClient::unmetered(Arc::clone(&cluster));
        let (t1, t2, t3) = {
            let cm = CommitManager::new(CmId(7), Arc::clone(&cluster), cfg.clone());
            let t1 = cm.start(&m).unwrap().tid;
            let t2 = cm.start(&m).unwrap().tid;
            let t3 = cm.start(&m).unwrap().tid;
            client.put(&keys::txn_log(t1), Bytes::from(vec![LOG_FLAG_COMMITTED])).unwrap();
            cm.set_committed(t1, &m).unwrap();
            cm.sync_now(&m).unwrap(); // publishes base = t1
            client.put(&keys::txn_log(t2), Bytes::from(vec![LOG_FLAG_COMMITTED])).unwrap();
            cm.set_committed(t2, &m).unwrap(); // never published
            client.put(&keys::txn_log(t3), Bytes::from(vec![0])).unwrap(); // in flight
            (t1, t2, t3)
            // cm dropped: crash with t2 above the published base, t3 open
        };
        let cm2 = CommitManager::recover(CmId(8), Arc::clone(&cluster), cfg).unwrap();
        let t4 = cm2.start(&m).unwrap();
        assert!(t4.snapshot.contains_tid(t1), "published commit visible");
        assert!(t4.snapshot.contains_tid(t2), "log-only commit rolled forward");
        assert!(!t4.snapshot.contains_tid(t3), "in-flight tid stays invisible");
        assert_eq!(cm2.base(), t2.raw(), "base stalls at the open tid");
        // Recovery decides t3's fate (the PN is gone): abort resolves it
        // everywhere and the base moves past it.
        cm2.force_resolve(t3, false);
        assert!(cm2.base() >= t3.raw(), "resolving the straddler unblocks the base");
        // Note: once the base covers t3 it counts as "in snapshot" — that
        // is correct for an abort, whose effects recovery already rolled
        // back from the store; the version simply is not there to read.
        let t5 = cm2.start(&m).unwrap();
        assert!(t5.snapshot.base() >= t3.raw());
    }
}

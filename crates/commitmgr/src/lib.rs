//! `tell-commitmgr` — the commit manager (§4.2 of the paper).
//!
//! The commit manager is the only piece of shared transaction state in
//! Tell's otherwise fully decentralized design, and it is deliberately
//! *lightweight*: it hands out transaction ids, snapshot descriptors and
//! the lowest active version number, and records commit/abort outcomes. It
//! performs **no** commit validation — conflict detection happens in the
//! storage layer through LL/SC (§4.1), which is why the commit manager never
//! becomes a bottleneck (Table 3).
//!
//! * [`snapshot::SnapshotDescriptor`] — `base` version + bitset `N` of newly
//!   committed tids, exactly the paper's structure.
//! * [`manager::CommitManager`] — `start` / `set_committed` / `set_aborted`,
//!   tid-range allocation through the store's atomic counter (LL/SC), and
//!   periodic state synchronization through the store.
//! * [`cluster::CmCluster`] — several commit managers operating in parallel
//!   with snapshot synchronization and fail-over (§4.4.3).

pub mod api;
pub mod cluster;
pub mod manager;
pub mod snapshot;

pub use api::{CmEndpoint, CommitParticipant, CommitService};
pub use cluster::CmCluster;
pub use manager::{CmConfig, CommitManager, TxnStart};
pub use snapshot::SnapshotDescriptor;

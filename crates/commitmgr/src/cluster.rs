//! Running several commit managers in parallel (§4.2, §4.4.3, Table 3).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use tell_common::{CmId, Error, IsolationLevel, Result, TxnId};
use tell_netsim::NetMeter;
use tell_store::{keys, StoreCluster, StoreEndpoint};

use crate::manager::{CmConfig, CommitManager, TxnStart};

/// A set of interchangeable commit managers.
///
/// Processing nodes spread `start()` calls round-robin; commit/abort
/// notifications go back to the manager that issued the tid (tracked by the
/// transaction layer). If a manager fails, "PNs automatically switch to the
/// next one" and a replacement can recover the lost state from the store.
pub struct CmCluster<E: StoreEndpoint = Arc<StoreCluster>> {
    store: E,
    config: CmConfig,
    managers: RwLock<Vec<Arc<CommitManager<E>>>>,
    /// Congruence classes freed by failed managers, to be taken over by
    /// replacements (interleaved tid allocation).
    freed_stripes: parking_lot::Mutex<Vec<(u64, u64)>>,
    next: AtomicUsize,
}

impl<E: StoreEndpoint> CmCluster<E> {
    /// Spin up `n` commit managers.
    pub fn new(store: E, n: usize, config: CmConfig) -> Arc<Self> {
        assert!(n >= 1, "need at least one commit manager");
        let managers: Vec<_> = (0..n)
            .map(|i| {
                let mut cfg = config.clone();
                cfg.stripe = (i as u64, n as u64);
                CommitManager::new(CmId(i as u32), store.clone(), cfg)
            })
            .collect();
        // Every manager must publish its (empty) state before any
        // transaction runs: the lowest-active-version computation takes the
        // minimum over *published* peer states, and a peer that has never
        // published would silently be excluded — letting GC drop versions
        // that transactions later started on that peer still need.
        let meter = NetMeter::free();
        // Two rounds: first everyone publishes, then everyone pulls, so
        // every manager starts with a complete peer map regardless of order.
        for _ in 0..2 {
            for cm in &managers {
                cm.sync_now(&meter).expect("initial commit-manager publish");
            }
        }
        Arc::new(CmCluster {
            store,
            config,
            managers: RwLock::new(managers),
            freed_stripes: parking_lot::Mutex::new(Vec::new()),
            next: AtomicUsize::new(0),
        })
    }

    /// Number of live managers.
    pub fn len(&self) -> usize {
        self.managers.read().len()
    }

    /// True when no manager is left (system blocked, §4.4.3).
    pub fn is_empty(&self) -> bool {
        self.managers.read().is_empty()
    }

    /// Begin a transaction on some manager (round-robin with fail-over).
    /// Returns the manager that served the call so the transaction can
    /// notify the same one at completion.
    pub fn start(&self, meter: &NetMeter) -> Result<(TxnStart, Arc<CommitManager<E>>)> {
        let hint = self.next.fetch_add(1, Ordering::Relaxed);
        self.start_pinned(hint, meter)
    }

    /// Begin a transaction on the manager a caller is pinned to ("each
    /// node interacts with a dedicated authority, the commit manager",
    /// §4.1 — a PN keeps using one manager so its own commits are always in
    /// its next snapshot), falling over to the next manager on failure.
    pub fn start_pinned(
        &self,
        hint: usize,
        meter: &NetMeter,
    ) -> Result<(TxnStart, Arc<CommitManager<E>>)> {
        self.start_pinned_at(hint, IsolationLevel::Si, meter)
    }

    /// [`start_pinned`](Self::start_pinned) with an explicit isolation
    /// level (see [`CommitManager::start_at`] for the per-level snapshot
    /// semantics).
    pub fn start_pinned_at(
        &self,
        hint: usize,
        level: IsolationLevel,
        meter: &NetMeter,
    ) -> Result<(TxnStart, Arc<CommitManager<E>>)> {
        let managers = self.managers.read();
        if managers.is_empty() {
            return Err(Error::Unavailable("no commit manager available".into()));
        }
        let n = managers.len();
        let first = hint % n;
        for i in 0..n {
            let cm = &managers[(first + i) % n];
            match cm.start_at(level, meter) {
                Ok(ts) => return Ok((ts, Arc::clone(cm))),
                Err(Error::Unavailable(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        Err(Error::Unavailable("all commit managers unavailable".into()))
    }

    /// Crash-stop manager `id`: drop it and remove its published state so
    /// peers stop waiting on it. Active transactions it issued can still
    /// complete (the manager "is not required for completion" — their
    /// outcome reaches peers through the transaction log and recovery).
    pub fn fail(&self, id: CmId) -> Result<()> {
        let mut managers = self.managers.write();
        let before = managers.len();
        if let Some(cm) = managers.iter().find(|cm| cm.id() == id) {
            self.freed_stripes.lock().push(cm.stripe());
        }
        managers.retain(|cm| cm.id() != id);
        if managers.len() == before {
            return Err(Error::NotFound);
        }
        use tell_store::StoreApi;
        let client = self.store.unmetered_client();
        client.delete(&keys::cm_state(id.raw()))?;
        Ok(())
    }

    /// Start a replacement manager that recovers state from the store and
    /// the transaction log (§4.4.3).
    pub fn spawn_recovered(&self, id: CmId) -> Result<Arc<CommitManager<E>>> {
        let mut cfg = self.config.clone();
        if cfg.interleaved {
            // Take over a failed manager's congruence class so its tid
            // stream resumes (otherwise the global base would stall on the
            // dead class's never-completed tids).
            cfg.stripe =
                self.freed_stripes.lock().pop().ok_or_else(|| {
                    Error::invalid("no freed tid class; cluster is at full strength")
                })?;
        }
        let cm = CommitManager::recover(id, self.store.clone(), cfg)?;
        cm.sync_now(&NetMeter::free())?; // publish before serving (see new())
        self.managers.write().push(Arc::clone(&cm));
        Ok(cm)
    }

    /// Force a state synchronization on every manager (test hook; in steady
    /// state managers sync themselves on their configured interval).
    pub fn sync_all(&self, meter: &NetMeter) -> Result<()> {
        // Two rounds so every manager observes every other manager's latest
        // publish regardless of iteration order.
        for _ in 0..2 {
            for cm in self.managers.read().iter() {
                cm.sync_now(meter)?;
            }
        }
        Ok(())
    }

    /// Resolve `tid` on every live manager (recovery path: the issuer may be
    /// unknown or gone).
    pub fn force_resolve(&self, tid: TxnId, committed: bool) {
        for cm in self.managers.read().iter() {
            cm.force_resolve(tid, committed);
        }
    }

    /// Live managers' `(id, published base)` pairs in id order — the
    /// monitoring surface a management node (or the simulation harness)
    /// scrapes to watch base progress and pick fail-over victims.
    pub fn members(&self) -> Vec<(CmId, u64)> {
        let mut out: Vec<(CmId, u64)> =
            self.managers.read().iter().map(|cm| (cm.id(), cm.base())).collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Lowest active version across all managers (drives garbage
    /// collection and recovery's backward log scan bound).
    pub fn current_lav(&self) -> u64 {
        self.managers.read().iter().map(|cm| cm.current_lav()).min().unwrap_or(0)
    }

    /// Notify the issuing manager of a commit; falls back to any live
    /// manager when the issuer died (the outcome is in the log either way —
    /// this keeps the snapshot fresh).
    pub fn set_committed(
        &self,
        issuer: &Arc<CommitManager<E>>,
        tid: TxnId,
        meter: &NetMeter,
    ) -> Result<()> {
        issuer.set_committed(tid, meter)
    }

    /// Notify the issuing manager of an abort.
    pub fn set_aborted(
        &self,
        issuer: &Arc<CommitManager<E>>,
        tid: TxnId,
        meter: &NetMeter,
    ) -> Result<()> {
        issuer.set_aborted(tid, meter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use tell_store::StoreConfig;

    fn setup(n: usize) -> (Arc<CmCluster>, NetMeter) {
        let store = StoreCluster::new(StoreConfig::new(2));
        let cfg = CmConfig {
            tid_range: 8,
            sync_interval: Duration::from_millis(1),
            ..CmConfig::default()
        };
        (CmCluster::new(store, n, cfg), NetMeter::free())
    }

    #[test]
    fn round_robin_spreads_load() {
        let (cluster, m) = setup(3);
        let mut served = std::collections::HashSet::new();
        for _ in 0..9 {
            let (_, cm) = cluster.start(&m).unwrap();
            served.insert(cm.id());
        }
        assert_eq!(served.len(), 3);
    }

    #[test]
    fn tids_unique_across_managers() {
        let (cluster, m) = setup(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let (ts, cm) = cluster.start(&m).unwrap();
            assert!(seen.insert(ts.tid));
            cm.set_committed(ts.tid, &m).unwrap();
        }
    }

    #[test]
    fn failover_to_surviving_manager() {
        let (cluster, m) = setup(2);
        let (t1, cm1) = cluster.start(&m).unwrap();
        cm1.set_committed(t1.tid, &m).unwrap();
        cluster.sync_all(&m).unwrap();
        cluster.fail(CmId(0)).unwrap();
        assert_eq!(cluster.len(), 1);
        // Still serving starts.
        for _ in 0..5 {
            let (ts, cm) = cluster.start(&m).unwrap();
            cm.set_committed(ts.tid, &m).unwrap();
        }
    }

    #[test]
    fn fail_unknown_manager_errors() {
        let (cluster, _) = setup(1);
        assert_eq!(cluster.fail(CmId(42)).unwrap_err(), Error::NotFound);
    }

    #[test]
    fn replacement_recovers_commits() {
        let (cluster, m) = setup(2);
        let (t1, cm1) = cluster.start(&m).unwrap();
        cm1.set_committed(t1.tid, &m).unwrap();
        cluster.sync_all(&m).unwrap();
        let failed_id = cm1.id();
        cluster.fail(failed_id).unwrap();
        let fresh = cluster.spawn_recovered(CmId(9)).unwrap();
        let ts = fresh.start(&m).unwrap();
        assert!(ts.snapshot.contains_tid(t1.tid));
    }
}

//! The commit-manager abstraction processing nodes program against.
//!
//! A transaction talks to the commit side twice: once to *start* (get a tid
//! and snapshot) and once to *finish* (report commit or abort to the manager
//! that issued the tid). [`CommitService`] is the start-side surface of the
//! whole commit-manager fleet; [`CommitParticipant`] is the finish-side
//! handle to one specific manager.
//!
//! Both traits are object-safe so `tell-core`'s `Database` can hold an
//! `Arc<dyn CommitService>` without growing a type parameter: the local
//! [`CmCluster`] and `tell-rpc`'s `RemoteCmClient` implement them
//! identically from the transaction layer's point of view.

use std::sync::Arc;

use tell_common::{IsolationLevel, Result, TxnId};
use tell_netsim::NetMeter;
use tell_store::StoreEndpoint;

use crate::cluster::CmCluster;
use crate::manager::{CommitManager, TxnStart};
use crate::snapshot::SnapshotDescriptor;

/// The manager that issued a transaction's tid; receives its outcome.
pub trait CommitParticipant: Send + Sync {
    /// Record a successful commit of `tid`.
    fn set_committed(&self, tid: TxnId, meter: &NetMeter) -> Result<()>;

    /// Record an abort of `tid`.
    fn set_aborted(&self, tid: TxnId, meter: &NetMeter) -> Result<()>;

    /// The freshest snapshot this participant can serve, used by the
    /// read-committed per-read refresh. `None` when the transport cannot
    /// serve one cheaply (remote participants fall back to the begin
    /// snapshot, degrading RC reads to the snapshot they started with).
    fn refresh_snapshot(&self, _meter: &NetMeter) -> Result<Option<SnapshotDescriptor>> {
        Ok(None)
    }
}

impl<E: StoreEndpoint> CommitParticipant for CommitManager<E> {
    fn set_committed(&self, tid: TxnId, meter: &NetMeter) -> Result<()> {
        CommitManager::set_committed(self, tid, meter)
    }

    fn set_aborted(&self, tid: TxnId, meter: &NetMeter) -> Result<()> {
        CommitManager::set_aborted(self, tid, meter)
    }

    fn refresh_snapshot(&self, meter: &NetMeter) -> Result<Option<SnapshotDescriptor>> {
        Ok(Some(CommitManager::current_snapshot(self, meter)))
    }
}

/// The commit-manager fleet as seen by a processing node. Also the seam
/// `tell-rpc`'s reactor serves a commit server through: the server holds
/// an `Arc<dyn CommitService>` and dispatches decoded `Cm*` requests onto
/// it, so an in-process cluster and a remote one answer identically.
pub trait CommitService: Send + Sync {
    /// Begin a transaction at `level` on the manager `hint` pins the
    /// caller to, falling over to the next one on failure. Returns the
    /// issuing manager so the outcome can be reported to the same one.
    fn start_pinned(
        &self,
        hint: usize,
        level: IsolationLevel,
        meter: &NetMeter,
    ) -> Result<(TxnStart, Arc<dyn CommitParticipant>)>;

    /// Lowest active version number across all managers (GC/recovery bound).
    fn current_lav(&self) -> Result<u64>;

    /// Resolve `tid` on every live manager (recovery path: the issuer may
    /// be unknown or gone).
    fn force_resolve(&self, tid: TxnId, committed: bool) -> Result<()>;

    /// Force a state synchronization on every manager (test/admin hook).
    fn sync_all(&self, meter: &NetMeter) -> Result<()>;
}

/// A handle from which the commit-manager surface is minted — the commit
/// side's mirror of `StoreEndpoint`, so `Database` construction names a
/// (store endpoint, commit endpoint) pair symmetrically for the local and
/// the remote deployment.
pub trait CmEndpoint: Send + Sync + 'static {
    /// The commit service this endpoint reaches.
    fn commit_service(&self) -> Arc<dyn CommitService>;
}

/// Any owned commit service is its own endpoint (local `CmCluster`, remote
/// `RemoteCmClient`). The implicit `Sized` bound on `T` keeps this from
/// overlapping the `Arc<dyn CommitService>` impl below.
impl<T: CommitService + 'static> CmEndpoint for Arc<T> {
    fn commit_service(&self) -> Arc<dyn CommitService> {
        Arc::clone(self) as Arc<dyn CommitService>
    }
}

/// An already-erased service is an endpoint too, so pre-redesign call sites
/// passing `Arc<dyn CommitService>` compile unchanged.
impl CmEndpoint for Arc<dyn CommitService> {
    fn commit_service(&self) -> Arc<dyn CommitService> {
        Arc::clone(self)
    }
}

impl<E: StoreEndpoint> CommitService for CmCluster<E> {
    fn start_pinned(
        &self,
        hint: usize,
        level: IsolationLevel,
        meter: &NetMeter,
    ) -> Result<(TxnStart, Arc<dyn CommitParticipant>)> {
        let (ts, cm) = CmCluster::start_pinned_at(self, hint, level, meter)?;
        Ok((ts, cm as Arc<dyn CommitParticipant>))
    }

    fn current_lav(&self) -> Result<u64> {
        Ok(CmCluster::current_lav(self))
    }

    fn force_resolve(&self, tid: TxnId, committed: bool) -> Result<()> {
        CmCluster::force_resolve(self, tid, committed);
        Ok(())
    }

    fn sync_all(&self, meter: &NetMeter) -> Result<()> {
        CmCluster::sync_all(self, meter)
    }
}

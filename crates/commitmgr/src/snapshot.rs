//! Snapshot descriptors (§4.2).
//!
//! A snapshot descriptor tells a transaction which version numbers it may
//! read: "a base version number b indicating that b and all earlier
//! transactions have completed \[and\] a set of newly committed tids N". The
//! valid version set is `V' := { x | x <= b  ∨  x ∈ N }` and a read picks
//! `v := max(V ∩ V')` among a record's stored versions.

use tell_common::codec::{Reader, Writer};
use tell_common::{BitSet, Result, TxnId};

/// Which versions a transaction is allowed to see.
///
/// `newly` is a bitset whose bit `i` represents tid `base + 1 + i`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SnapshotDescriptor {
    base: u64,
    newly: BitSet,
}

impl SnapshotDescriptor {
    /// Descriptor seeing only the bootstrap version (fresh database).
    pub fn bootstrap() -> Self {
        SnapshotDescriptor { base: 0, newly: BitSet::new() }
    }

    /// Build from parts. `newly` bit `i` ⇔ tid `base + 1 + i` committed.
    pub fn new(base: u64, newly: BitSet) -> Self {
        SnapshotDescriptor { base, newly }
    }

    /// The base version: every tid at or below it has completed, and all of
    /// their committed versions are visible.
    #[inline]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of newly-committed tids above the base.
    pub fn newly_committed_count(&self) -> usize {
        self.newly.count_ones()
    }

    /// Is version `v` visible in this snapshot?
    #[inline]
    pub fn contains(&self, v: u64) -> bool {
        v <= self.base || self.newly.get((v - self.base - 1) as usize)
    }

    /// Is the version written by `tid` visible?
    #[inline]
    pub fn contains_tid(&self, tid: TxnId) -> bool {
        self.contains(tid.raw())
    }

    /// Highest visible version among `versions` (the `v := max(V ∩ V')`
    /// rule). `versions` need not be sorted.
    pub fn max_visible(&self, versions: impl IntoIterator<Item = u64>) -> Option<u64> {
        versions.into_iter().filter(|v| self.contains(*v)).max()
    }

    /// Subset test: does every version visible to `self` also appear in
    /// `other`? This drives the shared-buffer validity check of §5.5.2
    /// (`V_tx ⊆ B` means the buffered record is recent enough).
    pub fn is_subset_of(&self, other: &SnapshotDescriptor) -> bool {
        if self.base > other.base {
            // Some x ≤ self.base with x > other.base might not be in
            // other.newly; check each such version individually.
            for v in other.base + 1..=self.base {
                if !other.contains(v) {
                    return false;
                }
            }
        }
        self.newly.iter_ones().all(|i| other.contains(self.base + 1 + i as u64))
    }

    /// A copy of this snapshot with `tid` additionally visible. Used by the
    /// shared record buffer when a transaction applies its own update
    /// (§5.5.2: "B is set to the union of tid and V_max").
    pub fn with_added(&self, tid: TxnId) -> SnapshotDescriptor {
        let mut out = self.clone();
        let v = tid.raw();
        if v > out.base {
            out.newly.set((v - out.base - 1) as usize);
        }
        out
    }

    /// Serialized byte size.
    pub fn encoded_len(&self) -> usize {
        8 + self.newly.encoded_len()
    }

    /// Append the wire encoding.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_u64(self.base);
        self.newly.encode_into(out);
    }

    /// Decode a descriptor previously written by [`Self::encode_into`].
    pub fn decode(reader: &mut Reader<'_>) -> Result<SnapshotDescriptor> {
        let base = reader.u64()?;
        let rest = reader.raw(reader.remaining())?;
        let (newly, used) = BitSet::decode_from(rest)
            .ok_or_else(|| tell_common::Error::corrupt("snapshot bitset truncated"))?;
        // Give back unused bytes by re-reading is not possible with this
        // reader; callers that embed descriptors use [`Self::decode_from`].
        let _ = used;
        Ok(SnapshotDescriptor { base, newly })
    }

    /// Decode from the front of `buf`, returning bytes consumed.
    pub fn decode_from(buf: &[u8]) -> Result<(SnapshotDescriptor, usize)> {
        if buf.len() < 8 {
            return Err(tell_common::Error::corrupt("snapshot descriptor truncated"));
        }
        let base = u64::from_le_bytes(buf[..8].try_into().unwrap());
        let (newly, used) = BitSet::decode_from(&buf[8..])
            .ok_or_else(|| tell_common::Error::corrupt("snapshot bitset truncated"))?;
        Ok((SnapshotDescriptor { base, newly }, 8 + used))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(base: u64, newly: &[u64]) -> SnapshotDescriptor {
        let mut bits = BitSet::new();
        for &v in newly {
            assert!(v > base, "newly committed tids sit above the base");
            bits.set((v - base - 1) as usize);
        }
        SnapshotDescriptor::new(base, bits)
    }

    #[test]
    fn base_versions_are_visible() {
        let s = snap(10, &[13, 15]);
        for v in 0..=10 {
            assert!(s.contains(v));
        }
        assert!(!s.contains(11));
        assert!(!s.contains(12));
        assert!(s.contains(13));
        assert!(!s.contains(14));
        assert!(s.contains(15));
        assert!(!s.contains(16));
    }

    #[test]
    fn max_visible_picks_newest_visible_version() {
        let s = snap(10, &[13]);
        // Record has versions 2, 9, 12, 13, 14.
        assert_eq!(s.max_visible([2, 9, 12, 13, 14]), Some(13));
        // Without 13 in the snapshot, falls back to 9.
        let s2 = snap(10, &[]);
        assert_eq!(s2.max_visible([2, 9, 12, 13, 14]), Some(9));
        assert_eq!(s2.max_visible([11, 12]), None);
    }

    #[test]
    fn bootstrap_sees_version_zero_only() {
        let s = SnapshotDescriptor::bootstrap();
        assert!(s.contains(0));
        assert!(!s.contains(1));
    }

    #[test]
    fn subset_relation() {
        let small = snap(5, &[8]);
        let big = snap(7, &[8, 9]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        // Equal sets are mutual subsets.
        assert!(small.is_subset_of(&small));
        // Higher base but hole below: {<=9} ⊄ {<=7} ∪ {9}.
        let holey = snap(7, &[9]);
        let dense = snap(9, &[]);
        assert!(!dense.is_subset_of(&holey));
        // {<=9} ⊆ {<=7} ∪ {8,9}.
        assert!(dense.is_subset_of(&big));
        assert!(!small.is_subset_of(&dense) || dense.contains(8));
    }

    #[test]
    fn with_added_extends_visibility() {
        let s = snap(5, &[]);
        let s2 = s.with_added(TxnId(9));
        assert!(s2.contains(9));
        assert!(!s2.contains(8));
        assert!(s.is_subset_of(&s2));
        // Adding an already-visible version changes nothing.
        let s3 = s.with_added(TxnId(3));
        assert_eq!(s3, s);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = snap(1000, &[1002, 1005, 1100]);
        let mut buf = Vec::new();
        s.encode_into(&mut buf);
        assert_eq!(buf.len(), s.encoded_len());
        let (d, used) = SnapshotDescriptor::decode_from(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(d, s);
    }

    #[test]
    fn descriptor_is_compact() {
        // Paper: "N ≈ 13 KB with 100,000 newly committed transactions".
        let mut bits = BitSet::new();
        for i in 0..100_000 {
            bits.set(i);
        }
        let s = SnapshotDescriptor::new(0, bits);
        assert!(s.encoded_len() < 14 * 1024, "len = {}", s.encoded_len());
    }
}

//! The tell-rpc wire format.
//!
//! Every exchange is a length-prefixed frame:
//!
//! ```text
//! v1: [len: u32 LE] [corr_id: u64 LE] [body: len - 8 bytes]
//! v2: [len: u32 LE] [corr_id: u64 LE] [0xF5] [trace_id: u64 LE] [body]
//!     [len: u32 LE] [corr_id: u64 LE] [0xF6] [trace_id: u64 LE] [parent_span_id: u64 LE] [body]
//! ```
//!
//! where `len` counts everything after itself (correlation id plus body)
//! and `corr_id` matches a response to its request, so a client can keep
//! many requests in flight on one connection (pipelining). The body is a
//! tagged message — one byte of message kind followed by a kind-specific
//! payload — serialized with `tell_common::codec`, the same little-endian
//! codec every persistent format in the workspace uses.
//!
//! Protocol version 2 ([`FRAME_VERSION`]) may prefix the body with a trace
//! context attributing the frame to the PN-side unit of work that caused
//! it: either the [`TRACE_MARKER`] byte and an 8-byte trace id, or the
//! [`SPAN_MARKER`] byte followed by the trace id *and* the sending span's
//! id, which server dispatch adopts as the parent of its own span. The
//! marker values can never start a legitimate message (tags are small
//! integers), so v1 frames — whose first body byte is the message tag —
//! still decode, as do span-less v2 frames: receivers call
//! [`split_context`] and get `None` for untraced frames and a zero
//! `parent_span` for trace-only frames. Servers echo the request's trace
//! id on the response.
//!
//! Decoding is strict: a message must consume its body exactly. Trailing
//! bytes, truncated fields and unknown tags are all [`Error::Corrupt`], so
//! a desynchronized stream is detected instead of misread.

use std::io::{self, Read, Write as IoWrite};

use bytes::{Bytes, BytesMut};
use tell_commitmgr::SnapshotDescriptor;
use tell_common::codec::{Reader, Writer};
use tell_common::{Error, IsolationLevel, Result, TxnId};
use tell_obs::{AllocStat, LockStat, ProfileReport, Span, TelemetryPage};
use tell_store::{Expect, Key, Predicate, Token, WriteOp};

/// Upper bound on a frame's `len` field. Generous — the largest legitimate
/// frames are scan results — while still rejecting garbage lengths from a
/// desynchronized or hostile peer before allocating.
pub const MAX_FRAME: usize = 64 << 20;

/// Bytes preceding the body on the wire: length prefix + correlation id.
pub const FRAME_HEADER: usize = 12;

/// Current protocol version: frames may carry a trace id. Version 1 frames
/// (no trace) are still produced when there is no trace to attach, and are
/// always accepted.
pub const FRAME_VERSION: u8 = 2;

/// First body byte of a version-2 frame carrying a trace id. Deliberately
/// outside the message-tag range so it cannot be confused with a v1 body.
pub const TRACE_MARKER: u8 = 0xF5;

/// First body byte of a version-2 frame carrying a trace id *and* the
/// sending span's id (the parent for server-side dispatch spans). Like
/// [`TRACE_MARKER`], outside the message-tag range.
pub const SPAN_MARKER: u8 = 0xF6;

/// Final body byte of a version-2 message carrying a per-transaction
/// isolation level: the message bytes are followed by the two-byte suffix
/// `[level code][ISO_MARKER]`. The suffix rides *after* the message (the
/// trace/span prefixes stay first), so every frame generation can carry
/// it. Decoding is unambiguous because message decoding is strict: a
/// suffixed body fails the exact-consumption check as a plain message, and
/// only then is the suffix stripped ([`decode_request_iso`]) — a
/// legitimate message whose last bytes merely *look* like the suffix
/// decodes whole and wins. Receivers that predate the suffix reject
/// suffixed bodies as corrupt instead of misreading them; senders attach
/// it only to requests that need a non-default level.
pub const ISO_MARKER: u8 = 0xF4;

/// Append the isolation-level suffix to an encoded message body.
pub fn append_isolation(body: &mut Vec<u8>, level: IsolationLevel) {
    body.push(level.code());
    body.push(ISO_MARKER);
}

/// Decode a request body that may end with the [`ISO_MARKER`] suffix.
/// Plain bodies decode to `(request, None)`; suffixed bodies to
/// `(request, Some(level))`. The plain interpretation is tried first and
/// wins when it succeeds, so the suffix can never be confused with
/// message content.
pub fn decode_request_iso(msg: &[u8]) -> Result<(Request, Option<IsolationLevel>)> {
    match Request::decode(msg) {
        Ok(req) => Ok((req, None)),
        Err(err) => {
            if msg.len() >= 2 && msg[msg.len() - 1] == ISO_MARKER {
                if let Some(level) = IsolationLevel::from_code(msg[msg.len() - 2]) {
                    return Ok((Request::decode(&msg[..msg.len() - 2])?, Some(level)));
                }
            }
            Err(err)
        }
    }
}

/// The trace context a frame may carry ahead of its message body.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace the frame belongs to.
    pub trace: u64,
    /// Span id of the sending operation; 0 when the sender recorded no
    /// span (the frame then encodes with [`TRACE_MARKER`] alone).
    pub parent_span: u64,
}

/// Operations a client may ask of a server. Storage requests (tags 1–10)
/// mirror `tell_store::StoreApi`; commit requests (tags 16–20) mirror
/// `tell_commitmgr::{CommitService, CommitParticipant}`.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Load-link one key.
    Get { key: Key },
    /// Batched load-link.
    MultiGet { keys: Vec<Key> },
    /// One conditional write; `op.expect`/`op.value` select between put,
    /// insert, store-conditional, delete and delete-conditional.
    Write { op: WriteOp },
    /// Batched conditional writes with independent per-op results.
    MultiWrite { ops: Vec<WriteOp> },
    /// Atomic fetch-and-add.
    Increment { key: Key, delta: u64 },
    /// Ordered scan of `[start, end)`; `reverse` walks largest-key-first.
    Scan { start: Key, end: Option<Key>, limit: u64, reverse: bool },
    /// Scan every key beginning with `prefix`.
    ScanPrefix { prefix: Key, limit: u64 },
    /// Liveness / round-trip probe.
    Ping,
    /// Several independent point operations in **one** frame (§5.1
    /// "aggressively batches operations"): the server executes them in
    /// order and answers with a [`Response::Batch`] carrying one nested
    /// response per op. Nesting a `Batch` inside a `Batch` is a protocol
    /// error. The batch is a framing optimisation, not an atomic unit.
    Batch { ops: Vec<Request> },
    /// Prefix scan with a serializable [`Predicate`] evaluated **on the
    /// storage node** (§5.2 selection pushdown): only matching rows are
    /// framed into the response.
    ScanPrefixFiltered { prefix: Key, limit: u64, predicate: Predicate },
    /// Begin a transaction on the manager `hint` pins the caller to.
    CmStart { hint: u64 },
    /// Report the outcome of a transaction this server issued.
    CmComplete { tid: TxnId, committed: bool },
    /// Lowest active version across this server's managers.
    CmLav,
    /// Force a commit-manager state synchronization.
    CmSync,
    /// Resolve a tid on every live manager (recovery path).
    CmResolve { tid: TxnId, committed: bool },
    /// Snapshot the server's metrics registry. Answered with
    /// [`Response::Metrics`] carrying the JSON rendering of a
    /// `tell_obs::MetricsSnapshot`; any server answers it regardless of
    /// which services it hosts.
    Metrics,
    /// Scrape the server's span ring. Answered with [`Response::Spans`];
    /// any server answers it regardless of which services it hosts. The
    /// default (`drain: false`) is a non-destructive peek, so a background
    /// monitoring poller never steals the traces a one-shot exporter was
    /// about to collect; `drain: true` removes what it returns (each span
    /// scraped exactly once). Each mode is its own bodyless tag; the peek
    /// tag is the one pre-flag peers send, so old scrape bytes still
    /// decode (and to the non-destructive mode).
    Spans { drain: bool },
    /// Incremental telemetry scrape: the server's time-series ring points
    /// with `seq > since`, plus the metric-name schema to interpret them.
    /// Answered with [`Response::Telemetry`]; any server answers it. Pass
    /// `since: 0` for history from the oldest retained point, then the
    /// returned `next_cursor` on every later scrape.
    Telemetry { since: u64 },
    /// Start the server's logical-stack profiler sampling at `hz`
    /// (non-positive: the server's `TELL_PROF_HZ` / default). Answered
    /// with [`Response::Unit`]; any server answers it. Starting an
    /// already-running profiler is a no-op (the running profile keeps
    /// accumulating).
    ProfileStart { hz: f64 },
    /// Stop the profiler, keeping the accumulated profile fetchable.
    /// Answered with [`Response::Unit`]; any server answers it.
    ProfileStop,
    /// Fetch the accumulated profile (running or stopped). Answered with
    /// [`Response::Profile`]; any server answers it.
    ProfileFetch,
}

/// Server replies. `Error` may answer any request; the others pair with
/// specific requests (e.g. `Cell` answers `Get`).
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The request failed; carries the typed error.
    Error(WireError),
    /// Answer to `Get`.
    Cell(Option<(Token, Bytes)>),
    /// Answer to `MultiGet`.
    Cells(Vec<Option<(Token, Bytes)>>),
    /// Answer to `Write`: the new token, or `None` for a delete.
    Written(Option<Token>),
    /// Answer to `MultiWrite`: independent per-op outcomes.
    WriteResults(Vec<std::result::Result<Option<Token>, WireError>>),
    /// Answer to `Increment`.
    Counter(u64),
    /// Answer to `Scan` / `ScanPrefix`.
    Rows(Vec<(Key, Token, Bytes)>),
    /// Answer to `Ping`.
    Pong,
    /// Answer to `Request::Batch`: one nested response per nested op, in
    /// submission order. Per-op failures travel as nested
    /// [`Response::Error`]s, so one conflicting write does not poison its
    /// window-mates. Nesting a `Batch` inside a `Batch` is a protocol error.
    Batch { results: Vec<Response> },
    /// Answer to `CmStart`.
    TxnStarted { tid: TxnId, lav: u64, snapshot: SnapshotDescriptor },
    /// Answer to requests with no payload (`CmComplete`, `CmSync`, ...).
    Unit,
    /// Answer to `CmLav`.
    Lav(u64),
    /// Answer to `Request::Metrics`: a `tell_obs::MetricsSnapshot` rendered
    /// as JSON (the wire stays renderer-agnostic; scrapers re-render to
    /// Prometheus text locally).
    Metrics(String),
    /// Answer to `Request::Spans`: the server's span ring contents, oldest
    /// first per shard (removed only when the request asked to drain).
    Spans(Vec<Span>),
    /// Answer to `Request::Telemetry`: one incremental page of time-series
    /// points plus the producer's metric-name schema.
    Telemetry(TelemetryPage),
    /// Answer to `Request::ProfileFetch`: the server's collapsed-stack
    /// profile, lock-contention totals, and (when built with
    /// `prof-alloc`) allocation totals.
    Profile(ProfileReport),
}

/// `tell_common::Error` in wire form. The mapping is lossless in both
/// directions so a remote call surfaces exactly the error the server saw —
/// in particular `Conflict` stays `Conflict`, which the optimistic
/// transaction layer depends on for its retry decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    Conflict,
    Aborted(String),
    NotFound,
    Unavailable(String),
    CapacityExceeded { node: u32, capacity: u64 },
    Corrupt(String),
    InvalidOperation(String),
    Parse { message: String, position: u64 },
    Query(String),
    Unsupported(String),
}

impl From<Error> for WireError {
    fn from(e: Error) -> WireError {
        match e {
            Error::Conflict => WireError::Conflict,
            Error::Aborted(r) => WireError::Aborted(r),
            Error::NotFound => WireError::NotFound,
            Error::Unavailable(w) => WireError::Unavailable(w),
            Error::CapacityExceeded { node, capacity } => {
                WireError::CapacityExceeded { node, capacity: capacity as u64 }
            }
            Error::Corrupt(w) => WireError::Corrupt(w),
            Error::InvalidOperation(w) => WireError::InvalidOperation(w),
            Error::Parse { message, position } => {
                WireError::Parse { message, position: position as u64 }
            }
            Error::Query(w) => WireError::Query(w),
            Error::Unsupported(w) => WireError::Unsupported(w),
        }
    }
}

impl From<WireError> for Error {
    fn from(e: WireError) -> Error {
        match e {
            WireError::Conflict => Error::Conflict,
            WireError::Aborted(r) => Error::Aborted(r),
            WireError::NotFound => Error::NotFound,
            WireError::Unavailable(w) => Error::Unavailable(w),
            WireError::CapacityExceeded { node, capacity } => {
                Error::CapacityExceeded { node, capacity: capacity as usize }
            }
            WireError::Corrupt(w) => Error::Corrupt(w),
            WireError::InvalidOperation(w) => Error::InvalidOperation(w),
            WireError::Parse { message, position } => {
                Error::Parse { message, position: position as usize }
            }
            WireError::Query(w) => Error::Query(w),
            WireError::Unsupported(w) => Error::Unsupported(w),
        }
    }
}

// ---------------------------------------------------------------------------
// Field-level helpers.

fn put_key(out: &mut Vec<u8>, key: &Key) {
    out.put_bytes(key.as_ref());
}

fn read_key(r: &mut Reader<'_>) -> Result<Key> {
    Ok(Bytes::copy_from_slice(r.bytes()?))
}

fn put_opt_key(out: &mut Vec<u8>, key: &Option<Key>) {
    match key {
        Some(k) => {
            out.put_u8(1);
            put_key(out, k);
        }
        None => out.put_u8(0),
    }
}

fn read_opt_key(r: &mut Reader<'_>) -> Result<Option<Key>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(read_key(r)?)),
        t => Err(Error::corrupt(format!("bad option tag {t}"))),
    }
}

fn put_cell(out: &mut Vec<u8>, cell: &Option<(Token, Bytes)>) {
    match cell {
        Some((token, value)) => {
            out.put_u8(1);
            out.put_u64(*token);
            out.put_bytes(value.as_ref());
        }
        None => out.put_u8(0),
    }
}

fn read_cell(r: &mut Reader<'_>) -> Result<Option<(Token, Bytes)>> {
    match r.u8()? {
        0 => Ok(None),
        1 => {
            let token = r.u64()?;
            let value = Bytes::copy_from_slice(r.bytes()?);
            Ok(Some((token, value)))
        }
        t => Err(Error::corrupt(format!("bad cell tag {t}"))),
    }
}

fn put_write_op(out: &mut Vec<u8>, op: &WriteOp) {
    put_key(out, &op.key);
    match op.expect {
        Expect::Any => out.put_u8(0),
        Expect::Absent => out.put_u8(1),
        Expect::Token(t) => {
            out.put_u8(2);
            out.put_u64(t);
        }
    }
    match &op.value {
        Some(v) => {
            out.put_u8(1);
            out.put_bytes(v.as_ref());
        }
        None => out.put_u8(0),
    }
}

fn read_write_op(r: &mut Reader<'_>) -> Result<WriteOp> {
    let key = read_key(r)?;
    let expect = match r.u8()? {
        0 => Expect::Any,
        1 => Expect::Absent,
        2 => Expect::Token(r.u64()?),
        t => return Err(Error::corrupt(format!("bad expect tag {t}"))),
    };
    let value = match r.u8()? {
        0 => None,
        1 => Some(Bytes::copy_from_slice(r.bytes()?)),
        t => return Err(Error::corrupt(format!("bad value tag {t}"))),
    };
    Ok(WriteOp { key, expect, value })
}

fn put_wire_error(out: &mut Vec<u8>, e: &WireError) {
    match e {
        WireError::Conflict => out.put_u8(1),
        WireError::Aborted(r) => {
            out.put_u8(2);
            out.put_string(r);
        }
        WireError::NotFound => out.put_u8(3),
        WireError::Unavailable(w) => {
            out.put_u8(4);
            out.put_string(w);
        }
        WireError::CapacityExceeded { node, capacity } => {
            out.put_u8(5);
            out.put_u32(*node);
            out.put_u64(*capacity);
        }
        WireError::Corrupt(w) => {
            out.put_u8(6);
            out.put_string(w);
        }
        WireError::InvalidOperation(w) => {
            out.put_u8(7);
            out.put_string(w);
        }
        WireError::Parse { message, position } => {
            out.put_u8(8);
            out.put_string(message);
            out.put_u64(*position);
        }
        WireError::Query(w) => {
            out.put_u8(9);
            out.put_string(w);
        }
        WireError::Unsupported(w) => {
            out.put_u8(10);
            out.put_string(w);
        }
    }
}

fn read_wire_error(r: &mut Reader<'_>) -> Result<WireError> {
    Ok(match r.u8()? {
        1 => WireError::Conflict,
        2 => WireError::Aborted(r.string()?),
        3 => WireError::NotFound,
        4 => WireError::Unavailable(r.string()?),
        5 => WireError::CapacityExceeded { node: r.u32()?, capacity: r.u64()? },
        6 => WireError::Corrupt(r.string()?),
        7 => WireError::InvalidOperation(r.string()?),
        8 => WireError::Parse { message: r.string()?, position: r.u64()? },
        9 => WireError::Query(r.string()?),
        10 => WireError::Unsupported(r.string()?),
        t => return Err(Error::corrupt(format!("bad error tag {t}"))),
    })
}

// ---------------------------------------------------------------------------
// Message encoding.

impl Request {
    /// Serialize into a fresh body buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Get { key } => {
                out.put_u8(1);
                put_key(&mut out, key);
            }
            Request::MultiGet { keys } => {
                out.put_u8(2);
                out.put_u32(keys.len() as u32);
                for k in keys {
                    put_key(&mut out, k);
                }
            }
            Request::Write { op } => {
                out.put_u8(3);
                put_write_op(&mut out, op);
            }
            Request::MultiWrite { ops } => {
                out.put_u8(4);
                out.put_u32(ops.len() as u32);
                for op in ops {
                    put_write_op(&mut out, op);
                }
            }
            Request::Increment { key, delta } => {
                out.put_u8(5);
                put_key(&mut out, key);
                out.put_u64(*delta);
            }
            Request::Scan { start, end, limit, reverse } => {
                out.put_u8(6);
                put_key(&mut out, start);
                put_opt_key(&mut out, end);
                out.put_u64(*limit);
                out.put_u8(u8::from(*reverse));
            }
            Request::ScanPrefix { prefix, limit } => {
                out.put_u8(7);
                put_key(&mut out, prefix);
                out.put_u64(*limit);
            }
            Request::Ping => out.put_u8(8),
            Request::Batch { ops } => {
                out.put_u8(9);
                out.put_u32(ops.len() as u32);
                for op in ops {
                    debug_assert!(
                        !matches!(op, Request::Batch { .. }),
                        "batches must not nest (encoder misuse)"
                    );
                    out.put_bytes(&op.encode());
                }
            }
            Request::ScanPrefixFiltered { prefix, limit, predicate } => {
                out.put_u8(10);
                put_key(&mut out, prefix);
                out.put_u64(*limit);
                predicate
                    .encode_into(&mut out)
                    .expect("predicate depth is validated at construction");
            }
            Request::CmStart { hint } => {
                out.put_u8(16);
                out.put_u64(*hint);
            }
            Request::CmComplete { tid, committed } => {
                out.put_u8(17);
                out.put_u64(tid.raw());
                out.put_u8(u8::from(*committed));
            }
            Request::CmLav => out.put_u8(18),
            Request::CmSync => out.put_u8(19),
            Request::CmResolve { tid, committed } => {
                out.put_u8(20);
                out.put_u64(tid.raw());
                out.put_u8(u8::from(*committed));
            }
            Request::Metrics => out.put_u8(21),
            // Peek keeps the pre-flag tag (and its bodyless shape) so old
            // peers' scrapes still decode; drain is its own bodyless tag.
            Request::Spans { drain: false } => out.put_u8(22),
            Request::Spans { drain: true } => out.put_u8(24),
            Request::Telemetry { since } => {
                out.put_u8(23);
                out.put_u64(*since);
            }
            Request::ProfileStart { hz } => {
                out.put_u8(25);
                out.put_f64(*hz);
            }
            Request::ProfileStop => out.put_u8(26),
            Request::ProfileFetch => out.put_u8(27),
        }
        out
    }

    /// Parse a request body. The body must be consumed exactly.
    pub fn decode(body: &[u8]) -> Result<Request> {
        let mut r = Reader::new(body);
        let req = match r.u8()? {
            1 => Request::Get { key: read_key(&mut r)? },
            2 => {
                let n = r.u32()? as usize;
                let mut keys = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    keys.push(read_key(&mut r)?);
                }
                Request::MultiGet { keys }
            }
            3 => Request::Write { op: read_write_op(&mut r)? },
            4 => {
                let n = r.u32()? as usize;
                let mut ops = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    ops.push(read_write_op(&mut r)?);
                }
                Request::MultiWrite { ops }
            }
            5 => Request::Increment { key: read_key(&mut r)?, delta: r.u64()? },
            6 => Request::Scan {
                start: read_key(&mut r)?,
                end: read_opt_key(&mut r)?,
                limit: r.u64()?,
                reverse: read_bool(&mut r)?,
            },
            7 => Request::ScanPrefix { prefix: read_key(&mut r)?, limit: r.u64()? },
            8 => Request::Ping,
            9 => {
                let n = r.u32()? as usize;
                let mut ops = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let nested = r.bytes()?;
                    // Refuse recursion before descending: a hostile stream
                    // of nested batches must not consume decoder stack.
                    if nested.first() == Some(&9) {
                        return Err(Error::corrupt("Batch nested inside Batch"));
                    }
                    ops.push(Request::decode(nested)?);
                }
                Request::Batch { ops }
            }
            10 => Request::ScanPrefixFiltered {
                prefix: read_key(&mut r)?,
                limit: r.u64()?,
                predicate: Predicate::decode_from(&mut r)?,
            },
            16 => Request::CmStart { hint: r.u64()? },
            17 => Request::CmComplete { tid: TxnId(r.u64()?), committed: read_bool(&mut r)? },
            18 => Request::CmLav,
            19 => Request::CmSync,
            20 => Request::CmResolve { tid: TxnId(r.u64()?), committed: read_bool(&mut r)? },
            21 => Request::Metrics,
            // Pre-flag peers sent tag 22 meaning "drain"; decoding it as a
            // peek is the safe direction (nothing is lost).
            22 => Request::Spans { drain: false },
            23 => Request::Telemetry { since: r.u64()? },
            24 => Request::Spans { drain: true },
            25 => Request::ProfileStart { hz: r.f64()? },
            26 => Request::ProfileStop,
            27 => Request::ProfileFetch,
            t => return Err(Error::corrupt(format!("unknown request tag {t}"))),
        };
        expect_exhausted(&r)?;
        Ok(req)
    }
}

impl Response {
    /// Serialize into a fresh body buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Error(e) => {
                out.put_u8(0);
                put_wire_error(&mut out, e);
            }
            Response::Cell(cell) => {
                out.put_u8(1);
                put_cell(&mut out, cell);
            }
            Response::Cells(cells) => {
                out.put_u8(2);
                out.put_u32(cells.len() as u32);
                for c in cells {
                    put_cell(&mut out, c);
                }
            }
            Response::Written(token) => {
                out.put_u8(3);
                match token {
                    Some(t) => {
                        out.put_u8(1);
                        out.put_u64(*t);
                    }
                    None => out.put_u8(0),
                }
            }
            Response::WriteResults(results) => {
                out.put_u8(4);
                out.put_u32(results.len() as u32);
                for res in results {
                    match res {
                        Ok(None) => out.put_u8(0),
                        Ok(Some(t)) => {
                            out.put_u8(1);
                            out.put_u64(*t);
                        }
                        Err(e) => {
                            out.put_u8(2);
                            put_wire_error(&mut out, e);
                        }
                    }
                }
            }
            Response::Counter(v) => {
                out.put_u8(5);
                out.put_u64(*v);
            }
            Response::Rows(rows) => {
                out.put_u8(6);
                out.put_u32(rows.len() as u32);
                for (key, token, value) in rows {
                    put_key(&mut out, key);
                    out.put_u64(*token);
                    out.put_bytes(value.as_ref());
                }
            }
            Response::Pong => out.put_u8(7),
            Response::Batch { results } => {
                out.put_u8(8);
                out.put_u32(results.len() as u32);
                for res in results {
                    debug_assert!(
                        !matches!(res, Response::Batch { .. }),
                        "batches must not nest (encoder misuse)"
                    );
                    out.put_bytes(&res.encode());
                }
            }
            Response::TxnStarted { tid, lav, snapshot } => {
                out.put_u8(16);
                out.put_u64(tid.raw());
                out.put_u64(*lav);
                let mut snap = Vec::with_capacity(snapshot.encoded_len());
                snapshot.encode_into(&mut snap);
                out.put_bytes(&snap);
            }
            Response::Unit => out.put_u8(17),
            Response::Lav(v) => {
                out.put_u8(18);
                out.put_u64(*v);
            }
            Response::Metrics(json) => {
                out.put_u8(19);
                out.put_string(json);
            }
            Response::Spans(spans) => {
                out.put_u8(20);
                out.put_u32(spans.len() as u32);
                for s in spans {
                    s.encode(&mut out);
                }
            }
            Response::Telemetry(page) => {
                out.put_u8(21);
                page.encode(&mut out);
            }
            Response::Profile(report) => {
                out.put_u8(22);
                put_profile_report(&mut out, report);
            }
        }
        out
    }

    /// Parse a response body. The body must be consumed exactly.
    pub fn decode(body: &[u8]) -> Result<Response> {
        let mut r = Reader::new(body);
        let resp = match r.u8()? {
            0 => Response::Error(read_wire_error(&mut r)?),
            1 => Response::Cell(read_cell(&mut r)?),
            2 => {
                let n = r.u32()? as usize;
                let mut cells = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    cells.push(read_cell(&mut r)?);
                }
                Response::Cells(cells)
            }
            3 => Response::Written(match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                t => return Err(Error::corrupt(format!("bad token tag {t}"))),
            }),
            4 => {
                let n = r.u32()? as usize;
                let mut results = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    results.push(match r.u8()? {
                        0 => Ok(None),
                        1 => Ok(Some(r.u64()?)),
                        2 => Err(read_wire_error(&mut r)?),
                        t => return Err(Error::corrupt(format!("bad result tag {t}"))),
                    });
                }
                Response::WriteResults(results)
            }
            5 => Response::Counter(r.u64()?),
            6 => {
                let n = r.u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let key = read_key(&mut r)?;
                    let token = r.u64()?;
                    let value = Bytes::copy_from_slice(r.bytes()?);
                    rows.push((key, token, value));
                }
                Response::Rows(rows)
            }
            7 => Response::Pong,
            8 => {
                let n = r.u32()? as usize;
                let mut results = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let nested = r.bytes()?;
                    if nested.first() == Some(&8) {
                        return Err(Error::corrupt("Batch nested inside Batch"));
                    }
                    results.push(Response::decode(nested)?);
                }
                Response::Batch { results }
            }
            16 => {
                let tid = TxnId(r.u64()?);
                let lav = r.u64()?;
                let snap_bytes = r.bytes()?;
                let (snapshot, used) = SnapshotDescriptor::decode_from(snap_bytes)?;
                if used != snap_bytes.len() {
                    return Err(Error::corrupt("trailing bytes after snapshot descriptor"));
                }
                Response::TxnStarted { tid, lav, snapshot }
            }
            17 => Response::Unit,
            18 => Response::Lav(r.u64()?),
            19 => Response::Metrics(r.string()?),
            20 => {
                let n = r.u32()? as usize;
                let mut spans = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    spans.push(Span::decode(&mut r)?);
                }
                Response::Spans(spans)
            }
            21 => Response::Telemetry(TelemetryPage::decode(&mut r)?),
            22 => Response::Profile(read_profile_report(&mut r)?),
            t => return Err(Error::corrupt(format!("unknown response tag {t}"))),
        };
        expect_exhausted(&r)?;
        Ok(resp)
    }
}

fn put_profile_report(out: &mut Vec<u8>, report: &ProfileReport) {
    out.put_u8(u8::from(report.running));
    out.put_f64(report.hz);
    out.put_u64(report.samples);
    out.put_u64(report.idle);
    out.put_u64(report.dropped);
    out.put_string(&report.folded);
    out.put_u32(report.locks.len() as u32);
    for l in &report.locks {
        out.put_string(&l.name);
        out.put_u64(l.contended);
        out.put_u64(l.wait_us);
    }
    out.put_u32(report.alloc.len() as u32);
    for a in &report.alloc {
        out.put_string(&a.frame);
        out.put_u64(a.allocs);
        out.put_u64(a.bytes);
    }
}

fn read_profile_report(r: &mut Reader<'_>) -> Result<ProfileReport> {
    let running = read_bool(r)?;
    let hz = r.f64()?;
    let samples = r.u64()?;
    let idle = r.u64()?;
    let dropped = r.u64()?;
    let folded = r.string()?;
    let n = r.u32()? as usize;
    let mut locks = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        locks.push(LockStat { name: r.string()?, contended: r.u64()?, wait_us: r.u64()? });
    }
    let n = r.u32()? as usize;
    let mut alloc = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        alloc.push(AllocStat { frame: r.string()?, allocs: r.u64()?, bytes: r.u64()? });
    }
    Ok(ProfileReport { running, hz, samples, idle, dropped, folded, locks, alloc })
}

fn read_bool(r: &mut Reader<'_>) -> Result<bool> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        t => Err(Error::corrupt(format!("bad bool tag {t}"))),
    }
}

fn expect_exhausted(r: &Reader<'_>) -> Result<()> {
    if r.is_exhausted() {
        Ok(())
    } else {
        Err(Error::corrupt(format!(
            "{} trailing bytes after message at offset {}",
            r.remaining(),
            r.position()
        )))
    }
}

// ---------------------------------------------------------------------------
// Frame I/O.

/// Write one frame: length prefix, correlation id, body.
pub fn write_frame(w: &mut impl IoWrite, corr_id: u64, body: &[u8]) -> io::Result<()> {
    let len = 8 + body.len();
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(&corr_id.to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Write one frame, attaching a version-2 trace prefix when `trace` is
/// present. `None` produces a plain version-1 frame, byte-identical to
/// [`write_frame`], so untraced traffic stays readable by old peers.
pub fn write_frame_traced(
    w: &mut impl IoWrite,
    corr_id: u64,
    trace: Option<u64>,
    body: &[u8],
) -> io::Result<()> {
    write_frame_ctx(w, corr_id, trace.map(|t| TraceContext { trace: t, parent_span: 0 }), body)
}

/// Write one frame with a full trace context. `None` produces a plain
/// version-1 frame; a context with `parent_span == 0` produces the 9-byte
/// [`TRACE_MARKER`] prefix (byte-identical to [`write_frame_traced`]); a
/// nonzero `parent_span` produces the 17-byte [`SPAN_MARKER`] prefix.
pub fn write_frame_ctx(
    w: &mut impl IoWrite,
    corr_id: u64,
    ctx: Option<TraceContext>,
    body: &[u8],
) -> io::Result<()> {
    let Some(ctx) = ctx else {
        return write_frame(w, corr_id, body);
    };
    let prefix = if ctx.parent_span == 0 { 9 } else { 17 };
    let len = 8 + prefix + body.len();
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(&corr_id.to_le_bytes())?;
    if ctx.parent_span == 0 {
        w.write_all(&[TRACE_MARKER])?;
        w.write_all(&ctx.trace.to_le_bytes())?;
    } else {
        w.write_all(&[SPAN_MARKER])?;
        w.write_all(&ctx.trace.to_le_bytes())?;
        w.write_all(&ctx.parent_span.to_le_bytes())?;
    }
    w.write_all(body)?;
    w.flush()
}

/// Split a frame body into its optional trace id and the message bytes.
/// Equivalent to [`split_context`] with the parent span dropped.
pub fn split_trace(body: &[u8]) -> Result<(Option<u64>, &[u8])> {
    let (ctx, msg) = split_context(body)?;
    Ok((ctx.map(|c| c.trace), msg))
}

/// Split a frame body into its optional trace context and the message
/// bytes. Version-1 bodies (first byte is a message tag) pass through with
/// `None`; a [`TRACE_MARKER`] byte must be followed by the full 8-byte
/// trace id and yields `parent_span == 0`; a [`SPAN_MARKER`] byte must be
/// followed by both 8-byte ids.
pub fn split_context(body: &[u8]) -> Result<(Option<TraceContext>, &[u8])> {
    match body.first() {
        Some(&TRACE_MARKER) => {
            if body.len() < 9 {
                return Err(Error::corrupt("truncated trace id after marker"));
            }
            let trace = u64::from_le_bytes(body[1..9].try_into().expect("9-byte prefix"));
            Ok((Some(TraceContext { trace, parent_span: 0 }), &body[9..]))
        }
        Some(&SPAN_MARKER) => {
            if body.len() < 17 {
                return Err(Error::corrupt("truncated trace context after span marker"));
            }
            let trace = u64::from_le_bytes(body[1..9].try_into().expect("17-byte prefix"));
            let parent_span = u64::from_le_bytes(body[9..17].try_into().expect("17-byte prefix"));
            Ok((Some(TraceContext { trace, parent_span }), &body[17..]))
        }
        _ => Ok((None, body)),
    }
}

/// Read one frame, returning `(corr_id, body)`. A clean EOF before any byte
/// of a new frame yields `Ok(None)`; an EOF inside a frame is an error, as
/// is a length outside `(8, MAX_FRAME]`.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(u64, Vec<u8>)>> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < len_buf.len() {
        match r.read(&mut len_buf[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if !(8..=MAX_FRAME).contains(&len) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("invalid frame length {len}"),
        ));
    }
    let mut corr_buf = [0u8; 8];
    r.read_exact(&mut corr_buf)?;
    let mut body = vec![0u8; len - 8];
    r.read_exact(&mut body)?;
    Ok(Some((u64::from_le_bytes(corr_buf), body)))
}

/// Incremental frame decoder over an owned receive buffer, for nonblocking
/// readers that get bytes in arbitrary chunks instead of a stream they can
/// block on. Push whatever the socket produced, then drain complete frames;
/// each body comes out as a [`Bytes`] slice of the receive buffer — no copy
/// beyond the socket read itself.
///
/// Validation matches [`read_frame`] exactly: a `len` outside
/// `(8, MAX_FRAME]` is [`Error::Corrupt`] (the stream is desynchronized and
/// cannot be resynchronized), and bytes short of a full frame simply wait
/// for more input. End-of-stream policy stays with the caller: EOF with
/// [`FrameDecoder::is_idle`] false is the "closed mid-frame" error
/// `read_frame` reports.
#[derive(Default)]
pub struct FrameDecoder {
    buf: BytesMut,
}

impl FrameDecoder {
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append bytes the transport produced.
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// True when no partial frame is pending — the state in which peer EOF
    /// is clean rather than mid-frame.
    pub fn is_idle(&self) -> bool {
        self.buf.is_empty()
    }

    /// Pop the next complete frame as `(corr_id, body)`, where `body` is
    /// everything after the correlation id (trace prefix included, exactly
    /// as [`read_frame`] returns it). `Ok(None)` means more bytes are
    /// needed.
    pub fn next_frame(&mut self) -> Result<Option<(u64, Bytes)>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes checked")) as usize;
        if !(8..=MAX_FRAME).contains(&len) {
            return Err(Error::corrupt(format!("invalid frame length {len}")));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let frame = self.buf.split_to(4 + len);
        let corr_id = u64::from_le_bytes(frame[4..12].try_into().expect("12 bytes checked"));
        Ok(Some((corr_id, frame.slice(12..))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_covers_every_variant() {
        let key = Bytes::copy_from_slice(b"k");
        let reqs = vec![
            Request::Get { key: key.clone() },
            Request::MultiGet { keys: vec![key.clone(), Bytes::new()] },
            Request::Write {
                op: WriteOp {
                    key: key.clone(),
                    expect: Expect::Token(7),
                    value: Some(Bytes::copy_from_slice(b"v")),
                },
            },
            Request::MultiWrite {
                ops: vec![
                    WriteOp { key: key.clone(), expect: Expect::Absent, value: None },
                    WriteOp { key: key.clone(), expect: Expect::Any, value: Some(Bytes::new()) },
                ],
            },
            Request::Increment { key: key.clone(), delta: 42 },
            Request::Scan { start: key.clone(), end: None, limit: 10, reverse: true },
            Request::Scan { start: Bytes::new(), end: Some(key.clone()), limit: 1, reverse: false },
            Request::ScanPrefix { prefix: key.clone(), limit: u64::MAX },
            Request::ScanPrefixFiltered {
                prefix: key.clone(),
                limit: 64,
                predicate: Predicate::All(vec![
                    Predicate::value_eq(4, vec![1, 2]),
                    Predicate::KeyPrefix(key.clone()),
                ]),
            },
            Request::Batch {
                ops: vec![
                    Request::Get { key: key.clone() },
                    Request::Increment { key: key.clone(), delta: 1 },
                    Request::Write {
                        op: WriteOp { key: key.clone(), expect: Expect::Any, value: None },
                    },
                ],
            },
            Request::Batch { ops: Vec::new() },
            Request::Ping,
            Request::CmStart { hint: 3 },
            Request::CmComplete { tid: TxnId(9), committed: true },
            Request::CmLav,
            Request::CmSync,
            Request::CmResolve { tid: TxnId(1), committed: false },
            Request::Metrics,
            Request::Spans { drain: false },
            Request::Spans { drain: true },
            Request::Telemetry { since: 0 },
            Request::Telemetry { since: u64::MAX },
            Request::ProfileStart { hz: 99.0 },
            Request::ProfileStart { hz: 0.0 },
            Request::ProfileStop,
            Request::ProfileFetch,
        ];
        for req in reqs {
            let body = req.encode();
            assert_eq!(Request::decode(&body).unwrap(), req);
        }
    }

    #[test]
    fn bodyless_spans_request_decodes_as_peek() {
        // Older peers encode `Request::Spans` as the bare tag; that must
        // keep decoding, and as the non-destructive variant.
        assert_eq!(Request::decode(&[22]).unwrap(), Request::Spans { drain: false });
    }

    #[test]
    fn response_roundtrip_covers_every_variant() {
        let val = Bytes::copy_from_slice(b"payload");
        let resps = vec![
            Response::Error(WireError::Conflict),
            Response::Error(WireError::CapacityExceeded { node: 2, capacity: 4096 }),
            Response::Cell(None),
            Response::Cell(Some((5, val.clone()))),
            Response::Cells(vec![None, Some((1, Bytes::new()))]),
            Response::Written(None),
            Response::Written(Some(8)),
            Response::WriteResults(vec![Ok(None), Ok(Some(3)), Err(WireError::NotFound)]),
            Response::Counter(77),
            Response::Rows(vec![(Bytes::copy_from_slice(b"a"), 1, val.clone())]),
            Response::Pong,
            Response::Batch {
                results: vec![
                    Response::Cell(Some((5, val.clone()))),
                    Response::Error(WireError::Conflict),
                    Response::Counter(1),
                ],
            },
            Response::Batch { results: Vec::new() },
            Response::TxnStarted {
                tid: TxnId(12),
                lav: 4,
                snapshot: SnapshotDescriptor::bootstrap().with_added(TxnId(12)),
            },
            Response::Unit,
            Response::Lav(6),
            Response::Metrics("{\"counters\":{}}".into()),
            Response::Spans(Vec::new()),
            Response::Spans(vec![
                Span {
                    trace: 0xabc,
                    id: 1,
                    parent: 0,
                    kind: tell_obs::SpanKind::Txn,
                    start_virt_us: 0.0,
                    end_virt_us: 12.5,
                    start_wall_us: 100,
                    end_wall_us: 140,
                    attrs: tell_obs::SpanAttrs { count: 2, status: tell_obs::SpanStatus::Ok },
                },
                Span {
                    trace: 0xabc,
                    id: 2,
                    parent: 1,
                    kind: tell_obs::SpanKind::ServerDispatch,
                    start_virt_us: 1.0,
                    end_virt_us: 2.0,
                    start_wall_us: 110,
                    end_wall_us: 120,
                    attrs: tell_obs::SpanAttrs { count: 0, status: tell_obs::SpanStatus::Conflict },
                },
            ]),
            Response::Telemetry(TelemetryPage {
                counter_names: Vec::new(),
                gauge_names: Vec::new(),
                phase_names: Vec::new(),
                points: Vec::new(),
                next_cursor: 0,
            }),
            Response::Telemetry(TelemetryPage {
                counter_names: vec!["txn_committed_total".into(), "txn_aborted_total".into()],
                gauge_names: vec!["cm_lav".into()],
                phase_names: vec!["txn_total_us".into()],
                points: vec![tell_obs::TsPoint {
                    seq: 3,
                    virt_us: 125.0,
                    wall_us: 9_000,
                    counters: vec![10, 2],
                    gauges: vec![7],
                    phases: vec![tell_obs::PhaseDigest {
                        count: 10,
                        p50: 4.0,
                        p99: 80.0,
                        p999: 81.0,
                    }],
                }],
                next_cursor: 3,
            }),
            Response::Profile(ProfileReport {
                running: false,
                hz: 0.0,
                samples: 0,
                idle: 0,
                dropped: 0,
                folded: String::new(),
                locks: Vec::new(),
                alloc: Vec::new(),
            }),
            Response::Profile(ProfileReport {
                running: true,
                hz: 99.0,
                samples: 1000,
                idle: 17,
                dropped: 3,
                folded: "txn;txn.install 40\ntxn;txn.read 25\n".into(),
                locks: vec![
                    LockStat { name: "cm.state".into(), contended: 12, wait_us: 480 },
                    LockStat { name: "index.cache.nodes".into(), contended: 2, wait_us: 9 },
                ],
                alloc: vec![AllocStat { frame: "txn.read".into(), allocs: 5, bytes: 640 }],
            }),
        ];
        for resp in resps {
            let body = resp.encode();
            assert_eq!(Response::decode(&body).unwrap(), resp);
        }
    }

    #[test]
    fn truncated_profile_bodies_are_rejected() {
        let body = Response::Profile(ProfileReport {
            running: true,
            hz: 990.0,
            samples: 9,
            idle: 1,
            dropped: 0,
            folded: "txn 9\n".into(),
            locks: vec![LockStat { name: "cm.state".into(), contended: 1, wait_us: 2 }],
            alloc: vec![AllocStat { frame: "(untracked)".into(), allocs: 1, bytes: 8 }],
        })
        .encode();
        for cut in 0..body.len() {
            assert!(Response::decode(&body[..cut]).is_err(), "prefix of {cut} bytes accepted");
        }
        let body = Request::ProfileStart { hz: 99.0 }.encode();
        for cut in 0..body.len() {
            assert!(Request::decode(&body[..cut]).is_err(), "prefix of {cut} bytes accepted");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut body = Request::Ping.encode();
        body.push(0);
        assert!(matches!(Request::decode(&body), Err(Error::Corrupt(_))));
    }

    #[test]
    fn truncated_bodies_are_rejected() {
        let body = Request::Increment { key: Bytes::copy_from_slice(b"key"), delta: 1 }.encode();
        for cut in 0..body.len() {
            assert!(Request::decode(&body[..cut]).is_err(), "prefix of {cut} bytes accepted");
        }
    }

    #[test]
    fn truncated_batches_are_rejected() {
        let body = Request::Batch {
            ops: vec![
                Request::Get { key: Bytes::copy_from_slice(b"k") },
                Request::Increment { key: Bytes::copy_from_slice(b"c"), delta: 2 },
            ],
        }
        .encode();
        for cut in 0..body.len() {
            assert!(Request::decode(&body[..cut]).is_err(), "prefix of {cut} bytes accepted");
        }
        let body =
            Response::Batch { results: vec![Response::Counter(9), Response::Cell(None)] }.encode();
        for cut in 0..body.len() {
            assert!(Response::decode(&body[..cut]).is_err(), "prefix of {cut} bytes accepted");
        }
    }

    #[test]
    fn nested_batches_are_a_protocol_error() {
        // Hand-craft tag 9 → count 1 → nested bytes that are themselves a
        // Batch: the decoder must refuse without recursing.
        let inner = Request::Batch { ops: vec![Request::Ping] }.encode();
        let mut body = vec![9u8];
        body.put_u32(1);
        body.put_bytes(&inner);
        assert!(matches!(Request::decode(&body), Err(Error::Corrupt(_))));

        let inner = Response::Batch { results: vec![Response::Pong] }.encode();
        let mut body = vec![8u8];
        body.put_u32(1);
        body.put_bytes(&inner);
        assert!(matches!(Response::decode(&body), Err(Error::Corrupt(_))));
    }

    #[test]
    fn batch_per_op_errors_survive_the_roundtrip_losslessly() {
        let results = vec![
            Response::Error(WireError::Conflict),
            Response::Error(WireError::Unavailable("sn:1 down".into())),
            Response::Written(Some(3)),
        ];
        let body = Response::Batch { results: results.clone() }.encode();
        let Response::Batch { results: back } = Response::decode(&body).unwrap() else {
            panic!("expected a batch back");
        };
        assert_eq!(back, results);
        // And the nested errors map back to the exact tell_common errors.
        let Response::Error(e) = &back[0] else { panic!() };
        assert_eq!(Error::from(e.clone()), Error::Conflict);
    }

    #[test]
    fn frame_roundtrip_and_eof_handling() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 42, b"hello").unwrap();
        write_frame(&mut buf, 43, b"").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), Some((42, b"hello".to_vec())));
        assert_eq!(read_frame(&mut cursor).unwrap(), Some((43, Vec::new())));
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
        // A truncated frame is an error, not a hang or a silent None.
        let mut short = &buf[..buf.len() - 2];
        let _ = read_frame(&mut short).unwrap();
        assert!(read_frame(&mut short).is_err());
    }

    #[test]
    fn traced_frames_roundtrip_and_v1_frames_still_decode() {
        let body = Request::Ping.encode();
        // v2 frame with a trace id.
        let mut buf = Vec::new();
        write_frame_traced(&mut buf, 7, Some(0xdead_beef), &body).unwrap();
        let (corr, raw) = read_frame(&mut &buf[..]).unwrap().unwrap();
        assert_eq!(corr, 7);
        let (trace, msg) = split_trace(&raw).unwrap();
        assert_eq!(trace, Some(0xdead_beef));
        assert_eq!(Request::decode(msg).unwrap(), Request::Ping);

        // No trace: byte-identical to a plain v1 frame.
        let mut v2 = Vec::new();
        write_frame_traced(&mut v2, 7, None, &body).unwrap();
        let mut v1 = Vec::new();
        write_frame(&mut v1, 7, &body).unwrap();
        assert_eq!(v2, v1);
        let (_, raw) = read_frame(&mut &v1[..]).unwrap().unwrap();
        let (trace, msg) = split_trace(&raw).unwrap();
        assert_eq!(trace, None);
        assert_eq!(Request::decode(msg).unwrap(), Request::Ping);
    }

    #[test]
    fn truncated_trace_prefix_is_rejected() {
        for len in 1..9 {
            let mut body = vec![TRACE_MARKER];
            body.extend_from_slice(&vec![0u8; len - 1]);
            assert!(split_trace(&body).is_err(), "{len}-byte prefix accepted");
        }
        for len in 1..17 {
            let mut body = vec![SPAN_MARKER];
            body.extend_from_slice(&vec![0u8; len - 1]);
            assert!(split_context(&body).is_err(), "{len}-byte span prefix accepted");
        }
    }

    #[test]
    fn span_carrying_frames_roundtrip_and_older_generations_still_decode() {
        let body = Request::Ping.encode();

        // Full context: 0xF6 prefix with trace and parent span.
        let ctx = TraceContext { trace: 0xdead_beef, parent_span: 0x1234 };
        let mut buf = Vec::new();
        write_frame_ctx(&mut buf, 5, Some(ctx), &body).unwrap();
        let (corr, raw) = read_frame(&mut &buf[..]).unwrap().unwrap();
        assert_eq!(corr, 5);
        assert_eq!(raw[0], SPAN_MARKER);
        let (back, msg) = split_context(&raw).unwrap();
        assert_eq!(back, Some(ctx));
        assert_eq!(Request::decode(msg).unwrap(), Request::Ping);
        // The older accessor still sees the trace id.
        assert_eq!(split_trace(&raw).unwrap().0, Some(0xdead_beef));

        // Zero parent degrades to the trace-only 0xF5 form, byte-identical
        // to what write_frame_traced always produced.
        let mut ctx_buf = Vec::new();
        write_frame_ctx(
            &mut ctx_buf,
            5,
            Some(TraceContext { trace: 0xbeef, parent_span: 0 }),
            &body,
        )
        .unwrap();
        let mut traced_buf = Vec::new();
        write_frame_traced(&mut traced_buf, 5, Some(0xbeef), &body).unwrap();
        assert_eq!(ctx_buf, traced_buf);
        let (_, raw) = read_frame(&mut &ctx_buf[..]).unwrap().unwrap();
        assert_eq!(raw[0], TRACE_MARKER);
        assert_eq!(
            split_context(&raw).unwrap().0,
            Some(TraceContext { trace: 0xbeef, parent_span: 0 })
        );

        // No context degrades all the way to a v1 frame.
        let mut v1 = Vec::new();
        write_frame_ctx(&mut v1, 5, None, &body).unwrap();
        let mut plain = Vec::new();
        write_frame(&mut plain, 5, &body).unwrap();
        assert_eq!(v1, plain);
        let (_, raw) = read_frame(&mut &v1[..]).unwrap().unwrap();
        let (ctx, msg) = split_context(&raw).unwrap();
        assert_eq!(ctx, None);
        assert_eq!(Request::decode(msg).unwrap(), Request::Ping);
    }

    #[test]
    fn isolation_suffix_roundtrips_every_level() {
        for level in IsolationLevel::ALL {
            let mut body = Request::CmStart { hint: 3 }.encode();
            append_isolation(&mut body, level);
            let (req, got) = decode_request_iso(&body).unwrap();
            assert_eq!(req, Request::CmStart { hint: 3 });
            assert_eq!(got, Some(level));
        }
    }

    #[test]
    fn plain_bodies_decode_with_no_isolation() {
        for req in [Request::CmStart { hint: 0 }, Request::Ping, Request::CmLav] {
            let (back, level) = decode_request_iso(&req.encode()).unwrap();
            assert_eq!(back, req);
            assert_eq!(level, None);
        }
    }

    #[test]
    fn suffix_lookalike_content_decodes_as_plain_message() {
        // A key that happens to end in [valid level code][ISO_MARKER] must
        // not be mistaken for a suffixed shorter message: the full body
        // decodes exactly, and the plain interpretation wins.
        let key = Bytes::copy_from_slice(&[7, 7, 3, ISO_MARKER]);
        let req = Request::Get { key: key.clone() };
        let (back, level) = decode_request_iso(&req.encode()).unwrap();
        assert_eq!(back, req);
        assert_eq!(level, None);
    }

    #[test]
    fn bad_isolation_suffixes_are_rejected() {
        // Invalid level code: not a suffix, and the body itself is corrupt.
        let mut body = Request::Ping.encode();
        body.push(0);
        body.push(ISO_MARKER);
        assert!(decode_request_iso(&body).is_err());
        // Valid suffix on a corrupt message: still corrupt.
        let mut body = vec![99u8];
        append_isolation(&mut body, IsolationLevel::Si);
        assert!(decode_request_iso(&body).is_err());
        // Suffix alone is not a message.
        let mut body = Vec::new();
        append_isolation(&mut body, IsolationLevel::Serializable);
        assert!(decode_request_iso(&body).is_err());
        // Truncating a suffixed body is rejected — except at exactly the
        // plain-message boundary, where what remains *is* the valid
        // unsuffixed message (strictly more decodable than the original).
        let plain_len = Request::CmStart { hint: 9 }.encode().len();
        let mut body = Request::CmStart { hint: 9 }.encode();
        append_isolation(&mut body, IsolationLevel::ReadCommitted);
        for cut in 0..body.len() {
            if cut == plain_len {
                let (req, level) = decode_request_iso(&body[..cut]).unwrap();
                assert_eq!(req, Request::CmStart { hint: 9 });
                assert_eq!(level, None);
            } else {
                assert!(
                    decode_request_iso(&body[..cut]).is_err(),
                    "prefix of {cut} bytes accepted"
                );
            }
        }
    }

    #[test]
    fn oversized_frame_length_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn wire_error_conversion_is_lossless() {
        let errors = vec![
            Error::Conflict,
            Error::Aborted("why".into()),
            Error::NotFound,
            Error::Unavailable("sn:0 down".into()),
            Error::CapacityExceeded { node: 1, capacity: 512 },
            Error::Corrupt("bad".into()),
            Error::InvalidOperation("nope".into()),
            Error::Parse { message: "eof".into(), position: 3 },
            Error::Query("unknown column".into()),
            Error::Unsupported("joins".into()),
        ];
        for e in errors {
            let wire = WireError::from(e.clone());
            assert_eq!(Error::from(wire), e);
        }
    }
}

//! `tell-rpc` — a real wire protocol and TCP transport for Tell.
//!
//! The rest of the workspace simulates the network (`tell-netsim` charges
//! virtual time per exchange). This crate replaces the simulation with an
//! actual one: storage nodes and commit managers served over TCP, and
//! remote clients that plug into the same `StoreApi` / `StoreEndpoint` /
//! `CommitService` traits the in-process deployment uses — so a
//! `tell_core::Database` opened over them runs the paper's architecture
//! (§3: processing nodes over a shared data store, with a lightweight
//! commit manager) across real sockets, std-only, no external deps.
//!
//! * [`wire`] — length-prefixed binary frames with correlation ids
//!   (pipelining) and tagged request/response messages.
//! * [`server`] — threaded server wrapping a `StoreCluster` and/or a
//!   commit service; one thread per connection.
//! * [`client`] — pipelined connections, a pooled remote storage client,
//!   and the remote commit-manager client with fail-over.
//! * [`fault`] — deterministic fault injection (drop/delay/duplicate frames,
//!   batch-flush stalls) for the simulation harness; off by default.

pub mod client;
pub mod fault;
pub mod server;
pub mod wire;

pub use client::{
    ConnPool, Connection, RemoteCmClient, RemoteCmEndpoint, RemoteEndpoint, RemoteStoreClient,
};
pub use server::{RpcServer, Services};
pub use wire::{Request, Response, WireError, MAX_FRAME};

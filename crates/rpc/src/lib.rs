//! `tell-rpc` — a real wire protocol and TCP transport for Tell.
//!
//! The rest of the workspace simulates the network (`tell-netsim` charges
//! virtual time per exchange). This crate replaces the simulation with an
//! actual one: storage nodes and commit managers served over TCP, and
//! remote clients that plug into the same `StoreApi` / `StoreEndpoint` /
//! `CommitService` traits the in-process deployment uses — so a
//! `tell_core::Database` opened over them runs the paper's architecture
//! (§3: processing nodes over a shared data store, with a lightweight
//! commit manager) across real sockets, std-only, no external deps.
//!
//! * [`wire`] — length-prefixed binary frames with correlation ids
//!   (pipelining), tagged request/response messages, and the streaming
//!   [`FrameDecoder`] for nonblocking receive paths.
//! * [`service`] — the [`RpcService`] dispatch seam: one trait both
//!   servers implement, with deferred completion through [`ReplySink`].
//! * [`server`] — the epoll-reactor [`RpcServer`] (and the
//!   thread-per-connection [`BlockingServer`] baseline) fronting a
//!   `StoreCluster` and/or a commit service.
//! * [`reactor`] — the event loop itself: epoll + eventfd via `sys`,
//!   zero-copy frame slicing, a bounded worker pool, slow-reader
//!   backpressure.
//! * [`client`] — pipelined connections under the generic [`RpcChannel`],
//!   the remote storage client, and the remote commit-manager client with
//!   fail-over.
//! * [`fault`] — deterministic fault injection (drop/delay/duplicate frames,
//!   batch-flush stalls) for the simulation harness; off by default.

pub mod client;
pub mod fault;
pub mod reactor;
pub mod server;
pub mod service;
mod sys;
pub mod wire;

pub use client::{
    Connection, PendingReply, RemoteCmClient, RemoteCmEndpoint, RemoteEndpoint, RemoteStoreClient,
    RpcChannel,
};
pub use server::{BlockingServer, ReactorConfig, RpcServer, Services};
pub use service::{ReplySink, RequestCtx, Router, RpcService};
pub use wire::{FrameDecoder, Request, Response, WireError, MAX_FRAME};

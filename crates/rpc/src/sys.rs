//! Minimal raw bindings to the Linux epoll/eventfd syscalls the reactor
//! needs. `std` already links libc, so plain `extern "C"` declarations
//! reach these symbols without adding any crate dependency.
//!
//! Only what [`crate::reactor`] uses is declared: `epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `eventfd`, and `close`/`read`/`write` for
//! the eventfd itself (socket fds are owned by `TcpStream`s and never
//! closed through here). Everything is wrapped in safe helpers that
//! translate `-1` into `io::Error::last_os_error()` and retry `EINTR`
//! where the caller cannot.

#![allow(non_camel_case_types)]

use std::io;
use std::os::fd::RawFd;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

pub const EPOLL_CTL_ADD: i32 = 1;
pub const EPOLL_CTL_DEL: i32 = 2;
pub const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0x80000;
const EFD_CLOEXEC: i32 = 0x80000;
const EFD_NONBLOCK: i32 = 0x800;

const EINTR: i32 = 4;

/// One readiness record. The kernel ABI packs this struct on x86-64 (and
/// only there), so the layout attribute must match libc's.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct epoll_event {
    pub events: u32,
    /// Caller-chosen cookie; the reactor stores its connection token here.
    pub u64: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut epoll_event) -> i32;
    fn epoll_wait(epfd: i32, events: *mut epoll_event, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance; closes its fd on drop. Registered interest
/// sets are updated through [`epoll_ctl_op`] with this instance's fd —
/// concurrent MOD calls from worker threads are kernel-serialized, the
/// wrapper only owns the lifetime.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: no pointers involved; the flag is a valid constant.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    pub fn fd(&self) -> RawFd {
        self.fd
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: we own this fd; nothing else closes it.
        let _ = unsafe { close(self.fd) };
    }
}

/// `epoll_ctl` with an interest set and cookie (ADD/MOD); pass `op =
/// EPOLL_CTL_DEL` with any events/token to deregister.
pub fn epoll_ctl_op(epfd: RawFd, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    let mut ev = epoll_event { events, u64: token };
    // SAFETY: `ev` outlives the call; the kernel copies it out before
    // returning (DEL ignores it entirely).
    cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) }).map(|_| ())
}

/// Blocking `epoll_wait` into `events`, retrying `EINTR`. Returns how many
/// entries were filled. `timeout_ms < 0` blocks indefinitely.
pub fn epoll_wait_events(
    epfd: RawFd,
    events: &mut [epoll_event],
    timeout_ms: i32,
) -> io::Result<usize> {
    loop {
        // SAFETY: the pointer/length pair comes from a live slice and the
        // kernel writes at most `len` entries.
        let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
        match cvt(n) {
            Ok(n) => return Ok(n as usize),
            Err(e) if e.raw_os_error() == Some(EINTR) => continue,
            Err(e) => return Err(e),
        }
    }
}

/// A nonblocking `eventfd` used to wake the reactor from other threads.
/// Closes its fd on drop.
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    pub fn new() -> io::Result<EventFd> {
        // SAFETY: plain syscall, valid flag constants.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd { fd })
    }

    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Add 1 to the eventfd counter, making it readable. Never blocks
    /// meaningfully: the counter saturates far beyond any wake rate, and a
    /// full counter already means the reactor has a pending wakeup.
    pub fn notify(&self) {
        let one: u64 = 1;
        // SAFETY: writes exactly 8 bytes from a live stack value.
        let _ = unsafe { write(self.fd, one.to_ne_bytes().as_ptr(), 8) };
    }

    /// Drain the counter so level-triggered epoll stops reporting it.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: reads at most 8 bytes into a live stack buffer.
        let _ = unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: we own this fd; nothing else closes it.
        let _ = unsafe { close(self.fd) };
    }
}

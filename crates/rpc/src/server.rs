//! Threaded TCP server fronting a storage cluster and/or commit managers.
//!
//! One accept loop, one thread per connection. A connection processes its
//! requests in arrival order but a client may keep many in flight —
//! responses carry the request's correlation id, so the client needs no
//! lockstep (pipelining per §5.1's batching spirit: the wire stays full).
//!
//! The same server can expose both services; the shipped binaries run them
//! separately (`tell_sn` serves storage, `tell_cm` serves commit managers)
//! the way the paper separates SNs from the commit manager.

use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use parking_lot::Mutex;
use tell_commitmgr::{CommitParticipant, CommitService};
use tell_common::{Error, Result};
use tell_netsim::NetMeter;
use tell_store::{Expect, StoreClient, StoreCluster, WriteOp};

use tell_obs::Counter;

use crate::wire::{read_frame, split_context, write_frame_ctx, Request, Response};

/// What a server process exposes.
#[derive(Default)]
pub struct Services {
    /// Storage requests are served from this cluster.
    pub store: Option<Arc<StoreCluster>>,
    /// Commit requests are served from this service.
    pub commit: Option<Arc<dyn CommitService>>,
}

struct ServerShared {
    services: Services,
    /// tid → the manager that issued it, so `CmComplete` reports the
    /// outcome to the right manager regardless of which connection (or
    /// which PN) delivers it. Falls back to `force_resolve` when absent
    /// (e.g. resolution arriving after a server restart).
    participants: Mutex<HashMap<u64, Arc<dyn CommitParticipant>>>,
    shutting_down: AtomicBool,
    /// Request frames read off the wire, across all connections. A `Batch`
    /// of N ops counts **once** — this is the counter the batching
    /// ablation compares against the logical op count.
    frames: AtomicU64,
    /// Live connections keyed by peer address, so `shutdown` can sever
    /// them. Each handler removes its own entry when it exits; leaving
    /// dead clones here would hold the socket open (no FIN to the peer)
    /// and leak a descriptor per connection.
    conns: Mutex<HashMap<SocketAddr, TcpStream>>,
}

/// A running tell-rpc server. Dropping it shuts it down.
pub struct RpcServer {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept: Option<thread::JoinHandle<()>>,
}

impl RpcServer {
    /// Bind `addr` and serve `services`. Pass port 0 to let the OS choose;
    /// the bound address is available from [`RpcServer::local_addr`].
    pub fn serve(addr: impl ToSocketAddrs, services: Services) -> Result<RpcServer> {
        let listener =
            TcpListener::bind(addr).map_err(|e| Error::Unavailable(format!("bind failed: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::Unavailable(format!("no local address: {e}")))?;
        let shared = Arc::new(ServerShared {
            services,
            participants: Mutex::new(HashMap::new()),
            shutting_down: AtomicBool::new(false),
            frames: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::Builder::new()
            .name(format!("tell-rpc-accept-{}", addr.port()))
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(|e| Error::Unavailable(format!("spawn failed: {e}")))?;
        Ok(RpcServer { addr, shared, accept: Some(accept) })
    }

    /// Serve only storage requests.
    pub fn serve_store(addr: impl ToSocketAddrs, store: Arc<StoreCluster>) -> Result<RpcServer> {
        RpcServer::serve(addr, Services { store: Some(store), commit: None })
    }

    /// Serve only commit-manager requests.
    pub fn serve_commit(
        addr: impl ToSocketAddrs,
        commit: Arc<dyn CommitService>,
    ) -> Result<RpcServer> {
        RpcServer::serve(addr, Services { store: None, commit: Some(commit) })
    }

    /// The address the server accepts connections on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request frames served so far, across all connections. A `Batch` of
    /// N operations counts as one frame, so comparing this against logical
    /// op counts measures what §5.1's batching saves.
    pub fn frames_served(&self) -> u64 {
        self.shared.frames.load(Ordering::SeqCst)
    }

    /// Stop accepting, sever every open connection and join the accept
    /// loop. Called automatically on drop.
    pub fn shutdown(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for (_, conn) in self.shared.conns.lock().drain() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RpcServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        let Ok(peer) = stream.peer_addr() else { continue };
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().insert(peer, clone);
        }
        let conn_shared = Arc::clone(&shared);
        let _ = thread::Builder::new()
            .name("tell-rpc-conn".into())
            .spawn(move || handle_connection(stream, peer, conn_shared));
    }
}

fn handle_connection(stream: TcpStream, peer: SocketAddr, shared: Arc<ServerShared>) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    // The storage client and the meter live on this connection's thread:
    // `NetMeter` is deliberately `!Send` (one virtual clock per worker), and
    // a real server charges no simulated time — hence the free meter.
    let store_client =
        shared.services.store.as_ref().map(|c| StoreClient::unmetered(Arc::clone(c)));
    let meter = NetMeter::free();
    while let Ok(Some((corr_id, body))) = read_frame(&mut reader) {
        shared.frames.fetch_add(1, Ordering::SeqCst);
        tell_obs::incr(Counter::RpcServerFramesIn);
        tell_obs::add(Counter::RpcServerBytesIn, body.len() as u64);
        // The fault injector (when armed by the simulation harness) acts on
        // the frame as a unit, before any dispatch side effects: a dropped
        // frame kills the stream like a broken link would, a delayed frame
        // holds up everything pipelined behind it, a duplicated frame
        // re-dispatches — at-least-once delivery the protocol must absorb.
        let injected = crate::fault::server_action();
        if injected == crate::fault::ServerFault::Drop {
            break;
        }
        if let crate::fault::ServerFault::DelayUs(us) = injected {
            thread::sleep(std::time::Duration::from_micros(us));
        }
        let (ctx, response) = match split_context(&body)
            .and_then(|(ctx, msg)| Request::decode(msg).map(|request| (ctx, request)))
        {
            Ok((ctx, request)) => {
                count_request(&request);
                // Expose the originating trace to everything this dispatch
                // touches (slow-op checks included), then echo it back.
                let _guard = ctx.map(|c| tell_obs::TraceGuard::enter(c.trace));
                // Record this dispatch as a child of the remote client-call
                // span carried in the frame (servers have no virtual clock,
                // so the virtual timestamps stay 0).
                let _in_server = tell_obs::span::ServerDispatchScope::enter();
                let span = ctx.and_then(|c| {
                    tell_obs::SpanTimer::start_with_parent(
                        c.trace,
                        c.parent_span,
                        tell_obs::SpanKind::ServerDispatch,
                        0.0,
                    )
                });
                // At-least-once delivery: apply the request twice and answer
                // with the first result, as a retransmitted frame arriving
                // after the original would. `CmStart` is exempt — allocation
                // is not idempotent, and a tid handed out by a duplicate
                // would never be completed by anyone (for starts, a lost
                // response is the Drop fault's territory).
                let duplicate = injected == crate::fault::ServerFault::Duplicate
                    && !matches!(request, Request::CmStart { .. });
                let response = if duplicate {
                    let first = dispatch(&shared, store_client.as_ref(), &meter, request.clone());
                    let _second = dispatch(&shared, store_client.as_ref(), &meter, request);
                    first
                } else {
                    dispatch(&shared, store_client.as_ref(), &meter, request)
                };
                if let Some(span) = span {
                    let status = match &response {
                        Response::Error(crate::wire::WireError::Conflict) => {
                            tell_obs::SpanStatus::Conflict
                        }
                        Response::Error(_) => tell_obs::SpanStatus::Error,
                        _ => tell_obs::SpanStatus::Ok,
                    };
                    span.finish(0.0, 0, status);
                }
                // A server thread never learns how the trace ends, so its
                // spans go straight to the ring (the bounded drop-oldest
                // ring is the server-side retention policy).
                tell_obs::span::flush_pending_to_ring();
                (ctx, response)
            }
            Err(e) => (None, Response::Error(e.into())),
        };
        let out = response.encode();
        tell_obs::incr(Counter::RpcServerFramesOut);
        tell_obs::add(Counter::RpcServerBytesOut, out.len() as u64);
        if write_frame_ctx(&mut writer, corr_id, ctx, &out).is_err() {
            break;
        }
    }
    // Drop our registration and actively close: the clone held for
    // `shutdown` must not outlive the handler, or the peer never sees EOF.
    shared.conns.lock().remove(&peer);
    let _ = writer.shutdown(std::net::Shutdown::Both);
}

/// Per-request-type accounting. A `Batch` envelope counts once under its
/// own counter (mirroring the one-frame semantics of `frames_served`) and
/// each nested op counts under its own type plus the inner-ops total.
fn count_request(request: &Request) {
    let reg = tell_obs::global();
    let c = match request {
        Request::Get { .. } => Counter::ReqGet,
        Request::MultiGet { .. } => Counter::ReqMultiGet,
        Request::Write { .. } => Counter::ReqWrite,
        Request::MultiWrite { .. } => Counter::ReqMultiWrite,
        Request::Increment { .. } => Counter::ReqIncrement,
        Request::Scan { .. } => Counter::ReqScan,
        Request::ScanPrefix { .. } => Counter::ReqScanPrefix,
        Request::ScanPrefixFiltered { .. } => Counter::ReqScanPrefixFiltered,
        Request::Ping => Counter::ReqPing,
        Request::Batch { ops } => {
            reg.add(Counter::ReqBatchInnerOps, ops.len() as u64);
            for op in ops {
                count_request(op);
            }
            Counter::ReqBatch
        }
        Request::CmStart { .. } => Counter::ReqCmStart,
        Request::CmComplete { .. } => Counter::ReqCmComplete,
        Request::CmLav => Counter::ReqCmLav,
        Request::CmSync => Counter::ReqCmSync,
        Request::CmResolve { .. } => Counter::ReqCmResolve,
        Request::Metrics => Counter::ReqMetrics,
        Request::Spans => Counter::ReqSpans,
    };
    reg.incr(c);
}

fn dispatch(
    shared: &ServerShared,
    store: Option<&StoreClient>,
    meter: &NetMeter,
    request: Request,
) -> Response {
    match request {
        // One frame in, one frame out: each nested op dispatches
        // independently, so per-op failures travel as nested errors
        // instead of poisoning the whole window (§5.1 batching).
        Request::Batch { ops } => Response::Batch {
            results: ops.into_iter().map(|op| dispatch_one(shared, store, meter, op)).collect(),
        },
        other => dispatch_one(shared, store, meter, other),
    }
}

fn dispatch_one(
    shared: &ServerShared,
    store: Option<&StoreClient>,
    meter: &NetMeter,
    request: Request,
) -> Response {
    match request {
        Request::Ping => Response::Pong,
        // Served by every node regardless of hosted services: the snapshot
        // is of this process's global registry.
        Request::Metrics => Response::Metrics(tell_obs::snapshot().to_json()),
        // Likewise process-wide; draining is destructive, each span is
        // scraped exactly once.
        Request::Spans => Response::Spans(tell_obs::span::global_ring().drain()),
        // The wire decoder already refuses nested batches; keep the server
        // refusal too so a future in-process caller cannot sneak one in.
        Request::Batch { .. } => {
            Response::Error(Error::invalid("Batch nested inside Batch").into())
        }
        Request::Get { .. }
        | Request::MultiGet { .. }
        | Request::Write { .. }
        | Request::MultiWrite { .. }
        | Request::Increment { .. }
        | Request::Scan { .. }
        | Request::ScanPrefix { .. }
        | Request::ScanPrefixFiltered { .. } => match store {
            Some(client) => dispatch_store(client, request),
            None => Response::Error(
                Error::Unsupported("this node does not serve storage".into()).into(),
            ),
        },
        Request::CmStart { .. }
        | Request::CmComplete { .. }
        | Request::CmLav
        | Request::CmSync
        | Request::CmResolve { .. } => match &shared.services.commit {
            Some(commit) => dispatch_commit(shared, commit.as_ref(), meter, request),
            None => Response::Error(
                Error::Unsupported("this node does not serve commit managers".into()).into(),
            ),
        },
    }
}

fn dispatch_store(client: &StoreClient, request: Request) -> Response {
    let result = match request {
        Request::Get { key } => client.get(&key).map(Response::Cell),
        Request::MultiGet { keys } => client.multi_get(&keys).map(Response::Cells),
        Request::Write { op } => apply_write(client, op).map(Response::Written),
        Request::MultiWrite { ops } => client.multi_write(ops).map(|results| {
            Response::WriteResults(results.into_iter().map(|r| r.map_err(Into::into)).collect())
        }),
        Request::Increment { key, delta } => client.increment(&key, delta).map(Response::Counter),
        Request::Scan { start, end, limit, reverse } => {
            let limit = clamp_limit(limit);
            let end = end.as_ref().map(|b| b.as_ref());
            if reverse {
                client.scan_range_rev(start.as_ref(), end, limit).map(Response::Rows)
            } else {
                client.scan_range(start.as_ref(), end, limit).map(Response::Rows)
            }
        }
        Request::ScanPrefix { prefix, limit } => {
            client.scan_prefix(prefix.as_ref(), clamp_limit(limit)).map(Response::Rows)
        }
        Request::ScanPrefixFiltered { prefix, limit, predicate } => {
            // The §5.2 pushdown: evaluate the predicate here, next to the
            // data, so only matching rows are framed into the response.
            client
                .scan_prefix_pushdown(prefix.as_ref(), clamp_limit(limit), &predicate)
                .map(Response::Rows)
        }
        _ => unreachable!("non-storage request routed to dispatch_store"),
    };
    result.unwrap_or_else(|e| Response::Error(e.into()))
}

/// Route a single conditional write to the store call with exactly its
/// semantics (see `StoreApi`: put / insert / store-conditional / delete /
/// delete-conditional are distinct operations, not sugar over one another).
fn apply_write(client: &StoreClient, op: WriteOp) -> Result<Option<u64>> {
    match (op.expect, op.value) {
        (Expect::Any, Some(value)) => client.put(&op.key, value).map(Some),
        (Expect::Absent, Some(value)) => client.insert(&op.key, value).map(Some),
        (Expect::Token(token), Some(value)) => {
            client.store_conditional(&op.key, token, value).map(Some)
        }
        (Expect::Token(token), None) => client.delete_conditional(&op.key, token).map(|()| None),
        (Expect::Any, None) => client.delete(&op.key).map(|()| None),
        (Expect::Absent, None) => Err(Error::invalid("delete with Expect::Absent is meaningless")),
    }
}

fn dispatch_commit(
    shared: &ServerShared,
    commit: &dyn CommitService,
    meter: &NetMeter,
    request: Request,
) -> Response {
    let result = match request {
        Request::CmStart { hint } => {
            commit.start_pinned(hint as usize, meter).map(|(start, participant)| {
                shared.participants.lock().insert(start.tid.raw(), participant);
                Response::TxnStarted { tid: start.tid, lav: start.lav, snapshot: start.snapshot }
            })
        }
        Request::CmComplete { tid, committed } => {
            let participant = shared.participants.lock().remove(&tid.raw());
            match participant {
                Some(p) if committed => p.set_committed(tid, meter),
                Some(p) => p.set_aborted(tid, meter),
                // The issuing manager is unknown here (restart, cross-server
                // resolution): resolve on every live manager instead.
                None => commit.force_resolve(tid, committed),
            }
            .map(|()| Response::Unit)
        }
        Request::CmLav => commit.current_lav().map(Response::Lav),
        Request::CmSync => commit.sync_all(meter).map(|()| Response::Unit),
        Request::CmResolve { tid, committed } => {
            shared.participants.lock().remove(&tid.raw());
            commit.force_resolve(tid, committed).map(|()| Response::Unit)
        }
        _ => unreachable!("non-commit request routed to dispatch_commit"),
    };
    result.unwrap_or_else(|e| Response::Error(e.into()))
}

fn clamp_limit(limit: u64) -> usize {
    usize::try_from(limit).unwrap_or(usize::MAX)
}

//! TCP servers fronting an [`RpcService`].
//!
//! [`RpcServer`] — the shipped server — runs the epoll reactor from
//! [`crate::reactor`]: one event-loop thread multiplexing every
//! connection, a bounded worker pool executing dispatch, zero-copy frame
//! slicing and slow-reader backpressure. A connection's requests dispatch
//! in arrival order but a client may keep many in flight — responses carry
//! the request's correlation id, so the client needs no lockstep
//! (pipelining per §5.1's batching spirit: the wire stays full).
//!
//! [`BlockingServer`] is the old thread-per-connection design, kept as the
//! explicitly-labeled baseline the reactor bench compares against. Both
//! servers speak the identical wire protocol over the identical
//! [`Router`]; only the I/O model differs.
//!
//! The same server can expose both services; the shipped binaries run them
//! separately (`tell_sn` serves storage, `tell_cm` serves commit managers)
//! the way the paper separates SNs from the commit manager.

use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use parking_lot::Mutex;
use tell_commitmgr::CommitService;
use tell_common::{Error, Result};
use tell_obs::Counter;
use tell_store::StoreCluster;

use crate::reactor::Reactor;
pub use crate::reactor::ReactorConfig;
pub use crate::service::Services;
use crate::service::{dispatch_frame, Router, RpcService};
use crate::wire::{read_frame, write_frame_ctx};

/// A running tell-rpc server over the epoll reactor. Dropping it shuts it
/// down.
pub struct RpcServer {
    addr: SocketAddr,
    reactor: Reactor,
}

impl RpcServer {
    /// Bind `addr` and serve `services` with default reactor tuning. Pass
    /// port 0 to let the OS choose; the bound address is available from
    /// [`RpcServer::local_addr`].
    pub fn serve(addr: impl ToSocketAddrs, services: Services) -> Result<RpcServer> {
        RpcServer::serve_with(addr, services, ReactorConfig::default())
    }

    /// [`RpcServer::serve`] with explicit reactor tuning (worker count,
    /// write-buffer cap).
    pub fn serve_with(
        addr: impl ToSocketAddrs,
        services: Services,
        config: ReactorConfig,
    ) -> Result<RpcServer> {
        RpcServer::serve_service(addr, Arc::new(Router::new(services)), config)
    }

    /// Serve an arbitrary [`RpcService`] — the seam a custom deployment
    /// (or a test) plugs its own handler into.
    pub fn serve_service(
        addr: impl ToSocketAddrs,
        service: Arc<dyn RpcService>,
        config: ReactorConfig,
    ) -> Result<RpcServer> {
        // Any serving process keeps a telemetry history for
        // `Request::Telemetry` to page out.
        tell_obs::timeseries::ensure_wall_driver();
        let listener =
            TcpListener::bind(addr).map_err(|e| Error::Unavailable(format!("bind failed: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::Unavailable(format!("no local address: {e}")))?;
        let reactor = Reactor::start(listener, service, config)?;
        Ok(RpcServer { addr, reactor })
    }

    /// Serve only storage requests.
    pub fn serve_store(addr: impl ToSocketAddrs, store: Arc<StoreCluster>) -> Result<RpcServer> {
        RpcServer::serve(addr, Services { store: Some(store), commit: None })
    }

    /// Serve only commit-manager requests.
    pub fn serve_commit(
        addr: impl ToSocketAddrs,
        commit: Arc<dyn CommitService>,
    ) -> Result<RpcServer> {
        RpcServer::serve(addr, Services { store: None, commit: Some(commit) })
    }

    /// The address the server accepts connections on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request frames served so far, across all connections. A `Batch` of
    /// N operations counts as one frame, so comparing this against logical
    /// op counts measures what §5.1's batching saves.
    pub fn frames_served(&self) -> u64 {
        self.reactor.frames_served()
    }

    /// Stop the reactor, sever every open connection and join the event
    /// loop plus workers. Idempotent; called automatically on drop. The
    /// wakeup is the reactor's eventfd — no throwaway self-connection.
    pub fn shutdown(&mut self) {
        self.reactor.shutdown();
    }
}

// ---------------------------------------------------------------------------
// BlockingServer: the thread-per-connection baseline.

struct BlockingShared {
    service: Arc<dyn RpcService>,
    shutting_down: AtomicBool,
    frames: AtomicU64,
    /// Live connections keyed by peer address, so `shutdown` can sever
    /// them. Each handler removes its own entry when it exits; leaving
    /// dead clones here would hold the socket open (no FIN to the peer)
    /// and leak a descriptor per connection.
    conns: Mutex<HashMap<SocketAddr, TcpStream>>,
}

/// Thread-per-connection blocking server over the same [`Router`] and wire
/// protocol as [`RpcServer`]. This is the pre-reactor design, kept as the
/// measured baseline for `BENCH_rpc_reactor.json`: every connection costs
/// a thread and two blocking syscall round trips per request.
pub struct BlockingServer {
    addr: SocketAddr,
    shared: Arc<BlockingShared>,
    accept: Option<thread::JoinHandle<()>>,
}

impl BlockingServer {
    /// Bind `addr` and serve `services`, one thread per connection.
    pub fn serve(addr: impl ToSocketAddrs, services: Services) -> Result<BlockingServer> {
        tell_obs::timeseries::ensure_wall_driver();
        let listener =
            TcpListener::bind(addr).map_err(|e| Error::Unavailable(format!("bind failed: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::Unavailable(format!("no local address: {e}")))?;
        let shared = Arc::new(BlockingShared {
            service: Arc::new(Router::new(services)),
            shutting_down: AtomicBool::new(false),
            frames: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::Builder::new()
            .name(format!("tell-rpc-blk-accept-{}", addr.port()))
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(|e| Error::Unavailable(format!("spawn failed: {e}")))?;
        Ok(BlockingServer { addr, shared, accept: Some(accept) })
    }

    /// The address the server accepts connections on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request frames served so far (same semantics as
    /// [`RpcServer::frames_served`]).
    pub fn frames_served(&self) -> u64 {
        self.shared.frames.load(Ordering::SeqCst)
    }

    /// Stop accepting, sever every open connection and join the accept
    /// loop. The blocking accept call has no eventfd to poke, so this
    /// keeps the legacy unblock: a throwaway self-connection.
    pub fn shutdown(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
        for (_, conn) in self.shared.conns.lock().drain() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for BlockingServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<BlockingShared>) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        let Ok(peer) = stream.peer_addr() else { continue };
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().insert(peer, clone);
        }
        let conn_shared = Arc::clone(&shared);
        let _ = thread::Builder::new()
            .name("tell-rpc-blk-conn".into())
            .spawn(move || handle_connection(stream, peer, conn_shared));
    }
}

fn handle_connection(stream: TcpStream, peer: SocketAddr, shared: Arc<BlockingShared>) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    // The writer is shared with the per-frame reply closure (which must be
    // `Send + 'static` per the `ReplySink` contract); dispatch here is
    // synchronous, so the closure always fires before the next read.
    let writer = Arc::new(Mutex::new(stream));
    let broken = Arc::new(AtomicBool::new(false));
    while let Ok(Some((corr_id, body))) = read_frame(&mut reader) {
        shared.frames.fetch_add(1, Ordering::SeqCst);
        tell_obs::incr(Counter::RpcServerFramesIn);
        tell_obs::add(Counter::RpcServerBytesIn, body.len() as u64);
        let injected = crate::fault::server_action();
        if injected == crate::fault::ServerFault::Drop {
            break;
        }
        if let crate::fault::ServerFault::DelayUs(us) = injected {
            thread::sleep(std::time::Duration::from_micros(us));
        }
        let duplicate = injected == crate::fault::ServerFault::Duplicate;
        let reply_writer = Arc::clone(&writer);
        let reply_broken = Arc::clone(&broken);
        dispatch_frame(
            shared.service.as_ref(),
            duplicate,
            Some(peer),
            &body,
            move |ctx, response| {
                let out = response.encode();
                tell_obs::incr(Counter::RpcServerFramesOut);
                tell_obs::add(Counter::RpcServerBytesOut, out.len() as u64);
                if write_frame_ctx(&mut *reply_writer.lock(), corr_id, ctx, &out).is_err() {
                    reply_broken.store(true, Ordering::SeqCst);
                }
            },
        );
        if broken.load(Ordering::SeqCst) {
            break;
        }
    }
    // Drop our registration and actively close: the clone held for
    // `shutdown` must not outlive the handler, or the peer never sees EOF.
    shared.conns.lock().remove(&peer);
    let _ = writer.lock().shutdown(std::net::Shutdown::Both);
}

//! Client side of the transport: pipelined connections, the remote storage
//! client/endpoint, and the remote commit-manager client.
//!
//! A [`Connection`] multiplexes many in-flight requests over one TCP
//! stream: callers stamp a fresh correlation id, park on a channel, and a
//! reader thread routes each response frame back to its caller. When the
//! stream dies, every parked caller — and every later one — gets a typed
//! [`Error::Unavailable`] instead of a hang.
//!
//! [`RemoteStoreClient`] implements `tell_store::StoreApi` over a small
//! connection pool and [`RemoteEndpoint`] implements `StoreEndpoint`, so a
//! `tell_core::Database` opened over them runs the exact transaction code
//! paths it runs in-process. [`RemoteCmClient`] likewise implements the
//! `CommitService`/`CommitParticipant` pair over one connection per commit
//! server, with the same fail-over-to-the-next-manager behavior as the
//! local `CmCluster` (§4.4.3).

use std::collections::HashMap;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;

use bytes::Bytes;
use parking_lot::Mutex;
use tell_commitmgr::{CommitParticipant, CommitService, TxnStart};
use tell_common::{Error, Result, TxnId};
use tell_netsim::NetMeter;
use tell_store::{Expect, Key, StoreApi, StoreEndpoint, Token, WriteOp};

use crate::wire::{read_frame, write_frame, Request, Response, FRAME_HEADER};

fn unavailable(what: impl std::fmt::Display) -> Error {
    Error::Unavailable(what.to_string())
}

// ---------------------------------------------------------------------------
// Connection: one TCP stream, many in-flight requests.

struct ConnShared {
    addr: String,
    writer: Mutex<TcpStream>,
    pending: Mutex<HashMap<u64, mpsc::Sender<(Response, usize)>>>,
    next_corr: AtomicU64,
    dead: AtomicBool,
}

impl ConnShared {
    fn mark_dead(&self) {
        self.dead.store(true, Ordering::SeqCst);
        let _ = self.writer.lock().shutdown(std::net::Shutdown::Both);
        // Dropping the senders wakes every parked caller with a RecvError,
        // which they surface as Unavailable.
        self.pending.lock().clear();
    }
}

/// A pipelined connection to one tell-rpc server.
pub struct Connection {
    shared: Arc<ConnShared>,
}

impl Connection {
    /// Connect and start the demultiplexing reader thread.
    pub fn connect(addr: &str) -> Result<Connection> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| unavailable(format!("connect to {addr} failed: {e}")))?;
        let _ = stream.set_nodelay(true);
        let read_half = stream
            .try_clone()
            .map_err(|e| unavailable(format!("clone stream to {addr} failed: {e}")))?;
        let shared = Arc::new(ConnShared {
            addr: addr.to_string(),
            writer: Mutex::new(stream),
            pending: Mutex::new(HashMap::new()),
            next_corr: AtomicU64::new(1),
            dead: AtomicBool::new(false),
        });
        let reader_shared = Arc::clone(&shared);
        thread::Builder::new()
            .name(format!("tell-rpc-reader-{addr}"))
            .spawn(move || reader_loop(read_half, reader_shared))
            .map_err(|e| unavailable(format!("spawn reader failed: {e}")))?;
        Ok(Connection { shared })
    }

    /// True once the stream has failed; the connection never recovers
    /// (callers reconnect through their pool).
    pub fn is_dead(&self) -> bool {
        self.shared.dead.load(Ordering::SeqCst)
    }

    /// The address this connection was opened against.
    pub fn peer(&self) -> &str {
        &self.shared.addr
    }

    /// Send one request and wait for its response. Returns the response
    /// plus the frame sizes sent and received, for traffic accounting.
    pub fn call(&self, request: &Request) -> Result<(Response, usize, usize)> {
        let shared = &self.shared;
        if shared.dead.load(Ordering::SeqCst) {
            return Err(unavailable(format!("connection to {} is closed", shared.addr)));
        }
        let body = request.encode();
        let corr_id = shared.next_corr.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        shared.pending.lock().insert(corr_id, tx);
        // Re-check after registering: if the reader died in between, it may
        // already have drained `pending` without seeing our entry.
        if shared.dead.load(Ordering::SeqCst) {
            shared.pending.lock().remove(&corr_id);
            return Err(unavailable(format!("connection to {} is closed", shared.addr)));
        }
        {
            let mut writer = shared.writer.lock();
            if let Err(e) = write_frame(&mut *writer, corr_id, &body) {
                drop(writer);
                shared.mark_dead();
                return Err(unavailable(format!("send to {} failed: {e}", shared.addr)));
            }
        }
        match rx.recv() {
            Ok((response, received)) => Ok((response, FRAME_HEADER + body.len(), received)),
            Err(_) => Err(unavailable(format!("connection to {} dropped mid-call", shared.addr))),
        }
    }

    /// Shut the connection down, failing in-flight and future calls.
    pub fn close(&self) {
        self.shared.mark_dead();
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        self.close();
    }
}

fn reader_loop(stream: TcpStream, shared: Arc<ConnShared>) {
    let mut reader = BufReader::new(stream);
    while let Ok(Some((corr_id, body))) = read_frame(&mut reader) {
        let received = FRAME_HEADER + body.len();
        let response = match Response::decode(&body) {
            Ok(r) => r,
            Err(e) => {
                // A frame that parses as a frame but not as a message means
                // the stream is desynchronized: surface the error to the
                // waiting caller, then kill the connection.
                if let Some(tx) = shared.pending.lock().remove(&corr_id) {
                    let _ = tx.send((Response::Error(e.into()), received));
                }
                break;
            }
        };
        if let Some(tx) = shared.pending.lock().remove(&corr_id) {
            let _ = tx.send((response, received));
        }
    }
    shared.mark_dead();
}

// ---------------------------------------------------------------------------
// Connection pool.

/// A fixed-size pool of lazily-opened connections to one server, handed
/// out round-robin. A dead connection is transparently replaced on the
/// next checkout, so a storage-node restart heals without client restarts.
pub struct ConnPool {
    addr: String,
    slots: Mutex<Vec<Option<Arc<Connection>>>>,
    next: AtomicUsize,
}

impl ConnPool {
    /// Pool of `size` connections to `addr` (opened on first use).
    pub fn new(addr: impl Into<String>, size: usize) -> Arc<ConnPool> {
        Arc::new(ConnPool {
            addr: addr.into(),
            slots: Mutex::new(vec![None; size.max(1)]),
            next: AtomicUsize::new(0),
        })
    }

    /// The server this pool connects to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Check out a live connection, opening or replacing one if needed.
    pub fn get(&self) -> Result<Arc<Connection>> {
        let mut slots = self.slots.lock();
        let idx = self.next.fetch_add(1, Ordering::Relaxed) % slots.len();
        if let Some(conn) = &slots[idx] {
            if !conn.is_dead() {
                return Ok(Arc::clone(conn));
            }
        }
        let fresh = Arc::new(Connection::connect(&self.addr)?);
        slots[idx] = Some(Arc::clone(&fresh));
        Ok(fresh)
    }
}

// ---------------------------------------------------------------------------
// Remote storage client + endpoint.

/// `StoreApi` over TCP. Mirrors the in-process `StoreClient` operation for
/// operation; the meter records real traffic (`charge_real`) instead of
/// simulated time — the network is no longer a model, it is there.
#[derive(Clone)]
pub struct RemoteStoreClient {
    pool: Arc<ConnPool>,
    meter: NetMeter,
}

impl RemoteStoreClient {
    /// Client over `pool`, charging traffic to `meter`.
    pub fn new(pool: Arc<ConnPool>, meter: NetMeter) -> RemoteStoreClient {
        RemoteStoreClient { pool, meter }
    }

    fn call(&self, request: &Request) -> Result<Response> {
        let conn = self.pool.get()?;
        let (response, sent, received) = conn.call(request)?;
        self.meter.charge_real(sent, received);
        match response {
            Response::Error(e) => Err(e.into()),
            other => Ok(other),
        }
    }

    fn unexpected(context: &str, response: Response) -> Error {
        Error::corrupt(format!("unexpected response to {context}: {response:?}"))
    }
}

impl StoreApi for RemoteStoreClient {
    fn get(&self, key: &Key) -> Result<Option<(Token, Bytes)>> {
        match self.call(&Request::Get { key: key.clone() })? {
            Response::Cell(cell) => Ok(cell),
            other => Err(Self::unexpected("get", other)),
        }
    }

    fn multi_get(&self, keys: &[Key]) -> Result<Vec<Option<(Token, Bytes)>>> {
        match self.call(&Request::MultiGet { keys: keys.to_vec() })? {
            Response::Cells(cells) => Ok(cells),
            other => Err(Self::unexpected("multi_get", other)),
        }
    }

    fn put(&self, key: &Key, value: Bytes) -> Result<Token> {
        self.write_expecting_token(WriteOp::put(key.clone(), Expect::Any, value), "put")
    }

    fn insert(&self, key: &Key, value: Bytes) -> Result<Token> {
        self.write_expecting_token(WriteOp::put(key.clone(), Expect::Absent, value), "insert")
    }

    fn store_conditional(&self, key: &Key, token: Token, value: Bytes) -> Result<Token> {
        self.write_expecting_token(
            WriteOp::put(key.clone(), Expect::Token(token), value),
            "store_conditional",
        )
    }

    fn delete_conditional(&self, key: &Key, token: Token) -> Result<()> {
        match self
            .call(&Request::Write { op: WriteOp::delete(key.clone(), Expect::Token(token)) })?
        {
            Response::Written(_) => Ok(()),
            other => Err(Self::unexpected("delete_conditional", other)),
        }
    }

    fn delete(&self, key: &Key) -> Result<()> {
        match self.call(&Request::Write { op: WriteOp::delete(key.clone(), Expect::Any) })? {
            Response::Written(_) => Ok(()),
            other => Err(Self::unexpected("delete", other)),
        }
    }

    fn multi_write(&self, ops: Vec<WriteOp>) -> Result<Vec<Result<Option<Token>>>> {
        match self.call(&Request::MultiWrite { ops })? {
            Response::WriteResults(results) => {
                Ok(results.into_iter().map(|r| r.map_err(Into::into)).collect())
            }
            other => Err(Self::unexpected("multi_write", other)),
        }
    }

    fn increment(&self, key: &Key, delta: u64) -> Result<u64> {
        match self.call(&Request::Increment { key: key.clone(), delta })? {
            Response::Counter(v) => Ok(v),
            other => Err(Self::unexpected("increment", other)),
        }
    }

    fn scan_range(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
    ) -> Result<Vec<(Key, Token, Bytes)>> {
        self.scan(start, end, limit, false)
    }

    fn scan_range_rev(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
    ) -> Result<Vec<(Key, Token, Bytes)>> {
        self.scan(start, end, limit, true)
    }

    fn scan_prefix(&self, prefix: &[u8], limit: usize) -> Result<Vec<(Key, Token, Bytes)>> {
        let request =
            Request::ScanPrefix { prefix: Bytes::copy_from_slice(prefix), limit: limit as u64 };
        match self.call(&request)? {
            Response::Rows(rows) => Ok(rows),
            other => Err(Self::unexpected("scan_prefix", other)),
        }
    }

    /// The filter is a closure and cannot cross the wire, so the remote
    /// client fetches the whole prefix and filters here. Results match the
    /// in-process pushdown exactly; only the bandwidth differs (the paper's
    /// selection pushdown, §5.2, is precisely the optimization of not
    /// paying this transfer).
    fn scan_prefix_pushdown(
        &self,
        prefix: &[u8],
        limit: usize,
        filter: &dyn Fn(&Key, &Bytes) -> bool,
    ) -> Result<Vec<(Key, Token, Bytes)>> {
        let mut rows = self.scan_prefix(prefix, usize::MAX)?;
        rows.retain(|(key, _, value)| filter(key, value));
        rows.truncate(limit);
        Ok(rows)
    }

    fn meter(&self) -> &NetMeter {
        &self.meter
    }
}

impl RemoteStoreClient {
    fn write_expecting_token(&self, op: WriteOp, context: &str) -> Result<Token> {
        match self.call(&Request::Write { op })? {
            Response::Written(Some(token)) => Ok(token),
            Response::Written(None) => Err(Error::corrupt(format!("{context} returned no token"))),
            other => Err(Self::unexpected(context, other)),
        }
    }

    fn scan(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
        reverse: bool,
    ) -> Result<Vec<(Key, Token, Bytes)>> {
        let request = Request::Scan {
            start: Bytes::copy_from_slice(start),
            end: end.map(Bytes::copy_from_slice),
            limit: limit as u64,
            reverse,
        };
        match self.call(&request)? {
            Response::Rows(rows) => Ok(rows),
            other => Err(Self::unexpected("scan", other)),
        }
    }
}

/// `StoreEndpoint` over TCP: the `Send + Sync` handle a shared `Database`
/// stores, from which each worker thread mints its own client.
#[derive(Clone)]
pub struct RemoteEndpoint {
    pool: Arc<ConnPool>,
}

impl RemoteEndpoint {
    /// Endpoint talking to the storage server at `addr` through a pool of
    /// `pool_size` connections (opened lazily, so this cannot fail —
    /// unreachable servers surface as `Unavailable` on the first call).
    pub fn connect(addr: impl Into<String>, pool_size: usize) -> RemoteEndpoint {
        RemoteEndpoint { pool: ConnPool::new(addr, pool_size) }
    }

    /// The storage server's address.
    pub fn addr(&self) -> &str {
        self.pool.addr()
    }
}

impl StoreEndpoint for RemoteEndpoint {
    type Client = RemoteStoreClient;

    fn client(&self, meter: NetMeter) -> RemoteStoreClient {
        RemoteStoreClient::new(Arc::clone(&self.pool), meter)
    }
}

// ---------------------------------------------------------------------------
// Remote commit-manager client.

struct CmTarget {
    addr: String,
    conn: Mutex<Option<Arc<Connection>>>,
}

impl CmTarget {
    fn get(&self) -> Result<Arc<Connection>> {
        let mut slot = self.conn.lock();
        if let Some(conn) = slot.as_ref() {
            if !conn.is_dead() {
                return Ok(Arc::clone(conn));
            }
        }
        let fresh = Arc::new(Connection::connect(&self.addr)?);
        *slot = Some(Arc::clone(&fresh));
        Ok(fresh)
    }
}

/// `CommitService` over TCP: one connection per commit server, pinning by
/// hint with fail-over to the next server, exactly like the local cluster.
pub struct RemoteCmClient {
    targets: Vec<CmTarget>,
}

impl RemoteCmClient {
    /// Client over the commit servers at `addrs` (connected lazily).
    pub fn connect(addrs: impl IntoIterator<Item = impl Into<String>>) -> RemoteCmClient {
        let targets: Vec<_> = addrs
            .into_iter()
            .map(|a| CmTarget { addr: a.into(), conn: Mutex::new(None) })
            .collect();
        assert!(!targets.is_empty(), "need at least one commit-server address");
        RemoteCmClient { targets }
    }

    /// Call `request` on target `idx`, charging `meter` for the traffic.
    fn call_on(&self, idx: usize, request: &Request, meter: &NetMeter) -> Result<Response> {
        let conn = self.targets[idx].get()?;
        call_and_charge(&conn, request, meter)
    }
}

fn call_and_charge(conn: &Connection, request: &Request, meter: &NetMeter) -> Result<Response> {
    let (response, sent, received) = conn.call(request)?;
    meter.charge_real(sent, received);
    match response {
        Response::Error(e) => Err(e.into()),
        other => Ok(other),
    }
}

impl CommitService for RemoteCmClient {
    fn start_pinned(
        &self,
        hint: usize,
        meter: &NetMeter,
    ) -> Result<(TxnStart, Arc<dyn CommitParticipant>)> {
        let n = self.targets.len();
        let mut last_err = unavailable("no commit server reachable");
        for i in 0..n {
            let idx = (hint + i) % n;
            let conn = match self.targets[idx].get() {
                Ok(c) => c,
                Err(e) => {
                    last_err = e;
                    continue;
                }
            };
            match call_and_charge(&conn, &Request::CmStart { hint: hint as u64 }, meter) {
                Ok(Response::TxnStarted { tid, lav, snapshot }) => {
                    let participant = Arc::new(RemoteParticipant { conn });
                    return Ok((TxnStart { tid, snapshot, lav }, participant));
                }
                Ok(other) => return Err(RemoteStoreClient::unexpected("cm_start", other)),
                Err(Error::Unavailable(w)) => {
                    last_err = Error::Unavailable(w);
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    fn current_lav(&self) -> Result<u64> {
        let meter = NetMeter::free();
        let mut lav: Option<u64> = None;
        for idx in 0..self.targets.len() {
            match self.call_on(idx, &Request::CmLav, &meter) {
                Ok(Response::Lav(v)) => lav = Some(lav.map_or(v, |cur| cur.min(v))),
                Ok(other) => return Err(RemoteStoreClient::unexpected("cm_lav", other)),
                Err(Error::Unavailable(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        lav.ok_or_else(|| unavailable("no commit server reachable for lav"))
    }

    fn force_resolve(&self, tid: TxnId, committed: bool) -> Result<()> {
        let meter = NetMeter::free();
        let request = Request::CmResolve { tid, committed };
        let mut reached = false;
        for idx in 0..self.targets.len() {
            match self.call_on(idx, &request, &meter) {
                Ok(Response::Unit) => reached = true,
                Ok(other) => return Err(RemoteStoreClient::unexpected("cm_resolve", other)),
                Err(Error::Unavailable(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        if reached {
            Ok(())
        } else {
            Err(unavailable("no commit server reachable for resolve"))
        }
    }

    fn sync_all(&self, meter: &NetMeter) -> Result<()> {
        let mut reached = false;
        for idx in 0..self.targets.len() {
            match self.call_on(idx, &Request::CmSync, meter) {
                Ok(Response::Unit) => reached = true,
                Ok(other) => return Err(RemoteStoreClient::unexpected("cm_sync", other)),
                Err(Error::Unavailable(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        if reached {
            Ok(())
        } else {
            Err(unavailable("no commit server reachable for sync"))
        }
    }
}

/// Finish-side handle to the server (and through it, the manager) that
/// issued a tid. Reporting goes back over the same connection the start
/// came from, so the server's tid routing table finds the right manager.
struct RemoteParticipant {
    conn: Arc<Connection>,
}

impl RemoteParticipant {
    fn complete(&self, tid: TxnId, committed: bool, meter: &NetMeter) -> Result<()> {
        match call_and_charge(&self.conn, &Request::CmComplete { tid, committed }, meter)? {
            Response::Unit => Ok(()),
            other => Err(RemoteStoreClient::unexpected("cm_complete", other)),
        }
    }
}

impl CommitParticipant for RemoteParticipant {
    fn set_committed(&self, tid: TxnId, meter: &NetMeter) -> Result<()> {
        self.complete(tid, true, meter)
    }

    fn set_aborted(&self, tid: TxnId, meter: &NetMeter) -> Result<()> {
        self.complete(tid, false, meter)
    }
}

//! Client side of the transport: pipelined connections, the remote storage
//! client/endpoint, and the remote commit-manager client.
//!
//! A [`Connection`] multiplexes many in-flight requests over one TCP
//! stream: callers stamp a fresh correlation id, park on a channel, and a
//! reader thread routes each response frame back to its caller. When the
//! stream dies, every parked caller — and every later one — gets a typed
//! [`Error::Unavailable`] instead of a hang.
//!
//! [`RpcChannel`] is the one transport primitive above a connection: a
//! round-robin pool with transparent replacement of dead connections,
//! traffic charging and error lifting. Both remote clients are thin
//! protocol adapters over it.
//!
//! [`RemoteStoreClient`] implements `tell_store::StoreApi` over a channel
//! and [`RemoteEndpoint`] implements `StoreEndpoint`, so a
//! `tell_core::Database` opened over them runs the exact transaction code
//! paths it runs in-process. Asynchronously submitted operations gather in
//! a per-client *submission window* and cross the wire as **one**
//! `Request::Batch` frame when the first handle is awaited — N logical
//! operations, one frame each way (§5.1's aggressive batching). The
//! blocking `StoreApi` methods are submit-then-wait wrappers, so a
//! blocking call issued while async handles are outstanding joins their
//! batch instead of racing it. [`RemoteCmClient`] likewise implements the
//! `CommitService`/`CommitParticipant` pair over one connection per commit
//! server, with the same fail-over-to-the-next-manager behavior as the
//! local `CmCluster` (§4.4.3).

use std::cell::RefCell;
use std::collections::HashMap;
use std::io::BufReader;
use std::net::TcpStream;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;

use bytes::Bytes;
use parking_lot::Mutex;
use tell_commitmgr::{CmEndpoint, CommitParticipant, CommitService, TxnStart};
use tell_common::{Error, IsolationLevel, Result, TxnId};
use tell_netsim::NetMeter;
use tell_store::{
    BatchDriver, Expect, Key, OpHandle, OpResult, Predicate, StoreApi, StoreEndpoint, StoreOp,
    Token, WriteOp,
};

use tell_obs::{Counter, Phase, SpanKind, SpanStatus, SpanTimer};

use crate::wire::{
    read_frame, split_trace, write_frame_ctx, Request, Response, TraceContext, FRAME_HEADER,
};

fn unavailable(what: impl std::fmt::Display) -> Error {
    Error::Unavailable(what.to_string())
}

// ---------------------------------------------------------------------------
// Connection: one TCP stream, many in-flight requests.

/// What the reader thread hands back per call: the decoded response, the
/// received frame size, and the trace id echoed by the server.
type Reply = (Response, usize, Option<u64>);

struct ConnShared {
    addr: String,
    writer: Mutex<TcpStream>,
    pending: Mutex<HashMap<u64, mpsc::Sender<Reply>>>,
    next_corr: AtomicU64,
    dead: AtomicBool,
}

impl ConnShared {
    fn mark_dead(&self) {
        self.dead.store(true, Ordering::SeqCst);
        let _ = self.writer.lock().shutdown(std::net::Shutdown::Both);
        // Dropping the senders wakes every parked caller with a RecvError,
        // which they surface as Unavailable.
        self.pending.lock().clear();
    }
}

/// A pipelined connection to one tell-rpc server.
pub struct Connection {
    shared: Arc<ConnShared>,
}

impl Connection {
    /// Connect and start the demultiplexing reader thread.
    pub fn connect(addr: &str) -> Result<Connection> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| unavailable(format!("connect to {addr} failed: {e}")))?;
        let _ = stream.set_nodelay(true);
        let read_half = stream
            .try_clone()
            .map_err(|e| unavailable(format!("clone stream to {addr} failed: {e}")))?;
        let shared = Arc::new(ConnShared {
            addr: addr.to_string(),
            writer: Mutex::new(stream),
            pending: Mutex::new(HashMap::new()),
            next_corr: AtomicU64::new(1),
            dead: AtomicBool::new(false),
        });
        let reader_shared = Arc::clone(&shared);
        thread::Builder::new()
            .name(format!("tell-rpc-reader-{addr}"))
            .spawn(move || reader_loop(read_half, reader_shared))
            .map_err(|e| unavailable(format!("spawn reader failed: {e}")))?;
        Ok(Connection { shared })
    }

    /// True once the stream has failed; the connection never recovers
    /// (callers reconnect through their pool).
    pub fn is_dead(&self) -> bool {
        self.shared.dead.load(Ordering::SeqCst)
    }

    /// The address this connection was opened against.
    pub fn peer(&self) -> &str {
        &self.shared.addr
    }

    /// Send one request and wait for its response. Returns the response
    /// plus the frame sizes sent and received, for traffic accounting.
    /// The thread's current trace id (if any) is stamped into the frame.
    pub fn call(&self, request: &Request) -> Result<(Response, usize, usize)> {
        let (response, sent, received, _) = self.call_traced(request, tell_obs::current_trace())?;
        Ok((response, sent, received))
    }

    /// [`Connection::call`] with an explicit trace id, also returning the
    /// trace id the server echoed on the response frame.
    pub fn call_traced(
        &self,
        request: &Request,
        trace: Option<u64>,
    ) -> Result<(Response, usize, usize, Option<u64>)> {
        self.call_encoded(request.encode(), trace)
    }

    /// [`Connection::call`] with the isolation-level suffix appended to
    /// the message bytes, for requests beginning a transaction at a
    /// non-default level.
    pub fn call_with_isolation(
        &self,
        request: &Request,
        level: IsolationLevel,
    ) -> Result<(Response, usize, usize)> {
        let mut body = request.encode();
        crate::wire::append_isolation(&mut body, level);
        let (response, sent, received, _) = self.call_encoded(body, tell_obs::current_trace())?;
        Ok((response, sent, received))
    }

    fn call_encoded(
        &self,
        body: Vec<u8>,
        trace: Option<u64>,
    ) -> Result<(Response, usize, usize, Option<u64>)> {
        let shared = &self.shared;
        if shared.dead.load(Ordering::SeqCst) {
            return Err(unavailable(format!("connection to {} is closed", shared.addr)));
        }
        // One span per round trip. Its id rides the frame so the server's
        // dispatch span parents onto it; the span itself parents onto
        // whatever is current on this thread (a txn phase, a batch flush).
        // Client calls have no virtual clock, so virtual timestamps are 0.
        let span = trace.and_then(|t| SpanTimer::start_in_trace(t, SpanKind::RpcClientCall, 0.0));
        let _frame = tell_obs::FrameGuard::enter(tell_obs::FrameKind::RpcClientCall);
        let ctx = trace
            .map(|t| TraceContext { trace: t, parent_span: span.as_ref().map_or(0, |s| s.id()) });
        let prefix = match ctx {
            None => 0,
            Some(c) if c.parent_span == 0 => 9,
            Some(_) => 17,
        };
        let sent = FRAME_HEADER + body.len() + prefix;
        let corr_id = shared.next_corr.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        shared.pending.lock().insert(corr_id, tx);
        // Re-check after registering: if the reader died in between, it may
        // already have drained `pending` without seeing our entry.
        if shared.dead.load(Ordering::SeqCst) {
            shared.pending.lock().remove(&corr_id);
            return Err(unavailable(format!("connection to {} is closed", shared.addr)));
        }
        {
            let mut writer = shared.writer.lock();
            if let Err(e) = write_frame_ctx(&mut *writer, corr_id, ctx, &body) {
                drop(writer);
                shared.mark_dead();
                return Err(unavailable(format!("send to {} failed: {e}", shared.addr)));
            }
        }
        tell_obs::incr(Counter::RpcClientFramesOut);
        tell_obs::add(Counter::RpcClientBytesOut, sent as u64);
        match rx.recv() {
            Ok((response, received, echoed)) => {
                tell_obs::incr(Counter::RpcClientFramesIn);
                tell_obs::add(Counter::RpcClientBytesIn, received as u64);
                if let Some(span) = span {
                    let status = match &response {
                        Response::Error(crate::wire::WireError::Conflict) => SpanStatus::Conflict,
                        Response::Error(_) => SpanStatus::Error,
                        _ => SpanStatus::Ok,
                    };
                    span.finish(0.0, 1, status);
                }
                Ok((response, sent, received, echoed))
            }
            Err(_) => {
                if let Some(span) = span {
                    span.finish(0.0, 0, SpanStatus::Error);
                }
                Err(unavailable(format!("connection to {} dropped mid-call", shared.addr)))
            }
        }
    }

    /// Send one request without waiting for its reply. The returned
    /// [`PendingReply`] parks on the response later, so a caller can keep
    /// several requests in flight over one connection and overlap server
    /// work with its own — the client half of pipelining. Untraced: a
    /// pipelined caller is a throughput path, not a waterfall.
    pub fn call_async(&self, request: &Request) -> Result<PendingReply> {
        let shared = &self.shared;
        if shared.dead.load(Ordering::SeqCst) {
            return Err(unavailable(format!("connection to {} is closed", shared.addr)));
        }
        let body = request.encode();
        let sent = FRAME_HEADER + body.len();
        let corr_id = shared.next_corr.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        shared.pending.lock().insert(corr_id, tx);
        // Same re-check as `call_traced`: the reader may have died and
        // drained `pending` between our liveness check and the insert.
        if shared.dead.load(Ordering::SeqCst) {
            shared.pending.lock().remove(&corr_id);
            return Err(unavailable(format!("connection to {} is closed", shared.addr)));
        }
        {
            let mut writer = shared.writer.lock();
            if let Err(e) = write_frame_ctx(&mut *writer, corr_id, None, &body) {
                drop(writer);
                shared.mark_dead();
                return Err(unavailable(format!("send to {} failed: {e}", shared.addr)));
            }
        }
        tell_obs::incr(Counter::RpcClientFramesOut);
        tell_obs::add(Counter::RpcClientBytesOut, sent as u64);
        Ok(PendingReply { shared: Arc::clone(shared), rx, sent })
    }

    /// Shut the connection down, failing in-flight and future calls.
    pub fn close(&self) {
        self.shared.mark_dead();
    }
}

/// The receiving half of a [`Connection::call_async`]: a reply that is on
/// its way but has not been waited on yet. Dropping one abandons the reply
/// (the reader discards it on arrival); the connection stays healthy.
pub struct PendingReply {
    shared: Arc<ConnShared>,
    rx: mpsc::Receiver<Reply>,
    sent: usize,
}

impl PendingReply {
    /// Block for the reply. Returns the response plus the frame sizes sent
    /// and received, exactly like [`Connection::call`].
    pub fn wait(self) -> Result<(Response, usize, usize)> {
        match self.rx.recv() {
            Ok((response, received, _)) => {
                tell_obs::incr(Counter::RpcClientFramesIn);
                tell_obs::add(Counter::RpcClientBytesIn, received as u64);
                Ok((response, self.sent, received))
            }
            Err(_) => {
                Err(unavailable(format!("connection to {} dropped mid-call", self.shared.addr)))
            }
        }
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        self.close();
    }
}

fn reader_loop(stream: TcpStream, shared: Arc<ConnShared>) {
    let mut reader = BufReader::new(stream);
    while let Ok(Some((corr_id, body))) = read_frame(&mut reader) {
        let received = FRAME_HEADER + body.len();
        let response = match split_trace(&body)
            .and_then(|(trace, msg)| Response::decode(msg).map(|response| (trace, response)))
        {
            Ok((trace, r)) => (r, trace),
            Err(e) => {
                // A frame that parses as a frame but not as a message means
                // the stream is desynchronized: surface the error to the
                // waiting caller, then kill the connection.
                if let Some(tx) = shared.pending.lock().remove(&corr_id) {
                    let _ = tx.send((Response::Error(e.into()), received, None));
                }
                break;
            }
        };
        if let Some(tx) = shared.pending.lock().remove(&corr_id) {
            let _ = tx.send((response.0, received, response.1));
        }
    }
    shared.mark_dead();
}

// ---------------------------------------------------------------------------
// RpcChannel: the one client-side transport primitive.

/// The generic client-side channel to one server: a fixed-size pool of
/// lazily-opened pipelined connections handed out round-robin, with a dead
/// connection transparently replaced on the next checkout — so a server
/// restart heals without client restarts.
///
/// This is the single piece of connect/pool/retry/frame plumbing every
/// remote client shares. [`RemoteStoreClient`] runs its submission window
/// over one, [`RemoteCmClient`] holds one per commit server; neither
/// carries its own connection management anymore.
pub struct RpcChannel {
    addr: String,
    slots: Mutex<Vec<Option<Arc<Connection>>>>,
    next: AtomicUsize,
}

impl RpcChannel {
    /// Channel of `size` connections to `addr` (opened on first use).
    pub fn new(addr: impl Into<String>, size: usize) -> Arc<RpcChannel> {
        Arc::new(RpcChannel {
            addr: addr.into(),
            slots: Mutex::new(vec![None; size.max(1)]),
            next: AtomicUsize::new(0),
        })
    }

    /// The server this channel connects to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Check out a live connection, opening or replacing one if needed.
    pub fn connection(&self) -> Result<Arc<Connection>> {
        let mut slots = self.slots.lock();
        let idx = self.next.fetch_add(1, Ordering::Relaxed) % slots.len();
        if let Some(conn) = &slots[idx] {
            if !conn.is_dead() {
                return Ok(Arc::clone(conn));
            }
        }
        let fresh = Arc::new(Connection::connect(&self.addr)?);
        slots[idx] = Some(Arc::clone(&fresh));
        Ok(fresh)
    }

    /// One round trip on a pooled connection. Returns the response plus
    /// the frame sizes sent and received, for traffic accounting.
    pub fn call(&self, request: &Request) -> Result<(Response, usize, usize)> {
        self.connection()?.call(request)
    }

    /// [`RpcChannel::call`] charging `meter` for the traffic and lifting a
    /// top-level `Response::Error` into a typed `Err` — the shape every
    /// non-windowed caller wants.
    pub fn request(&self, request: &Request, meter: &NetMeter) -> Result<Response> {
        let (response, sent, received) = self.call(request)?;
        meter.charge_real(sent, received);
        match response {
            Response::Error(e) => Err(e.into()),
            other => Ok(other),
        }
    }
}

// ---------------------------------------------------------------------------
// Submission window: the per-client request scheduler.

struct WindowState {
    next_ticket: u64,
    /// Operations submitted but not yet flushed, in submission order.
    queued: Vec<(u64, StoreOp)>,
    /// Completions parked for tickets whose handles have not been waited.
    done: HashMap<u64, Result<OpResult>>,
}

/// Coalesces every operation submitted between two waits into one
/// `Request::Batch` frame. Deliberately `!Send` (like the meter): one
/// window per worker thread, no locks on the submit path. The window
/// flushes when the *first* outstanding handle is awaited; completions for
/// the others are parked until their own `wait`.
struct SubmitWindow {
    channel: Arc<RpcChannel>,
    meter: NetMeter,
    state: RefCell<WindowState>,
}

impl SubmitWindow {
    fn new(channel: Arc<RpcChannel>, meter: NetMeter) -> SubmitWindow {
        SubmitWindow {
            channel,
            meter,
            state: RefCell::new(WindowState {
                next_ticket: 0,
                queued: Vec::new(),
                done: HashMap::new(),
            }),
        }
    }

    fn enqueue(&self, op: StoreOp) -> u64 {
        let mut state = self.state.borrow_mut();
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.queued.push((ticket, op));
        ticket
    }

    /// Send everything queued as one frame (a bare request when the window
    /// holds a single op — framing a batch of one would only add bytes) and
    /// park the per-op completions. Transport failure fails every ticket
    /// with the same typed error; nobody hangs.
    fn flush(&self) {
        // Take the queue out before any I/O: `conn.call` blocks, and a
        // `RefCell` borrow held across it would poison reentrant submits.
        let queued = std::mem::take(&mut self.state.borrow_mut().queued);
        if queued.is_empty() {
            return;
        }
        let (tickets, ops): (Vec<u64>, Vec<StoreOp>) = queued.into_iter().unzip();
        let mut requests: Vec<Request> = ops.iter().map(op_to_request).collect();
        let n = requests.len();
        tell_obs::observe(Phase::BatchWindow, n as f64);
        let single = n == 1;
        let request = if single {
            requests.pop().expect("one request")
        } else {
            Request::Batch { ops: requests }
        };
        // Injected batch-flush stall (simulation harness): widens the
        // window in which the server side can fail underneath queued ops.
        let stall = crate::fault::flush_stall_us();
        if stall > 0 {
            thread::sleep(std::time::Duration::from_micros(stall));
        }
        // The flush is a span of its own so the waterfall shows how many
        // ops one frame coalesced; the `RpcClientCall` underneath it is
        // the wire round trip.
        let span = SpanTimer::start(SpanKind::BatchFlush, self.meter.clock().now_us());
        let _frame = tell_obs::FrameGuard::enter(tell_obs::FrameKind::BatchFlush);
        let outcome = self.channel.call(&request);
        if let Some(span) = span {
            let status = if outcome.is_ok() { SpanStatus::Ok } else { SpanStatus::Error };
            span.finish(self.meter.clock().now_us(), n as u32, status);
        }
        let mut state = self.state.borrow_mut();
        match outcome {
            Err(e) => {
                for ticket in tickets {
                    state.done.insert(ticket, Err(e.clone()));
                }
            }
            Ok((response, sent, received)) => {
                self.meter.charge_real(sent, received);
                let per_op: Vec<Response> = if single {
                    vec![response]
                } else {
                    match response {
                        Response::Batch { results } if results.len() == n => results,
                        Response::Batch { results } => {
                            let e = Error::corrupt(format!(
                                "batch of {n} ops answered with {} results",
                                results.len()
                            ));
                            for ticket in tickets {
                                state.done.insert(ticket, Err(e.clone()));
                            }
                            return;
                        }
                        // A top-level error (e.g. "this node does not serve
                        // storage") applies to every op in the frame.
                        Response::Error(e) => {
                            let e: Error = e.into();
                            for ticket in tickets {
                                state.done.insert(ticket, Err(e.clone()));
                            }
                            return;
                        }
                        other => {
                            let e = unexpected("batch", other);
                            for ticket in tickets {
                                state.done.insert(ticket, Err(e.clone()));
                            }
                            return;
                        }
                    }
                };
                for ((ticket, op), response) in tickets.into_iter().zip(&ops).zip(per_op) {
                    state.done.insert(ticket, complete_op(op, response));
                }
            }
        }
    }
}

impl BatchDriver for SubmitWindow {
    fn resolve(&self, ticket: u64) -> Result<OpResult> {
        if !self.state.borrow().done.contains_key(&ticket) {
            self.flush();
        }
        self.state
            .borrow_mut()
            .done
            .remove(&ticket)
            .unwrap_or_else(|| Err(Error::corrupt("op handle resolved twice or never enqueued")))
    }
}

fn op_to_request(op: &StoreOp) -> Request {
    match op {
        StoreOp::Get { key } => Request::Get { key: key.clone() },
        StoreOp::MultiGet { keys } => Request::MultiGet { keys: keys.clone() },
        StoreOp::Write { op } => Request::Write { op: op.clone() },
        StoreOp::MultiWrite { ops } => Request::MultiWrite { ops: ops.clone() },
        StoreOp::Increment { key, delta } => Request::Increment { key: key.clone(), delta: *delta },
    }
}

/// Map one nested response back to its op's completion, losslessly: a
/// nested `Response::Error` becomes that op's typed `Err` without touching
/// its window-mates; a shape mismatch is a protocol corruption.
fn complete_op(op: &StoreOp, response: Response) -> Result<OpResult> {
    match (op, response) {
        (_, Response::Error(e)) => Err(e.into()),
        (StoreOp::Get { .. }, Response::Cell(cell)) => Ok(OpResult::Cell(cell)),
        (StoreOp::MultiGet { .. }, Response::Cells(cells)) => Ok(OpResult::Cells(cells)),
        (StoreOp::Write { .. }, Response::Written(token)) => Ok(OpResult::Written(token)),
        (StoreOp::MultiWrite { .. }, Response::WriteResults(results)) => {
            Ok(OpResult::WriteResults(results.into_iter().map(|r| r.map_err(Into::into)).collect()))
        }
        (StoreOp::Increment { .. }, Response::Counter(v)) => Ok(OpResult::Counter(v)),
        (_, other) => Err(unexpected("batched op", other)),
    }
}

fn unexpected(context: &str, response: Response) -> Error {
    Error::corrupt(format!("unexpected response to {context}: {response:?}"))
}

// ---------------------------------------------------------------------------
// Remote storage client + endpoint.

/// `StoreApi` over TCP. Mirrors the in-process `StoreClient` operation for
/// operation; the meter records real traffic (`charge_real`) instead of
/// simulated time — the network is no longer a model, it is there.
///
/// Point operations route through the client's submission window: `submit`
/// queues, the first `wait` flushes the whole window as one frame. The
/// blocking methods are submit-then-wait, so they cost one frame alone but
/// share a frame with any outstanding async handles. Scans call directly
/// (their payload dwarfs framing) after flushing the window, preserving
/// program order between a submitted write and a subsequent scan.
#[derive(Clone)]
pub struct RemoteStoreClient {
    window: Rc<SubmitWindow>,
    meter: NetMeter,
}

impl RemoteStoreClient {
    /// Client over `channel`, charging traffic to `meter`.
    pub fn new(channel: Arc<RpcChannel>, meter: NetMeter) -> RemoteStoreClient {
        let window = Rc::new(SubmitWindow::new(channel, meter.clone()));
        RemoteStoreClient { window, meter }
    }

    /// Direct (non-windowed) exchange, for scans and probes. Flushes the
    /// window first so previously submitted operations are applied before
    /// this request reaches the server.
    fn call(&self, request: &Request) -> Result<Response> {
        self.window.flush();
        self.window.channel.request(request, &self.meter)
    }

    fn unexpected(context: &str, response: Response) -> Error {
        unexpected(context, response)
    }
}

impl StoreApi for RemoteStoreClient {
    fn submit(&self, op: StoreOp) -> OpHandle {
        let ticket = self.window.enqueue(op);
        OpHandle::pending(Rc::clone(&self.window) as Rc<dyn BatchDriver>, ticket)
    }

    fn get(&self, key: &Key) -> Result<Option<(Token, Bytes)>> {
        self.get_async(key).wait()
    }

    fn multi_get(&self, keys: &[Key]) -> Result<Vec<Option<(Token, Bytes)>>> {
        self.multi_get_async(keys).wait()
    }

    fn put(&self, key: &Key, value: Bytes) -> Result<Token> {
        self.write_expecting_token(WriteOp::put(key.clone(), Expect::Any, value), "put")
    }

    fn insert(&self, key: &Key, value: Bytes) -> Result<Token> {
        self.write_expecting_token(WriteOp::put(key.clone(), Expect::Absent, value), "insert")
    }

    fn store_conditional(&self, key: &Key, token: Token, value: Bytes) -> Result<Token> {
        self.write_expecting_token(
            WriteOp::put(key.clone(), Expect::Token(token), value),
            "store_conditional",
        )
    }

    fn delete_conditional(&self, key: &Key, token: Token) -> Result<()> {
        self.write_async(WriteOp::delete(key.clone(), Expect::Token(token))).wait().map(|_| ())
    }

    fn delete(&self, key: &Key) -> Result<()> {
        self.write_async(WriteOp::delete(key.clone(), Expect::Any)).wait().map(|_| ())
    }

    fn multi_write(&self, ops: Vec<WriteOp>) -> Result<Vec<Result<Option<Token>>>> {
        self.multi_write_async(ops).wait()
    }

    fn increment(&self, key: &Key, delta: u64) -> Result<u64> {
        self.increment_async(key, delta).wait()
    }

    fn scan_range(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
    ) -> Result<Vec<(Key, Token, Bytes)>> {
        self.scan(start, end, limit, false)
    }

    fn scan_range_rev(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
    ) -> Result<Vec<(Key, Token, Bytes)>> {
        self.scan(start, end, limit, true)
    }

    fn scan_prefix(&self, prefix: &[u8], limit: usize) -> Result<Vec<(Key, Token, Bytes)>> {
        let request =
            Request::ScanPrefix { prefix: Bytes::copy_from_slice(prefix), limit: limit as u64 };
        match self.call(&request)? {
            Response::Rows(rows) => Ok(rows),
            other => Err(Self::unexpected("scan_prefix", other)),
        }
    }

    /// The predicate is serializable, so it travels in the request and the
    /// storage node evaluates it before framing the response: only matching
    /// rows cross the network — the paper's §5.2 selection pushdown, now
    /// real on the remote path too.
    fn scan_prefix_pushdown(
        &self,
        prefix: &[u8],
        limit: usize,
        filter: &Predicate,
    ) -> Result<Vec<(Key, Token, Bytes)>> {
        // Validate encodability up front (depth limit): `Request::encode`
        // must be infallible by the time the frame is built.
        let mut scratch = Vec::new();
        filter.encode_into(&mut scratch)?;
        let request = Request::ScanPrefixFiltered {
            prefix: Bytes::copy_from_slice(prefix),
            limit: limit as u64,
            predicate: filter.clone(),
        };
        match self.call(&request)? {
            Response::Rows(rows) => Ok(rows),
            other => Err(Self::unexpected("scan_prefix_pushdown", other)),
        }
    }

    fn meter(&self) -> &NetMeter {
        &self.meter
    }
}

impl RemoteStoreClient {
    fn write_expecting_token(&self, op: WriteOp, context: &str) -> Result<Token> {
        match self.write_async(op).wait()? {
            Some(token) => Ok(token),
            None => Err(Error::corrupt(format!("{context} returned no token"))),
        }
    }

    fn scan(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
        reverse: bool,
    ) -> Result<Vec<(Key, Token, Bytes)>> {
        let request = Request::Scan {
            start: Bytes::copy_from_slice(start),
            end: end.map(Bytes::copy_from_slice),
            limit: limit as u64,
            reverse,
        };
        match self.call(&request)? {
            Response::Rows(rows) => Ok(rows),
            other => Err(Self::unexpected("scan", other)),
        }
    }
}

/// `StoreEndpoint` over TCP: the `Send + Sync` handle a shared `Database`
/// stores, from which each worker thread mints its own client.
#[derive(Clone)]
pub struct RemoteEndpoint {
    channel: Arc<RpcChannel>,
}

impl RemoteEndpoint {
    /// Endpoint talking to the storage server at `addr` through a channel
    /// of `pool_size` connections (opened lazily, so this cannot fail —
    /// unreachable servers surface as `Unavailable` on the first call).
    pub fn connect(addr: impl Into<String>, pool_size: usize) -> RemoteEndpoint {
        RemoteEndpoint { channel: RpcChannel::new(addr, pool_size) }
    }

    /// The storage server's address.
    pub fn addr(&self) -> &str {
        self.channel.addr()
    }
}

impl StoreEndpoint for RemoteEndpoint {
    type Client = RemoteStoreClient;

    fn client(&self, meter: NetMeter) -> RemoteStoreClient {
        RemoteStoreClient::new(Arc::clone(&self.channel), meter)
    }
}

// ---------------------------------------------------------------------------
// Remote commit-manager client.

/// `CommitService` over TCP: one [`RpcChannel`] per commit server, pinning
/// by hint with fail-over to the next server, exactly like the local
/// cluster. The per-server connection management that used to live here
/// (`CmTarget`) is gone — a channel of size one is the same thing.
pub struct RemoteCmClient {
    targets: Vec<Arc<RpcChannel>>,
}

impl RemoteCmClient {
    /// Client over the commit servers at `addrs` (connected lazily).
    pub fn connect(addrs: impl IntoIterator<Item = impl Into<String>>) -> RemoteCmClient {
        let targets: Vec<_> = addrs.into_iter().map(|a| RpcChannel::new(a, 1)).collect();
        assert!(!targets.is_empty(), "need at least one commit-server address");
        RemoteCmClient { targets }
    }

    /// Call `request` on target `idx`, charging `meter` for the traffic.
    fn call_on(&self, idx: usize, request: &Request, meter: &NetMeter) -> Result<Response> {
        self.targets[idx].request(request, meter)
    }
}

fn call_and_charge(conn: &Connection, request: &Request, meter: &NetMeter) -> Result<Response> {
    let (response, sent, received) = conn.call(request)?;
    meter.charge_real(sent, received);
    match response {
        Response::Error(e) => Err(e.into()),
        other => Ok(other),
    }
}

/// [`call_and_charge`] stamping the isolation-level suffix onto the frame
/// when `level` is not the Si default. The default is sent bare so a
/// pre-suffix server keeps decoding it.
fn call_and_charge_iso(
    conn: &Connection,
    request: &Request,
    level: IsolationLevel,
    meter: &NetMeter,
) -> Result<Response> {
    if level == IsolationLevel::Si {
        return call_and_charge(conn, request, meter);
    }
    let (response, sent, received) = conn.call_with_isolation(request, level)?;
    meter.charge_real(sent, received);
    match response {
        Response::Error(e) => Err(e.into()),
        other => Ok(other),
    }
}

impl CommitService for RemoteCmClient {
    fn start_pinned(
        &self,
        hint: usize,
        level: IsolationLevel,
        meter: &NetMeter,
    ) -> Result<(TxnStart, Arc<dyn CommitParticipant>)> {
        let n = self.targets.len();
        let mut last_err = unavailable("no commit server reachable");
        for i in 0..n {
            let idx = (hint + i) % n;
            let conn = match self.targets[idx].connection() {
                Ok(c) => c,
                Err(e) => {
                    last_err = e;
                    continue;
                }
            };
            match call_and_charge_iso(&conn, &Request::CmStart { hint: hint as u64 }, level, meter)
            {
                Ok(Response::TxnStarted { tid, lav, snapshot }) => {
                    let participant = Arc::new(RemoteParticipant { conn });
                    return Ok((TxnStart { tid, snapshot, lav }, participant));
                }
                Ok(other) => return Err(RemoteStoreClient::unexpected("cm_start", other)),
                Err(Error::Unavailable(w)) => {
                    last_err = Error::Unavailable(w);
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    fn current_lav(&self) -> Result<u64> {
        let meter = NetMeter::free();
        let mut lav: Option<u64> = None;
        for idx in 0..self.targets.len() {
            match self.call_on(idx, &Request::CmLav, &meter) {
                Ok(Response::Lav(v)) => lav = Some(lav.map_or(v, |cur| cur.min(v))),
                Ok(other) => return Err(RemoteStoreClient::unexpected("cm_lav", other)),
                Err(Error::Unavailable(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        lav.ok_or_else(|| unavailable("no commit server reachable for lav"))
    }

    fn force_resolve(&self, tid: TxnId, committed: bool) -> Result<()> {
        let meter = NetMeter::free();
        let request = Request::CmResolve { tid, committed };
        let mut reached = false;
        for idx in 0..self.targets.len() {
            match self.call_on(idx, &request, &meter) {
                Ok(Response::Unit) => reached = true,
                Ok(other) => return Err(RemoteStoreClient::unexpected("cm_resolve", other)),
                Err(Error::Unavailable(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        if reached {
            Ok(())
        } else {
            Err(unavailable("no commit server reachable for resolve"))
        }
    }

    fn sync_all(&self, meter: &NetMeter) -> Result<()> {
        let mut reached = false;
        for idx in 0..self.targets.len() {
            match self.call_on(idx, &Request::CmSync, meter) {
                Ok(Response::Unit) => reached = true,
                Ok(other) => return Err(RemoteStoreClient::unexpected("cm_sync", other)),
                Err(Error::Unavailable(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        if reached {
            Ok(())
        } else {
            Err(unavailable("no commit server reachable for sync"))
        }
    }
}

/// Finish-side handle to the server (and through it, the manager) that
/// issued a tid. Reporting goes back over the same connection the start
/// came from, so the server's tid routing table finds the right manager.
struct RemoteParticipant {
    conn: Arc<Connection>,
}

impl RemoteParticipant {
    fn complete(&self, tid: TxnId, committed: bool, meter: &NetMeter) -> Result<()> {
        match call_and_charge(&self.conn, &Request::CmComplete { tid, committed }, meter)? {
            Response::Unit => Ok(()),
            other => Err(RemoteStoreClient::unexpected("cm_complete", other)),
        }
    }
}

impl CommitParticipant for RemoteParticipant {
    fn set_committed(&self, tid: TxnId, meter: &NetMeter) -> Result<()> {
        self.complete(tid, true, meter)
    }

    fn set_aborted(&self, tid: TxnId, meter: &NetMeter) -> Result<()> {
        self.complete(tid, false, meter)
    }
}

/// `CmEndpoint` over TCP — the commit-manager mirror of [`RemoteEndpoint`],
/// so `Database::open` takes (store endpoint, commit endpoint) symmetrically
/// for both deployments instead of a hand-wrapped trait object on one side.
#[derive(Clone)]
pub struct RemoteCmEndpoint {
    client: Arc<RemoteCmClient>,
}

impl RemoteCmEndpoint {
    /// Endpoint over the commit servers at `addrs` (connected lazily).
    pub fn connect(addrs: impl IntoIterator<Item = impl Into<String>>) -> RemoteCmEndpoint {
        RemoteCmEndpoint { client: Arc::new(RemoteCmClient::connect(addrs)) }
    }
}

impl CmEndpoint for RemoteCmEndpoint {
    fn commit_service(&self) -> Arc<dyn CommitService> {
        Arc::clone(&self.client) as Arc<dyn CommitService>
    }
}

//! The unified dispatch seam: one [`RpcService`] trait both servers (and
//! any future in-process caller) implement, replacing the two hand-rolled
//! per-server dispatch loops that used to live in `server.rs`.
//!
//! A service receives a decoded [`Request`] plus its [`RequestCtx`] and
//! answers through a one-shot [`ReplySink`]. The sink is the deferred-
//! completion seam: a synchronous handler calls it before returning, an
//! asynchronous one may move it to another thread, and a `Request::Batch`
//! fans one sink out into per-op sinks with [`ReplySink::batch`] so nested
//! replies can complete independently and still assemble into one
//! [`Response::Batch`] in submission order. A sink dropped without a reply
//! answers a typed error — a lost reply must never strand the caller's
//! correlation id.
//!
//! [`Router`] is the service the shipped servers run: storage requests go
//! to the wrapped `StoreCluster`, commit requests to the wrapped
//! `CommitService` (with the tid → participant routing table that used to
//! live on the server), and Ping/Metrics/Spans are answered by any node.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use tell_commitmgr::{CommitParticipant, CommitService};
use tell_common::{Error, IsolationLevel, Result};
use tell_netsim::NetMeter;
use tell_obs::Counter;
use tell_store::{Expect, StoreClient, StoreCluster, WriteOp};

use crate::wire::{decode_request_iso, split_context, Request, Response, TraceContext};

/// What a server process exposes.
#[derive(Default)]
pub struct Services {
    /// Storage requests are served from this cluster.
    pub store: Option<Arc<StoreCluster>>,
    /// Commit requests are served from this service.
    pub commit: Option<Arc<dyn CommitService>>,
}

/// Everything a handler may want to know about the frame beyond the
/// request itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct RequestCtx {
    /// Trace context carried in the frame, echoed on the response.
    pub trace: Option<TraceContext>,
    /// The connection's peer address, when the transport has one.
    pub peer: Option<SocketAddr>,
    /// Isolation level carried in the frame's trailing suffix; `None`
    /// (the common case) means the server-side default applies.
    pub isolation: Option<IsolationLevel>,
}

/// One-shot completion handle for a request. Consuming it (`send`) routes
/// the response back to whatever transport issued the request; dropping it
/// unconsumed sends a typed error instead, so a handler that loses a reply
/// path can never hang a correlation id.
pub struct ReplySink {
    complete: Option<Box<dyn FnOnce(Response) + Send>>,
}

impl ReplySink {
    /// Sink invoking `complete` with the response.
    pub fn new(complete: impl FnOnce(Response) + Send + 'static) -> ReplySink {
        ReplySink { complete: Some(Box::new(complete)) }
    }

    /// Sink that discards its response (duplicate-delivery re-dispatch).
    pub fn ignore() -> ReplySink {
        ReplySink::new(|_| {})
    }

    /// Complete the request.
    pub fn send(mut self, response: Response) {
        if let Some(complete) = self.complete.take() {
            complete(response);
        }
    }

    /// Split this sink into `n` per-op sinks whose responses assemble into
    /// one `Response::Batch` in index order once **all** have completed —
    /// the deferred-completion shape of §5.1 batching: one frame in, one
    /// frame out, however the per-op work is scheduled.
    pub fn batch(self, n: usize) -> Vec<ReplySink> {
        if n == 0 {
            self.send(Response::Batch { results: Vec::new() });
            return Vec::new();
        }
        struct BatchState {
            slots: Mutex<Vec<Option<Response>>>,
            remaining: AtomicUsize,
            parent: Mutex<Option<ReplySink>>,
        }
        let state = Arc::new(BatchState {
            slots: Mutex::new((0..n).map(|_| None).collect()),
            remaining: AtomicUsize::new(n),
            parent: Mutex::new(Some(self)),
        });
        (0..n)
            .map(|i| {
                let state = Arc::clone(&state);
                ReplySink::new(move |response| {
                    state.slots.lock()[i] = Some(response);
                    if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        let results = state
                            .slots
                            .lock()
                            .iter_mut()
                            .map(|slot| slot.take().expect("all batch slots completed"))
                            .collect();
                        if let Some(parent) = state.parent.lock().take() {
                            parent.send(Response::Batch { results });
                        }
                    }
                })
            })
            .collect()
    }
}

impl Drop for ReplySink {
    fn drop(&mut self) {
        if let Some(complete) = self.complete.take() {
            complete(Response::Error(Error::invalid("request dropped without a reply").into()));
        }
    }
}

/// A request handler: decode happens in the transport, `call` maps one
/// request to one (eventual) reply. Implementations must tolerate the sink
/// outliving the call — that is the whole deferred-completion contract.
pub trait RpcService: Send + Sync {
    fn call(&self, request: Request, ctx: &RequestCtx, reply: ReplySink);
}

// ---------------------------------------------------------------------------
// Router: the service the shipped servers run.

/// Routes storage requests to a `StoreCluster`, commit requests to a
/// `CommitService`, and serves Ping/Metrics/Spans from any node. Requests
/// for an unhosted service answer `Unsupported`.
pub struct Router {
    store: Option<Arc<StoreCluster>>,
    commit: Option<CmRoute>,
}

struct CmRoute {
    commit: Arc<dyn CommitService>,
    /// tid → the manager that issued it, so `CmComplete` reports the
    /// outcome to the right manager regardless of which connection (or
    /// which PN) delivers it. Falls back to `force_resolve` when absent
    /// (e.g. resolution arriving after a server restart).
    participants: Mutex<HashMap<u64, Arc<dyn CommitParticipant>>>,
}

impl Router {
    pub fn new(services: Services) -> Router {
        Router {
            store: services.store,
            commit: services
                .commit
                .map(|commit| CmRoute { commit, participants: Mutex::new(HashMap::new()) }),
        }
    }

    fn call_one(&self, request: Request, isolation: Option<IsolationLevel>) -> Response {
        match request {
            Request::Ping => Response::Pong,
            // Served by every node regardless of hosted services: the
            // snapshot is of this process's global registry.
            Request::Metrics => Response::Metrics(tell_obs::snapshot().to_json()),
            // Likewise process-wide. The default scrape peeks; draining is
            // destructive and must be asked for explicitly.
            Request::Spans { drain } => Response::Spans(if drain {
                tell_obs::span::global_ring().drain()
            } else {
                tell_obs::span::global_ring().peek()
            }),
            // Incremental pull of this process's telemetry ring.
            Request::Telemetry { since } => {
                Response::Telemetry(tell_obs::timeseries::page_since(since))
            }
            // Profiler control, also process-wide: the logical-stack
            // sampler covers every thread in this process, whatever mix
            // of services it hosts.
            Request::ProfileStart { hz } => {
                tell_obs::prof::start((hz > 0.0).then_some(hz));
                Response::Unit
            }
            Request::ProfileStop => {
                tell_obs::prof::stop();
                Response::Unit
            }
            Request::ProfileFetch => Response::Profile(tell_obs::prof::fetch()),
            // The wire decoder already refuses nested batches; keep the
            // refusal here too so a future in-process caller cannot sneak
            // one in.
            Request::Batch { .. } => {
                Response::Error(Error::invalid("Batch nested inside Batch").into())
            }
            Request::Get { .. }
            | Request::MultiGet { .. }
            | Request::Write { .. }
            | Request::MultiWrite { .. }
            | Request::Increment { .. }
            | Request::Scan { .. }
            | Request::ScanPrefix { .. }
            | Request::ScanPrefixFiltered { .. } => match &self.store {
                Some(cluster) => {
                    with_store_client(cluster, |client| dispatch_store(client, request))
                }
                None => Response::Error(
                    Error::Unsupported("this node does not serve storage".into()).into(),
                ),
            },
            Request::CmStart { .. }
            | Request::CmComplete { .. }
            | Request::CmLav
            | Request::CmSync
            | Request::CmResolve { .. } => match &self.commit {
                Some(route) => dispatch_commit(route, request, isolation),
                None => Response::Error(
                    Error::Unsupported("this node does not serve commit managers".into()).into(),
                ),
            },
        }
    }
}

impl RpcService for Router {
    fn call(&self, request: Request, ctx: &RequestCtx, reply: ReplySink) {
        match request {
            // One frame in, one frame out: each nested op dispatches
            // independently, so per-op failures travel as nested errors
            // instead of poisoning the whole window (§5.1 batching).
            Request::Batch { ops } => {
                let sinks = reply.batch(ops.len());
                for (op, sink) in ops.into_iter().zip(sinks) {
                    sink.send(self.call_one(op, ctx.isolation));
                }
            }
            other => reply.send(self.call_one(other, ctx.isolation)),
        }
    }
}

// The storage client is deliberately `!Send` (its meter models one worker's
// virtual clock), so a shared `Router` cannot hold one. Each dispatch
// thread caches its own unmetered client per cluster instead — the same
// lifetime the old thread-per-connection server got for free, since worker
// threads die with the server that spawned them.
thread_local! {
    static STORE_CLIENTS: std::cell::RefCell<Vec<(usize, StoreClient)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

fn with_store_client<R>(cluster: &Arc<StoreCluster>, f: impl FnOnce(&StoreClient) -> R) -> R {
    let key = Arc::as_ptr(cluster) as usize;
    STORE_CLIENTS.with(|cell| {
        let mut cache = cell.borrow_mut();
        if !cache.iter().any(|(k, _)| *k == key) {
            cache.push((key, StoreClient::unmetered(Arc::clone(cluster))));
        }
        let client = &cache.iter().find(|(k, _)| *k == key).expect("just inserted").1;
        f(client)
    })
}

fn dispatch_store(client: &StoreClient, request: Request) -> Response {
    let result = match request {
        Request::Get { key } => client.get(&key).map(Response::Cell),
        Request::MultiGet { keys } => client.multi_get(&keys).map(Response::Cells),
        Request::Write { op } => apply_write(client, op).map(Response::Written),
        Request::MultiWrite { ops } => client.multi_write(ops).map(|results| {
            Response::WriteResults(results.into_iter().map(|r| r.map_err(Into::into)).collect())
        }),
        Request::Increment { key, delta } => client.increment(&key, delta).map(Response::Counter),
        Request::Scan { start, end, limit, reverse } => {
            let limit = clamp_limit(limit);
            let end = end.as_ref().map(|b| b.as_ref());
            if reverse {
                client.scan_range_rev(start.as_ref(), end, limit).map(Response::Rows)
            } else {
                client.scan_range(start.as_ref(), end, limit).map(Response::Rows)
            }
        }
        Request::ScanPrefix { prefix, limit } => {
            client.scan_prefix(prefix.as_ref(), clamp_limit(limit)).map(Response::Rows)
        }
        Request::ScanPrefixFiltered { prefix, limit, predicate } => {
            // The §5.2 pushdown: evaluate the predicate here, next to the
            // data, so only matching rows are framed into the response.
            client
                .scan_prefix_pushdown(prefix.as_ref(), clamp_limit(limit), &predicate)
                .map(Response::Rows)
        }
        _ => unreachable!("non-storage request routed to dispatch_store"),
    };
    result.unwrap_or_else(|e| Response::Error(e.into()))
}

/// Route a single conditional write to the store call with exactly its
/// semantics (see `StoreApi`: put / insert / store-conditional / delete /
/// delete-conditional are distinct operations, not sugar over one another).
fn apply_write(client: &StoreClient, op: WriteOp) -> Result<Option<u64>> {
    match (op.expect, op.value) {
        (Expect::Any, Some(value)) => client.put(&op.key, value).map(Some),
        (Expect::Absent, Some(value)) => client.insert(&op.key, value).map(Some),
        (Expect::Token(token), Some(value)) => {
            client.store_conditional(&op.key, token, value).map(Some)
        }
        (Expect::Token(token), None) => client.delete_conditional(&op.key, token).map(|()| None),
        (Expect::Any, None) => client.delete(&op.key).map(|()| None),
        (Expect::Absent, None) => Err(Error::invalid("delete with Expect::Absent is meaningless")),
    }
}

fn dispatch_commit(
    route: &CmRoute,
    request: Request,
    isolation: Option<IsolationLevel>,
) -> Response {
    // Server threads have no virtual clock; commit-side charges are free.
    let meter = NetMeter::free();
    let commit = route.commit.as_ref();
    let result = match request {
        Request::CmStart { hint } => {
            let level = isolation.unwrap_or_default();
            commit.start_pinned(hint as usize, level, &meter).map(|(start, participant)| {
                route.participants.lock().insert(start.tid.raw(), participant);
                Response::TxnStarted { tid: start.tid, lav: start.lav, snapshot: start.snapshot }
            })
        }
        Request::CmComplete { tid, committed } => {
            let participant = route.participants.lock().remove(&tid.raw());
            match participant {
                Some(p) if committed => p.set_committed(tid, &meter),
                Some(p) => p.set_aborted(tid, &meter),
                // The issuing manager is unknown here (restart, cross-server
                // resolution): resolve on every live manager instead.
                None => commit.force_resolve(tid, committed),
            }
            .map(|()| Response::Unit)
        }
        Request::CmLav => commit.current_lav().map(Response::Lav),
        Request::CmSync => commit.sync_all(&meter).map(|()| Response::Unit),
        Request::CmResolve { tid, committed } => {
            route.participants.lock().remove(&tid.raw());
            commit.force_resolve(tid, committed).map(|()| Response::Unit)
        }
        _ => unreachable!("non-commit request routed to dispatch_commit"),
    };
    result.unwrap_or_else(|e| Response::Error(e.into()))
}

fn clamp_limit(limit: u64) -> usize {
    usize::try_from(limit).unwrap_or(usize::MAX)
}

/// Per-request-type accounting. A `Batch` envelope counts once under its
/// own counter (mirroring the one-frame semantics of `frames_served`) and
/// each nested op counts under its own type plus the inner-ops total.
fn count_request(request: &Request) {
    let reg = tell_obs::global();
    let c = match request {
        Request::Get { .. } => Counter::ReqGet,
        Request::MultiGet { .. } => Counter::ReqMultiGet,
        Request::Write { .. } => Counter::ReqWrite,
        Request::MultiWrite { .. } => Counter::ReqMultiWrite,
        Request::Increment { .. } => Counter::ReqIncrement,
        Request::Scan { .. } => Counter::ReqScan,
        Request::ScanPrefix { .. } => Counter::ReqScanPrefix,
        Request::ScanPrefixFiltered { .. } => Counter::ReqScanPrefixFiltered,
        Request::Ping => Counter::ReqPing,
        Request::Batch { ops } => {
            reg.add(Counter::ReqBatchInnerOps, ops.len() as u64);
            for op in ops {
                count_request(op);
            }
            Counter::ReqBatch
        }
        Request::CmStart { .. } => Counter::ReqCmStart,
        Request::CmComplete { .. } => Counter::ReqCmComplete,
        Request::CmLav => Counter::ReqCmLav,
        Request::CmSync => Counter::ReqCmSync,
        Request::CmResolve { .. } => Counter::ReqCmResolve,
        Request::Metrics => Counter::ReqMetrics,
        Request::Spans { .. } => Counter::ReqSpans,
        Request::Telemetry { .. } => Counter::ReqTelemetry,
        Request::ProfileStart { .. } | Request::ProfileStop | Request::ProfileFetch => {
            Counter::ReqProfile
        }
    };
    reg.incr(c);
}

// ---------------------------------------------------------------------------
// Frame-level dispatch, shared by every transport.

/// Decode one frame body and run it through `service`, echoing the frame's
/// trace context to `reply` along with the response. This is the single
/// code path both the reactor workers and the blocking baseline server use:
/// decode → trace adoption → dispatch span → service call → span status —
/// exactly the sequence the old per-connection loop ran inline.
///
/// `duplicate` re-dispatches the request after answering with the first
/// result (the fault injector's at-least-once delivery). `CmStart` is
/// exempt — allocation is not idempotent, and a tid handed out by a
/// duplicate would never be completed by anyone.
pub(crate) fn dispatch_frame(
    service: &dyn RpcService,
    duplicate: bool,
    peer: Option<SocketAddr>,
    body: &[u8],
    reply: impl FnOnce(Option<TraceContext>, Response) + Send + 'static,
) {
    let decoded = split_context(body).and_then(|(ctx, msg)| {
        decode_request_iso(msg).map(|(request, isolation)| (ctx, request, isolation))
    });
    let (ctx, request, isolation) = match decoded {
        Ok(decoded) => decoded,
        Err(e) => {
            reply(None, Response::Error(e.into()));
            return;
        }
    };
    count_request(&request);
    // Expose the originating trace to everything this dispatch touches
    // (slow-op checks included), then echo it back.
    let _guard = ctx.map(|c| tell_obs::TraceGuard::enter(c.trace));
    // Profiler frame for the whole dispatch: store/cm work done below
    // stacks under it in the flamegraph.
    let _frame = tell_obs::FrameGuard::enter(tell_obs::FrameKind::RpcDispatch);
    // Record this dispatch as a child of the remote client-call span
    // carried in the frame (servers have no virtual clock, so the virtual
    // timestamps stay 0).
    let _in_server = tell_obs::span::ServerDispatchScope::enter();
    let span = ctx.and_then(|c| {
        tell_obs::SpanTimer::start_with_parent(
            c.trace,
            c.parent_span,
            tell_obs::SpanKind::ServerDispatch,
            0.0,
        )
    });
    let sink = ReplySink::new(move |response| {
        if let Some(span) = span {
            let status = match &response {
                Response::Error(crate::wire::WireError::Conflict) => tell_obs::SpanStatus::Conflict,
                Response::Error(_) => tell_obs::SpanStatus::Error,
                _ => tell_obs::SpanStatus::Ok,
            };
            span.finish(0.0, 0, status);
        }
        // A server thread never learns how the trace ends, so its spans go
        // straight to the ring (the bounded drop-oldest ring is the
        // server-side retention policy).
        tell_obs::span::flush_pending_to_ring();
        reply(ctx, response);
    });
    let rctx = RequestCtx { trace: ctx, peer, isolation };
    if duplicate && !matches!(request, Request::CmStart { .. }) {
        service.call(request.clone(), &rctx, sink);
        service.call(request, &rctx, ReplySink::ignore());
        // Spans opened by the discarded second dispatch still land on this
        // thread's pending list; sweep them to the ring like the first.
        tell_obs::span::flush_pending_to_ring();
    } else {
        service.call(request, &rctx, sink);
    }
}

//! Deterministic fault injection for the transport (`tell-sim`'s RPC fault
//! hook).
//!
//! The simulation harness (`crates/sim`, ISSUE 5) needs to perturb the wire
//! paths the way a flaky network would: frames that never arrive, frames
//! that arrive late, frames delivered twice, and client batch flushes that
//! stall before hitting the socket. This module is that hook. It is a
//! process-global injector — **off by default and zero-cost when off** (one
//! relaxed atomic load per consultation) — that the server connection loop
//! and the client submission window consult at well-defined points:
//!
//! * **drop** — the server closes the connection instead of answering. The
//!   client's reader loop marks the connection dead and every parked caller
//!   gets a typed [`Error::Unavailable`](tell_common::Error::Unavailable);
//!   pools replace the connection on the next checkout. This models a lost
//!   frame the way TCP surfaces it: a broken stream, never a silent hang.
//! * **delay** — the server sleeps before dispatching, modeling queueing or
//!   a slow link. Pipelined callers on the same connection wait behind it.
//! * **duplicate** — the server dispatches the same request twice and
//!   answers with the *first* result, modeling at-least-once delivery. The
//!   protocol must make re-execution harmless: conditional writes fail
//!   their second application with `Conflict` (LL/SC tokens moved), reads
//!   are idempotent, and commit-manager completions are recorded
//!   idempotently.
//! * **flush stall** — the client submission window sleeps before sending
//!   its coalesced batch frame, widening the window in which the server
//!   side can fail underneath queued operations.
//!
//! Decisions are drawn from a seeded RNG behind a mutex, so a fault
//! *sequence* is reproducible for a given seed and frame order. (Across
//! OS-thread interleavings the per-frame assignment may vary; the
//! deterministic single-threaded harness in `crates/sim` pins frame order
//! and with it the whole schedule.)

use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;
use rand::{Rng, SeedableRng, StdRng};

/// Probabilities and magnitudes for injected transport faults. All zero by
/// default: an installed-but-zero config injects nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultConfig {
    /// Probability that a server connection drops (closes) instead of
    /// answering a frame.
    pub drop_prob: f64,
    /// Probability that the server delays a frame before dispatching.
    pub delay_prob: f64,
    /// Delay magnitude in microseconds of real time (kept small; this is a
    /// scheduling perturbation, not a latency model).
    pub delay_us: u64,
    /// Probability that the server dispatches a frame twice (at-least-once
    /// delivery), answering with the first result.
    pub dup_prob: f64,
    /// Stall applied to every client batch flush, in microseconds of real
    /// time. Zero disables the stall.
    pub flush_stall_us: u64,
}

/// What the server connection loop should do with the frame it just read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerFault {
    /// Dispatch normally.
    None,
    /// Close the connection without answering.
    Drop,
    /// Sleep this many microseconds, then dispatch normally.
    DelayUs(u64),
    /// Dispatch the request twice, answer with the first result.
    Duplicate,
}

struct Injector {
    config: FaultConfig,
    rng: StdRng,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static INJECTOR: Mutex<Option<Injector>> = Mutex::new(None);

/// Install the injector with a fresh RNG seeded by `seed`. Replaces any
/// previous injector (and its RNG state).
pub fn install(seed: u64, config: FaultConfig) {
    *INJECTOR.lock() = Some(Injector { config, rng: StdRng::seed_from_u64(seed) });
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Update the probabilities without disturbing the RNG stream (used by the
/// fault plan to degrade/heal the network mid-run).
pub fn set_config(config: FaultConfig) {
    let mut slot = INJECTOR.lock();
    match slot.as_mut() {
        Some(inj) => inj.config = config,
        // Setting a config without an installed RNG seeds deterministically
        // from zero; callers wanting a specific stream use `install`.
        None => *slot = Some(Injector { config, rng: StdRng::seed_from_u64(0) }),
    }
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Remove the injector; all paths return to zero-cost pass-through.
pub fn clear() {
    ACTIVE.store(false, Ordering::SeqCst);
    *INJECTOR.lock() = None;
}

/// Whether an injector is installed (cheap; safe to call per frame).
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Consulted by the server once per decoded frame.
pub fn server_action() -> ServerFault {
    if !active() {
        return ServerFault::None;
    }
    let mut slot = INJECTOR.lock();
    let Some(inj) = slot.as_mut() else { return ServerFault::None };
    // Fixed consultation order keeps the RNG stream stable for a given
    // frame sequence regardless of which probabilities are nonzero.
    let (d, dl, dp) = (inj.rng.random::<f64>(), inj.rng.random::<f64>(), inj.rng.random::<f64>());
    if d < inj.config.drop_prob {
        ServerFault::Drop
    } else if dl < inj.config.delay_prob {
        ServerFault::DelayUs(inj.config.delay_us.max(1))
    } else if dp < inj.config.dup_prob {
        ServerFault::Duplicate
    } else {
        ServerFault::None
    }
}

/// Consulted by the client submission window once per flush. Returns the
/// stall to apply in microseconds (0 = none).
pub fn flush_stall_us() -> u64 {
    if !active() {
        return 0;
    }
    INJECTOR.lock().as_ref().map_or(0, |inj| inj.config.flush_stall_us)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The injector is process-global; tests run serially under one lock so
    // they never see each other's config.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn inactive_injector_is_pass_through() {
        let _g = SERIAL.lock();
        clear();
        assert!(!active());
        assert_eq!(server_action(), ServerFault::None);
        assert_eq!(flush_stall_us(), 0);
    }

    #[test]
    fn same_seed_yields_same_fault_sequence() {
        let _g = SERIAL.lock();
        let cfg = FaultConfig {
            drop_prob: 0.2,
            delay_prob: 0.3,
            delay_us: 50,
            dup_prob: 0.25,
            flush_stall_us: 0,
        };
        install(77, cfg);
        let a: Vec<ServerFault> = (0..64).map(|_| server_action()).collect();
        install(77, cfg);
        let b: Vec<ServerFault> = (0..64).map(|_| server_action()).collect();
        assert_eq!(a, b);
        assert!(a.contains(&ServerFault::Drop));
        assert!(a.iter().any(|f| matches!(f, ServerFault::DelayUs(_))));
        assert!(a.contains(&ServerFault::Duplicate));
        clear();
    }

    #[test]
    fn set_config_degrades_and_heals_without_reseeding() {
        let _g = SERIAL.lock();
        install(1, FaultConfig::default());
        assert_eq!(server_action(), ServerFault::None);
        set_config(FaultConfig { drop_prob: 1.0, ..FaultConfig::default() });
        assert_eq!(server_action(), ServerFault::Drop);
        set_config(FaultConfig { flush_stall_us: 120, ..FaultConfig::default() });
        assert_eq!(server_action(), ServerFault::None);
        assert_eq!(flush_stall_us(), 120);
        clear();
        assert_eq!(flush_stall_us(), 0);
    }
}
